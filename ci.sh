#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# Usage: ./ci.sh [--asan|--tsan|--tidy] [build-dir]
#        (default: build; build-asan with --asan, build-tsan with
#        --tsan, build-tidy with --tidy)
#   --asan: rebuild under Address + UndefinedBehavior sanitizers and run
#           the deterministic `unit` ctest label, the `crash` label (the
#           store's fork/_Exit crash-recovery matrix -- _Exit skips the
#           leak-check atexit hook, so the injected deaths are
#           ASan-clean), plus the `fuzz` label at reduced trial counts
#           (KAV_FUZZ_TRIALS / KAV_FUZZ_OPS) --
#           the mmap-backed store, the zero-copy BlockCursor/SIMD
#           decode, and the binary readers are exactly the code
#           sanitizers exist for, and the differential fuzzers are what
#           drive them through their adversarial paths. Both labels run
#           twice: with hardware SIMD dispatch and with
#           KAV_FORCE_SCALAR=1, so every tier is sanitized. Skips the
#           integration sweeps and the bench smoke (sanitized timings
#           are meaningless).
#   --tsan: rebuild under ThreadSanitizer (-DKAV_SANITIZE=thread) and
#           run the `unit` and `fuzz` labels at reduced trial counts.
#           This is the always-on observability layer's race check: the
#           sharded counter cells, gauge deltas, and tracer ring are
#           hammered from every pool worker, monitor drain task, and
#           background compaction pass the suites spin up. The `crash`
#           label is excluded -- its fork()-after-threads matrix is
#           undefined under TSan's runtime.
#   --tidy: the static-analysis gate. Three stages:
#             1. kav-lint (tools/kav_lint.py): repo invariants --
#                wire-format encoding discipline, no naked new, metric
#                name grammar, include guards, no raw std::mutex
#                outside the annotated wrappers. Needs only python3.
#             2. clang build with -DKAV_THREAD_SAFETY=ON and -Werror:
#                every util/thread_safety.h capability annotation
#                (GUARDED_BY/REQUIRES/EXCLUDES) becomes a compile-time
#                proof obligation.
#             3. clang-tidy (checked-in .clang-tidy: bugprone-*,
#                concurrency-*, performance-*, curated modernize-use-*)
#                over the compile_commands.json stage 2 exported.
#           Stages whose toolchain (clang / clang-tidy) is missing are
#           skipped LOUDLY but do not fail the run, so the gate
#           degrades to kav-lint on gcc-only boxes instead of lying.
set -euo pipefail
cd "$(dirname "$0")"

ASAN=0
TSAN=0
TIDY=0
if [[ "${1:-}" == "--asan" ]]; then
  ASAN=1
  shift
elif [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
elif [[ "${1:-}" == "--tidy" ]]; then
  TIDY=1
  shift
fi

if [[ "$TIDY" == 1 ]]; then
  BUILD_DIR="${1:-build-tidy}"

  echo "== tidy stage 1/3: kav-lint =="
  if command -v python3 >/dev/null 2>&1; then
    python3 tools/kav_lint.py --self-test
    python3 tools/kav_lint.py
  else
    echo "!! SKIPPED: python3 not found -- kav-lint did NOT run" >&2
  fi

  if ! command -v clang++ >/dev/null 2>&1; then
    cat >&2 <<'EOF'
!! SKIPPED: clang++ not found -- the -Wthread-safety build and
!! clang-tidy did NOT run. The capability annotations in
!! util/thread_safety.h were NOT checked. Install clang + clang-tidy
!! and re-run ./ci.sh --tidy for the full gate.
EOF
    exit 0
  fi

  echo "== tidy stage 2/3: clang -Wthread-safety -Werror build =="
  cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON -DKAV_THREAD_SAFETY=ON \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"

  echo "== tidy stage 3/3: clang-tidy =="
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "$(pwd)/src/.*" "$(pwd)/tests/.*"
  elif command -v clang-tidy >/dev/null 2>&1; then
    # No run-clang-tidy wrapper: drive clang-tidy directly, batched.
    find src tests -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 8 clang-tidy -quiet -p "$BUILD_DIR"
  else
    echo "!! SKIPPED: clang-tidy not found -- the .clang-tidy check" \
         "set did NOT run." >&2
  fi
  exit 0
fi

if [[ "$TSAN" == 1 ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON -DKAV_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  # TSan multiplies runtime and memory like ASan does; trial volume
  # matters even less here -- what TSan needs is every lock-free path
  # exercised from genuinely concurrent threads, which the unit
  # hammers and the fuzz pipelines already guarantee.
  export KAV_FUZZ_TRIALS="${KAV_FUZZ_TRIALS:-5}"
  export KAV_FUZZ_OPS="${KAV_FUZZ_OPS:-50000}"
  ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz' --output-on-failure -j "$(nproc)"
  exit 0
fi

if [[ "$ASAN" == 1 ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON -DKAV_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  # Sanitized runs are ~10x slower: shrink the randomized sweeps to a
  # handful of trials and a small out-of-core workload. Coverage (which
  # code paths run) is what matters under sanitizers, not trial volume.
  export KAV_FUZZ_TRIALS="${KAV_FUZZ_TRIALS:-5}"
  export KAV_FUZZ_OPS="${KAV_FUZZ_OPS:-50000}"
  ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz|crash' --output-on-failure -j "$(nproc)"
  KAV_FORCE_SCALAR=1 \
    ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz|crash' --output-on-failure -j "$(nproc)"
  exit 0
fi

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
# Fast pre-pass: the seconds-scale unit suites fail first, before the
# fuzz and integration sweeps get a chance to burn minutes.
ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE unit --output-on-failure -j "$(nproc)"

# Perf smoke: quick bench data points (skipped when Google Benchmark
# was absent and the bench binaries were not built).
if [[ -x "$BUILD_DIR/bench_ingest" ]]; then
  bench/run_bench.sh --smoke "$BUILD_DIR"
fi
