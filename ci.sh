#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# Usage: ./ci.sh [--asan] [build-dir]   (default: build; build-asan with --asan)
#   --asan: rebuild under Address + UndefinedBehavior sanitizers and run
#           the deterministic `unit` ctest label -- the mmap-backed
#           store and the zero-copy binary readers are exactly the code
#           sanitizers exist for. Skips the fuzz/integration sweeps and
#           the bench smoke (sanitized timings are meaningless).
set -euo pipefail
cd "$(dirname "$0")"

ASAN=0
if [[ "${1:-}" == "--asan" ]]; then
  ASAN=1
  shift
fi

if [[ "$ASAN" == 1 ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON -DKAV_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"
  exit 0
fi

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
# Fast pre-pass: the seconds-scale unit suites fail first, before the
# fuzz and integration sweeps get a chance to burn minutes.
ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE unit --output-on-failure -j "$(nproc)"

# Perf smoke: quick bench data points (skipped when Google Benchmark
# was absent and the bench binaries were not built).
if [[ -x "$BUILD_DIR/bench_ingest" ]]; then
  bench/run_bench.sh --smoke "$BUILD_DIR"
fi
