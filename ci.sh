#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
