#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
# Fast pre-pass: the seconds-scale unit suites fail first, before the
# fuzz and integration sweeps get a chance to burn minutes.
ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE unit --output-on-failure -j "$(nproc)"

# Perf smoke: quick bench data points (skipped when Google Benchmark
# was absent and the bench binaries were not built).
if [[ -x "$BUILD_DIR/bench_ingest" ]]; then
  bench/run_bench.sh --smoke "$BUILD_DIR"
fi
