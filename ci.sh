#!/usr/bin/env bash
# Tier-1 verification: configure, build, run every test suite.
# Usage: ./ci.sh [--asan|--tsan] [build-dir]
#        (default: build; build-asan with --asan, build-tsan with --tsan)
#   --asan: rebuild under Address + UndefinedBehavior sanitizers and run
#           the deterministic `unit` ctest label, the `crash` label (the
#           store's fork/_Exit crash-recovery matrix -- _Exit skips the
#           leak-check atexit hook, so the injected deaths are
#           ASan-clean), plus the `fuzz` label at reduced trial counts
#           (KAV_FUZZ_TRIALS / KAV_FUZZ_OPS) --
#           the mmap-backed store, the zero-copy BlockCursor/SIMD
#           decode, and the binary readers are exactly the code
#           sanitizers exist for, and the differential fuzzers are what
#           drive them through their adversarial paths. Both labels run
#           twice: with hardware SIMD dispatch and with
#           KAV_FORCE_SCALAR=1, so every tier is sanitized. Skips the
#           integration sweeps and the bench smoke (sanitized timings
#           are meaningless).
#   --tsan: rebuild under ThreadSanitizer (-DKAV_SANITIZE=thread) and
#           run the `unit` and `fuzz` labels at reduced trial counts.
#           This is the always-on observability layer's race check: the
#           sharded counter cells, gauge deltas, and tracer ring are
#           hammered from every pool worker, monitor drain task, and
#           background compaction pass the suites spin up. The `crash`
#           label is excluded -- its fork()-after-threads matrix is
#           undefined under TSan's runtime.
set -euo pipefail
cd "$(dirname "$0")"

ASAN=0
TSAN=0
if [[ "${1:-}" == "--asan" ]]; then
  ASAN=1
  shift
elif [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
fi

if [[ "$TSAN" == 1 ]]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON -DKAV_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  # TSan multiplies runtime and memory like ASan does; trial volume
  # matters even less here -- what TSan needs is every lock-free path
  # exercised from genuinely concurrent threads, which the unit
  # hammers and the fuzz pipelines already guarantee.
  export KAV_FUZZ_TRIALS="${KAV_FUZZ_TRIALS:-5}"
  export KAV_FUZZ_OPS="${KAV_FUZZ_OPS:-50000}"
  ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz' --output-on-failure -j "$(nproc)"
  exit 0
fi

if [[ "$ASAN" == 1 ]]; then
  BUILD_DIR="${1:-build-asan}"
  cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON -DKAV_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  # Sanitized runs are ~10x slower: shrink the randomized sweeps to a
  # handful of trials and a small out-of-core workload. Coverage (which
  # code paths run) is what matters under sanitizers, not trial volume.
  export KAV_FUZZ_TRIALS="${KAV_FUZZ_TRIALS:-5}"
  export KAV_FUZZ_OPS="${KAV_FUZZ_OPS:-50000}"
  ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz|crash' --output-on-failure -j "$(nproc)"
  KAV_FORCE_SCALAR=1 \
    ctest --test-dir "$BUILD_DIR" -L 'unit|fuzz|crash' --output-on-failure -j "$(nproc)"
  exit 0
fi

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DKAV_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
# Fast pre-pass: the seconds-scale unit suites fail first, before the
# fuzz and integration sweeps get a chance to burn minutes.
ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE unit --output-on-failure -j "$(nproc)"

# Perf smoke: quick bench data points (skipped when Google Benchmark
# was absent and the bench binaries were not built).
if [[ -x "$BUILD_DIR/bench_ingest" ]]; then
  bench/run_bench.sh --smoke "$BUILD_DIR"
fi
