// Multi-register traces. k-atomicity is a local property (Section II-B
// of the paper): a trace over many registers is k-atomic iff the
// projection onto each register is, so verification splits a trace by
// key and reasons per register. KeyedTrace is the raw form emitted by
// workload sources (the quorum simulator, trace files); split_by_key
// produces one single-register History per key.
#ifndef KAV_HISTORY_KEYED_TRACE_H
#define KAV_HISTORY_KEYED_TRACE_H

#include <map>
#include <string>
#include <vector>

#include "history/history.h"

namespace kav {

struct KeyedOperation {
  std::string key;
  Operation op;
};

struct KeyedTrace {
  std::vector<KeyedOperation> ops;

  void add(std::string key, Operation op) {
    ops.push_back({std::move(key), op});
  }
  std::size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

// Groups by key, preserving the within-key order of insertion. Note the
// resulting per-key op ids index into that key's History, not into the
// original trace; the returned map also carries the original trace
// indexes for reporting.
struct KeyedHistories {
  std::map<std::string, History> per_key;
  // original trace position of each per-key op: trace_index[key][op id]
  std::map<std::string, std::vector<std::size_t>> trace_index;

  // Keys in map (lexicographic) order -- the shard enumeration order
  // the verification pipeline dispatches and merges in.
  std::vector<std::string> keys() const;
  // Total operations across all shards and the largest single shard;
  // what PipelineOptions::shard_op_budget is measured against.
  std::size_t total_ops() const;
  std::size_t max_shard_ops() const;
};

KeyedHistories split_by_key(const KeyedTrace& trace);

}  // namespace kav

#endif  // KAV_HISTORY_KEYED_TRACE_H
