// History: an immutable collection of operations on a single register
// (Section II-A), with the derived indexes every verification algorithm
// needs -- operations sorted by start and by finish, the dictating
// write of each read, the dictated reads of each write, and the maximum
// write-concurrency level c used in LBT's complexity bound.
//
// Construction never fails on *semantic* anomalies (those are reported
// by find_anomalies in anomaly.h, since the paper treats them as
// pre-filtered); it only rejects structurally malformed operations
// (start >= finish).
#ifndef KAV_HISTORY_HISTORY_H
#define KAV_HISTORY_HISTORY_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "history/operation.h"
#include "util/time_types.h"

namespace kav {

// Structure-of-arrays form of an operation sequence: column i across
// all five vectors is operation i. This is what the zero-copy decode
// path (store/block_cursor.h) produces straight from mmap'd block
// bytes -- each fixed-width record field is gathered into its own
// contiguous column with a SIMD kernel -- and History can ingest it
// without an intermediate std::vector<Operation> ever existing.
struct OperationColumns {
  std::vector<TimePoint> starts;
  std::vector<TimePoint> finishes;
  std::vector<Value> values;
  std::vector<ClientId> clients;
  std::vector<unsigned char> types;  // 0 = read, 1 = write

  std::size_t size() const { return starts.size(); }
  void clear();
  void reserve(std::size_t n);
  void push_back(const Operation& op);
};

class History {
 public:
  History() = default;

  // Throws std::invalid_argument if any operation has start >= finish.
  explicit History(std::vector<Operation> ops);

  // Column-wise construction (all five columns must have equal length;
  // this is checked). Semantically identical to building the
  // equivalent std::vector<Operation> -- same validation, same
  // exception text, same indexes -- but the time columns are adopted
  // in place instead of re-extracted.
  explicit History(OperationColumns columns);

  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  const Operation& op(OpId id) const { return ops_[id]; }
  std::span<const Operation> operations() const { return ops_; }

  std::size_t write_count() const { return writes_by_finish_.size(); }
  std::size_t read_count() const { return reads_.size(); }

  // Op ids sorted by the respective timestamp (ties broken by id; after
  // normalization there are no ties).
  std::span<const OpId> by_start() const { return by_start_; }
  std::span<const OpId> by_finish() const { return by_finish_; }
  std::span<const OpId> writes_by_start() const { return writes_by_start_; }
  std::span<const OpId> writes_by_finish() const { return writes_by_finish_; }
  std::span<const OpId> reads() const { return reads_; }

  // The unique write with the read's value, or kInvalidOp if the read
  // has no dictating write in this history (an anomaly).
  OpId dictating_write(OpId read) const { return dictating_write_[read]; }

  // Reads that obtained `write`'s value, sorted by start time.
  std::span<const OpId> dictated_reads(OpId write) const;

  // The write that stored `v`, or kInvalidOp. If multiple writes stored
  // the same value (an anomaly; see Section II-C), the earliest-
  // starting one is indexed and has_duplicate_write_values() is true.
  OpId write_of_value(Value v) const;
  bool has_duplicate_write_values() const {
    return has_duplicate_write_values_;
  }

  bool precedes(OpId a, OpId b) const { return ops_[a].precedes(ops_[b]); }

  // Contiguous time columns, indexed by op id -- the SIMD-scannable
  // mirror of operations()[id].start / .finish. Kept alongside the
  // sorted event columns below so anomaly scans and zone computations
  // run over dense 8-byte columns instead of 40-byte Operation rows.
  std::span<const TimePoint> start_column() const { return start_col_; }
  std::span<const TimePoint> finish_column() const { return finish_col_; }

  // All n start (resp. finish) times in ascending order; element i
  // belongs to op by_start()[i] (resp. by_finish()[i]).
  std::span<const TimePoint> sorted_starts() const { return sorted_starts_; }
  std::span<const TimePoint> sorted_finishes() const {
    return sorted_finishes_;
  }

  // Maximum number of pairwise-concurrent writes at any instant -- the
  // parameter c in LBT's O(n log n + c*n) bound (Theorem 3.2).
  std::size_t max_concurrent_writes() const { return max_concurrent_writes_; }

  TimePoint min_time() const;  // earliest start (0 when empty)
  TimePoint max_time() const;  // latest finish (0 when empty)

 private:
  void build_indexes();

  std::vector<Operation> ops_;
  // Per-id time columns (start_col_[id] == ops_[id].start) plus the
  // same times in sorted event order; see the accessors above.
  std::vector<TimePoint> start_col_;
  std::vector<TimePoint> finish_col_;
  std::vector<TimePoint> sorted_starts_;
  std::vector<TimePoint> sorted_finishes_;
  std::vector<OpId> by_start_;
  std::vector<OpId> by_finish_;
  std::vector<OpId> writes_by_start_;
  std::vector<OpId> writes_by_finish_;
  std::vector<OpId> reads_;
  std::vector<OpId> dictating_write_;
  // Dictated reads stored flattened: reads of write w occupy
  // dictated_flat_[read_begin_[w] .. read_begin_[w + 1]).
  std::vector<OpId> dictated_flat_;
  std::vector<std::uint32_t> read_begin_;
  // Value -> write id, sorted by value for binary search. Duplicate
  // values (an anomaly) keep only the earliest-starting write, exactly
  // like the hash map this replaced.
  std::vector<std::pair<Value, OpId>> value_index_;
  bool has_duplicate_write_values_ = false;
  std::size_t max_concurrent_writes_ = 0;
};

// Convenience used throughout tests: builds a History and gives stable
// ids (insertion order) back to the caller.
class HistoryBuilder {
 public:
  OpId write(TimePoint start, TimePoint finish, Value value,
             ClientId client = kNoClient) {
    ops_.push_back(make_write(start, finish, value, client));
    return static_cast<OpId>(ops_.size() - 1);
  }

  OpId read(TimePoint start, TimePoint finish, Value value,
            ClientId client = kNoClient) {
    ops_.push_back(make_read(start, finish, value, client));
    return static_cast<OpId>(ops_.size() - 1);
  }

  std::size_t size() const { return ops_.size(); }

  History build() const { return History(ops_); }

 private:
  std::vector<Operation> ops_;
};

}  // namespace kav

#endif  // KAV_HISTORY_HISTORY_H
