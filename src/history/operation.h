// The operation model from Section II-A of the paper: each operation on
// a register has a start time, finish time, type (read or write), and
// value (stored or retrieved). op1 precedes op2 iff op1 finishes before
// op2 starts; otherwise they are concurrent.
#ifndef KAV_HISTORY_OPERATION_H
#define KAV_HISTORY_OPERATION_H

#include <string>

#include "util/time_types.h"

namespace kav {

enum class OpType : unsigned char { read, write };

inline const char* to_string(OpType t) {
  return t == OpType::read ? "read" : "write";
}

struct Operation {
  TimePoint start = 0;
  TimePoint finish = 0;
  OpType type = OpType::read;
  Value value = 0;
  ClientId client = kNoClient;

  bool is_read() const { return type == OpType::read; }
  bool is_write() const { return type == OpType::write; }

  // The "precedes" relation (Section II-A): strict real-time order.
  bool precedes(const Operation& other) const { return finish < other.start; }
  bool concurrent_with(const Operation& other) const {
    return !precedes(other) && !other.precedes(*this);
  }

  friend bool operator==(const Operation&, const Operation&) = default;
};

inline Operation make_read(TimePoint start, TimePoint finish, Value value,
                           ClientId client = kNoClient) {
  return Operation{start, finish, OpType::read, value, client};
}

inline Operation make_write(TimePoint start, TimePoint finish, Value value,
                            ClientId client = kNoClient) {
  return Operation{start, finish, OpType::write, value, client};
}

std::string describe(const Operation& op);  // "write(v=3) [10, 20)"

}  // namespace kav

#endif  // KAV_HISTORY_OPERATION_H
