#include "history/serialization.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace kav {

namespace {

constexpr std::string_view kWhitespace = " \t\r";

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + message);
}

// Splits on spaces/tabs; CRLF endings and trailing whitespace are
// tolerated because \r and trailing separators produce no tokens.
std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t begin = line.find_first_not_of(kWhitespace, pos);
    if (begin == std::string_view::npos) break;
    std::size_t end = line.find_first_of(kWhitespace, begin);
    if (end == std::string_view::npos) end = line.size();
    tokens.push_back(line.substr(begin, end - begin));
    pos = end;
  }
  return tokens;
}

std::int64_t parse_int(std::string_view token, std::size_t line,
                       const char* field) {
  std::int64_t value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || end != token.data() + token.size()) {
    fail(line, std::string("expected integer ") + field + ", got '" +
                   std::string(token) + "'");
  }
  return value;
}

}  // namespace

KeyedTrace read_trace(std::istream& in) {
  KeyedTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string_view> tokens = split_tokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] != "op") {
      fail(line_no, "expected 'op', got '" + std::string(tokens[0]) + "'");
    }
    if (tokens.size() < 6) {
      fail(line_no,
           "expected: op <key> <R|W> <value> <start> <finish> [client]");
    }
    if (tokens.size() > 7) {
      fail(line_no,
           "unexpected trailing token '" + std::string(tokens[7]) + "'");
    }
    OpType type;
    if (tokens[2] == "R" || tokens[2] == "r") {
      type = OpType::read;
    } else if (tokens[2] == "W" || tokens[2] == "w") {
      type = OpType::write;
    } else {
      fail(line_no, "operation type must be R or W, got '" +
                        std::string(tokens[2]) + "'");
    }
    const Value value = parse_int(tokens[3], line_no, "value");
    const TimePoint start = parse_int(tokens[4], line_no, "start");
    const TimePoint finish = parse_int(tokens[5], line_no, "finish");
    ClientId client = kNoClient;
    if (tokens.size() == 7) {
      const std::int64_t raw = parse_int(tokens[6], line_no, "client");
      if (raw < std::numeric_limits<ClientId>::min() ||
          raw > std::numeric_limits<ClientId>::max()) {
        fail(line_no,
             "client id out of range, got '" + std::string(tokens[6]) + "'");
      }
      client = static_cast<ClientId>(raw);
    }
    if (start >= finish) {
      fail(line_no, "start must be < finish, got [" + std::to_string(start) +
                        ", " + std::to_string(finish) + ")");
    }
    trace.add(std::string(tokens[1]),
              Operation{start, finish, type, value, client});
  }
  return trace;
}

KeyedTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

KeyedTrace parse_trace(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

void write_trace_op(std::ostream& out, std::string_view key,
                    const Operation& op) {
  out << "op " << key << ' ' << (op.is_read() ? 'R' : 'W') << ' ' << op.value
      << ' ' << op.start << ' ' << op.finish;
  if (op.client != kNoClient) out << ' ' << op.client;
  out << '\n';
}

void write_trace(std::ostream& out, const KeyedTrace& trace) {
  out << "# kav trace v1\n";
  for (const KeyedOperation& kop : trace.ops) {
    write_trace_op(out, kop.key, kop.op);
  }
}

void write_trace_file(const std::string& path, const KeyedTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(out, trace);
}

std::string format_trace(const KeyedTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

History parse_history(const std::string& text) {
  const KeyedTrace trace = parse_trace(text);
  std::vector<Operation> ops;
  ops.reserve(trace.size());
  for (const KeyedOperation& kop : trace.ops) {
    if (!trace.ops.empty() && kop.key != trace.ops.front().key) {
      throw std::runtime_error(
          "parse_history: trace spans multiple keys; use parse_trace");
    }
    ops.push_back(kop.op);
  }
  return History(std::move(ops));
}

std::string format_history(const History& history, const std::string& key) {
  KeyedTrace trace;
  for (const Operation& op : history.operations()) trace.add(key, op);
  return format_trace(trace);
}

}  // namespace kav
