#include "history/serialization.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace kav {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

KeyedTrace read_trace(std::istream& in) {
  KeyedTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing CR so CRLF files parse.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag) || tag[0] == '#') continue;
    if (tag != "op") fail(line_no, "expected 'op', got '" + tag + "'");
    std::string key, type_str;
    Value value;
    TimePoint start, finish;
    if (!(fields >> key >> type_str >> value >> start >> finish)) {
      fail(line_no, "expected: op <key> <R|W> <value> <start> <finish>");
    }
    OpType type;
    if (type_str == "R" || type_str == "r") {
      type = OpType::read;
    } else if (type_str == "W" || type_str == "w") {
      type = OpType::write;
    } else {
      fail(line_no, "operation type must be R or W, got '" + type_str + "'");
    }
    ClientId client = kNoClient;
    fields >> client;  // optional
    if (start >= finish) fail(line_no, "start must be < finish");
    trace.add(std::move(key), Operation{start, finish, type, value, client});
  }
  return trace;
}

KeyedTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

KeyedTrace parse_trace(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

void write_trace(std::ostream& out, const KeyedTrace& trace) {
  out << "# kav trace v1\n";
  for (const KeyedOperation& kop : trace.ops) {
    out << "op " << kop.key << ' ' << (kop.op.is_read() ? 'R' : 'W') << ' '
        << kop.op.value << ' ' << kop.op.start << ' ' << kop.op.finish;
    if (kop.op.client != kNoClient) out << ' ' << kop.op.client;
    out << '\n';
  }
}

void write_trace_file(const std::string& path, const KeyedTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_trace(out, trace);
}

std::string format_trace(const KeyedTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

History parse_history(const std::string& text) {
  const KeyedTrace trace = parse_trace(text);
  std::vector<Operation> ops;
  ops.reserve(trace.size());
  for (const KeyedOperation& kop : trace.ops) {
    if (!trace.ops.empty() && kop.key != trace.ops.front().key) {
      throw std::runtime_error(
          "parse_history: trace spans multiple keys; use parse_trace");
    }
    ops.push_back(kop.op);
  }
  return History(std::move(ops));
}

std::string format_history(const History& history, const std::string& key) {
  KeyedTrace trace;
  for (const Operation& op : history.operations()) trace.add(key, op);
  return format_trace(trace);
}

}  // namespace kav
