#include "history/cluster.h"

#include <algorithm>

namespace kav {

namespace {

// Shared by both entry points: min finish / max start over the
// cluster, reading the History's dense time columns (8-byte stride)
// rather than 40-byte Operation rows -- dictated reads are start-
// sorted and near-sequential, so the column walk is cache-friendly.
inline Zone zone_of(const History& history, OpId write) {
  std::span<const TimePoint> starts = history.start_column();
  std::span<const TimePoint> finishes = history.finish_column();
  TimePoint min_finish = finishes[write];
  TimePoint max_start = starts[write];
  for (OpId r : history.dictated_reads(write)) {
    min_finish = std::min(min_finish, finishes[r]);
    max_start = std::max(max_start, starts[r]);
  }
  return Zone{write, min_finish, max_start, min_finish < max_start};
}

}  // namespace

Zone compute_zone(const History& history, OpId write) {
  return zone_of(history, write);
}

std::vector<Zone> compute_zones(const History& history) {
  std::vector<Zone> zones;
  zones.reserve(history.write_count());
  for (OpId w : history.writes_by_start()) {
    zones.push_back(zone_of(history, w));
  }
  // Serial workloads produce zones already ordered along the timeline
  // (writes_by_start order == low-endpoint order); one linear check
  // dodges the n log n sorted-input sort.
  const auto before = [](const Zone& a, const Zone& b) {
    return a.low() != b.low() ? a.low() < b.low() : a.write < b.write;
  };
  if (!std::is_sorted(zones.begin(), zones.end(), before)) {
    std::sort(zones.begin(), zones.end(), before);
  }
  return zones;
}

}  // namespace kav
