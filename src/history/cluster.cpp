#include "history/cluster.h"

#include <algorithm>

namespace kav {

Zone compute_zone(const History& history, OpId write) {
  const Operation& w = history.op(write);
  TimePoint min_finish = w.finish;
  TimePoint max_start = w.start;
  for (OpId r : history.dictated_reads(write)) {
    min_finish = std::min(min_finish, history.op(r).finish);
    max_start = std::max(max_start, history.op(r).start);
  }
  return Zone{write, min_finish, max_start, min_finish < max_start};
}

std::vector<Zone> compute_zones(const History& history) {
  std::vector<Zone> zones;
  zones.reserve(history.write_count());
  for (OpId w : history.writes_by_start()) {
    zones.push_back(compute_zone(history, w));
  }
  std::sort(zones.begin(), zones.end(), [](const Zone& a, const Zone& b) {
    return a.low() != b.low() ? a.low() < b.low() : a.write < b.write;
  });
  return zones;
}

}  // namespace kav
