// Clusters and zones, the vocabulary introduced by Gibbons and Korach
// and reused throughout Section IV of the paper:
//
//   - a *cluster* is a write together with its dictated reads;
//   - the *zone* of a cluster is the interval between the minimum
//     finish time (Z.f) and the maximum start time (Z.s_bar) over the
//     cluster's operations;
//   - the zone is *forward* if Z.f < Z.s_bar and *backward* otherwise;
//   - low = min(Z.f, Z.s_bar), high = max(Z.f, Z.s_bar).
//
// Intuition: a forward zone is a span of time the cluster's operations
// are forced to straddle (some operation finished before another
// started), while a backward zone [Z.s_bar, Z.f] is a span of time
// common to every operation of the cluster, inside which the whole
// cluster can commit back-to-back.
#ifndef KAV_HISTORY_CLUSTER_H
#define KAV_HISTORY_CLUSTER_H

#include <vector>

#include "history/history.h"
#include "util/interval_set.h"

namespace kav {

struct Zone {
  OpId write = kInvalidOp;    // the cluster's dictating write
  TimePoint min_finish = 0;   // Z.f
  TimePoint max_start = 0;    // Z.s_bar
  bool forward = false;       // Z.f < Z.s_bar

  TimePoint low() const { return forward ? min_finish : max_start; }
  TimePoint high() const { return forward ? max_start : min_finish; }
  Interval interval() const { return Interval{low(), high()}; }
};

// One zone per cluster (i.e. per write), sorted by low endpoint.
// Requires a normalized history (distinct timestamps) so that strict
// forward/backward classification is unambiguous.
std::vector<Zone> compute_zones(const History& history);

// Zone of a single cluster.
Zone compute_zone(const History& history, OpId write);

}  // namespace kav

#endif  // KAV_HISTORY_CLUSTER_H
