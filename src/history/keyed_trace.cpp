#include "history/keyed_trace.h"

namespace kav {

KeyedHistories split_by_key(const KeyedTrace& trace) {
  std::map<std::string, std::vector<Operation>> grouped;
  std::map<std::string, std::vector<std::size_t>> indexes;
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const KeyedOperation& kop = trace.ops[i];
    grouped[kop.key].push_back(kop.op);
    indexes[kop.key].push_back(i);
  }
  KeyedHistories out;
  for (auto& [key, ops] : grouped) {
    out.per_key.emplace(key, History(std::move(ops)));
    out.trace_index.emplace(key, std::move(indexes[key]));
  }
  return out;
}

}  // namespace kav
