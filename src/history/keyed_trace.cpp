#include "history/keyed_trace.h"

namespace kav {

std::vector<std::string> KeyedHistories::keys() const {
  std::vector<std::string> out;
  out.reserve(per_key.size());
  for (const auto& [key, history] : per_key) out.push_back(key);
  return out;
}

std::size_t KeyedHistories::total_ops() const {
  std::size_t n = 0;
  for (const auto& [key, history] : per_key) n += history.size();
  return n;
}

std::size_t KeyedHistories::max_shard_ops() const {
  std::size_t n = 0;
  for (const auto& [key, history] : per_key) {
    if (history.size() > n) n = history.size();
  }
  return n;
}

KeyedHistories split_by_key(const KeyedTrace& trace) {
  std::map<std::string, std::vector<Operation>> grouped;
  std::map<std::string, std::vector<std::size_t>> indexes;
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const KeyedOperation& kop = trace.ops[i];
    grouped[kop.key].push_back(kop.op);
    indexes[kop.key].push_back(i);
  }
  KeyedHistories out;
  for (auto& [key, ops] : grouped) {
    out.per_key.emplace(key, History(std::move(ops)));
    out.trace_index.emplace(key, std::move(indexes[key]));
  }
  return out;
}

}  // namespace kav
