#include "history/history.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "util/simd.h"

namespace kav {

std::string describe(const Operation& op) {
  std::string out = op.is_write() ? "write" : "read";
  out += "(v=" + std::to_string(op.value) + ") [" +
         std::to_string(op.start) + ", " + std::to_string(op.finish) + ")";
  return out;
}

void OperationColumns::clear() {
  starts.clear();
  finishes.clear();
  values.clear();
  clients.clear();
  types.clear();
}

void OperationColumns::reserve(std::size_t n) {
  starts.reserve(n);
  finishes.reserve(n);
  values.reserve(n);
  clients.reserve(n);
  types.reserve(n);
}

void OperationColumns::push_back(const Operation& op) {
  starts.push_back(op.start);
  finishes.push_back(op.finish);
  values.push_back(op.value);
  clients.push_back(op.client);
  types.push_back(op.is_write() ? 1 : 0);
}

namespace {

[[noreturn]] void throw_bad_interval(std::size_t index) {
  throw std::invalid_argument("operation " + std::to_string(index) +
                              " has start >= finish");
}

}  // namespace

History::History(std::vector<Operation> ops) : ops_(std::move(ops)) {
  const std::size_t n = ops_.size();
  start_col_.resize(n);
  finish_col_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    start_col_[i] = ops_[i].start;
    finish_col_[i] = ops_[i].finish;
  }
  const std::size_t bad =
      simd::first_not_less_i64(start_col_.data(), finish_col_.data(), n);
  if (bad != n) throw_bad_interval(bad);
  build_indexes();
}

History::History(OperationColumns columns) {
  const std::size_t n = columns.size();
  if (columns.finishes.size() != n || columns.values.size() != n ||
      columns.clients.size() != n || columns.types.size() != n) {
    throw std::invalid_argument("OperationColumns columns differ in length");
  }
  const std::size_t bad = simd::first_not_less_i64(columns.starts.data(),
                                                   columns.finishes.data(), n);
  if (bad != n) throw_bad_interval(bad);
  start_col_ = std::move(columns.starts);
  finish_col_ = std::move(columns.finishes);
  ops_.reserve(n);  // push_back, not resize: skip the zero-fill pass
  for (std::size_t i = 0; i < n; ++i) {
    ops_.push_back(Operation{
        start_col_[i], finish_col_[i],
        columns.types[i] != 0 ? OpType::write : OpType::read,
        columns.values[i], columns.clients[i]});
  }
  build_indexes();
}

void History::build_indexes() {
  const auto n = static_cast<OpId>(ops_.size());

  // Event orders. Stored traces arrive per key in add() order, which
  // for most workloads is already time-sorted -- detect that with one
  // O(n) SIMD scan and skip the O(n log n) sorts entirely (an id-iota
  // is exactly "sorted with ties broken by id" when the column is
  // strictly increasing). The check is on the data, not a caller hint,
  // so adversarial input degrades to the sort, never to a wrong index.
  by_start_.resize(n);
  std::iota(by_start_.begin(), by_start_.end(), 0);
  if (simd::is_strictly_increasing_i64(start_col_.data(), n)) {
    sorted_starts_ = start_col_;
  } else {
    std::sort(by_start_.begin(), by_start_.end(), [&](OpId a, OpId b) {
      return start_col_[a] != start_col_[b] ? start_col_[a] < start_col_[b]
                                            : a < b;
    });
    sorted_starts_.resize(n);
    for (OpId i = 0; i < n; ++i) sorted_starts_[i] = start_col_[by_start_[i]];
  }
  by_finish_.resize(n);
  std::iota(by_finish_.begin(), by_finish_.end(), 0);
  if (simd::is_strictly_increasing_i64(finish_col_.data(), n)) {
    sorted_finishes_ = finish_col_;
  } else {
    std::sort(by_finish_.begin(), by_finish_.end(), [&](OpId a, OpId b) {
      return finish_col_[a] != finish_col_[b] ? finish_col_[a] < finish_col_[b]
                                              : a < b;
    });
    sorted_finishes_.resize(n);
    for (OpId i = 0; i < n; ++i) {
      sorted_finishes_[i] = finish_col_[by_finish_[i]];
    }
  }

  std::size_t write_count = 0;
  for (const Operation& op : ops_) write_count += op.is_write() ? 1 : 0;
  writes_by_start_.reserve(write_count);
  reads_.reserve(n - write_count);
  writes_by_finish_.reserve(write_count);
  for (OpId id : by_start_) {
    if (ops_[id].is_write()) {
      writes_by_start_.push_back(id);
    } else {
      reads_.push_back(id);
    }
  }
  for (OpId id : by_finish_) {
    if (ops_[id].is_write()) writes_by_finish_.push_back(id);
  }

  // Value index; earliest-starting write wins on (anomalous) duplicates
  // so behaviour stays deterministic. Sorted-vector + binary search:
  // the stable sort keeps start order among equal values, so dropping
  // all but the first of each run keeps exactly the write the old
  // hash-map try_emplace (in start order) kept. Monotonically
  // increasing values (version counters, the common stored-trace shape)
  // arrive already sorted and unique, making both the sort and the
  // unique pass no-ops -- detect that while building and skip them.
  value_index_.reserve(write_count);
  bool values_strictly_increasing = true;
  for (OpId w : writes_by_start_) {
    const Value value = ops_[w].value;
    values_strictly_increasing =
        values_strictly_increasing &&
        (value_index_.empty() || value_index_.back().first < value);
    value_index_.emplace_back(value, w);
  }
  if (values_strictly_increasing) {
    has_duplicate_write_values_ = false;
  } else {
    std::stable_sort(
        value_index_.begin(), value_index_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const auto first_of_run = std::unique(
        value_index_.begin(), value_index_.end(),
        [](const auto& a, const auto& b) { return a.first == b.first; });
    has_duplicate_write_values_ = first_of_run != value_index_.end();
    value_index_.erase(first_of_run, value_index_.end());
  }

  // Dictating writes and (flattened) dictated-read lists. Reads arrive
  // start-sorted and their values are usually non-decreasing (each read
  // returns the latest write), so instead of a cold binary search per
  // read, gallop from the previous hit: an equal value costs one
  // comparison, the next value one more, and an arbitrary jump degrades
  // to the plain O(log w) search -- never worse than before.
  dictating_write_.assign(n, kInvalidOp);
  std::vector<std::uint32_t> counts(n + 1, 0);
  const std::size_t index_size = value_index_.size();
  std::size_t hint = 0;  // lower-bound position of the last read's value
  for (OpId r : reads_) {
    const Value value = ops_[r].value;
    std::size_t pos;
    if (hint < index_size && value_index_[hint].first == value) {
      pos = hint;
    } else if (hint < index_size && value_index_[hint].first < value) {
      // Gallop forward: find probe with value_index_[probe].first >= value.
      std::size_t low = hint + 1;
      std::size_t step = 1;
      std::size_t high = low;
      while (high < index_size && value_index_[high].first < value) {
        low = high + 1;
        high = hint + (step *= 2);
      }
      high = std::min(high, index_size);
      pos = static_cast<std::size_t>(
          std::lower_bound(value_index_.begin() + static_cast<std::ptrdiff_t>(low),
                           value_index_.begin() + static_cast<std::ptrdiff_t>(high),
                           value,
                           [](const auto& entry, Value v) {
                             return entry.first < v;
                           }) -
          value_index_.begin());
    } else {
      // Value moved backward: full search of the prefix [0, hint).
      pos = static_cast<std::size_t>(
          std::lower_bound(value_index_.begin(),
                           value_index_.begin() + static_cast<std::ptrdiff_t>(
                                                      std::min(hint, index_size)),
                           value,
                           [](const auto& entry, Value v) {
                             return entry.first < v;
                           }) -
          value_index_.begin());
    }
    hint = pos;
    if (pos < index_size && value_index_[pos].first == value) {
      const OpId w = value_index_[pos].second;
      dictating_write_[r] = w;
      ++counts[w];
    }
  }
  read_begin_.assign(n + 1, 0);
  for (OpId i = 0; i < n; ++i) read_begin_[i + 1] = read_begin_[i] + counts[i];
  dictated_flat_.resize(read_begin_[n]);
  std::vector<std::uint32_t> cursor(read_begin_.begin(), read_begin_.end() - 1);
  for (OpId r : reads_) {  // reads_ is start-sorted => lists are too
    const OpId w = dictating_write_[r];
    if (w != kInvalidOp) dictated_flat_[cursor[w]++] = r;
  }

  // Max concurrent writes. The old implementation sorted 2W
  // (time, delta) pairs with -1 ordered before +1 at equal time; the
  // write starts and write finishes are each already ascending along
  // writes_by_start_ / writes_by_finish_, so a two-way merge taking
  // finishes first on ties sweeps the identical event sequence without
  // the sort. (A write finishing exactly when another starts counts as
  // not overlapping here, immaterial for the maximum on normalized
  // histories, whose timestamps are unique -- same caveat as before.)
  const std::size_t w_count = writes_by_start_.size();
  std::size_t si = 0;
  std::size_t fi = 0;
  std::size_t depth = 0;
  while (si < w_count) {
    if (finish_col_[writes_by_finish_[fi]] <=
        start_col_[writes_by_start_[si]]) {
      --depth;
      ++fi;
    } else {
      max_concurrent_writes_ = std::max(max_concurrent_writes_, ++depth);
      ++si;
    }
  }
}

std::span<const OpId> History::dictated_reads(OpId write) const {
  return {dictated_flat_.data() + read_begin_[write],
          dictated_flat_.data() + read_begin_[write + 1]};
}

OpId History::write_of_value(Value v) const {
  const auto it = std::lower_bound(
      value_index_.begin(), value_index_.end(), v,
      [](const auto& entry, Value value) { return entry.first < value; });
  return it == value_index_.end() || it->first != v ? kInvalidOp : it->second;
}

TimePoint History::min_time() const {
  return sorted_starts_.empty() ? 0 : sorted_starts_.front();
}

TimePoint History::max_time() const {
  return sorted_finishes_.empty() ? 0 : sorted_finishes_.back();
}

}  // namespace kav
