#include "history/history.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace kav {

std::string describe(const Operation& op) {
  std::string out = op.is_write() ? "write" : "read";
  out += "(v=" + std::to_string(op.value) + ") [" +
         std::to_string(op.start) + ", " + std::to_string(op.finish) + ")";
  return out;
}

History::History(std::vector<Operation> ops) : ops_(std::move(ops)) {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].start >= ops_[i].finish) {
      throw std::invalid_argument("operation " + std::to_string(i) +
                                  " has start >= finish");
    }
  }
  build_indexes();
}

void History::build_indexes() {
  const auto n = static_cast<OpId>(ops_.size());

  by_start_.resize(n);
  std::iota(by_start_.begin(), by_start_.end(), 0);
  by_finish_ = by_start_;
  std::sort(by_start_.begin(), by_start_.end(), [&](OpId a, OpId b) {
    return ops_[a].start != ops_[b].start ? ops_[a].start < ops_[b].start
                                          : a < b;
  });
  std::sort(by_finish_.begin(), by_finish_.end(), [&](OpId a, OpId b) {
    return ops_[a].finish != ops_[b].finish ? ops_[a].finish < ops_[b].finish
                                            : a < b;
  });

  for (OpId id : by_start_) {
    if (ops_[id].is_write()) {
      writes_by_start_.push_back(id);
    } else {
      reads_.push_back(id);
    }
  }
  for (OpId id : by_finish_) {
    if (ops_[id].is_write()) writes_by_finish_.push_back(id);
  }

  // Value index; earliest-starting write wins on (anomalous) duplicates
  // so behaviour stays deterministic.
  write_of_value_.reserve(writes_by_start_.size() * 2);
  for (OpId w : writes_by_start_) {
    auto [it, inserted] = write_of_value_.try_emplace(ops_[w].value, w);
    if (!inserted) has_duplicate_write_values_ = true;
  }

  // Dictating writes and (flattened) dictated-read lists.
  dictating_write_.assign(n, kInvalidOp);
  std::vector<std::uint32_t> counts(n + 1, 0);
  for (OpId r : reads_) {
    auto it = write_of_value_.find(ops_[r].value);
    if (it != write_of_value_.end()) {
      dictating_write_[r] = it->second;
      ++counts[it->second];
    }
  }
  read_begin_.assign(n + 1, 0);
  for (OpId i = 0; i < n; ++i) read_begin_[i + 1] = read_begin_[i] + counts[i];
  dictated_flat_.resize(read_begin_[n]);
  std::vector<std::uint32_t> cursor(read_begin_.begin(), read_begin_.end() - 1);
  for (OpId r : reads_) {  // reads_ is start-sorted => lists are too
    const OpId w = dictating_write_[r];
    if (w != kInvalidOp) dictated_flat_[cursor[w]++] = r;
  }

  // Max concurrent writes via an event sweep. Finish events at equal
  // time sort before start events, matching the strict "precedes"
  // relation (f < s): a write finishing exactly when another starts is
  // concurrent with it, but the sweep difference is immaterial for the
  // maximum because normalized histories have unique timestamps.
  std::vector<std::pair<TimePoint, int>> events;
  events.reserve(writes_by_start_.size() * 2);
  for (OpId w : writes_by_start_) {
    events.emplace_back(ops_[w].start, +1);
    events.emplace_back(ops_[w].finish, -1);
  }
  std::sort(events.begin(), events.end());
  std::size_t depth = 0;
  for (const auto& [time, delta] : events) {
    if (delta > 0) {
      max_concurrent_writes_ = std::max(max_concurrent_writes_, ++depth);
    } else {
      --depth;
    }
  }
}

std::span<const OpId> History::dictated_reads(OpId write) const {
  return {dictated_flat_.data() + read_begin_[write],
          dictated_flat_.data() + read_begin_[write + 1]};
}

OpId History::write_of_value(Value v) const {
  auto it = write_of_value_.find(v);
  return it == write_of_value_.end() ? kInvalidOp : it->second;
}

TimePoint History::min_time() const {
  return by_start_.empty() ? 0 : ops_[by_start_.front()].start;
}

TimePoint History::max_time() const {
  return by_finish_.empty() ? 0 : ops_[by_finish_.back()].finish;
}

}  // namespace kav
