// Detection and repair of the precondition violations from Section II-C
// of the paper. The verification algorithms assume histories that are
//
//   (1) anomaly-free: every read has a dictating write, and no read
//       precedes its dictating write (either condition immediately
//       falsifies k-atomicity for every k);
//   (2) value-unique: no two writes store the same value (otherwise the
//       decision problem becomes NP-complete, per Section II-C);
//   (3) timestamp-unique: all 2n start/finish events are distinct; and
//   (4) write-shortened: every write finishes before the earliest
//       finish among its dictated reads (enforceable without loss of
//       generality because a write's commit point cannot occur after
//       one of its dictated reads has finished).
//
// (1) and (2) are hard anomalies: they are reported and cannot be
// repaired. (3) and (4) are repaired by normalize(), which preserves
// the "precedes" partial order exactly and therefore preserves
// k-atomicity for every k.
#ifndef KAV_HISTORY_ANOMALY_H
#define KAV_HISTORY_ANOMALY_H

#include <string>
#include <vector>

#include "history/history.h"

namespace kav {

enum class AnomalyKind : unsigned char {
  read_without_dictating_write,  // hard: not k-atomic for any k
  read_precedes_dictating_write,  // hard: not k-atomic for any k
  duplicate_write_value,          // hard: verification is NP-complete
  duplicate_timestamp,            // repairable by normalize()
  write_outlives_dictated_read,   // repairable by normalize()
};

const char* to_string(AnomalyKind kind);

struct Anomaly {
  AnomalyKind kind;
  OpId op_a = kInvalidOp;  // the offending operation
  OpId op_b = kInvalidOp;  // its counterpart, when meaningful
};

std::string describe(const Anomaly& anomaly, const History& history);

struct AnomalyReport {
  std::vector<Anomaly> anomalies;

  bool empty() const { return anomalies.empty(); }

  // True when only repairable anomalies are present, i.e. normalize()
  // yields a history the checkers accept.
  bool repairable() const;

  // True when the history is already in verifiable form as-is.
  bool verifiable() const { return anomalies.empty(); }

  std::vector<Anomaly> hard_anomalies() const;
};

AnomalyReport find_anomalies(const History& history);

// True iff the history satisfies (3) and (4) above. (1) and (2) are
// separate concerns: a normalized history can still contain hard
// anomalies, which checkers reject via find_anomalies.
bool is_normalized(const History& history);

// Produces an equivalent history with unique timestamps and shortened
// writes. Operation ids (vector positions) are preserved, so witnesses
// computed on the normalized history index into the original too.
//
// The transformation preserves the "precedes" relation exactly on the
// uniquification step, and only *adds* precedence pairs (w, op) implied
// by moving write commit points earlier -- the paper argues this is
// harmless (Section II-C). Throws std::invalid_argument if the history
// has hard anomalies (normalize cannot give those meaning).
History normalize(const History& history);

}  // namespace kav

#endif  // KAV_HISTORY_ANOMALY_H
