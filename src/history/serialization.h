// Plain-text trace format, one operation per line:
//
//   # kav trace v1
//   op <key> <R|W> <value> <start> <finish> [client]
//
// Lines starting with '#' and blank lines are ignored; CRLF line
// endings and trailing whitespace are tolerated. The format is
// deliberately trivial so traces from real systems can be converted
// with a few lines of awk. Reader errors carry 1-based line numbers
// and quote the offending token. Byte-for-byte spec (and the binary
// .kavb sibling, ingest/binary_trace.h): docs/FORMATS.md.
#ifndef KAV_HISTORY_SERIALIZATION_H
#define KAV_HISTORY_SERIALIZATION_H

#include <iosfwd>
#include <string>
#include <string_view>

#include "history/keyed_trace.h"

namespace kav {

// Throws std::runtime_error with a line-number message on parse errors.
KeyedTrace read_trace(std::istream& in);
KeyedTrace read_trace_file(const std::string& path);
KeyedTrace parse_trace(const std::string& text);

void write_trace(std::ostream& out, const KeyedTrace& trace);
void write_trace_file(const std::string& path, const KeyedTrace& trace);
std::string format_trace(const KeyedTrace& trace);

// One `op ...` line, exactly as write_trace emits it -- the shared
// primitive that lets the binary->text converter stream record by
// record without materializing a KeyedTrace.
void write_trace_op(std::ostream& out, std::string_view key,
                    const Operation& op);

// Single-register convenience wrappers (key defaults to "r0").
History parse_history(const std::string& text);
std::string format_history(const History& history,
                           const std::string& key = "r0");

}  // namespace kav

#endif  // KAV_HISTORY_SERIALIZATION_H
