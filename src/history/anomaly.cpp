#include "history/anomaly.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/simd.h"

namespace kav {

namespace {

// Whether ANY two of the 2n event timestamps collide, via the
// History's sorted time columns: a collision is an adjacent duplicate
// inside either sorted column, or a common value between the two (one
// merge scan). O(n) with SIMD adjacency scans, no hash table -- the
// clean-history case, which is every case after normalization, never
// allocates. Reporting WHICH events collide (and in the historical
// encounter order) is the slow path's job.
bool has_duplicate_timestamp(const History& history) {
  const std::span<const TimePoint> starts = history.sorted_starts();
  const std::span<const TimePoint> finishes = history.sorted_finishes();
  if (simd::has_adjacent_duplicate_i64(starts.data(), starts.size()) ||
      simd::has_adjacent_duplicate_i64(finishes.data(), finishes.size())) {
    return true;
  }
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < starts.size() && j < finishes.size()) {
    if (starts[i] < finishes[j]) {
      ++i;
    } else if (finishes[j] < starts[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::read_without_dictating_write:
      return "read-without-dictating-write";
    case AnomalyKind::read_precedes_dictating_write:
      return "read-precedes-dictating-write";
    case AnomalyKind::duplicate_write_value:
      return "duplicate-write-value";
    case AnomalyKind::duplicate_timestamp:
      return "duplicate-timestamp";
    case AnomalyKind::write_outlives_dictated_read:
      return "write-outlives-dictated-read";
  }
  return "unknown";
}

std::string describe(const Anomaly& anomaly, const History& history) {
  std::string out = to_string(anomaly.kind);
  out += ": op " + std::to_string(anomaly.op_a) + " " +
         describe(history.op(anomaly.op_a));
  if (anomaly.op_b != kInvalidOp) {
    out += " vs op " + std::to_string(anomaly.op_b) + " " +
           describe(history.op(anomaly.op_b));
  }
  return out;
}

bool AnomalyReport::repairable() const {
  return std::all_of(anomalies.begin(), anomalies.end(), [](const Anomaly& a) {
    return a.kind == AnomalyKind::duplicate_timestamp ||
           a.kind == AnomalyKind::write_outlives_dictated_read;
  });
}

std::vector<Anomaly> AnomalyReport::hard_anomalies() const {
  std::vector<Anomaly> hard;
  for (const Anomaly& a : anomalies) {
    if (a.kind != AnomalyKind::duplicate_timestamp &&
        a.kind != AnomalyKind::write_outlives_dictated_read) {
      hard.push_back(a);
    }
  }
  return hard;
}

AnomalyReport find_anomalies(const History& history) {
  AnomalyReport report;

  // Duplicate write values.
  if (history.has_duplicate_write_values()) {
    std::unordered_map<Value, OpId> seen;
    for (OpId w : history.writes_by_start()) {
      auto [it, inserted] = seen.try_emplace(history.op(w).value, w);
      if (!inserted) {
        report.anomalies.push_back(
            {AnomalyKind::duplicate_write_value, w, it->second});
      }
    }
  }

  // Read anomalies.
  for (OpId r : history.reads()) {
    const OpId w = history.dictating_write(r);
    if (w == kInvalidOp) {
      report.anomalies.push_back(
          {AnomalyKind::read_without_dictating_write, r, kInvalidOp});
    } else if (history.precedes(r, w)) {
      report.anomalies.push_back(
          {AnomalyKind::read_precedes_dictating_write, r, w});
    }
  }

  // Duplicate timestamps across all 2n events. The sorted-column scan
  // above decides existence in O(n); only when a collision exists does
  // the hash walk below run, reproducing the exact historical anomaly
  // list (offender vs first-seen, in encounter order).
  if (has_duplicate_timestamp(history)) {
    std::unordered_map<TimePoint, OpId> seen;
    seen.reserve(history.size() * 4);
    auto check = [&](TimePoint t, OpId id) {
      auto [it, inserted] = seen.try_emplace(t, id);
      if (!inserted) {
        report.anomalies.push_back(
            {AnomalyKind::duplicate_timestamp, id, it->second});
      }
    };
    for (OpId id = 0; id < history.size(); ++id) {
      check(history.op(id).start, id);
      check(history.op(id).finish, id);
    }
  }

  // Writes that outlive a dictated read's finish.
  for (OpId w : history.writes_by_start()) {
    for (OpId r : history.dictated_reads(w)) {
      if (history.op(w).finish >= history.op(r).finish) {
        report.anomalies.push_back(
            {AnomalyKind::write_outlives_dictated_read, w, r});
        break;
      }
    }
  }

  return report;
}

bool is_normalized(const History& history) {
  if (has_duplicate_timestamp(history)) return false;
  for (OpId w : history.writes_by_start()) {
    for (OpId r : history.dictated_reads(w)) {
      if (history.op(w).finish >= history.op(r).finish) return false;
    }
  }
  return true;
}

History normalize(const History& history) {
  if (!find_anomalies(history).repairable()) {
    throw std::invalid_argument(
        "normalize: history has hard anomalies; see find_anomalies");
  }

  const std::size_t n = history.size();
  std::vector<Operation> ops(history.operations().begin(),
                             history.operations().end());

  // Pass A: uniquify timestamps while preserving "precedes" exactly.
  // Sort all 2n events by (time, kind) with starts before finishes at
  // equal time, then renumber sequentially. Strict inequalities are
  // preserved; an old tie f == s (concurrent: precedence needs f < s)
  // becomes f > s, keeping the pair concurrent.
  struct Event {
    TimePoint time;
    bool is_finish;
    OpId op;
  };
  std::vector<Event> events;
  events.reserve(2 * n);
  for (OpId id = 0; id < n; ++id) {
    events.push_back({ops[id].start, false, id});
    events.push_back({ops[id].finish, true, id});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.is_finish < b.is_finish;  // starts first
                   });
  // Space consecutive events by a gap wide enough that pass B's "-1"
  // adjustments land strictly between existing stamps.
  const TimePoint gap = static_cast<TimePoint>(n) + 2;
  for (std::size_t rank = 0; rank < events.size(); ++rank) {
    const Event& ev = events[rank];
    const TimePoint t = static_cast<TimePoint>(rank + 1) * gap;
    if (ev.is_finish) {
      ops[ev.op].finish = t;
    } else {
      ops[ev.op].start = t;
    }
  }

  // Pass B: shorten writes so each finishes before the earliest finish
  // among its dictated reads. New finish times sit at (multiple of
  // gap) - 1, which cannot collide with any pass-A stamp, and two
  // writes cannot collide with each other because their earliest
  // dictated-read finishes are distinct events.
  for (OpId w : history.writes_by_start()) {
    TimePoint min_read_finish = kTimeMax;
    for (OpId r : history.dictated_reads(w)) {
      min_read_finish = std::min(min_read_finish, ops[r].finish);
    }
    if (min_read_finish != kTimeMax && ops[w].finish >= min_read_finish) {
      ops[w].finish = min_read_finish - 1;
    }
  }

  return History(std::move(ops));
}

}  // namespace kav
