#include "core/report.h"

namespace kav {

std::string format_key_counts(std::size_t total, std::size_t yes,
                              std::size_t no, std::size_t undecided,
                              std::size_t invalid) {
  return std::to_string(yes) + "/" + std::to_string(total) +
         " keys atomic within bound, " + std::to_string(no) + " NO, " +
         std::to_string(undecided) + " undecided, " +
         std::to_string(invalid) + " invalid";
}

std::string describe(const Verdict& verdict) {
  std::string text = to_string(verdict.outcome);
  if (verdict.yes()) {
    if (!verdict.witness.empty()) {
      text += " (witness over " + std::to_string(verdict.witness.size()) +
              " ops)";
    }
    return text;
  }
  if (!verdict.reason.empty()) text += ": " + verdict.reason;
  return text;
}

bool Report::all_yes() const {
  for (const auto& [key, result] : per_key) {
    if (!result.verdict.yes()) return false;
  }
  return true;
}

std::size_t Report::count(Outcome outcome) const {
  std::size_t n = 0;
  for (const auto& [key, result] : per_key) {
    if (result.verdict.outcome == outcome) ++n;
  }
  return n;
}

std::string Report::summary() const {
  std::string text = format_key_counts(
      per_key.size(), count(Outcome::yes), count(Outcome::no),
      count(Outcome::undecided), count(Outcome::precondition_failed));
  if (selected) {
    text += " (selected " + std::to_string(keys_selected) + "/" +
            std::to_string(keys_available) + " keys";
    if (!missing_keys.empty()) {
      text += ", " + std::to_string(missing_keys.size()) + " requested missing";
    }
    text += ")";
  }
  if (cancelled) text += " [cancelled: " + stop_reason + "]";
  return text;
}

}  // namespace kav
