// A sound-but-incomplete k-AV checker for arbitrary k, built as the
// natural generalization of LBT. The paper leaves the complexity of
// exact k-AV open for fixed k >= 3 (Section VII); this module explores
// that gap from the algorithmic side: it extends LBT's epoch machinery
// with a *deadline queue* instead of the single forced write w'.
//
// When a read dictated by write x is consumed at the placement step of
// write w, x acquires a deadline: at most k-2 further non-x writes may
// be placed before x itself (the k=2 case degenerates to "x must be
// next", which is exactly LBT's w', so for k = 2 this checker is
// complete and agrees with LBT). For k >= 3, whenever several pending
// writes compete, the checker places the most urgent one
// (earliest-deadline-first) -- a heuristic that can miss some k-atomic
// orders, hence YES answers are definitive (the witness is validated)
// while exhausting the search space yields UNDECIDED, never NO.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_GREEDY_H
#define KAV_CORE_GREEDY_H

#include "core/verdict.h"
#include "history/history.h"

namespace kav {

struct GreedyOptions {
  bool check_preconditions = true;
};

// Outcome is yes (witness attached) or undecided; never no.
Verdict check_k_atomicity_greedy(const History& history, int k,
                                 const GreedyOptions& options = {});

}  // namespace kav

#endif  // KAV_CORE_GREEDY_H
