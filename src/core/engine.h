// kav::Engine -- the library's one front door. A long-lived session
// object in the spirit of a production verifier (the paper's Section
// VII experiment run as a service, not a one-shot function call):
// constructed once from a consolidated EngineOptions, owning ONE
// work-stealing thread pool shared by sharded batch verification
// (pipeline/sharded_verifier.h) and keyed online monitoring
// (ingest/keyed_monitor.h), and consuming any input through the
// polymorphic TraceSource abstraction (ingest/trace_source.h). Both
// entry points return the unified Report (core/report.h) and accept
// per-call RunOptions: a VerifyOptions override, a CancelToken, a
// wall-clock deadline, live per-key / per-violation callbacks, and a
// key_filter for selective runs (index-backed sources decode only the
// requested keys' blocks; see src/store/).
//
// Option precedence, from strongest to weakest:
//   1. RunOptions::verify (per call) overrides EngineOptions::verify.
//   2. RunOptions::deadline and ::timeout compose: the earlier cutoff
//      wins when both are set.
//   3. EngineOptions::threads is the only pool size -- the threads
//      fields of the absorbed PipelineOptions / MonitorOptions have no
//      Engine equivalent, because the whole point is one pool.
//
// Determinism: Engine::verify inherits the sharded pipeline's
// guarantee -- with fail_fast off and no cancel/deadline trigger, the
// Report's verdicts are bit-identical to the legacy serial
// verify_keyed_trace for any thread count (differentially fuzzed by
// tests/engine_fuzz_test.cpp).
//
// The free functions in core/verify.h survive as thin legacy wrappers
// (the parallel and monitor ones over a temporary Engine); new code
// should include kav.h and construct an Engine. Full surface map and
// migration table: docs/API.md.
#ifndef KAV_CORE_ENGINE_H
#define KAV_CORE_ENGINE_H

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/run_control.h"
#include "core/streaming.h"
#include "core/verify.h"
#include "history/keyed_trace.h"
#include "ingest/trace_source.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"

namespace kav::pipeline {
class ThreadPool;
}  // namespace kav::pipeline

namespace kav {

class SelectiveTraceSource;
class ShardedVerifier;
struct ShardSpec;
class TraceStore;
struct CompactionOptions;

// Everything the three legacy options structs said, minus their
// duplicated thread counts. Field-by-field origin: VerifyOptions
// (unchanged, nested), PipelineOptions (shard_op_budget, fail_fast),
// MonitorOptions (streaming, reorder_slack, queue_capacity).
struct EngineOptions {
  // What to verify: k, algorithm, normalization (core/verify.h).
  VerifyOptions verify;
  // Size of the one shared pool; 0 picks hardware_concurrency().
  std::size_t threads = 0;

  // Batch verification (Engine::verify):
  // Largest per-key shard handed to a decider; bigger shards answer
  // UNDECIDED. 0 = unlimited.
  std::size_t shard_op_budget = 0;
  // Once one shard answers NO, not-yet-started shards are skipped.
  bool fail_fast = false;

  // Online monitoring (Engine::monitor):
  StreamingOptions streaming;       // per-key staleness horizon
  TimePoint reorder_slack = 1'000;  // arrival disorder bound
  std::size_t queue_capacity = 1'024;  // per-key backpressure queue

  // Observability (src/obs/): the registry every subsystem this engine
  // owns reports into -- pool, sharded verifier, per-run monitors, and
  // any store from open_store(). nullptr = the process-wide
  // obs::MetricsRegistry::global(). Inject a private registry to
  // isolate one engine's series (tests do) or to scrape several
  // engines separately from one process.
  obs::MetricsRegistry* metrics = nullptr;

  // Live telemetry (obs/telemetry_server.h): >= 0 starts an HTTP
  // server over this engine's registry at construction -- 0 picks an
  // ephemeral port (read engine.telemetry()->port() back), -1 (the
  // default) serves nothing. Equivalent to calling serve_telemetry()
  // yourself after construction.
  int telemetry_port = -1;
  std::string telemetry_address = "127.0.0.1";
};

// Per-call run options. Default-constructed RunOptions reproduce the
// legacy facade behavior exactly.
struct RunOptions {
  // Overrides EngineOptions::verify for this call, e.g. auditing the
  // same shards at several k on one pool.
  std::optional<VerifyOptions> verify;
  // Selective run: verify (or monitor) only these keys. Over a source
  // backed by a per-key index (an indexed .kavb v2 segment or a
  // TraceStore -- see src/store/), each requested key's shard is
  // materialized lazily inside a pool worker straight from its index
  // blocks and the rest of the input is NEVER decoded; over any other
  // input the stream is filtered while read. Either way the verdicts
  // are bit-identical to filtering the full report of an unfiltered
  // run (differentially fuzzed by tests/store_fuzz_test.cpp), and
  // Report::keys_selected / keys_available / missing_keys account for
  // what the filter hit. Empty = verify everything.
  std::vector<std::string> key_filter;
  // Cooperative cancellation: keep a copy, call cancel() from any
  // thread. Shards that have not started answer UNDECIDED
  // (kSkipCancelledReason); a monitor run stops ingesting. Checked at
  // shard / operation granularity -- running deciders complete.
  CancelToken cancel;
  // Relative wall-clock budget for this call; 0 = none.
  std::chrono::milliseconds timeout{0};
  // Absolute wall-clock cutoff; composes with timeout (earlier wins).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  // Batch: live per-key verdict sink, invoked from pool workers as
  // each shard lands (serialized; completion order; exactly once per
  // key, skipped shards included). Keep it cheap.
  std::function<void(const std::string& key, const Verdict& verdict)> on_key;
  // Monitor: live violation sink, invoked at detection time (see
  // MonitorOptions::on_violation for the threading contract).
  std::function<void(const std::string& key,
                     const StreamingViolation& violation)>
      on_finding;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Batch verification: split by key, verify shards on the shared
  // pool, merge in key order. Report::mode == batch.
  Report verify(const KeyedTrace& trace, const RunOptions& run = {});
  Report verify(const KeyedHistories& shards, const RunOptions& run = {});
  // Pulls the source dry first (cancellable), then verifies -- unless
  // RunOptions::key_filter is set and the source is index-backed
  // (SelectiveTraceSource), in which case only the requested keys'
  // blocks are ever decoded, each inside a pool worker.
  Report verify(TraceSource& source, const RunOptions& run = {});

  // Online monitoring: stream the source through a per-key
  // StreamingChecker array on the same shared pool. Report::mode ==
  // monitor; per-key findings and MonitorStats totals are filled in.
  // RunOptions::verify is ignored (the streaming checker is the k = 2
  // online decider).
  Report monitor(const KeyedTrace& trace, const RunOptions& run = {});
  Report monitor(TraceSource& source, const RunOptions& run = {});

  // Opens (creating if needed) a TraceStore at `directory` with
  // background tiered compaction enabled on this engine's shared pool
  // (store/trace_store.h) -- the session-owned way to run an
  // out-of-core store that maintains itself between verify calls.
  // Destroy the returned store before the engine: its destructor
  // quiesces the background pass, which needs the pool alive.
  std::unique_ptr<TraceStore> open_store(const std::string& directory);
  std::unique_ptr<TraceStore> open_store(const std::string& directory,
                                         const CompactionOptions& compaction);

  const EngineOptions& options() const { return options_; }
  std::size_t thread_count() const;
  // The one shared pool -- exposed so bespoke subsystems can schedule
  // side work without spawning their own.
  pipeline::ThreadPool& pool() { return *pool_; }

  // The registry this engine reports into (EngineOptions::metrics, or
  // the process-wide global). Safe to read/scrape from any thread.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  // Coherent point-in-time snapshot of every metric in this engine's
  // registry -- callable concurrently with running verify/monitor
  // calls (counters are monotone; a snapshot taken mid-run shows a
  // consistent prefix of the run's work). Feed it to
  // obs::render_prometheus / obs::render_json for the wire formats.
  obs::RegistrySnapshot snapshot() const { return metrics_->snapshot(); }

  // Starts serving this engine's telemetry over HTTP (GET /metrics,
  // /status, /healthz, /spans -- obs/telemetry_server.h) and wires
  // /status to this->status(). Port 0 = ephemeral; idempotent (the
  // running server is returned, the arguments of later calls are
  // ignored). Throws on bind failure.
  obs::TelemetryServer& serve_telemetry(
      const std::string& address = "127.0.0.1", int port = 0);
  // The running server, or nullptr when none was started.
  obs::TelemetryServer* telemetry() { return telemetry_.get(); }

  // Point-in-time operator status: uptime, run counts (including
  // in-flight), the most recent run summaries, and the top-`top_n`
  // keys by monitor violations. Safe from any thread, concurrent with
  // running calls -- this is what GET /status serves.
  obs::StatusSnapshot status(std::size_t top_n = 10) const;

 private:
  // `deadline` is the already-anchored cutoff for the whole call --
  // computed once at the public entry point so a slow TraceSource read
  // phase cannot re-arm a relative timeout for the shard phase.
  Report run_batch(
      const KeyedHistories& shards, const RunOptions& run,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  // Shard-spec form of run_batch (the key_filter paths): pinned specs
  // for filtered in-memory shards, lazy specs for index-backed loads.
  Report run_specs(
      const std::vector<ShardSpec>& specs, const RunOptions& run,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  // key_filter over pre-split shards: verifies only the requested
  // shards (pinned, no copies) and fills the selection accounting.
  Report verify_filtered(
      const KeyedHistories& shards, const RunOptions& run,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  // key_filter over an index-backed source: one lazy spec per
  // requested key, decoded on the pool straight from the index.
  Report verify_selective(
      SelectiveTraceSource& source, const RunOptions& run,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  EngineOptions options_;
  obs::MetricsRegistry* metrics_;  // never null after construction
  // Run-lifecycle instruments (kav_engine_runs_*, run_seconds,
  // verdicts, findings); defined in engine.cpp, accounted by the
  // RunScope helper wrapping each public entry point.
  struct Metrics;
  std::unique_ptr<Metrics> em_;
  // Run ledger behind status(): counts, recent-run ring, per-key
  // violation totals; defined in engine.cpp, fed by RunScope.
  struct StatusCollector;
  std::unique_ptr<StatusCollector> status_;
  std::unique_ptr<pipeline::ThreadPool> pool_;
  std::unique_ptr<ShardedVerifier> verifier_;
  // Declared last: the server's /status handler reads status_ (and the
  // registry), so it must stop before anything above is torn down.
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace kav

#endif  // KAV_CORE_ENGINE_H
