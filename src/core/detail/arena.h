// Internal: a fixed-capacity bump arena for the deciders' per-shard
// working state. LinkedHistory used to make eight separate vector
// allocations per shard; with thousands of single-key shards flowing
// through the pool (Engine's index-driven selective path), allocator
// round-trips and page-faulting eight scattered blocks were measurable.
// One arena block sized up front turns that into a single allocation
// with all arrays contiguous -- better locality for the dancing-links
// walks, and trivially freed as one unit when the shard's verdict is
// out.
//
// This is a *bump* arena: allocation moves a cursor, nothing is freed
// individually, and capacity is fixed at construction -- callers size
// it exactly (LinkedHistory knows its total up front). Exceeding the
// capacity throws std::bad_alloc rather than silently growing, so a
// mis-sized caller fails loudly in tests instead of quietly losing the
// single-allocation property.
#ifndef KAV_CORE_DETAIL_ARENA_H
#define KAV_CORE_DETAIL_ARENA_H

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>

namespace kav::detail {

class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t capacity_bytes)
      : block_(capacity_bytes > 0 ? std::make_unique<std::byte[]>(
                                        capacity_bytes)
                                  : nullptr),
        capacity_(capacity_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  // Bump-allocates a span of `count` trivially-destructible Ts, each
  // copy-initialized to `fill`. Throws std::bad_alloc when the
  // remaining capacity cannot hold it (after alignment padding).
  template <typename T>
  std::span<T> make_array(std::size_t count, const T& fill) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "bump arena never runs destructors");
    const std::size_t aligned = align_up(used_, alignof(T));
    if (aligned > capacity_ || count > (capacity_ - aligned) / sizeof(T)) {
      throw std::bad_alloc();
    }
    T* data = reinterpret_cast<T*>(block_.get() + aligned);
    used_ = aligned + count * sizeof(T);
    for (std::size_t i = 0; i < count; ++i) new (data + i) T(fill);
    return {data, count};
  }

  // Capacity needed to hold `count` Ts when requested in sequence
  // starting from an empty arena (helper for exact sizing).
  template <typename T>
  static constexpr std::size_t bytes_for(std::size_t count) {
    return count * sizeof(T);
  }

 private:
  static std::size_t align_up(std::size_t n, std::size_t alignment) {
    return (n + alignment - 1) & ~(alignment - 1);
  }

  std::unique_ptr<std::byte[]> block_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace kav::detail

#endif  // KAV_CORE_DETAIL_ARENA_H
