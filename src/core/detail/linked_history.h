// Internal: the mutable working state shared by LBT (Section III-C) and
// its general-k greedy extension -- three doubly linked lists over
// operation ids with O(1) removal and undo-log rollback.
//
//   H    : all live operations, sorted by start time;
//   W    : all live writes, sorted by finish time;
//   R(w) : live dictated reads of write w, sorted by start time.
//
// Removal uses the dancing-links idiom: a removed node keeps its
// neighbour pointers, so re-inserting removed nodes in exact reverse
// order restores every list; revert_to() replays the undo log back to a
// checkpoint. This gives LBT's candidate search O(work) rollback
// without copying the history.
#ifndef KAV_CORE_DETAIL_LINKED_HISTORY_H
#define KAV_CORE_DETAIL_LINKED_HISTORY_H

#include <span>
#include <vector>

#include "core/detail/arena.h"
#include "history/history.h"

namespace kav::detail {

class LinkedHistory {
 public:
  enum class ListId : unsigned char { h, w, r };

  // All eight per-op id arrays live in one bump-arena block (a single
  // allocation per shard instead of eight), sized exactly here.
  explicit LinkedHistory(const History& history)
      : history_(history), arena_(Arena::bytes_for<OpId>(8 * history.size())) {
    const std::size_t n = history.size();
    h_prev_ = arena_.make_array<OpId>(n, kInvalidOp);
    h_next_ = arena_.make_array<OpId>(n, kInvalidOp);
    w_prev_ = arena_.make_array<OpId>(n, kInvalidOp);
    w_next_ = arena_.make_array<OpId>(n, kInvalidOp);
    r_prev_ = arena_.make_array<OpId>(n, kInvalidOp);
    r_next_ = arena_.make_array<OpId>(n, kInvalidOp);
    r_head_ = arena_.make_array<OpId>(n, kInvalidOp);
    r_tail_ = arena_.make_array<OpId>(n, kInvalidOp);

    link_chain(history.by_start(), h_prev_, h_next_, h_head_, h_tail_);
    link_chain(history.writes_by_finish(), w_prev_, w_next_, w_head_, w_tail_);
    for (OpId w : history.writes_by_start()) {
      OpId last = kInvalidOp;
      for (OpId r : history.dictated_reads(w)) {  // already start-sorted
        r_prev_[r] = last;
        if (last == kInvalidOp) {
          r_head_[w] = r;
        } else {
          r_next_[last] = r;
        }
        last = r;
      }
      r_tail_[w] = last;
    }
    undo_.reserve(n);
  }

  bool h_empty() const { return h_head_ == kInvalidOp; }
  OpId h_tail() const { return h_tail_; }
  OpId h_prev(OpId id) const { return h_prev_[id]; }
  OpId w_tail() const { return w_tail_; }
  OpId w_prev(OpId id) const { return w_prev_[id]; }
  OpId r_head(OpId w) const { return r_head_[w]; }
  OpId r_next(OpId id) const { return r_next_[id]; }

  std::size_t checkpoint() const { return undo_.size(); }

  void remove_h(OpId id) {
    unlink(id, h_prev_, h_next_, h_head_, h_tail_);
    undo_.push_back({ListId::h, id});
  }
  void remove_w(OpId id) {
    unlink(id, w_prev_, w_next_, w_head_, w_tail_);
    undo_.push_back({ListId::w, id});
  }
  void remove_r(OpId read) {
    const OpId w = history_.dictating_write(read);
    unlink(read, r_prev_, r_next_, r_head_[w], r_tail_[w]);
    undo_.push_back({ListId::r, read});
  }

  void revert_to(std::size_t checkpoint) {
    while (undo_.size() > checkpoint) {
      const auto [list, id] = undo_.back();
      undo_.pop_back();
      switch (list) {
        case ListId::h:
          relink(id, h_prev_, h_next_, h_head_, h_tail_);
          break;
        case ListId::w:
          relink(id, w_prev_, w_next_, w_head_, w_tail_);
          break;
        case ListId::r: {
          const OpId w = history_.dictating_write(id);
          relink(id, r_prev_, r_next_, r_head_[w], r_tail_[w]);
          break;
        }
      }
    }
  }

 private:
  struct UndoEntry {
    ListId list;
    OpId id;
  };

  static void link_chain(std::span<const OpId> order, std::span<OpId> prev,
                         std::span<OpId> next, OpId& head, OpId& tail) {
    OpId last = kInvalidOp;
    for (OpId id : order) {
      prev[id] = last;
      if (last == kInvalidOp) {
        head = id;
      } else {
        next[last] = id;
      }
      last = id;
    }
    tail = last;
  }

  static void unlink(OpId id, std::span<OpId> prev, std::span<OpId> next,
                     OpId& head, OpId& tail) {
    if (prev[id] == kInvalidOp) {
      head = next[id];
    } else {
      next[prev[id]] = next[id];
    }
    if (next[id] == kInvalidOp) {
      tail = prev[id];
    } else {
      prev[next[id]] = prev[id];
    }
  }

  // Valid only when performed in exact reverse removal order.
  static void relink(OpId id, std::span<OpId> prev, std::span<OpId> next,
                     OpId& head, OpId& tail) {
    if (prev[id] == kInvalidOp) {
      head = id;
    } else {
      next[prev[id]] = id;
    }
    if (next[id] == kInvalidOp) {
      tail = id;
    } else {
      prev[next[id]] = id;
    }
  }

  const History& history_;
  Arena arena_;
  std::span<OpId> h_prev_, h_next_, w_prev_, w_next_, r_prev_, r_next_;
  std::span<OpId> r_head_, r_tail_;
  OpId h_head_ = kInvalidOp, h_tail_ = kInvalidOp;
  OpId w_head_ = kInvalidOp, w_tail_ = kInvalidOp;
  std::vector<UndoEntry> undo_;
};

// Figure 2 line 3: the candidate set C = writes in W that precede no
// other write in W. Walking W from the back (largest finish first): a
// write is a candidate iff its finish exceeds every other live write's
// start; writes earlier in W finish earlier and can never violate the
// condition for later ones, so only the running maximum over the
// scanned suffix matters and the scan stops at the first
// non-candidate. O(c), and the candidates are pairwise concurrent.
// The caller owns `candidates` so epoch loops reuse one buffer instead
// of allocating per epoch (LBT runs one collection per epoch).
inline void collect_epoch_candidates(const History& history,
                                     const LinkedHistory& state,
                                     std::vector<OpId>& candidates) {
  candidates.clear();
  TimePoint max_start_after = kTimeMin;
  for (OpId w = state.w_tail(); w != kInvalidOp; w = state.w_prev(w)) {
    if (history.op(w).finish < max_start_after) break;
    candidates.push_back(w);
    max_start_after = std::max(max_start_after, history.op(w).start);
  }
}

inline std::vector<OpId> collect_epoch_candidates(const History& history,
                                                  const LinkedHistory& state) {
  std::vector<OpId> candidates;
  collect_epoch_candidates(history, state, candidates);
  return candidates;
}

}  // namespace kav::detail

#endif  // KAV_CORE_DETAIL_LINKED_HISTORY_H
