#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "ingest/keyed_monitor.h"
#include "obs/span.h"
#include "pipeline/sharded_verifier.h"
#include "pipeline/thread_pool.h"
#include "store/trace_store.h"
#include "util/thread_safety.h"

namespace kav {

// The ledger behind Engine::status() / GET /status: what the registry's
// counters cannot answer -- which runs, how recently, against which hot
// keys. Mutated once per run start/finish (never per operation), so one
// mutex is the right tool.
struct Engine::StatusCollector {
  // How many finished runs /status remembers.
  static constexpr std::size_t kRecentRuns = 8;

  const std::chrono::steady_clock::time_point engine_start =
      std::chrono::steady_clock::now();

  mutable util::Mutex mutex;
  std::uint64_t started KAV_GUARDED_BY(mutex) = 0;
  std::uint64_t completed KAV_GUARDED_BY(mutex) = 0;
  std::uint64_t cancelled KAV_GUARDED_BY(mutex) = 0;
  std::uint64_t in_flight KAV_GUARDED_BY(mutex) = 0;
  std::deque<obs::RunSummaryInfo> recent KAV_GUARDED_BY(mutex);  // newest front
  std::map<std::string, std::uint64_t> violations KAV_GUARDED_BY(mutex);

  void run_started() {
    util::MutexLock lock(mutex);
    ++started;
    ++in_flight;
  }

  // A run that threw: leaves no summary, but must not leak in_flight.
  void run_aborted() {
    util::MutexLock lock(mutex);
    --in_flight;
  }

  void run_finished(bool batch, const Report& report, double seconds) {
    obs::RunSummaryInfo summary;
    summary.mode = batch ? "batch" : "monitor";
    summary.outcome = report.cancelled ? "cancelled" : "completed";
    summary.seconds = seconds;
    summary.keys = report.per_key.size();
    for (const auto& [key, result] : report.per_key) {
      if (batch) {
        if (result.verdict.outcome == Outcome::no) ++summary.findings;
      } else {
        summary.findings += result.findings.size();
      }
    }

    util::MutexLock lock(mutex);
    --in_flight;
    (report.cancelled ? cancelled : completed) += 1;
    recent.push_front(std::move(summary));
    if (recent.size() > kRecentRuns) recent.pop_back();
    if (!batch) {
      for (const auto& [key, result] : report.per_key) {
        if (!result.findings.empty()) {
          violations[key] += result.findings.size();
        }
      }
    }
  }

  obs::StatusSnapshot snapshot(std::size_t top_n) const {
    obs::StatusSnapshot status;
    status.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      engine_start)
            .count();
    util::MutexLock lock(mutex);
    status.runs_started = started;
    status.runs_completed = completed;
    status.runs_cancelled = cancelled;
    status.runs_in_flight = in_flight;
    status.recent_runs.assign(recent.begin(), recent.end());
    status.violation_top.assign(violations.begin(), violations.end());
    std::sort(status.violation_top.begin(), status.violation_top.end(),
              [](const auto& a, const auto& b) {
                // Descending by count, key order breaking ties.
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    if (status.violation_top.size() > top_n) {
      status.violation_top.resize(top_n);
    }
    return status;
  }
};

// Run-lifecycle instruments. Counters are labeled by mode so one
// scrape distinguishes batch verification from online monitoring;
// verdict and finding breakdowns use one series per enum value so
// rates stay cheap to compute scraper-side.
struct Engine::Metrics {
  obs::Counter& runs_started_batch;
  obs::Counter& runs_started_monitor;
  obs::Counter& runs_completed_batch;
  obs::Counter& runs_completed_monitor;
  obs::Counter& runs_cancelled_batch;
  obs::Counter& runs_cancelled_monitor;
  obs::Histogram& run_seconds_batch;
  obs::Histogram& run_seconds_monitor;
  obs::Counter& keys_verified;
  obs::Counter& verdict_yes;
  obs::Counter& verdict_no;
  obs::Counter& verdict_undecided;
  obs::Counter& verdict_precondition_failed;
  obs::Counter& finding_not_2atomic;
  obs::Counter& finding_horizon_exceeded;
  obs::Counter& finding_hard_anomaly;
  obs::Counter& finding_late_arrival;

  explicit Metrics(obs::MetricsRegistry& r)
      : runs_started_batch(r.counter(
            "kav_engine_runs_started_total",
            "Verification/monitoring runs entered, by mode.",
            {{"mode", "batch"}})),
        runs_started_monitor(r.counter("kav_engine_runs_started_total",
                                       "Verification/monitoring runs entered, "
                                       "by mode.",
                                       {{"mode", "monitor"}})),
        runs_completed_batch(r.counter(
            "kav_engine_runs_completed_total",
            "Runs that returned a report without an early stop, by mode.",
            {{"mode", "batch"}})),
        runs_completed_monitor(r.counter(
            "kav_engine_runs_completed_total",
            "Runs that returned a report without an early stop, by mode.",
            {{"mode", "monitor"}})),
        runs_cancelled_batch(r.counter(
            "kav_engine_runs_cancelled_total",
            "Runs stopped early by a CancelToken or deadline, by mode.",
            {{"mode", "batch"}})),
        runs_cancelled_monitor(r.counter(
            "kav_engine_runs_cancelled_total",
            "Runs stopped early by a CancelToken or deadline, by mode.",
            {{"mode", "monitor"}})),
        run_seconds_batch(r.histogram(
            "kav_engine_run_seconds",
            "End-to-end wall time of one run, by mode.",
            {{"mode", "batch"}})),
        run_seconds_monitor(r.histogram(
            "kav_engine_run_seconds",
            "End-to-end wall time of one run, by mode.",
            {{"mode", "monitor"}})),
        keys_verified(r.counter(
            "kav_engine_keys_verified_total",
            "Per-key results produced across all runs (skips included).")),
        verdict_yes(r.counter("kav_engine_verdicts_total",
                              "Per-key verdicts produced, by outcome.",
                              {{"outcome", "yes"}})),
        verdict_no(r.counter("kav_engine_verdicts_total",
                             "Per-key verdicts produced, by outcome.",
                             {{"outcome", "no"}})),
        verdict_undecided(r.counter("kav_engine_verdicts_total",
                                    "Per-key verdicts produced, by outcome.",
                                    {{"outcome", "undecided"}})),
        verdict_precondition_failed(
            r.counter("kav_engine_verdicts_total",
                      "Per-key verdicts produced, by outcome.",
                      {{"outcome", "precondition_failed"}})),
        finding_not_2atomic(r.counter(
            "kav_engine_findings_total",
            "Monitor-mode violations surfaced in reports, by kind.",
            {{"kind", "not_2atomic"}})),
        finding_horizon_exceeded(r.counter(
            "kav_engine_findings_total",
            "Monitor-mode violations surfaced in reports, by kind.",
            {{"kind", "horizon_exceeded"}})),
        finding_hard_anomaly(r.counter(
            "kav_engine_findings_total",
            "Monitor-mode violations surfaced in reports, by kind.",
            {{"kind", "hard_anomaly"}})),
        finding_late_arrival(r.counter(
            "kav_engine_findings_total",
            "Monitor-mode violations surfaced in reports, by kind.",
            {{"kind", "late_arrival"}})) {}

  obs::Counter& for_outcome(Outcome outcome) {
    switch (outcome) {
      case Outcome::yes:
        return verdict_yes;
      case Outcome::no:
        return verdict_no;
      case Outcome::undecided:
        return verdict_undecided;
      case Outcome::precondition_failed:
        break;
    }
    return verdict_precondition_failed;
  }

  obs::Counter& for_kind(StreamingViolation::Kind kind) {
    switch (kind) {
      case StreamingViolation::Kind::not_2atomic:
        return finding_not_2atomic;
      case StreamingViolation::Kind::horizon_exceeded:
        return finding_horizon_exceeded;
      case StreamingViolation::Kind::hard_anomaly:
        return finding_hard_anomaly;
      case StreamingViolation::Kind::late_arrival:
        break;
    }
    return finding_late_arrival;
  }

  // One per public entry point: counts the run as started immediately
  // (so a scraper can see runs in flight as started - completed -
  // cancelled), times it into run_seconds + an "engine.verify" /
  // "engine.monitor" span, and on finish() folds the finished Report's
  // verdicts and findings into the registry and the run into the
  // status ledger. A run that throws still records its start and
  // duration (and releases its in-flight slot), never a completion.
  class RunScope {
   public:
    RunScope(Metrics& metrics, StatusCollector& status, bool batch)
        : metrics_(metrics),
          status_(status),
          batch_(batch),
          start_(std::chrono::steady_clock::now()),
          timer_(batch ? &metrics.run_seconds_batch
                       : &metrics.run_seconds_monitor,
                 &obs::Tracer::global(),
                 batch ? "engine.verify" : "engine.monitor", "engine") {
      (batch ? metrics.runs_started_batch : metrics.runs_started_monitor)
          .add(1);
      status_.run_started();
    }

    ~RunScope() {
      if (!finished_) status_.run_aborted();
    }

    void finish(const Report& report) {
      finished_ = true;
      obs::Counter& end =
          batch_ ? (report.cancelled ? metrics_.runs_cancelled_batch
                                     : metrics_.runs_completed_batch)
                 : (report.cancelled ? metrics_.runs_cancelled_monitor
                                     : metrics_.runs_completed_monitor);
      end.add(1);
      metrics_.keys_verified.add(report.per_key.size());
      for (const auto& [key, result] : report.per_key) {
        metrics_.for_outcome(result.verdict.outcome).add(1);
        for (const StreamingViolation& violation : result.findings) {
          metrics_.for_kind(violation.kind).add(1);
        }
      }
      status_.run_finished(
          batch_, report,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count());
    }

   private:
    Metrics& metrics_;
    StatusCollector& status_;
    bool batch_;
    bool finished_ = false;
    std::chrono::steady_clock::time_point start_;
    obs::ScopedTimer timer_;
  };
};

namespace {

// Normalized RunOptions::key_filter: the requested keys, deduplicated
// and ordered. Inactive (pass-everything) when the filter is empty.
struct KeyFilter {
  bool active = false;
  std::set<std::string> wanted;

  explicit KeyFilter(const RunOptions& run)
      : active(!run.key_filter.empty()),
        wanted(run.key_filter.begin(), run.key_filter.end()) {}

  bool pass(const std::string& key) const {
    return !active || wanted.count(key) > 0;
  }
};

// Fills Report's selection accounting given which keys the input
// actually offered. `requested` and `offered` are sorted sets, so
// missing_keys comes out sorted.
template <typename OfferedSet>
void account_selection(Report& report, const KeyFilter& filter,
                       const OfferedSet& offered) {
  if (!filter.active) return;
  report.selected = true;
  report.keys_available = offered.size();
  for (const std::string& key : filter.wanted) {
    if (offered.count(key) > 0) {
      ++report.keys_selected;
    } else {
      report.missing_keys.push_back(key);
    }
  }
}

// The earlier of the absolute deadline and the relative timeout,
// anchored at call entry (RunOptions precedence rule 2).
std::optional<std::chrono::steady_clock::time_point> effective_deadline(
    const RunOptions& run) {
  std::optional<std::chrono::steady_clock::time_point> deadline =
      run.deadline;
  if (run.timeout.count() > 0) {
    const auto from_timeout = std::chrono::steady_clock::now() + run.timeout;
    if (!deadline || from_timeout < *deadline) deadline = from_timeout;
  }
  return deadline;
}

bool is_skip_reason(const Verdict& verdict, std::string* reason) {
  if (verdict.outcome != Outcome::undecided) return false;
  if (verdict.reason != kSkipCancelledReason &&
      verdict.reason != kSkipDeadlineReason) {
    return false;
  }
  if (reason->empty()) *reason = verdict.reason;
  return true;
}

// Shared run-control scaffolding for every source-consuming loop.
constexpr std::chrono::milliseconds kPullWait{100};
// Deadline polls on hot item paths are amortized to one steady_clock
// read per this many items (the cancel flag is a plain atomic load and
// is checked every time).
constexpr std::uint64_t kDeadlinePollMask = 255;

// Non-empty stop reason when the run must stop now. `always_check`
// bypasses the amortization (a pending pull already waited ~kPullWait,
// so its clock read is free by comparison).
std::string check_stop(
    const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    bool always_check, std::uint64_t pulled, const std::string& activity) {
  if (run.cancel.cancelled()) {
    return "cancelled by caller while " + activity;
  }
  if (deadline && (always_check || (pulled & kDeadlinePollMask) == 0) &&
      std::chrono::steady_clock::now() >= *deadline) {
    return "wall-clock deadline exceeded while " + activity;
  }
  return {};
}

// Pulls `source` dry through bounded try_next_for waits -- so a
// blocking source (PushTraceSource) cannot starve cancellation --
// feeding each operation to `per_item`. Returns the empty string on a
// clean end of stream, else the stop reason.
template <typename PerItem>
std::string drive_source(
    TraceSource& source, const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const std::string& activity, PerItem&& per_item) {
  KeyedOperation kop;
  std::uint64_t pulled = 0;
  for (;;) {
    const TraceSource::Pull pull = source.try_next_for(kop, kPullWait);
    if (pull == TraceSource::Pull::closed) return {};
    if (pull == TraceSource::Pull::item) {
      per_item(std::move(kop));
      ++pulled;
    }
    std::string stop = check_stop(
        run, deadline, pull == TraceSource::Pull::pending, pulled, activity);
    if (!stop.empty()) return stop;
  }
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::global()),
      em_(std::make_unique<Metrics>(*metrics_)),
      status_(std::make_unique<StatusCollector>()),
      pool_(std::make_unique<pipeline::ThreadPool>(options_.threads,
                                                   metrics_)) {
  PipelineOptions pipeline_options;
  pipeline_options.shard_op_budget = options_.shard_op_budget;
  pipeline_options.fail_fast = options_.fail_fast;
  verifier_ = std::make_unique<ShardedVerifier>(*pool_, options_.verify,
                                                pipeline_options, metrics_);
  if (options_.telemetry_port >= 0) {
    serve_telemetry(options_.telemetry_address, options_.telemetry_port);
  }
}

Engine::~Engine() {
  // The server's handlers read status_ and the registry: stop it
  // before any other member goes down.
  telemetry_.reset();
}

obs::TelemetryServer& Engine::serve_telemetry(const std::string& address,
                                              int port) {
  if (telemetry_) return *telemetry_;
  obs::TelemetryOptions telemetry_options;
  telemetry_options.address = address;
  telemetry_options.port =
      static_cast<std::uint16_t>(port < 0 ? 0 : port);
  telemetry_ =
      std::make_unique<obs::TelemetryServer>(*metrics_, telemetry_options);
  telemetry_->set_status_source([this] { return status(); });
  return *telemetry_;
}

obs::StatusSnapshot Engine::status(std::size_t top_n) const {
  return status_->snapshot(top_n);
}

std::size_t Engine::thread_count() const { return pool_->thread_count(); }

std::unique_ptr<TraceStore> Engine::open_store(const std::string& directory) {
  return open_store(directory, CompactionOptions{});
}

std::unique_ptr<TraceStore> Engine::open_store(
    const std::string& directory, const CompactionOptions& compaction) {
  auto store = std::make_unique<TraceStore>(directory, metrics_);
  store->enable_background_compaction(*pool_, compaction);
  return store;
}

namespace {

// Merges the pipeline's KeyedReport into the unified batch Report,
// promoting skip reasons into cancellation state.
Report batch_report_from(KeyedReport&& keyed) {
  Report report;
  report.mode = Report::Mode::batch;
  report.verify_totals = keyed.total_stats();
  for (auto& [key, verdict] : keyed.per_key) {
    if (is_skip_reason(verdict, &report.stop_reason)) {
      report.cancelled = true;
    }
    report.per_key.emplace(key, KeyResult{std::move(verdict), {}, {}});
  }
  return report;
}

RunControl run_control_for(
    const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  RunControl control;
  control.cancel = run.cancel;
  control.deadline = deadline;
  control.on_key = run.on_key;
  return control;
}

}  // namespace

Report Engine::run_batch(
    const KeyedHistories& shards, const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  return batch_report_from(
      verifier_->verify(shards, run.verify ? *run.verify : options_.verify,
                        run_control_for(run, deadline)));
}

Report Engine::run_specs(
    const std::vector<ShardSpec>& specs, const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  return batch_report_from(verifier_->verify_shards(
      specs, run.verify ? *run.verify : options_.verify,
      run_control_for(run, deadline)));
}

Report Engine::verify_filtered(
    const KeyedHistories& shards, const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  const KeyFilter filter(run);
  std::vector<ShardSpec> specs;
  std::set<std::string> offered;
  for (const auto& [key, history] : shards.per_key) {
    offered.insert(key);
    if (!filter.pass(key)) continue;
    ShardSpec spec;
    spec.key = key;
    spec.op_count = history.size();
    spec.pinned = &history;
    specs.push_back(std::move(spec));
  }
  Report report = run_specs(specs, run, deadline);
  account_selection(report, filter, offered);
  return report;
}

Report Engine::verify_selective(
    SelectiveTraceSource& source, const RunOptions& run,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  const KeyFilter filter(run);
  const std::vector<std::string> available = source.selectable_keys();
  const std::set<std::string> offered(available.begin(), available.end());
  std::vector<ShardSpec> specs;
  specs.reserve(filter.wanted.size());
  for (const std::string& key : filter.wanted) {
    if (offered.count(key) == 0) continue;
    ShardSpec spec;
    spec.key = key;
    // Op count from index statistics: the budget check and any
    // scheduling decision happen before a single record is decoded.
    spec.op_count = source.key_op_count(key);
    spec.load = [&source, key]() { return source.load_key(key); };
    specs.push_back(std::move(spec));
  }
  Report report = run_specs(specs, run, deadline);
  account_selection(report, filter, offered);
  return report;
}

Report Engine::verify(const KeyedTrace& trace, const RunOptions& run) {
  Metrics::RunScope scope(*em_, *status_, /*batch=*/true);
  const auto deadline = effective_deadline(run);
  const KeyedHistories shards = split_by_key(trace);
  Report report = run.key_filter.empty()
                      ? run_batch(shards, run, deadline)
                      : verify_filtered(shards, run, deadline);
  scope.finish(report);
  return report;
}

Report Engine::verify(const KeyedHistories& shards, const RunOptions& run) {
  Metrics::RunScope scope(*em_, *status_, /*batch=*/true);
  const auto deadline = effective_deadline(run);
  Report report = run.key_filter.empty()
                      ? run_batch(shards, run, deadline)
                      : verify_filtered(shards, run, deadline);
  scope.finish(report);
  return report;
}

Report Engine::verify(TraceSource& source, const RunOptions& run) {
  Metrics::RunScope scope(*em_, *status_, /*batch=*/true);
  // Anchored once at entry: the same cutoff governs reading the source
  // AND the shard phase, so a slow source cannot re-arm the timeout.
  const auto deadline = effective_deadline(run);
  if (!run.key_filter.empty()) {
    // The selective fast path: an index-backed source hands out per-key
    // op counts and lazy loaders, so only the requested keys' blocks
    // are ever decoded -- no full-file materialization.
    if (auto* selective = dynamic_cast<SelectiveTraceSource*>(&source)) {
      Report report = verify_selective(*selective, run, deadline);
      scope.finish(report);
      return report;
    }
    // Any other source: filter while draining. Still one pass and no
    // stored non-matching operations, but every record is decoded.
    const KeyFilter filter(run);
    KeyedTrace trace;
    std::set<std::string> offered;
    const std::string stop = drive_source(
        source, run, deadline, "reading " + source.describe(),
        [&trace, &offered, &filter](KeyedOperation kop) {
          offered.insert(kop.key);
          if (filter.pass(kop.key)) trace.ops.push_back(std::move(kop));
        });
    Report report = run_batch(split_by_key(trace), run, deadline);
    account_selection(report, filter, offered);
    if (!stop.empty()) {
      report.cancelled = true;
      report.stop_reason = stop;
    }
    scope.finish(report);
    return report;
  }
  KeyedTrace trace;
  const std::string stop =
      drive_source(source, run, deadline, "reading " + source.describe(),
                   [&trace](KeyedOperation kop) {
                     trace.ops.push_back(std::move(kop));
                   });
  Report report = run_batch(split_by_key(trace), run, deadline);
  if (!stop.empty()) {
    report.cancelled = true;
    report.stop_reason = stop;
  }
  scope.finish(report);
  return report;
}

namespace {

MonitorOptions monitor_options_for(const EngineOptions& options,
                                   const RunOptions& run,
                                   obs::MetricsRegistry* metrics) {
  MonitorOptions monitor_options;
  monitor_options.streaming = options.streaming;
  monitor_options.reorder_slack = options.reorder_slack;
  monitor_options.queue_capacity = options.queue_capacity;
  monitor_options.on_violation = run.on_finding;
  // The engine's resolved registry, not options.metrics: a null there
  // already resolved to the global at engine construction.
  monitor_options.metrics = metrics;
  return monitor_options;
}

// A cancelled run still finishes cleanly: what was ingested is fully
// checked, so the partial report is sound for the prefix.
void finish_monitor_into(KeyedStreamingMonitor& monitor, Report& report) {
  MonitorReport finished = monitor.finish();
  report.monitor_totals = std::move(finished.totals);
  for (auto& [key, result] : finished.per_key) {
    report.per_key.emplace(key,
                           KeyResult{std::move(result.verdict), result.stats,
                                     std::move(result.violations)});
  }
}

}  // namespace

Report Engine::monitor(const KeyedTrace& trace, const RunOptions& run) {
  Metrics::RunScope scope(*em_, *status_, /*batch=*/false);
  // Dedicated loop rather than a MemoryTraceSource: the trace is
  // already in memory, so every operation is ingested by reference --
  // no O(trace) copy on this (and the legacy monitor_trace) path.
  const auto deadline = effective_deadline(run);
  const KeyFilter filter(run);
  const std::string activity =
      "monitoring memory(" + std::to_string(trace.size()) + " ops)";
  Report report;
  report.mode = Report::Mode::monitor;
  std::set<std::string> offered;
  {
    KeyedStreamingMonitor monitor(
        *pool_, monitor_options_for(options_, run, metrics_));
    std::uint64_t pulled = 0;
    for (const KeyedOperation& kop : trace.ops) {
      if (filter.active) {
        offered.insert(kop.key);
        if (!filter.pass(kop.key)) continue;
      }
      monitor.ingest(kop);
      ++pulled;
      std::string stop = check_stop(run, deadline, false, pulled, activity);
      if (!stop.empty()) {
        report.cancelled = true;
        report.stop_reason = std::move(stop);
        break;
      }
    }
    finish_monitor_into(monitor, report);
  }
  account_selection(report, filter, offered);
  scope.finish(report);
  return report;
}

Report Engine::monitor(TraceSource& source, const RunOptions& run) {
  Metrics::RunScope scope(*em_, *status_, /*batch=*/false);
  const auto deadline = effective_deadline(run);
  const KeyFilter filter(run);
  Report report;
  report.mode = Report::Mode::monitor;
  std::set<std::string> offered;
  {
    KeyedStreamingMonitor monitor(
        *pool_, monitor_options_for(options_, run, metrics_));
    const std::string stop = drive_source(
        source, run, deadline, "monitoring " + source.describe(),
        [&monitor, &filter, &offered](KeyedOperation kop) {
          if (filter.active) {
            offered.insert(kop.key);
            if (!filter.pass(kop.key)) return;
          }
          monitor.ingest(kop);
        });
    if (!stop.empty()) {
      report.cancelled = true;
      report.stop_reason = stop;
    }
    finish_monitor_into(monitor, report);
  }
  account_selection(report, filter, offered);
  scope.finish(report);
  return report;
}

// --- Legacy facade wrappers ------------------------------------------------

// The parallel overload declared in core/verify.h: a temporary Engine
// per call. Kept for source compatibility; a reused Engine amortizes
// the pool spin-up this wrapper pays every time (bench_engine measures
// the difference).
KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options,
                               const PipelineOptions& pipeline_options) {
  EngineOptions engine_options;
  engine_options.verify = options;
  engine_options.threads = pipeline_options.threads;
  engine_options.shard_op_budget = pipeline_options.shard_op_budget;
  engine_options.fail_fast = pipeline_options.fail_fast;
  Engine engine(engine_options);
  Report report = engine.verify(trace);
  KeyedReport keyed;
  for (auto& [key, result] : report.per_key) {
    keyed.per_key.emplace(key, std::move(result.verdict));
  }
  return keyed;
}

// The monitor facade declared in core/verify.h, same deal.
MonitorReport monitor_trace(const KeyedTrace& trace,
                            const MonitorOptions& options) {
  EngineOptions engine_options;
  engine_options.threads = options.threads;
  engine_options.streaming = options.streaming;
  engine_options.reorder_slack = options.reorder_slack;
  engine_options.queue_capacity = options.queue_capacity;
  Engine engine(engine_options);
  RunOptions run;
  run.on_finding = options.on_violation;
  Report report = engine.monitor(trace, run);
  MonitorReport monitor_report;
  monitor_report.totals = std::move(report.monitor_totals);
  for (auto& [key, result] : report.per_key) {
    monitor_report.per_key.emplace(
        key, KeyMonitorResult{std::move(result.verdict), result.stream,
                              std::move(result.findings)});
  }
  return monitor_report;
}

}  // namespace kav
