#include "core/greedy.h"

#include <algorithm>

#include "core/detail/linked_history.h"
#include "core/witness.h"
#include "history/anomaly.h"

namespace kav {

namespace {

struct Segment {
  OpId write;
  std::vector<OpId> reads;  // ascending start time
};

// Pending writes with deadlines. `slack` counts how many further
// placement steps of *other* writes the deadline tolerates; slack 0
// means "must be placed next".
struct Pending {
  OpId write;
  int slack;
};

class GreedyRun {
 public:
  GreedyRun(const History& history, int k)
      : history_(history), k_(k), state_(history) {}

  Verdict run() {
    std::vector<OpId> candidates;  // reused across epochs
    while (!state_.h_empty()) {
      ++stats_.epochs;
      detail::collect_epoch_candidates(history_, state_, candidates);
      bool committed = false;
      for (OpId candidate : candidates) {
        const std::size_t checkpoint = state_.checkpoint();
        const std::size_t segments_checkpoint = segments_.size();
        if (run_epoch(candidate)) {
          committed = true;
          break;
        }
        state_.revert_to(checkpoint);
        segments_.resize(segments_checkpoint);
        pending_.clear();
      }
      if (!committed) {
        return Verdict::make_undecided(
            "greedy search exhausted its candidates at epoch " +
                std::to_string(stats_.epochs) +
                "; the history may or may not be " + std::to_string(k_) +
                "-atomic",
            stats_);
      }
    }
    std::vector<OpId> witness;
    witness.reserve(history_.size());
    for (auto segment = segments_.rbegin(); segment != segments_.rend();
         ++segment) {
      witness.push_back(segment->write);
      witness.insert(witness.end(), segment->reads.begin(),
                     segment->reads.end());
    }
    return Verdict::make_yes(std::move(witness), stats_);
  }

 private:
  // Places `w` into the current (latest unfilled) write slot, consuming
  // the operations that must follow it, and maintains the deadline
  // queue. Returns false when the epoch is refuted.
  bool place_step(OpId w) {
    // Placing w spends one step of every other pending write's slack.
    std::erase_if(pending_, [w](const Pending& p) { return p.write == w; });
    for (Pending& p : pending_) {
      if (--p.slack < 0) return false;
    }

    const TimePoint w_finish = history_.op(w).finish;
    Segment segment{w, {}};
    for (OpId op = state_.h_tail();
         op != kInvalidOp && history_.op(op).start > w_finish;) {
      const OpId next = state_.h_prev(op);
      if (history_.op(op).is_write()) return false;
      const OpId dictating = history_.dictating_write(op);
      if (dictating != w) {
        // Deadline: at most k-2 further non-dictating writes may be
        // placed before `dictating` (w itself already separates them).
        const int fresh_slack = k_ - 2;
        auto it = std::find_if(
            pending_.begin(), pending_.end(),
            [dictating](const Pending& p) { return p.write == dictating; });
        if (it == pending_.end()) {
          pending_.push_back({dictating, fresh_slack});
        } else {
          it->slack = std::min(it->slack, fresh_slack);
        }
      }
      state_.remove_h(op);
      state_.remove_r(op);
      segment.reads.push_back(op);
      ++stats_.steps;
      op = next;
    }
    std::reverse(segment.reads.begin(), segment.reads.end());

    std::vector<OpId> remaining_reads;
    for (OpId r = state_.r_head(w); r != kInvalidOp;) {
      const OpId next = state_.r_next(r);
      state_.remove_h(r);
      state_.remove_r(r);
      remaining_reads.push_back(r);
      ++stats_.steps;
      r = next;
    }
    segment.reads.insert(segment.reads.begin(), remaining_reads.begin(),
                         remaining_reads.end());
    state_.remove_h(w);
    state_.remove_w(w);
    segments_.push_back(std::move(segment));
    ++stats_.steps;

    // Earliest-deadline-first feasibility: sorted by slack, the i-th
    // pending write needs slack >= i to survive the placements ahead.
    std::sort(pending_.begin(), pending_.end(),
              [](const Pending& a, const Pending& b) {
                return a.slack < b.slack;
              });
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].slack < static_cast<int>(i)) return false;
    }
    return true;
  }

  // Which write fills the next (earlier) slot. A slack-0 deadline is
  // forced. Otherwise prefer continuing from the back of the timeline
  // with the largest-finish live write (the W tail) -- placing it can
  // never trip over a live write starting later (nothing finishes
  // later), and deferring deadline writes keeps their reads closer.
  // The tail is only taken if decrementing every pending slack keeps
  // the deadline queue EDF-feasible; otherwise fall back to the most
  // urgent pending write. For k = 2 every fresh deadline has slack 0,
  // so the choice degenerates to LBT's forced w'.
  OpId choose_next() const {
    if (pending_.front().slack == 0) return pending_.front().write;
    const OpId tail = state_.w_tail();
    for (const Pending& p : pending_) {
      if (p.write == tail) return tail;  // consumes a deadline: free
    }
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].slack < static_cast<int>(i) + 1) {
        return pending_.front().write;  // tail would break a deadline
      }
    }
    return tail;
  }

  bool run_epoch(OpId first_write) {
    ++stats_.candidates_tried;
    pending_.clear();
    OpId w = first_write;
    while (true) {
      if (!place_step(w)) return false;
      if (pending_.empty()) return true;  // epoch ends unconstrained
      w = choose_next();
    }
  }

  const History& history_;
  const int k_;
  detail::LinkedHistory state_;
  std::vector<Pending> pending_;
  std::vector<Segment> segments_;
  VerifyStats stats_;
};

}  // namespace

Verdict check_k_atomicity_greedy(const History& history, int k,
                                 const GreedyOptions& options) {
  if (k < 1) return Verdict::make_precondition_failed("k must be >= 1");
  if (options.check_preconditions) {
    const AnomalyReport report = find_anomalies(history);
    if (!report.verifiable()) {
      return Verdict::make_precondition_failed(
          "history must be normalized and anomaly-free: " +
          describe(report.anomalies.front(), history));
    }
  }
  if (history.empty()) return Verdict::make_yes({});

  GreedyRun run(history, k);
  Verdict verdict = run.run();
  // Soundness guard: a YES from the greedy checker must carry a witness
  // that survives independent validation; demote to undecided if not
  // (this would indicate a bug, and tests assert it never happens).
  if (verdict.yes() &&
      !validate_witness(history, verdict.witness, k).ok()) {
    return Verdict::make_undecided(
        "greedy produced an invalid witness (internal error)",
        verdict.stats);
  }
  return verdict;
}

}  // namespace kav
