// Independent validation of witness total orders.
//
// A total order T over a history's operations certifies k-atomicity iff
//   (1) T is a permutation of all operation ids;
//   (2) T is *valid*: it extends the "precedes" partial order (there is
//       no pair a-before-b in T with b.finish < a.start) -- equivalent
//       to the existence of commit points (Section II-A);
//   (3) every read follows its dictating write in T and is separated
//       from it by at most k-1 other writes (Section II-A), or, in the
//       weighted variant (Section V), the total weight of separating
//       writes *including the dictating write itself* is at most k.
//
// The validator shares no code with the deciders, so a passing check is
// genuinely independent evidence. Cost: O(n log n).
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_WITNESS_H
#define KAV_CORE_WITNESS_H

#include <span>
#include <string>
#include <vector>

#include "history/history.h"
#include "util/time_types.h"

namespace kav {

struct WitnessCheck {
  bool is_permutation = false;
  bool respects_precedence = false;
  bool k_atomic = false;
  std::string detail;  // first violation found, for diagnostics

  bool ok() const { return is_permutation && respects_precedence && k_atomic; }
};

WitnessCheck validate_witness(const History& history,
                              std::span<const OpId> order, int k);

// Weighted variant (k-WAV): weights[op] is consulted for writes only.
WitnessCheck validate_weighted_witness(const History& history,
                                       std::span<const OpId> order,
                                       std::span<const Weight> weights,
                                       Weight k);

}  // namespace kav

#endif  // KAV_CORE_WITNESS_H
