#include "core/streaming.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/fzf.h"
#include "history/anomaly.h"
#include "history/cluster.h"

namespace kav {

namespace {

// Raw (pre-normalization) zone of a cluster given window positions.
struct RawCluster {
  std::size_t write_pos = 0;
  std::vector<std::size_t> read_pos;
  TimePoint min_finish = kTimeMax;
  TimePoint max_start = kTimeMin;
  bool settled = false;  // no further reads can arrive

  TimePoint low() const { return std::min(min_finish, max_start); }
  TimePoint high() const { return std::max(min_finish, max_start); }
  bool forward() const { return min_finish < max_start; }
};

}  // namespace

StreamingChecker::StreamingChecker(const StreamingOptions& options)
    : options_(options) {}

void StreamingChecker::add(const Operation& op) {
  if (finished_) {
    throw std::logic_error("StreamingChecker::add after finish()");
  }
  window_.push_back(op);
  min_window_finish_ = std::min(min_window_finish_, op.finish);
  ++stats_.operations_ingested;
  stats_.peak_window = std::max(stats_.peak_window, window_.size());
}

void StreamingChecker::advance_watermark(TimePoint t) {
  watermark_ = std::max(watermark_, t);
  flush_settled(watermark_);
}

Verdict StreamingChecker::finish() {
  finished_ = true;
  watermark_ = kTimeMax;
  flush_settled(kTimeMax);
  stats_.operations_evicted += window_.size();
  window_.clear();
  if (violations_.empty()) {
    return Verdict::make_yes({});  // streaming verdicts carry no witness
  }
  return Verdict::make_no("streaming monitor recorded " +
                          std::to_string(violations_.size()) +
                          " violation(s); first: " +
                          violations_.front().detail);
}

void StreamingChecker::reset() {
  window_.clear();
  evicted_write_values_.clear();
  violations_.clear();
  stats_ = StreamingStats{};
  watermark_ = kTimeMin;
  min_window_finish_ = kTimeMax;
  finished_ = false;
}

void StreamingChecker::flush_settled(TimePoint settled_before) {
  ++stats_.flushes;
  if (window_.empty()) return;

  // Cheap skip: no cluster can settle while even the earliest finish in
  // the window is inside the horizon (unmatched-read findings are then
  // deferred to the next effective flush or finish(), which always runs
  // with an infinite watermark). Keeps advance_watermark O(1) when the
  // window is young.
  const TimePoint cheap_threshold =
      watermark_ == kTimeMax
          ? kTimeMax
          : (watermark_ <= kTimeMin + options_.staleness_horizon
                 ? kTimeMin
                 : watermark_ - options_.staleness_horizon);
  if (min_window_finish_ >= cheap_threshold) return;

  // --- Cluster the window by value (raw times). -----------------------
  std::unordered_map<Value, RawCluster> clusters;
  std::vector<std::size_t> unmatched_reads;
  std::unordered_set<Value> window_write_values;
  for (std::size_t pos = 0; pos < window_.size(); ++pos) {
    const Operation& op = window_[pos];
    if (!op.is_write()) continue;
    auto [it, inserted] = clusters.try_emplace(op.value);
    if (!inserted) {
      violations_.push_back(
          {StreamingViolation::Kind::hard_anomaly, watermark_,
           "duplicate write value " + std::to_string(op.value) +
               " in window"});
      continue;  // later duplicate ignored; first write keeps the value
    }
    window_write_values.insert(op.value);
    it->second.write_pos = pos;
    it->second.min_finish = op.finish;
    it->second.max_start = op.start;
  }
  for (std::size_t pos = 0; pos < window_.size(); ++pos) {
    const Operation& op = window_[pos];
    if (!op.is_read()) continue;
    auto it = clusters.find(op.value);
    if (it == clusters.end()) {
      unmatched_reads.push_back(pos);
      continue;
    }
    it->second.read_pos.push_back(pos);
    it->second.min_finish = std::min(it->second.min_finish, op.finish);
    it->second.max_start = std::max(it->second.max_start, op.start);
  }

  // --- Settlement line. ------------------------------------------------
  // A cluster is settled once no further read of it can start:
  // (write.finish + horizon) < watermark, while future ops start after
  // the watermark. New zones and zone growth land entirely above the
  // minimum zone-low among unsettled clusters (zone lows never sink),
  // so anything wholly below `settle_line` is immutable.
  TimePoint settle_line = std::min(settled_before, watermark_);
  const TimePoint settle_threshold =
      watermark_ == kTimeMax
          ? kTimeMax
          : (watermark_ <= kTimeMin + options_.staleness_horizon
                 ? kTimeMin
                 : watermark_ - options_.staleness_horizon);
  for (auto& [value, cluster] : clusters) {
    const Operation& w = window_[cluster.write_pos];
    cluster.settled = w.finish < settle_threshold;
    if (!cluster.settled) {
      settle_line = std::min(settle_line, cluster.low());
    }
  }

  // --- Unmatched reads. -------------------------------------------------
  // A read whose dictating write is absent and which finished before the
  // watermark can never be matched (a future write would start after the
  // read finished, i.e. the read would precede its dictating write).
  std::vector<char> evict(window_.size(), 0);
  for (std::size_t pos : unmatched_reads) {
    const Operation& r = window_[pos];
    if (r.finish >= watermark_) continue;  // its write may still arrive
    const bool horizon = evicted_write_values_.count(r.value) > 0;
    violations_.push_back(
        {horizon ? StreamingViolation::Kind::horizon_exceeded
                 : StreamingViolation::Kind::hard_anomaly,
         watermark_,
         (horizon ? "read exceeded the staleness horizon: value "
                  : "read without dictating write: value ") +
             std::to_string(r.value)});
    evict[pos] = 1;
  }

  // --- Chunk runs over settled forward zones. ---------------------------
  // Sort forward zones by low endpoint and merge transitive overlaps
  // (Stage 1 of FZF on the window). Only runs lying wholly below the
  // settle line with every member cluster settled are final.
  std::vector<const RawCluster*> forward;
  std::vector<const RawCluster*> backward;
  for (const auto& [value, cluster] : clusters) {
    (cluster.forward() ? forward : backward).push_back(&cluster);
  }
  auto by_low = [](const RawCluster* a, const RawCluster* b) {
    return a->low() != b->low() ? a->low() < b->low()
                                : a->write_pos < b->write_pos;
  };
  std::sort(forward.begin(), forward.end(), by_low);
  std::sort(backward.begin(), backward.end(), by_low);

  struct Run {
    TimePoint lo, hi;
    std::vector<const RawCluster*> members;
    bool all_settled = true;
  };
  std::vector<Run> runs;
  for (const RawCluster* cluster : forward) {
    if (!runs.empty() && cluster->low() < runs.back().hi) {
      runs.back().hi = std::max(runs.back().hi, cluster->high());
      runs.back().members.push_back(cluster);
      runs.back().all_settled &= cluster->settled;
    } else {
      runs.push_back(
          {cluster->low(), cluster->high(), {cluster}, cluster->settled});
    }
  }
  // Attach contained backward clusters; the rest dangle.
  std::vector<const RawCluster*> dangling;
  for (const RawCluster* cluster : backward) {
    auto it = std::upper_bound(
        runs.begin(), runs.end(), cluster->low(),
        [](TimePoint t, const Run& run) { return t < run.lo; });
    if (it != runs.begin() && (it - 1)->lo < cluster->low() &&
        cluster->high() < (it - 1)->hi) {
      (it - 1)->members.push_back(cluster);
      (it - 1)->all_settled &= cluster->settled;
    } else {
      dangling.push_back(cluster);
    }
  }

  // --- Verify and evict final chunks. ------------------------------------
  for (const Run& run : runs) {
    if (!run.all_settled || run.hi >= settle_line) continue;
    std::vector<Operation> chunk_ops;
    for (const RawCluster* cluster : run.members) {
      chunk_ops.push_back(window_[cluster->write_pos]);
      for (std::size_t pos : cluster->read_pos) {
        chunk_ops.push_back(window_[pos]);
      }
    }
    const History chunk_history = normalize(History(std::move(chunk_ops)));
    const Verdict verdict = check_2atomicity_fzf(chunk_history);
    ++stats_.chunks_verified;
    if (!verdict.yes()) {
      violations_.push_back(
          {StreamingViolation::Kind::not_2atomic, watermark_,
           "settled chunk over [" + std::to_string(run.lo) + ", " +
               std::to_string(run.hi) + "] is not 2-atomic: " +
               verdict.reason});
    }
    for (const RawCluster* cluster : run.members) {
      evict[cluster->write_pos] = 1;
      evicted_write_values_.insert(window_[cluster->write_pos].value);
      for (std::size_t pos : cluster->read_pos) evict[pos] = 1;
    }
  }

  // Settled dangling backward clusters below the settle line are
  // trivially 2-atomic in isolation (Lemma 4.1's concatenation).
  for (const RawCluster* cluster : dangling) {
    if (!cluster->settled || cluster->high() >= settle_line) continue;
    ++stats_.dangling_clusters;
    evict[cluster->write_pos] = 1;
    evicted_write_values_.insert(window_[cluster->write_pos].value);
    for (std::size_t pos : cluster->read_pos) evict[pos] = 1;
  }

  // --- Compact the window. ------------------------------------------------
  std::vector<Operation> remaining;
  remaining.reserve(window_.size());
  min_window_finish_ = kTimeMax;
  for (std::size_t pos = 0; pos < window_.size(); ++pos) {
    if (evict[pos]) {
      ++stats_.operations_evicted;
    } else {
      min_window_finish_ = std::min(min_window_finish_, window_[pos].finish);
      remaining.push_back(window_[pos]);
    }
  }
  window_ = std::move(remaining);
}

}  // namespace kav
