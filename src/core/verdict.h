// Verdicts returned by every verification algorithm. A YES verdict is
// accompanied by a *witness*: a valid k-atomic total order over all
// operation ids, which core/witness.h can re-validate independently of
// whichever decision procedure produced it. A NO verdict carries a
// human-readable reason. `undecided` is returned by incomplete or
// budget-limited procedures (the greedy general-k checker, the oracle
// at its node limit); precondition_failed reports inputs the algorithms
// are not defined on (hard anomalies, see Section II-C of the paper).
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_VERDICT_H
#define KAV_CORE_VERDICT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/time_types.h"

namespace kav {

enum class Outcome : unsigned char { yes, no, undecided, precondition_failed };

inline const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::yes:
      return "YES";
    case Outcome::no:
      return "NO";
    case Outcome::undecided:
      return "UNDECIDED";
    case Outcome::precondition_failed:
      return "PRECONDITION-FAILED";
  }
  return "unknown";
}

// Work counters filled in by the algorithms; benches report them so
// measured effort can be compared against the paper's bounds.
struct VerifyStats {
  std::uint64_t epochs = 0;            // LBT: committed epochs
  std::uint64_t candidates_tried = 0;  // LBT: RunEpoch invocations
  std::uint64_t steps = 0;             // LBT/FZF: ops processed (incl. reverts)
  std::uint64_t chunks = 0;            // FZF: |CS(H)|
  std::uint64_t dangling = 0;          // FZF: dangling backward clusters
  std::uint64_t orders_tested = 0;     // FZF: viability subroutine calls
  std::uint64_t nodes = 0;             // oracle: search nodes expanded

  friend bool operator==(const VerifyStats&, const VerifyStats&) = default;
};

struct Verdict {
  Outcome outcome = Outcome::no;
  std::vector<OpId> witness;  // total order over all ops; non-empty only
                              // for YES on non-empty histories
  std::string reason;         // explanation unless YES
  // For NO verdicts from GK and FZF: a subset of operation ids whose
  // projection is itself not k-atomic (the offending zone pair or
  // chunk) -- a self-contained counterexample for debugging. Empty for
  // LBT (its refutations are not localized) and for YES verdicts.
  std::vector<OpId> conflict;
  VerifyStats stats;

  bool yes() const { return outcome == Outcome::yes; }
  bool no() const { return outcome == Outcome::no; }
  bool decided() const { return yes() || no(); }

  static Verdict make_yes(std::vector<OpId> witness_order,
                          VerifyStats stats = {}) {
    Verdict v;
    v.outcome = Outcome::yes;
    v.witness = std::move(witness_order);
    v.stats = stats;
    return v;
  }

  static Verdict make_no(std::string reason, VerifyStats stats = {}) {
    Verdict v;
    v.outcome = Outcome::no;
    v.reason = std::move(reason);
    v.stats = stats;
    return v;
  }

  static Verdict make_undecided(std::string reason, VerifyStats stats = {}) {
    Verdict v;
    v.outcome = Outcome::undecided;
    v.reason = std::move(reason);
    v.stats = stats;
    return v;
  }

  static Verdict make_precondition_failed(std::string reason) {
    Verdict v;
    v.outcome = Outcome::precondition_failed;
    v.reason = std::move(reason);
    return v;
  }
};

}  // namespace kav

#endif  // KAV_CORE_VERDICT_H
