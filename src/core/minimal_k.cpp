#include "core/minimal_k.h"

#include <algorithm>

#include "core/fzf.h"
#include "core/gk.h"
#include "core/greedy.h"
#include "history/anomaly.h"

namespace kav {

MinimalKResult minimal_k(const History& history,
                         const MinimalKOptions& options) {
  MinimalKResult result;
  const AnomalyReport report = find_anomalies(history);
  if (!report.verifiable()) {
    result.k = 0;
    result.exact = report.hard_anomalies().empty() ? false : true;
    result.note = "history has anomalies (" +
                  std::string(to_string(report.anomalies.front().kind)) +
                  "); not k-atomic for any k if hard, else normalize first";
    return result;
  }
  if (history.empty() || history.read_count() == 0) {
    // No read can be stale; the history is trivially 1-atomic.
    result.k = 1;
    result.exact = true;
    result.note = "no reads";
    return result;
  }

  if (check_1atomicity_gk(history).yes()) {
    result.k = 1;
    result.exact = true;
    result.note = "Gibbons-Korach";
    return result;
  }
  if (check_2atomicity_fzf(history).yes()) {
    result.k = 2;
    result.exact = true;
    result.note = "FZF";
    return result;
  }

  const int upper_cap = static_cast<int>(
      std::min<std::size_t>(history.write_count(),
                            static_cast<std::size_t>(options.max_k)));

  if (history.size() <= options.oracle_max_ops && history.size() <= 64) {
    // Binary search over [3, W]: k-atomicity is monotone in k.
    int lo = 3;
    int hi = std::max(3, static_cast<int>(history.write_count()));
    bool undecided = false;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      const OracleResult r = oracle_is_k_atomic(history, mid, options.oracle);
      if (!r.decided()) {
        undecided = true;
        break;
      }
      if (r.yes()) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (!undecided) {
      result.k = lo;
      result.exact = true;
      result.note = "oracle binary search";
      return result;
    }
  }

  // Greedy upper bound: smallest k at which the greedy checker finds a
  // witness. Sound (the history IS k-atomic for the returned k) but the
  // true minimum may be smaller -- exact k >= 3 verification at scale is
  // the paper's open problem (Section VII).
  for (int k = 3; k <= upper_cap; ++k) {
    if (check_k_atomicity_greedy(history, k).yes()) {
      result.k = k;
      result.exact = false;
      result.note = "greedy upper bound (true minimal k in [3, " +
                    std::to_string(k) + "])";
      return result;
    }
  }
  result.k = upper_cap;
  result.exact = false;
  result.note = "upper bound by write count (greedy found no witness)";
  return result;
}

}  // namespace kav
