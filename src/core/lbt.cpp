#include "core/lbt.h"

#include <algorithm>
#include <limits>

#include "core/detail/linked_history.h"
#include "history/anomaly.h"

namespace kav {

namespace {

// One write slot plus its adjacent reads (Figure 1); the witness is
// the reverse concatenation of segments. Reads live in one shared pool
// (a segment's block is [reads_begin, next segment's reads_begin)), so
// an epoch costs zero heap allocations instead of one vector per
// segment; rollback truncates the pool alongside the segment list.
struct SegmentRef {
  OpId write;
  std::uint32_t reads_begin;  // offset into the shared reads pool
};

enum class EpochResult : unsigned char { success, fail, budget_exceeded };

class LbtRun {
 public:
  LbtRun(const History& history, const LbtOptions& options)
      : history_(history), options_(options), state_(history) {}

  Verdict run() {
    std::vector<OpId> candidates;  // reused across epochs, no per-epoch alloc
    while (!state_.h_empty()) {
      ++stats_.epochs;
      detail::collect_epoch_candidates(history_, state_, candidates);
      if (!run_one_epoch(candidates)) {
        return Verdict::make_no(
            "epoch " + std::to_string(stats_.epochs) + ": all " +
                std::to_string(candidates.size()) +
                " candidate writes fail; history is not 2-atomic",
            stats_);
      }
    }
    // Segments were placed back to front; reverse for the final order.
    std::vector<OpId> witness;
    witness.reserve(history_.size());
    for (std::size_t s = segments_.size(); s-- > 0;) {
      const std::uint32_t begin = segments_[s].reads_begin;
      const std::uint32_t end = s + 1 < segments_.size()
                                    ? segments_[s + 1].reads_begin
                                    : static_cast<std::uint32_t>(
                                          reads_pool_.size());
      witness.push_back(segments_[s].write);
      witness.insert(witness.end(), reads_pool_.begin() + begin,
                     reads_pool_.begin() + end);
    }
    return Verdict::make_yes(std::move(witness), stats_);
  }

 private:
  // Figure 2 lines 10-22. Consumes operations from the back of the
  // history; `budget` caps the number of consumption steps so iterative
  // deepening can abandon slow candidates early.
  EpochResult run_epoch(OpId first_write, std::uint64_t budget) {
    ++stats_.candidates_tried;
    OpId w = first_write;
    std::uint64_t steps = 0;
    while (true) {
      OpId w_prime = kInvalidOp;  // line 12
      const TimePoint w_finish = history_.op(w).finish;
      const auto reads_begin = static_cast<std::uint32_t>(reads_pool_.size());

      // Lines 13-18: every live op starting after w finishes must be a
      // read of w or of a unique other write w'. They form a suffix of
      // H by start time; scan from the tail (descending start).
      for (OpId op = state_.h_tail();
           op != kInvalidOp && history_.op(op).start > w_finish;) {
        const OpId next = state_.h_prev(op);
        if (history_.op(op).is_write()) {  // line 14
          stats_.steps += steps;
          return EpochResult::fail;
        }
        const OpId dictating = history_.dictating_write(op);
        if (dictating != w && dictating != w_prime) {  // line 15
          if (w_prime != kInvalidOp) {  // line 16
            stats_.steps += steps;
            return EpochResult::fail;
          }
          w_prime = dictating;  // line 17
        }
        state_.remove_h(op);  // line 18
        state_.remove_r(op);
        reads_pool_.push_back(op);
        if (++steps > budget) {
          stats_.steps += steps;
          return EpochResult::budget_exceeded;
        }
        op = next;
      }
      // The scan collected reads in descending start order, all after
      // w.finish; the remaining reads of w (line 19) all start before
      // w.finish, so reversing and prepending keeps ascending order.
      std::reverse(reads_pool_.begin() + reads_begin, reads_pool_.end());

      // Lines 19-20: place w and its remaining dictated reads. They
      // are appended (the r-list is already ascending) and rotated to
      // the front of this segment's pool block -- same order as the
      // old prepend, still allocation-free.
      const auto remaining_begin = static_cast<std::uint32_t>(
          reads_pool_.size());
      for (OpId r = state_.r_head(w); r != kInvalidOp;) {
        const OpId next = state_.r_next(r);
        state_.remove_h(r);
        state_.remove_r(r);
        reads_pool_.push_back(r);
        if (++steps > budget) {
          stats_.steps += steps;
          return EpochResult::budget_exceeded;
        }
        r = next;
      }
      std::rotate(reads_pool_.begin() + reads_begin,
                  reads_pool_.begin() + remaining_begin, reads_pool_.end());
      state_.remove_h(w);
      state_.remove_w(w);
      segments_.push_back(SegmentRef{w, reads_begin});
      if (++steps > budget) {
        stats_.steps += steps;
        return EpochResult::budget_exceeded;
      }

      if (w_prime == kInvalidOp) {  // line 21
        stats_.steps += steps;
        return EpochResult::success;
      }
      w = w_prime;  // line 22
    }
  }

  // Figure 2 lines 4-7, with the Section III-C iterative-deepening
  // refinement: every surviving candidate is (re-)run with a doubling
  // step budget until one succeeds or all definitively fail. Each
  // non-committing attempt is rolled back through the undo log.
  bool run_one_epoch(const std::vector<OpId>& candidates) {
    const std::size_t segments_checkpoint = segments_.size();
    const std::size_t pool_checkpoint = reads_pool_.size();
    if (!options_.iterative_deepening) {
      for (OpId candidate : candidates) {
        const std::size_t checkpoint = state_.checkpoint();
        const EpochResult result =
            run_epoch(candidate, std::numeric_limits<std::uint64_t>::max());
        if (result == EpochResult::success) return true;
        state_.revert_to(checkpoint);
        segments_.resize(segments_checkpoint);
        reads_pool_.resize(pool_checkpoint);
      }
      return false;
    }

    std::vector<OpId> survivors = candidates;
    for (std::uint64_t budget =
             std::max<std::uint64_t>(options_.initial_budget, 1);
         !survivors.empty(); budget *= 2) {
      std::vector<OpId> next_round;
      for (OpId candidate : survivors) {
        const std::size_t checkpoint = state_.checkpoint();
        const EpochResult result = run_epoch(candidate, budget);
        if (result == EpochResult::success) return true;
        state_.revert_to(checkpoint);
        segments_.resize(segments_checkpoint);
        reads_pool_.resize(pool_checkpoint);
        if (result == EpochResult::budget_exceeded) {
          next_round.push_back(candidate);
        }
      }
      survivors = std::move(next_round);
    }
    return false;
  }

  const History& history_;
  const LbtOptions& options_;
  detail::LinkedHistory state_;
  std::vector<SegmentRef> segments_;
  std::vector<OpId> reads_pool_;  // all segments' reads, back to front
  VerifyStats stats_;
};

}  // namespace

Verdict check_2atomicity_lbt(const History& history, const LbtOptions& options) {
  if (options.check_preconditions) {
    const AnomalyReport report = find_anomalies(history);
    if (!report.verifiable()) {
      return Verdict::make_precondition_failed(
          "history must be normalized and anomaly-free: " +
          describe(report.anomalies.front(), history));
    }
  }
  if (history.empty()) return Verdict::make_yes({});
  return LbtRun(history, options).run();
}

}  // namespace kav
