// FZF ("Forward Zones First"), the paper's second 2-AV algorithm
// (Section IV, Figures 3 and 4), O(n log n) even in the worst case
// (Theorem 4.6).
//
// Stage 1 partitions the history's clusters into *maximal chunks*: sets
// of clusters whose forward zones union to a continuous interval and
// whose backward zones lie inside that interval; backward clusters in
// no chunk are *dangling*. Stage 2 decides each chunk independently
// (Lemma 4.1): the only viable orders over a chunk's forward-cluster
// writes are T_F (by zone low endpoint) and T_F' (first two swapped)
// (Lemma 4.2); dictating writes of backward clusters can only be
// prepended or appended, one at each end at most, so a chunk with three
// or more backward clusters is not 2-atomic (Lemma 4.3). Each of the at
// most four resulting orders is tested by a viability subroutine -- a
// simplified LBT that walks the order back to front without
// backtracking. Stage 3 outputs YES iff every chunk passed, with a
// witness assembled by concatenating per-chunk and per-dangling-cluster
// orders along the timeline (the construction in Lemma 4.1's proof).
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_FZF_H
#define KAV_CORE_FZF_H

#include <vector>

#include "core/verdict.h"
#include "history/cluster.h"
#include "history/history.h"
#include "util/interval_set.h"

namespace kav {

struct Chunk {
  // Dictating writes of forward clusters, ordered by zone low endpoint
  // (the order T_F is exactly this sequence).
  std::vector<OpId> forward_writes;
  // Dictating writes of backward clusters contained in the extent.
  std::vector<OpId> backward_writes;
  // Union of the forward zones (continuous by construction).
  Interval extent;
};

struct ChunkSet {
  std::vector<Chunk> chunks;          // ordered along the timeline
  std::vector<OpId> dangling_writes;  // backward clusters outside chunks
};

// Stage 1, exposed for tests (the Figure 3 reproduction) and analysis.
// Requires a normalized history.
ChunkSet compute_chunk_set(const History& history);
// Same, over zones the caller already computed (must be the
// compute_zones(history) output, i.e. sorted by low endpoint) --
// zone_profile and the dispatch policy share one zone pass this way.
ChunkSet compute_chunk_set(const History& history,
                           const std::vector<Zone>& zones);

// Aggregate statistics of the Stage-1 partition, computed with the
// same merging logic as compute_chunk_set but counters only -- no
// per-chunk write lists, so a profile-driven caller (zone_profile, the
// dispatch policy) pays O(chunks) flat storage instead of thousands of
// small vectors. Field for field equal to deriving the stats from
// compute_chunk_set(history, zones) (enforced by analysis_test).
struct ChunkStats {
  std::size_t chunks = 0;
  std::size_t dangling = 0;
  std::size_t largest_chunk_clusters = 0;
  std::size_t max_backward_per_chunk = 0;
};
ChunkStats compute_chunk_stats(const std::vector<Zone>& zones);

struct FzfOptions {
  bool check_preconditions = true;  // see LbtOptions
};

Verdict check_2atomicity_fzf(const History& history,
                             const FzfOptions& options = {});

}  // namespace kav

#endif  // KAV_CORE_FZF_H
