// The Gibbons-Korach 1-atomicity (linearizability for registers) test,
// quoted in Section IV of the paper: a history is 1-atomic if and only
// if (1) no two forward zones overlap, and (2) no backward zone is
// contained entirely in a forward zone.
//
// This is the paper's baseline "solved problem" (1-AV). On YES the
// verdict carries a witness: clusters ordered by zone low endpoint,
// write first and reads by start time within each cluster, which is a
// valid 1-atomic total order whenever the two conditions hold.
//
// Preconditions: anomaly-free, normalized history (Section II-C); the
// public entry point checks and reports violations as
// precondition_failed rather than silently mis-deciding.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_GK_H
#define KAV_CORE_GK_H

#include "core/verdict.h"
#include "history/history.h"

namespace kav {

// check_preconditions = false skips the find_anomalies pass when the
// caller has already established an anomaly-free normalized history
// (verify_k_atomicity does) -- same contract as LbtOptions/FzfOptions.
Verdict check_1atomicity_gk(const History& history,
                            bool check_preconditions = true);

}  // namespace kav

#endif  // KAV_CORE_GK_H
