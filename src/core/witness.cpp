#include "core/witness.h"

#include <algorithm>
#include <cstdint>

namespace kav {

namespace {

// Shared engine: unweighted validation is the weighted one with all
// write weights 1 and budget k (a read separated by at most k-1 *other*
// writes has total separating weight, dictating write included, at most
// k). This mirrors Section V's observation that k-AV is the
// weight-1 special case of k-WAV.
WitnessCheck validate_impl(const History& history, std::span<const OpId> order,
                           std::span<const Weight> weights, Weight budget) {
  WitnessCheck check;

  // (1) Permutation.
  if (order.size() != history.size()) {
    check.detail = "order has " + std::to_string(order.size()) +
                   " entries, history has " + std::to_string(history.size());
    return check;
  }
  std::vector<char> seen(history.size(), 0);
  for (OpId id : order) {
    if (id >= history.size() || seen[id]) {
      check.detail = "order is not a permutation (op " + std::to_string(id) +
                     (id < history.size() ? " repeated)" : " out of range)");
      return check;
    }
    seen[id] = 1;
  }
  check.is_permutation = true;

  // (2) Validity: no later element may precede an earlier one; with a
  // running maximum of start times this is O(n).
  TimePoint max_start_so_far = kTimeMin;
  for (OpId id : order) {
    const Operation& op = history.op(id);
    if (op.finish < max_start_so_far) {
      check.detail = "op " + std::to_string(id) + " " + describe(op) +
                     " finishes before an earlier-ordered op starts";
      return check;
    }
    max_start_so_far = std::max(max_start_so_far, op.start);
  }
  check.respects_precedence = true;

  // (3) Staleness bound. Walk the order maintaining prefix sums of
  // write weights; the separating weight of a read is then a single
  // subtraction against its dictating write's prefix rank.
  std::vector<Weight> write_prefix;          // prefix weights of writes
  std::vector<std::int64_t> write_rank_of(history.size(), -1);
  write_prefix.push_back(0);
  for (OpId id : order) {
    const Operation& op = history.op(id);
    if (op.is_write()) {
      write_rank_of[id] = static_cast<std::int64_t>(write_prefix.size()) - 1;
      const Weight w = weights.empty() ? Weight{1} : weights[id];
      write_prefix.push_back(write_prefix.back() + w);
    } else {
      const OpId dictating = history.dictating_write(id);
      if (dictating == kInvalidOp) {
        check.detail = "read " + std::to_string(id) + " has no dictating write";
        return check;
      }
      const std::int64_t rank = write_rank_of[dictating];
      if (rank < 0) {
        check.detail = "read " + std::to_string(id) +
                       " ordered before its dictating write " +
                       std::to_string(dictating);
        return check;
      }
      // Weight of writes in [dictating .. read), dictating included.
      const Weight separation = write_prefix.back() - write_prefix[rank];
      if (separation > budget) {
        check.detail = "read " + std::to_string(id) + " has separation weight " +
                       std::to_string(separation) + " > " +
                       std::to_string(budget) + " from write " +
                       std::to_string(dictating);
        return check;
      }
    }
  }
  check.k_atomic = true;
  return check;
}

}  // namespace

WitnessCheck validate_witness(const History& history,
                              std::span<const OpId> order, int k) {
  return validate_impl(history, order, {}, k);
}

WitnessCheck validate_weighted_witness(const History& history,
                                       std::span<const OpId> order,
                                       std::span<const Weight> weights,
                                       Weight k) {
  return validate_impl(history, order, weights, k);
}

}  // namespace kav
