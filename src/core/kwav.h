// The weighted k-atomicity-verification problem (k-WAV, Section V of
// the paper): every write carries a positive integer weight, and a
// history is weighted-k-atomic iff some valid total order places every
// read after its dictating write with the total weight of separating
// writes -- including the dictating write itself -- at most k. Plain
// k-AV is the all-weights-1 special case.
//
// Theorem 5.1 proves k-WAV NP-complete by reduction from bin packing;
// this module makes the proof executable:
//   - an exact k-WAV decider (the weighted oracle; exponential worst
//     case, as NP-completeness predicts),
//   - exact and first-fit-decreasing bin-packing solvers, and
//   - the Figure 5 construction mapping a bin-packing instance to a
//     k-WAV instance, so tests can check
//         bin_packing_feasible(I)  <=>  kwav(reduce(I)).yes().
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_KWAV_H
#define KAV_CORE_KWAV_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/oracle.h"
#include "history/history.h"

namespace kav {

// ---------------------------------------------------------------------
// Weighted histories.

struct WeightedHistory {
  History history;
  std::vector<Weight> weights;  // per op id; consulted for writes only
};

// Decides weighted k-atomicity exactly (delegates to the weighted
// oracle; exponential in the worst case -- see Theorem 5.1).
OracleResult check_weighted_k_atomicity(const WeightedHistory& wh, Weight k,
                                        const OracleOptions& options = {});

// ---------------------------------------------------------------------
// Bin packing (the substrate of Theorem 5.1's reduction).

struct BinPackingInstance {
  std::vector<Weight> sizes;  // positive item sizes
  Weight capacity = 0;        // B
  int bins = 0;               // m
};

// Exact feasibility by branch and bound (items sorted descending, bins
// deduplicated by load). Intended for the small instances the reduction
// tests use; exponential worst case.
bool bin_packing_feasible(const BinPackingInstance& instance,
                          std::uint64_t node_limit = 50'000'000);

// First-fit-decreasing upper bound: number of capacity-B bins FFD uses.
int first_fit_decreasing_bins(std::span<const Weight> sizes, Weight capacity);

// ---------------------------------------------------------------------
// The Figure 5 reduction.

// Layout bookkeeping so tests can inspect the construction: op ids of
// the short writes w(1)..w(m+1), their dictated reads r(1)..r(m), and
// the long writes (one per bin-packing item, no dictated reads).
struct KwavReduction {
  WeightedHistory instance;
  Weight k = 0;  // B + 2
  std::vector<OpId> short_writes;  // size m + 1
  std::vector<OpId> short_reads;   // size m
  std::vector<OpId> long_writes;   // size n (one per item)
};

// Builds the k-WAV instance of Figure 5: short writes and their reads
// totally ordered as w1 w2 r1 w3 r2 ... w(m) r(m-1) w(m+1) r(m), each
// with weight 1; item j becomes a "long write" of weight sizes[j]
// spanning the gap from just after w(1) finishes to just before
// w(m+1) starts (so every valid order pins it between them, i.e. into
// some bin); k = capacity + 2. The instance is weighted-k-atomic iff
// the bin-packing instance is feasible (Theorem 5.1).
// Requires instance.bins >= 1 and positive sizes.
KwavReduction reduce_bin_packing_to_kwav(const BinPackingInstance& instance);

}  // namespace kav

#endif  // KAV_CORE_KWAV_H
