// Run control for long verification jobs: cooperative cancellation and
// wall-clock deadlines, shared by the batch pipeline and the online
// monitor. Both generalize the pipeline's original fail-fast flag: a
// shard (or an ingest loop) checks a flag at a cheap, well-defined
// point and stops with an explicit UNDECIDED reason instead of being
// torn down mid-decision -- the decision procedures themselves are
// never interrupted, so a verdict that is produced is always a real
// verdict.
//
// The public front door for all of this is kav::Engine (core/engine.h);
// ShardedVerifier consumes a RunControl directly for callers that
// manage their own pool.
//
// Concurrency contract: this header is deliberately lock-free, so it
// carries none of the util/thread_safety.h capability annotations --
// there is no mutex for fields to be GUARDED_BY. CancelToken is a
// shared atomic flag (release-store in cancel(), acquire-load in
// cancelled(): a worker observing the flag also observes everything
// the canceller wrote before cancelling). RunControl itself is plain
// data handed to a run before workers start; on_key is invoked
// serialized by the verifier, never concurrently with itself.
#ifndef KAV_CORE_RUN_CONTROL_H
#define KAV_CORE_RUN_CONTROL_H

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/verdict.h"

namespace kav {

// A copyable handle to a shared cancellation flag. Default construction
// makes a fresh, un-cancelled flag; copies share it, so the caller
// keeps one copy and hands another to the run. cancel() is sticky --
// there is no un-cancel; make a new token per run instead.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() noexcept { state_->store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return state_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

// Exact skip reasons, so reports are greppable and Engine can tell its
// own early stops apart from ordinary UNDECIDED verdicts. The fail-fast
// wording predates run control and is pinned by tests.
inline constexpr const char* kSkipCancelledReason =
    "skipped: cancelled by caller before this shard started";
inline constexpr const char* kSkipDeadlineReason =
    "skipped: wall-clock deadline exceeded before this shard started";
inline constexpr const char* kSkipFailFastReason =
    "skipped: fail-fast cancellation after another shard answered NO";

// Per-run control block threaded through ShardedVerifier::verify. The
// default RunControl never cancels, has no deadline, and reports to
// nobody -- exactly the legacy behavior, so the bit-identical
// determinism guarantee is untouched unless a caller opts in.
struct RunControl {
  CancelToken cancel;
  // Absolute wall-clock cutoff; shards that have not started by then
  // answer UNDECIDED (kSkipDeadlineReason). Checked at shard
  // granularity: a shard already deciding runs to completion.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  // Live per-key sink, invoked from worker threads as each shard's
  // verdict lands (serialized by the verifier; completion order, not
  // key order) -- exactly once per key, skipped shards included, so a
  // progress consumer can count callbacks against the key count. Must
  // not call back into the verifier.
  std::function<void(const std::string& key, const Verdict& verdict)> on_key;
};

}  // namespace kav

#endif  // KAV_CORE_RUN_CONTROL_H
