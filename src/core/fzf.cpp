#include "core/fzf.h"

#include <algorithm>
#include <cstdint>

#include "history/anomaly.h"

namespace kav {

namespace {

constexpr std::int32_t kNone = -1;

// Viability subroutine (Section IV-A / proof of Theorem 4.6): given the
// chunk's operations sorted by start time and a candidate total order T
// over *all* dictating writes of the chunk, decide whether T extends to
// a valid 2-atomic total order over the chunk's operations, and build
// that order. Processes T back to front with no backtracking: at the
// step for write w with predecessor p in T, every remaining operation
// starting after w.finish must be a read dictated by w or by p (a
// remaining *write* there also refutes T, which subsumes checking that
// T is a valid order). Cost O(n_K).
class ViabilityCheck {
 public:
  // chunk_ops: the chunk's operation ids sorted by start time.
  // local_pos: scratch map OpId -> position in chunk_ops (only entries
  // for chunk_ops members are valid).
  ViabilityCheck(const History& history, const std::vector<OpId>& chunk_ops,
                 const std::vector<std::int32_t>& local_pos)
      : history_(history), ops_(chunk_ops), pos_(local_pos) {}

  bool viable(const std::vector<OpId>& order, std::vector<OpId>* out_order) {
    build_lists();
    std::vector<OpId> reversed;  // segments, back to front
    reversed.reserve(ops_.size());

    for (std::size_t j = order.size(); j-- > 0;) {
      const OpId w = order[j];
      const OpId pred = j > 0 ? order[j - 1] : kInvalidOp;
      const TimePoint w_finish = history_.op(w).finish;

      // `reversed` is the final order written backwards, so within it a
      // segment must read: descending-start reads, then w. Reads
      // strictly after w come off the tail scan already descending.
      for (std::int32_t p = tail_; p != kNone && start_of(p) > w_finish;) {
        const std::int32_t next = prev_[p];
        const OpId op = ops_[p];
        if (history_.op(op).is_write()) return false;
        const OpId dictating = history_.dictating_write(op);
        if (dictating != w && dictating != pred) return false;
        unlink(p);
        unlink_read(p);
        reversed.push_back(op);
        p = next;
      }
      // Remaining reads of w all start before w.finish (smaller than
      // every scanned read); the read list yields them ascending, so
      // flip that block to keep `reversed` descending overall.
      const std::size_t remaining_begin = reversed.size();
      for (std::int32_t p = read_head_[pos_[w]]; p != kNone;) {
        const std::int32_t next = read_next_[p];
        unlink(p);
        unlink_read(p);
        reversed.push_back(ops_[p]);
        p = next;
      }
      std::reverse(reversed.begin() + remaining_begin, reversed.end());
      unlink(pos_[w]);
      reversed.push_back(w);
    }

    if (out_order != nullptr) {
      out_order->assign(reversed.rbegin(), reversed.rend());
    }
    return true;
  }

 private:
  TimePoint start_of(std::int32_t p) const { return history_.op(ops_[p]).start; }

  void build_lists() {
    const auto n = static_cast<std::int32_t>(ops_.size());
    prev_.assign(n, kNone);
    next_.assign(n, kNone);
    read_prev_.assign(n, kNone);
    read_next_.assign(n, kNone);
    read_head_.assign(n, kNone);
    read_tail_.assign(n, kNone);
    for (std::int32_t p = 0; p < n; ++p) {
      prev_[p] = p - 1;
      next_[p] = p + 1 < n ? p + 1 : kNone;
    }
    head_ = n > 0 ? 0 : kNone;
    tail_ = n - 1;
    // Dictated-read lists in start order (ops_ is start-sorted).
    for (std::int32_t p = 0; p < n; ++p) {
      const OpId op = ops_[p];
      if (history_.op(op).is_write()) continue;
      const std::int32_t wp = pos_[history_.dictating_write(op)];
      if (read_tail_[wp] == kNone) {
        read_head_[wp] = p;
      } else {
        read_next_[read_tail_[wp]] = p;
        read_prev_[p] = read_tail_[wp];
      }
      read_tail_[wp] = p;
    }
  }

  void unlink(std::int32_t p) {
    if (prev_[p] == kNone) {
      head_ = next_[p];
    } else {
      next_[prev_[p]] = next_[p];
    }
    if (next_[p] == kNone) {
      tail_ = prev_[p];
    } else {
      prev_[next_[p]] = prev_[p];
    }
  }

  void unlink_read(std::int32_t p) {
    const OpId op = ops_[p];
    if (history_.op(op).is_write()) return;
    const std::int32_t wp = pos_[history_.dictating_write(op)];
    if (read_prev_[p] == kNone) {
      read_head_[wp] = read_next_[p];
    } else {
      read_next_[read_prev_[p]] = read_next_[p];
    }
    if (read_next_[p] == kNone) {
      read_tail_[wp] = read_prev_[p];
    } else {
      read_prev_[read_next_[p]] = read_prev_[p];
    }
  }

  const History& history_;
  const std::vector<OpId>& ops_;
  const std::vector<std::int32_t>& pos_;
  std::vector<std::int32_t> prev_, next_, read_prev_, read_next_;
  std::vector<std::int32_t> read_head_, read_tail_;
  std::int32_t head_ = kNone, tail_ = kNone;
};

}  // namespace

ChunkSet compute_chunk_set(const History& history) {
  return compute_chunk_set(history, compute_zones(history));
}

ChunkSet compute_chunk_set(const History&,
                           const std::vector<Zone>& zones) {  // sorted by low
  ChunkSet result;

  // Maximal runs of transitively overlapping forward zones. Endpoints
  // are distinct, so "continuous union" is plain interval merging with
  // strict overlap.
  for (const Zone& z : zones) {
    if (!z.forward) continue;
    if (!result.chunks.empty() && z.low() < result.chunks.back().extent.hi) {
      Chunk& chunk = result.chunks.back();
      chunk.forward_writes.push_back(z.write);
      chunk.extent.hi = std::max(chunk.extent.hi, z.high());
    } else {
      result.chunks.push_back(Chunk{{z.write}, {}, z.interval()});
    }
  }

  // Backward clusters: contained in some chunk's extent, or dangling.
  // Chunks are disjoint and sorted, so binary search by low endpoint.
  for (const Zone& z : zones) {
    if (z.forward) continue;
    auto it = std::upper_bound(
        result.chunks.begin(), result.chunks.end(), z.low(),
        [](TimePoint t, const Chunk& c) { return t < c.extent.lo; });
    if (it != result.chunks.begin() &&
        (it - 1)->extent.contains(z.interval())) {
      (it - 1)->backward_writes.push_back(z.write);
    } else {
      result.dangling_writes.push_back(z.write);
    }
  }
  return result;
}

ChunkStats compute_chunk_stats(const std::vector<Zone>& zones) {
  // Mirrors compute_chunk_set exactly, keeping only chunk extents and
  // per-chunk cluster counters (flat, parallel vectors). Any change to
  // the merging or containment rules must land in both.
  ChunkStats stats;
  std::vector<Interval> extents;
  std::vector<std::size_t> forward_counts;
  for (const Zone& z : zones) {
    if (!z.forward) continue;
    if (!extents.empty() && z.low() < extents.back().hi) {
      ++forward_counts.back();
      extents.back().hi = std::max(extents.back().hi, z.high());
    } else {
      extents.push_back(z.interval());
      forward_counts.push_back(1);
    }
  }
  std::vector<std::size_t> backward_counts(extents.size(), 0);
  for (const Zone& z : zones) {
    if (z.forward) continue;
    auto it = std::upper_bound(
        extents.begin(), extents.end(), z.low(),
        [](TimePoint t, const Interval& extent) { return t < extent.lo; });
    if (it != extents.begin() && (it - 1)->contains(z.interval())) {
      ++backward_counts[static_cast<std::size_t>(it - extents.begin()) - 1];
    } else {
      ++stats.dangling;
    }
  }
  stats.chunks = extents.size();
  for (std::size_t c = 0; c < extents.size(); ++c) {
    stats.largest_chunk_clusters = std::max(
        stats.largest_chunk_clusters, forward_counts[c] + backward_counts[c]);
    stats.max_backward_per_chunk =
        std::max(stats.max_backward_per_chunk, backward_counts[c]);
  }
  return stats;
}

Verdict check_2atomicity_fzf(const History& history, const FzfOptions& options) {
  if (options.check_preconditions) {
    const AnomalyReport report = find_anomalies(history);
    if (!report.verifiable()) {
      return Verdict::make_precondition_failed(
          "history must be normalized and anomaly-free: " +
          describe(report.anomalies.front(), history));
    }
  }
  if (history.empty()) return Verdict::make_yes({});

  VerifyStats stats;

  // ---- Stage 1 ----
  const ChunkSet chunk_set = compute_chunk_set(history);
  stats.chunks = chunk_set.chunks.size();
  stats.dangling = chunk_set.dangling_writes.size();

  // Bucket every operation into its chunk (or dangling cluster), in
  // start order, so per-chunk op lists are start-sorted for free.
  // element id: chunk index, or chunks.size() + dangling index.
  const std::size_t num_elements =
      chunk_set.chunks.size() + chunk_set.dangling_writes.size();
  std::vector<std::int32_t> element_of_write(history.size(), kNone);
  for (std::size_t c = 0; c < chunk_set.chunks.size(); ++c) {
    for (OpId w : chunk_set.chunks[c].forward_writes) {
      element_of_write[w] = static_cast<std::int32_t>(c);
    }
    for (OpId w : chunk_set.chunks[c].backward_writes) {
      element_of_write[w] = static_cast<std::int32_t>(c);
    }
  }
  for (std::size_t d = 0; d < chunk_set.dangling_writes.size(); ++d) {
    element_of_write[chunk_set.dangling_writes[d]] =
        static_cast<std::int32_t>(chunk_set.chunks.size() + d);
  }
  std::vector<std::vector<OpId>> element_ops(num_elements);
  for (OpId op : history.by_start()) {
    const OpId cluster_write = history.op(op).is_write()
                                   ? op
                                   : history.dictating_write(op);
    element_ops[element_of_write[cluster_write]].push_back(op);
  }

  // ---- Stage 2 ----
  std::vector<std::int32_t> local_pos(history.size(), kNone);
  std::vector<std::vector<OpId>> element_order(num_elements);
  for (std::size_t c = 0; c < chunk_set.chunks.size(); ++c) {
    const Chunk& chunk = chunk_set.chunks[c];

    // Lemma 4.3, case B >= 3: not 2-atomic, no orders to try.
    if (chunk.backward_writes.size() >= 3) {
      Verdict verdict = Verdict::make_no(
          "chunk with " + std::to_string(chunk.backward_writes.size()) +
              " backward clusters (>= 3) cannot be 2-atomic (Lemma 4.3)",
          stats);
      verdict.conflict = element_ops[c];
      return verdict;
    }

    const std::vector<OpId>& tf = chunk.forward_writes;
    std::vector<OpId> tf_prime = tf;
    if (tf_prime.size() >= 2) std::swap(tf_prime[0], tf_prime[1]);

    // Candidate orders S per Figure 4.
    std::vector<std::vector<OpId>> orders;
    auto add_order = [&orders](std::vector<OpId> base, OpId front, OpId back) {
      std::vector<OpId> order;
      if (front != kInvalidOp) order.push_back(front);
      order.insert(order.end(), base.begin(), base.end());
      if (back != kInvalidOp) order.push_back(back);
      orders.push_back(std::move(order));
    };
    const bool distinct_tf = tf_prime != tf;
    if (chunk.backward_writes.empty()) {
      add_order(tf, kInvalidOp, kInvalidOp);
      if (distinct_tf) add_order(tf_prime, kInvalidOp, kInvalidOp);
    } else if (chunk.backward_writes.size() == 1) {
      const OpId w = chunk.backward_writes[0];
      add_order(tf, w, kInvalidOp);
      add_order(tf, kInvalidOp, w);
      if (distinct_tf) {
        add_order(tf_prime, w, kInvalidOp);
        add_order(tf_prime, kInvalidOp, w);
      }
    } else {
      const OpId w1 = chunk.backward_writes[0];
      const OpId w2 = chunk.backward_writes[1];
      add_order(tf, w1, w2);
      add_order(tf, w2, w1);
      if (distinct_tf) {
        add_order(tf_prime, w1, w2);
        add_order(tf_prime, w2, w1);
      }
    }

    // Try each order with the viability subroutine.
    const std::vector<OpId>& chunk_ops = element_ops[c];
    for (std::size_t p = 0; p < chunk_ops.size(); ++p) {
      local_pos[chunk_ops[p]] = static_cast<std::int32_t>(p);
    }
    ViabilityCheck checker(history, chunk_ops, local_pos);
    bool chunk_ok = false;
    for (const std::vector<OpId>& order : orders) {
      ++stats.orders_tested;
      if (checker.viable(order, &element_order[c])) {
        chunk_ok = true;
        break;
      }
    }
    if (!chunk_ok) {
      Verdict verdict = Verdict::make_no(
          "chunk over [" + std::to_string(chunk.extent.lo) + ", " +
              std::to_string(chunk.extent.hi) + "] with " +
              std::to_string(tf.size()) + " forward and " +
              std::to_string(chunk.backward_writes.size()) +
              " backward clusters admits no viable write order",
          stats);
      verdict.conflict = element_ops[c];
      return verdict;
    }
  }

  // Dangling backward clusters: write followed by its reads in start
  // order is always a valid 1-atomic (hence 2-atomic) order for the
  // cluster in isolation.
  for (std::size_t d = 0; d < chunk_set.dangling_writes.size(); ++d) {
    const OpId w = chunk_set.dangling_writes[d];
    std::vector<OpId>& order = element_order[chunk_set.chunks.size() + d];
    order.push_back(w);
    for (OpId r : history.dictated_reads(w)) order.push_back(r);
  }

  // ---- Stage 3 ----
  // Assemble the global witness: order elements (chunks and dangling
  // clusters) by low endpoint, which extends the <=_H relation of
  // Lemma 4.1, and concatenate their orders.
  std::vector<std::pair<TimePoint, std::size_t>> element_lows;
  element_lows.reserve(num_elements);
  for (std::size_t c = 0; c < chunk_set.chunks.size(); ++c) {
    element_lows.emplace_back(chunk_set.chunks[c].extent.lo, c);
  }
  for (std::size_t d = 0; d < chunk_set.dangling_writes.size(); ++d) {
    const Zone zone = compute_zone(history, chunk_set.dangling_writes[d]);
    element_lows.emplace_back(zone.low(), chunk_set.chunks.size() + d);
  }
  std::sort(element_lows.begin(), element_lows.end());

  std::vector<OpId> witness;
  witness.reserve(history.size());
  for (const auto& [low, element] : element_lows) {
    witness.insert(witness.end(), element_order[element].begin(),
                   element_order[element].end());
  }
  return Verdict::make_yes(std::move(witness), stats);
}

}  // namespace kav
