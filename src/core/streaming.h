// Online (streaming) 2-atomicity monitoring -- the experiment Section
// VII of the paper proposes ("test whether existing storage systems
// provide 2-atomicity in practice") needs a checker that runs against
// a live trace without retaining it forever.
//
// The enabling observation is FZF's Lemma 4.1: maximal chunks are
// decided independently, so once a chunk can no longer grow it can be
// verified and evicted. A chunk can stop growing only when no future
// operation may join or bridge it, which requires two promises:
//
//   1. a *watermark*: the caller guarantees every future operation
//      starts after the watermark (true when feeding completed
//      operations in start order, or with bounded reordering);
//   2. a *staleness horizon* H: every read starts at most H after its
//      dictating write finishes. Reads that violate the horizon are
//      detected (their write's cluster is gone) and reported -- for a
//      monitor, "staleness exceeded H" is itself the finding.
//
// Under those promises, every cluster whose zone lies below
// (watermark - H) is final, and chunks composed of final clusters
// whose extents lie below that line are verified with the batch FZF
// machinery and evicted. Memory is O(window), not O(trace).
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_STREAMING_H
#define KAV_CORE_STREAMING_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/verdict.h"
#include "history/history.h"

namespace kav {

struct StreamingOptions {
  // Maximum assumed gap between a write's finish and the start of its
  // last dictated read. Reads arriving later are horizon violations.
  TimePoint staleness_horizon = 10'000;
};

struct StreamingStats {
  std::uint64_t operations_ingested = 0;
  std::uint64_t operations_evicted = 0;
  std::uint64_t chunks_verified = 0;
  std::uint64_t dangling_clusters = 0;
  std::uint64_t flushes = 0;
  std::size_t peak_window = 0;  // max ops buffered at once
};

struct StreamingViolation {
  enum class Kind : unsigned char {
    not_2atomic,        // a settled chunk failed Stage 2
    horizon_exceeded,   // read of an already-evicted write
    hard_anomaly,       // e.g. read without dictating write at flush
    late_arrival,       // ingest: arrival beyond the reorder slack
                        // (reported by ingest/keyed_monitor.h, never by
                        // StreamingChecker itself)
  };
  Kind kind;
  TimePoint when;      // watermark at detection time
  std::string detail;
};

class StreamingChecker {
 public:
  explicit StreamingChecker(const StreamingOptions& options = {});

  // Ingest one completed operation. Operations may arrive in any order
  // as long as each starts after the current watermark was honored
  // (i.e. op.start > last advance_watermark argument is NOT required
  // for ops already in flight; it is required that no *future* add()
  // has start <= watermark).
  void add(const Operation& op);

  // Promise: every operation added after this call starts strictly
  // after `t`. Triggers verification and eviction of settled chunks.
  void advance_watermark(TimePoint t);

  // Flush everything (equivalent to watermark = +infinity) and return
  // the overall verdict: YES iff no violation was ever detected.
  Verdict finish();

  // Reuse hook: returns the checker to its freshly-constructed state
  // (same options), so long-lived monitors can recycle instances
  // instead of reallocating one per stream.
  void reset();

  bool clean_so_far() const { return violations_.empty(); }
  TimePoint watermark() const { return watermark_; }
  const std::vector<StreamingViolation>& violations() const {
    return violations_;
  }
  const StreamingStats& stats() const { return stats_; }
  std::size_t window_size() const { return window_.size(); }

 private:
  void flush_settled(TimePoint settled_before);

  StreamingOptions options_;
  std::vector<Operation> window_;
  std::unordered_set<Value> evicted_write_values_;  // horizon diagnostics
  std::vector<StreamingViolation> violations_;
  StreamingStats stats_;
  TimePoint watermark_ = kTimeMin;
  TimePoint min_window_finish_ = kTimeMax;  // flush fast-path guard
  bool finished_ = false;
};

}  // namespace kav

#endif  // KAV_CORE_STREAMING_H
