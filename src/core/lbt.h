// LBT ("limited backtracking"), the paper's first 2-AV algorithm
// (Section III, Figure 2).
//
// LBT builds a 2-atomic total order back to front, in epochs. An epoch
// tentatively places a candidate write w in the latest unfilled write
// slot; every remaining operation that starts after w finishes must
// then be a read dictated by w or by a single other write w' (anything
// else refutes the candidate); those reads fill the read container
// adjacent to w, and w' -- if discovered -- is forced into the previous
// write slot, continuing the chain with no further search. Backtracking
// is limited to the choice of the epoch's first write, drawn from the
// candidate set C of writes that precede no other live write (a suffix
// of W ordered by finish time, of size at most c, the maximum write
// concurrency).
//
// Complexity (Theorem 3.2): O(n log n + c*n) with the iterative-
// deepening candidate search (per epoch, every surviving candidate is
// re-run with a doubling step budget, so the search costs O(c * t)
// where t is the work of the cheapest successful candidate); O(n^2)
// worst case when c = Theta(n). The naive mode (candidates tried to
// completion one by one) is kept for the ablation benchmark.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_LBT_H
#define KAV_CORE_LBT_H

#include "core/verdict.h"
#include "history/history.h"

namespace kav {

struct LbtOptions {
  bool iterative_deepening = true;
  // Initial per-candidate step budget for iterative deepening (doubled
  // each round). Small values exercise the revert machinery harder.
  std::uint64_t initial_budget = 16;
  // Skip the O(n) anomaly scan when the caller guarantees a normalized,
  // anomaly-free history (benchmarks measure the algorithm alone).
  bool check_preconditions = true;
};

Verdict check_2atomicity_lbt(const History& history,
                             const LbtOptions& options = {});

}  // namespace kav

#endif  // KAV_CORE_LBT_H
