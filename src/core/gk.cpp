#include "core/gk.h"

#include <algorithm>
#include <vector>

#include "history/anomaly.h"
#include "history/cluster.h"

namespace kav {

namespace {

std::string zone_string(const Zone& z) {
  return std::string(z.forward ? "forward" : "backward") + " zone of write " +
         std::to_string(z.write) + " [" + std::to_string(z.low()) + ", " +
         std::to_string(z.high()) + "]";
}

// The two offending clusters form a self-contained counterexample.
std::vector<OpId> cluster_pair(const History& history, OpId write_a,
                               OpId write_b) {
  std::vector<OpId> ops;
  for (OpId w : {write_a, write_b}) {
    ops.push_back(w);
    for (OpId r : history.dictated_reads(w)) ops.push_back(r);
  }
  return ops;
}

}  // namespace

Verdict check_1atomicity_gk(const History& history,
                            bool check_preconditions) {
  if (check_preconditions) {
    const AnomalyReport report = find_anomalies(history);
    if (!report.verifiable()) {
      return Verdict::make_precondition_failed(
          "history has anomalies; run find_anomalies/normalize first: " +
          describe(report.anomalies.front(), history));
    }
  }
  if (history.empty()) return Verdict::make_yes({});

  const std::vector<Zone> zones = compute_zones(history);  // sorted by low

  // Condition (1): forward zones must be pairwise disjoint. Sorted by
  // low endpoint, it suffices to compare neighbours.
  const Zone* previous_forward = nullptr;
  for (const Zone& z : zones) {
    if (!z.forward) continue;
    if (previous_forward != nullptr && z.low() < previous_forward->high()) {
      Verdict verdict = Verdict::make_no(
          "forward zones overlap: " + zone_string(*previous_forward) +
          " and " + zone_string(z));
      verdict.conflict = cluster_pair(history, previous_forward->write,
                                      z.write);
      return verdict;
    }
    previous_forward = &z;
  }

  // Condition (2): no backward zone inside a forward zone. Forward
  // zones are now known disjoint; for each backward zone, binary-search
  // the unique forward zone that could contain its low endpoint.
  std::vector<const Zone*> forward;
  for (const Zone& z : zones) {
    if (z.forward) forward.push_back(&z);
  }
  for (const Zone& z : zones) {
    if (z.forward) continue;
    auto it = std::upper_bound(
        forward.begin(), forward.end(), z.low(),
        [](TimePoint t, const Zone* f) { return t < f->low(); });
    if (it != forward.begin()) {
      const Zone* f = *(it - 1);
      if (f->low() < z.low() && z.high() < f->high()) {
        Verdict verdict = Verdict::make_no(
            "backward zone contained in forward zone: " + zone_string(z) +
            " inside " + zone_string(*f));
        verdict.conflict = cluster_pair(history, z.write, f->write);
        return verdict;
      }
    }
  }

  // Conditions hold: clusters ordered by zone low endpoint give a valid
  // 1-atomic order (write, then its reads by start time).
  std::vector<OpId> witness;
  witness.reserve(history.size());
  for (const Zone& z : zones) {
    witness.push_back(z.write);
    for (OpId r : history.dictated_reads(z.write)) witness.push_back(r);
  }
  return Verdict::make_yes(std::move(witness));
}

}  // namespace kav
