// The verification facade: normalizes input, dispatches to the right
// decision procedure for the requested k, and (for multi-register
// traces) exploits locality -- k-atomicity is a local property
// (Section II-B of the paper), so a trace is k-atomic iff its
// projection onto each register is.
//
// The free functions over KeyedTrace below are the library's LEGACY
// surface: they predate kav::Engine (core/engine.h, included via
// kav.h), which consolidates the three parallel front doors --
// verify_keyed_trace x2, monitor_trace -- into one session object with
// one shared thread pool, pluggable TraceSources, a unified Report,
// and run control. They are kept so every existing caller compiles;
// the parallel and monitor ones are thin wrappers over a temporary
// Engine. Migration table: docs/API.md.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_VERIFY_H
#define KAV_CORE_VERIFY_H

#include <map>
#include <string>

#include "core/verdict.h"
#include "history/history.h"
#include "history/keyed_trace.h"

namespace kav {

struct ZoneProfile;      // core/analysis.h
struct PipelineOptions;  // pipeline/sharded_verifier.h
struct MonitorOptions;   // ingest/keyed_monitor.h
struct MonitorReport;    // ingest/keyed_monitor.h

enum class Algorithm : unsigned char {
  auto_select,  // GK for k=1, LBT/FZF by ZoneProfile for k=2,
                // oracle/greedy for k>=3
  gk,           // k = 1 only
  lbt,          // k = 2 only (iterative deepening)
  lbt_naive,    // k = 2 only (no iterative deepening; ablation)
  fzf,          // k = 2 only
  greedy,       // any k; sound YES, otherwise undecided
  oracle,       // any k; exact but exponential, <= 64 ops
};

const char* to_string(Algorithm algorithm);

// The k = 2 policy behind Algorithm::auto_select: picks LBT when the
// profile predicts its O(n log n + c*n) bound beats FZF's constants
// (writes nearly serial, no chunk already doomed by Lemma 4.3), else
// FZF. Returns Algorithm::lbt or Algorithm::fzf only. Both deciders
// are exact for k = 2, so the choice never changes a verdict (property-
// tested by tests/agreement_fuzz_test.cpp); it is a pure function of
// the profile, so serial and sharded verification dispatch identically.
Algorithm select_2av_algorithm(const ZoneProfile& profile);

struct VerifyOptions {
  int k = 2;
  Algorithm algorithm = Algorithm::auto_select;
  // Repair repairable anomalies (duplicate timestamps, writes that
  // outlive dictated reads) before deciding. Operation ids are
  // preserved, so witnesses index the caller's history either way.
  bool normalize = true;
};

// Single-register verification.
Verdict verify_k_atomicity(const History& history,
                           const VerifyOptions& options = {});

// Multi-register verification: splits by key and verifies each
// projection independently. Legacy result shape; kav::Engine returns
// the unified Report (core/report.h) instead, and both render their
// summaries through the same format_key_counts() formatter.
struct KeyedReport {
  std::map<std::string, Verdict> per_key;

  bool all_yes() const;
  std::size_t count(Outcome outcome) const;
  std::string summary() const;  // shared formatter, core/report.h
  // Work counters summed over all keys -- the aggregate effort of the
  // whole trace, comparable between serial and sharded runs.
  VerifyStats total_stats() const;
};

// Serial reference implementation -- the semantics every parallel and
// streaming path is differentially fuzzed against. Legacy: new code
// uses kav::Engine::verify.
KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options = {});

// Parallel variant: shards the trace by key and verifies shards on a
// work-stealing thread pool. With fail_fast off and no shard_op_budget
// the report is bit-identical to the serial overload above for any
// thread count; those two options trade detail for speed (skipped
// shards answer UNDECIDED). Legacy wrapper over a temporary
// kav::Engine (defined in core/engine.cpp; include
// pipeline/sharded_verifier.h for PipelineOptions) -- a reused Engine
// amortizes the per-call pool spin-up this pays.
KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options,
                               const PipelineOptions& pipeline_options);

// Online variant: replays the trace in its arrival order through the
// ingest subsystem's KeyedStreamingMonitor (per-key StreamingChecker
// shards behind reorder buffers on the thread pool), returning per-key
// streaming verdicts and aggregate throughput/window statistics
// instead of batch verdicts. Memory stays O(slack + horizon) per key
// rather than O(trace). Legacy wrapper over a temporary kav::Engine
// (defined in core/engine.cpp; include ingest/keyed_monitor.h for the
// option and report types).
MonitorReport monitor_trace(const KeyedTrace& trace,
                            const MonitorOptions& options);

}  // namespace kav

#endif  // KAV_CORE_VERIFY_H
