// The library facade: one entry point that normalizes input, dispatches
// to the right decision procedure for the requested k, and (for
// multi-register traces) exploits locality -- k-atomicity is a local
// property (Section II-B of the paper), so a trace is k-atomic iff its
// projection onto each register is.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_VERIFY_H
#define KAV_CORE_VERIFY_H

#include <map>
#include <string>

#include "core/verdict.h"
#include "history/history.h"
#include "history/keyed_trace.h"

namespace kav {

enum class Algorithm : unsigned char {
  auto_select,  // GK for k=1, FZF for k=2, oracle/greedy for k>=3
  gk,           // k = 1 only
  lbt,          // k = 2 only (iterative deepening)
  lbt_naive,    // k = 2 only (no iterative deepening; ablation)
  fzf,          // k = 2 only
  greedy,       // any k; sound YES, otherwise undecided
  oracle,       // any k; exact but exponential, <= 64 ops
};

const char* to_string(Algorithm algorithm);

struct VerifyOptions {
  int k = 2;
  Algorithm algorithm = Algorithm::auto_select;
  // Repair repairable anomalies (duplicate timestamps, writes that
  // outlive dictated reads) before deciding. Operation ids are
  // preserved, so witnesses index the caller's history either way.
  bool normalize = true;
};

// Single-register verification.
Verdict verify_k_atomicity(const History& history,
                           const VerifyOptions& options = {});

// Multi-register verification: splits by key and verifies each
// projection independently.
struct KeyedReport {
  std::map<std::string, Verdict> per_key;

  bool all_yes() const;
  std::size_t count(Outcome outcome) const;
  std::string summary() const;  // e.g. "7/8 keys 2-atomic, 1 NO"
};

KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options = {});

}  // namespace kav

#endif  // KAV_CORE_VERIFY_H
