// Analysis utilities on top of the deciders, serving the paper's second
// stated purpose of verification (Section I): knowing whether a system
// provides *more* consistency than an application needs, so operational
// knobs can be relaxed.
//
//   - StalenessSpectrum: given a history and a witness total order,
//     the distribution of read staleness (how many writes separate each
//     read from its dictating write in that order). The minimal-k
//     witness makes this the tightest spectrum any explanation of the
//     trace supports.
//   - ZoneProfile: structural statistics of a history's zones and
//     chunks -- the quantities FZF's complexity depends on, useful for
//     predicting which decider (LBT vs FZF) will be faster.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_ANALYSIS_H
#define KAV_CORE_ANALYSIS_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "history/history.h"
#include "util/time_types.h"

namespace kav {

struct StalenessSpectrum {
  // histogram[s] = number of reads separated from their dictating write
  // by exactly s other writes in the witness order.
  std::vector<std::uint64_t> histogram;
  std::uint64_t reads = 0;
  int max_separation = 0;        // = minimal k - 1 for a minimal witness
  double mean_separation = 0.0;
  double fresh_fraction = 0.0;   // reads with separation 0

  std::string to_string() const;
};

// Requires `order` to be a valid witness (validate_witness(...).ok());
// throws std::invalid_argument otherwise -- a spectrum over an invalid
// explanation would be meaningless.
StalenessSpectrum staleness_spectrum(const History& history,
                                     std::span<const OpId> order);

struct ZoneProfile {
  std::size_t clusters = 0;
  std::size_t forward_zones = 0;
  std::size_t backward_zones = 0;
  std::size_t chunks = 0;
  std::size_t dangling = 0;
  std::size_t largest_chunk_clusters = 0;   // FZF's n_K
  std::size_t max_backward_per_chunk = 0;   // >= 3 implies not 2-atomic
  std::size_t max_concurrent_writes = 0;    // LBT's c
  double mean_reads_per_write = 0.0;

  std::string to_string() const;
};

ZoneProfile zone_profile(const History& history);

}  // namespace kav

#endif  // KAV_CORE_ANALYSIS_H
