#include "core/verify.h"

#include "core/analysis.h"
#include "core/report.h"
#include "core/fzf.h"
#include "core/gk.h"
#include "core/greedy.h"
#include "core/lbt.h"
#include "core/oracle.h"
#include "history/anomaly.h"

namespace kav {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::auto_select:
      return "auto";
    case Algorithm::gk:
      return "gk";
    case Algorithm::lbt:
      return "lbt";
    case Algorithm::lbt_naive:
      return "lbt-naive";
    case Algorithm::fzf:
      return "fzf";
    case Algorithm::greedy:
      return "greedy";
    case Algorithm::oracle:
      return "oracle";
  }
  return "unknown";
}

Algorithm select_2av_algorithm(const ZoneProfile& profile) {
  // A chunk with >= 3 backward clusters is an immediate NO for FZF with
  // a localized conflict (Lemma 4.3); LBT would exhaust its candidate
  // epochs to learn the same thing and report nothing localized.
  if (profile.max_backward_per_chunk >= 3) return Algorithm::fzf;
  // With writes nearly serial (c <= 2) LBT's candidate search is
  // O(n log n + c*n) with at most two candidates per epoch, cheaper
  // than FZF's up-to-four viability walks per chunk. Higher write
  // concurrency is where LBT degrades toward O(n^2), so FZF's
  // worst-case O(n log n) takes over.
  if (profile.max_concurrent_writes <= 2) return Algorithm::lbt;
  return Algorithm::fzf;
}

namespace {

Verdict from_oracle(const OracleResult& result) {
  switch (result.outcome) {
    case OracleOutcome::yes: {
      VerifyStats stats;
      stats.nodes = result.nodes;
      Verdict v = Verdict::make_yes(result.witness, stats);
      return v;
    }
    case OracleOutcome::no: {
      VerifyStats stats;
      stats.nodes = result.nodes;
      return Verdict::make_no(result.reason, stats);
    }
    case OracleOutcome::node_limit:
      return Verdict::make_undecided(result.reason);
    case OracleOutcome::invalid:
      return Verdict::make_precondition_failed(result.reason);
  }
  return Verdict::make_precondition_failed("unreachable");
}

Verdict dispatch(const History& history, int k, Algorithm algorithm) {
  // verify_k_atomicity (the only caller) has already run
  // find_anomalies and either bailed or normalized, so the deciders'
  // own precondition passes are pure duplicate work -- skip them. The
  // verdicts cannot change: the checks would succeed by construction.
  LbtOptions lbt_options;
  lbt_options.check_preconditions = false;
  FzfOptions fzf_options;
  fzf_options.check_preconditions = false;
  auto wrong_k = [&](const char* name, int expected) {
    return Verdict::make_precondition_failed(
        std::string(name) + " decides only k = " + std::to_string(expected) +
        ", got k = " + std::to_string(k));
  };
  switch (algorithm) {
    case Algorithm::gk:
      if (k != 1) return wrong_k("gk", 1);
      return check_1atomicity_gk(history, /*check_preconditions=*/false);
    case Algorithm::lbt:
      if (k != 2) return wrong_k("lbt", 2);
      return check_2atomicity_lbt(history, lbt_options);
    case Algorithm::lbt_naive: {
      if (k != 2) return wrong_k("lbt-naive", 2);
      LbtOptions options = lbt_options;
      options.iterative_deepening = false;
      return check_2atomicity_lbt(history, options);
    }
    case Algorithm::fzf:
      if (k != 2) return wrong_k("fzf", 2);
      return check_2atomicity_fzf(history, fzf_options);
    case Algorithm::greedy:
      return check_k_atomicity_greedy(history, k);
    case Algorithm::oracle:
      return from_oracle(oracle_is_k_atomic(history, k));
    case Algorithm::auto_select:
      break;
  }
  // Auto selection mirrors the paper's landscape: polynomial deciders
  // for k = 1 (Gibbons-Korach) and k = 2 (LBT or FZF, both exact --
  // chosen per history by the ZoneProfile policy above); for k >= 3
  // the exact oracle when feasible, else the sound greedy checker with
  // an honest UNDECIDED when it finds no witness (Section VII open
  // problem).
  if (k == 1) return check_1atomicity_gk(history, /*check_preconditions=*/false);
  if (k == 2) {
    return select_2av_algorithm(zone_profile(history)) == Algorithm::lbt
               ? check_2atomicity_lbt(history, lbt_options)
               : check_2atomicity_fzf(history, fzf_options);
  }
  if (history.size() <= 64) {
    const Verdict v = from_oracle(oracle_is_k_atomic(history, k));
    if (v.outcome != Outcome::undecided) return v;
  }
  Verdict v = check_k_atomicity_greedy(history, k);
  if (v.yes()) return v;
  return Verdict::make_undecided(
      "no exact polynomial decider is known for k >= 3 (paper Section "
      "VII); greedy search found no witness",
      v.stats);
}

}  // namespace

Verdict verify_k_atomicity(const History& history,
                           const VerifyOptions& options) {
  if (options.k < 1) {
    return Verdict::make_precondition_failed("k must be >= 1");
  }
  const AnomalyReport report = find_anomalies(history);
  if (!report.empty()) {
    if (!options.normalize || !report.repairable()) {
      return Verdict::make_precondition_failed(
          "history has " +
          std::string(report.repairable() ? "repairable anomalies "
                                            "(enable options.normalize)"
                                          : "hard anomalies") +
          ": " + describe(report.anomalies.front(), history));
    }
    return dispatch(normalize(history), options.k, options.algorithm);
  }
  return dispatch(history, options.k, options.algorithm);
}

bool KeyedReport::all_yes() const {
  for (const auto& [key, verdict] : per_key) {
    if (!verdict.yes()) return false;
  }
  return true;
}

std::size_t KeyedReport::count(Outcome outcome) const {
  std::size_t n = 0;
  for (const auto& [key, verdict] : per_key) {
    if (verdict.outcome == outcome) ++n;
  }
  return n;
}

VerifyStats KeyedReport::total_stats() const {
  VerifyStats total;
  for (const auto& [key, verdict] : per_key) {
    total.epochs += verdict.stats.epochs;
    total.candidates_tried += verdict.stats.candidates_tried;
    total.steps += verdict.stats.steps;
    total.chunks += verdict.stats.chunks;
    total.dangling += verdict.stats.dangling;
    total.orders_tested += verdict.stats.orders_tested;
    total.nodes += verdict.stats.nodes;
  }
  return total;
}

std::string KeyedReport::summary() const {
  return format_key_counts(per_key.size(), count(Outcome::yes),
                           count(Outcome::no), count(Outcome::undecided),
                           count(Outcome::precondition_failed));
}

KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options) {
  KeyedReport report;
  const KeyedHistories split = split_by_key(trace);
  for (const auto& [key, history] : split.per_key) {
    report.per_key.emplace(key, verify_k_atomicity(history, options));
  }
  return report;
}

}  // namespace kav
