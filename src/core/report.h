// The unified verification report -- one result shape for both front
// doors of kav::Engine (core/engine.h). Batch verification and online
// monitoring used to return unrelated structs (KeyedReport,
// MonitorReport) with ad-hoc summary strings; Report subsumes both:
// per-key Verdicts plus (in monitor mode) per-key streaming findings,
// aggregate VerifyStats / MonitorStats totals, and one summary()
// format, so batch and monitor output are grep-compatible.
//
// The legacy KeyedReport::summary() and MonitorReport::summary() render
// through the same format_key_counts() formatter, so every tally line
// this library prints has the shape
//
//   <yes>/<total> keys atomic within bound, <no> NO, <undecided>
//   undecided, <invalid> invalid
#ifndef KAV_CORE_REPORT_H
#define KAV_CORE_REPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/streaming.h"
#include "core/verdict.h"
#include "util/time_types.h"

namespace kav {

// The one per-key tally formatter behind Report::summary(),
// KeyedReport::summary(), and MonitorReport::summary().
std::string format_key_counts(std::size_t total, std::size_t yes,
                              std::size_t no, std::size_t undecided,
                              std::size_t invalid);

// One-line rendering of a single verdict, e.g.
//   "YES (witness over 12 ops)"
//   "NO: chunk {3,4,7} is not 2-atomic"
std::string describe(const Verdict& verdict);

// Aggregated monitoring snapshot across all keys; available mid-stream
// via KeyedStreamingMonitor::stats() and as Report::monitor_totals /
// MonitorReport::totals after a run. (Defined here rather than in
// ingest/keyed_monitor.h so the unified Report can embed it without
// pulling the whole monitor machinery into every report consumer.)
struct MonitorStats {
  std::uint64_t operations_ingested = 0;  // ingest() calls accepted
  std::uint64_t late_arrivals = 0;        // beyond the reorder slack
  std::uint64_t violations = 0;           // all kinds, all keys
  std::uint64_t chunks_verified = 0;
  std::size_t keys = 0;
  // Max over keys of (checker window + reorder pending): the memory
  // high-water mark, bounded by O(slack + horizon) ops in flight.
  std::size_t peak_window = 0;
  // Max over keys of (newest start enqueued - checker watermark): how
  // far verification trails ingest.
  TimePoint max_watermark_lag = 0;
  double elapsed_seconds = 0.0;  // since the first ingest()
  double ops_per_second = 0.0;
  // Keys with at least one violation and their counts.
  std::map<std::string, std::uint64_t> violations_per_key;
};

// One key's result. Batch runs fill only the verdict; monitor runs add
// the key's streaming statistics and the individual findings
// (violations) behind a NO verdict.
struct KeyResult {
  Verdict verdict;
  StreamingStats stream;                     // monitor mode; zeros in batch
  std::vector<StreamingViolation> findings;  // monitor mode; empty in batch
};

struct Report {
  enum class Mode : unsigned char { batch, monitor };

  Mode mode = Mode::batch;
  std::map<std::string, KeyResult> per_key;
  // Batch: per-key decision-procedure work counters summed over all
  // keys (comparable between serial and sharded runs). Zeros in
  // monitor mode.
  VerifyStats verify_totals;
  // Monitor: throughput / window aggregates. Zeros in batch mode.
  MonitorStats monitor_totals;
  // True when the run stopped early -- a CancelToken fired or the
  // wall-clock deadline passed. Skipped shards appear in per_key as
  // UNDECIDED with the exact reasons in core/run_control.h.
  bool cancelled = false;
  std::string stop_reason;  // why, when cancelled
  // Selective-run accounting (RunOptions::key_filter): how many of the
  // requested keys the input actually held, how many distinct keys the
  // input offered in total, and the requested keys it did not contain
  // (sorted; such keys have no per_key entry). All zero/empty when no
  // filter was set -- selected == false then.
  bool selected = false;
  std::size_t keys_selected = 0;
  std::size_t keys_available = 0;
  std::vector<std::string> missing_keys;

  bool all_yes() const;
  std::size_t count(Outcome outcome) const;
  std::string summary() const;  // format_key_counts over per_key
};

}  // namespace kav

#endif  // KAV_CORE_REPORT_H
