#include "core/oracle.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "history/anomaly.h"

namespace kav {

namespace {

using Mask = std::uint64_t;

class OracleSearch {
 public:
  OracleSearch(const History& history, std::span<const Weight> weights,
               Weight budget, const OracleOptions& options)
      : history_(history),
        weights_(weights),
        budget_(budget),
        options_(options),
        n_(history.size()) {
    pred_mask_.resize(n_, 0);
    for (OpId a = 0; a < n_; ++a) {
      for (OpId b = 0; b < n_; ++b) {
        if (history_.precedes(b, a)) pred_mask_[a] |= Mask{1} << b;
      }
    }
    used_.resize(n_, 0);
    pending_reads_.resize(n_, 0);
    for (OpId w : history_.writes_by_start()) {
      pending_reads_[w] =
          static_cast<std::uint32_t>(history_.dictated_reads(w).size());
    }
    // Branch on writes in start-time order: tends to find witnesses of
    // well-formed histories without backtracking.
    write_order_.assign(history_.writes_by_start().begin(),
                        history_.writes_by_start().end());
  }

  OracleResult run() {
    OracleResult result;
    const bool found = dfs(0);
    result.nodes = nodes_;
    if (limit_hit_) {
      result.outcome = OracleOutcome::node_limit;
      result.reason = "node limit reached (" +
                      std::to_string(options_.node_limit) + ")";
      return result;
    }
    result.outcome = found ? OracleOutcome::yes : OracleOutcome::no;
    if (found) result.witness = order_;
    if (!found) result.reason = "exhaustive search found no k-atomic order";
    return result;
  }

 private:
  Weight weight_of(OpId w) const {
    return weights_.empty() ? Weight{1} : weights_[w];
  }

  bool is_placed(OpId id) const { return (placed_ >> id) & 1; }

  bool preds_placed(OpId id) const {
    return (pred_mask_[id] & ~placed_) == 0;
  }

  // Place every read that is ready; returns how many ops were placed so
  // the caller can unwind. A read is ready when its real-time
  // predecessors and dictating write are placed and the write's budget
  // still admits it.
  std::size_t close_reads() {
    std::size_t placed_count = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      for (OpId r : history_.reads()) {
        if (is_placed(r) || !preds_placed(r)) continue;
        const OpId w = history_.dictating_write(r);
        if (!is_placed(w) || used_[w] > budget_) continue;
        placed_ |= Mask{1} << r;
        order_.push_back(r);
        --pending_reads_[w];
        ++placed_count;
        progress = true;
      }
    }
    return placed_count;
  }

  void unwind(std::size_t count) {
    while (count-- > 0) {
      const OpId id = order_.back();
      order_.pop_back();
      placed_ &= ~(Mask{1} << id);
      if (history_.op(id).is_read()) {
        ++pending_reads_[history_.dictating_write(id)];
      }
    }
  }

  // A placed write whose budget is spent but that still has unplaced
  // dictated reads can never satisfy them: everything unplaced lands
  // after the current point.
  bool dead() const {
    for (OpId w : write_order_) {
      if (is_placed(w) && pending_reads_[w] > 0 && used_[w] > budget_) {
        return true;
      }
    }
    return false;
  }

  std::string state_key() const {
    std::string key;
    key.reserve(8 + 12 * write_order_.size());
    key.append(reinterpret_cast<const char*>(&placed_), sizeof placed_);
    for (OpId w : write_order_) {
      if (is_placed(w) && pending_reads_[w] > 0) {
        key.append(reinterpret_cast<const char*>(&w), sizeof w);
        key.append(reinterpret_cast<const char*>(&used_[w]), sizeof used_[w]);
      }
    }
    return key;
  }

  bool dfs(int depth) {
    if (limit_hit_) return false;
    if (++nodes_ > options_.node_limit) {
      limit_hit_ = true;
      return false;
    }

    const std::size_t reads_placed = close_reads();
    bool found = false;
    if (order_.size() == n_) {
      found = true;
    } else if (!dead()) {
      std::string key;
      bool skip = false;
      if (options_.memoize) {
        key = state_key();
        skip = dead_states_.contains(key);
      }
      if (!skip) {
        for (OpId w : write_order_) {
          if (is_placed(w) || !preds_placed(w)) continue;
          place_write(w);
          if (dfs(depth + 1)) {
            found = true;
            break;
          }
          unplace_write(w);
          if (limit_hit_) break;
        }
        if (!found && options_.memoize && !limit_hit_) {
          dead_states_.insert(std::move(key));
        }
      }
    }

    if (!found) unwind(reads_placed);
    return found;
  }

  void place_write(OpId w) {
    // Every placed write with pending reads accrues this write's weight.
    for (OpId other : write_order_) {
      if (is_placed(other) && pending_reads_[other] > 0) {
        used_[other] += weight_of(w);
      }
    }
    used_[w] = weight_of(w);
    placed_ |= Mask{1} << w;
    order_.push_back(w);
  }

  void unplace_write(OpId w) {
    order_.pop_back();
    placed_ &= ~(Mask{1} << w);
    for (OpId other : write_order_) {
      if (is_placed(other) && pending_reads_[other] > 0) {
        used_[other] -= weight_of(w);
      }
    }
    used_[w] = 0;
  }

  const History& history_;
  std::span<const Weight> weights_;
  const Weight budget_;
  const OracleOptions options_;
  const std::size_t n_;

  std::vector<Mask> pred_mask_;
  std::vector<Weight> used_;
  std::vector<std::uint32_t> pending_reads_;
  std::vector<OpId> write_order_;
  Mask placed_ = 0;
  std::vector<OpId> order_;
  std::unordered_set<std::string> dead_states_;
  std::uint64_t nodes_ = 0;
  bool limit_hit_ = false;
};

OracleResult run_oracle(const History& history, std::span<const Weight> weights,
                        Weight budget, const OracleOptions& options) {
  OracleResult invalid;
  invalid.outcome = OracleOutcome::invalid;
  if (budget < 1) {
    invalid.reason = "k must be >= 1";
    return invalid;
  }
  if (history.size() > 64) {
    invalid.reason = "oracle supports at most 64 operations, got " +
                     std::to_string(history.size());
    return invalid;
  }
  if (!weights.empty()) {
    if (weights.size() != history.size()) {
      invalid.reason = "weights size mismatch";
      return invalid;
    }
    for (OpId w : history.writes_by_start()) {
      if (weights[w] <= 0) {
        invalid.reason = "write weights must be positive";
        return invalid;
      }
    }
  }
  const AnomalyReport report = find_anomalies(history);
  if (!report.verifiable()) {
    invalid.reason = "history has anomalies: " +
                     describe(report.anomalies.front(), history);
    return invalid;
  }
  return OracleSearch(history, weights, budget, options).run();
}

}  // namespace

OracleResult oracle_is_k_atomic(const History& history, int k,
                                const OracleOptions& options) {
  return run_oracle(history, {}, k, options);
}

OracleResult oracle_is_weighted_k_atomic(const History& history,
                                         std::span<const Weight> weights,
                                         Weight k,
                                         const OracleOptions& options) {
  return run_oracle(history, weights, k, options);
}

}  // namespace kav
