// Exhaustive k-AV decision procedure for any k (and its weighted k-WAV
// generalization from Section V), used as ground truth in tests and as
// the only exact decider for k >= 3 -- the paper leaves polynomial
// algorithms for fixed k >= 3 open (Section VII), and proves the
// weighted problem NP-complete (Theorem 5.1), so exponential worst-case
// cost here is expected, not a defect.
//
// Method: depth-first search over valid total orders, built left to
// right. Available reads are placed eagerly (placing an available read
// never forecloses options: it constrains nothing and its own
// constraint only tightens if deferred); branching happens on writes
// only. A state is pruned when some placed write with still-unplaced
// dictated reads has exhausted its separation budget, and dead states
// are memoized by (placed-set, per-pending-write used budget).
//
// Limits: histories up to 64 operations (bitmask states); a node budget
// guards against exponential blowups in property sweeps.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_ORACLE_H
#define KAV_CORE_ORACLE_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "history/history.h"
#include "util/time_types.h"

namespace kav {

enum class OracleOutcome : unsigned char {
  yes,
  no,
  node_limit,  // undecided: search budget exhausted
  invalid,     // bad input (anomalies, > 64 ops, k < 1)
};

inline const char* to_string(OracleOutcome o) {
  switch (o) {
    case OracleOutcome::yes:
      return "YES";
    case OracleOutcome::no:
      return "NO";
    case OracleOutcome::node_limit:
      return "NODE-LIMIT";
    case OracleOutcome::invalid:
      return "INVALID";
  }
  return "unknown";
}

struct OracleOptions {
  std::uint64_t node_limit = 20'000'000;
  bool memoize = true;  // disable to cross-check the memoization itself
};

struct OracleResult {
  OracleOutcome outcome = OracleOutcome::invalid;
  std::vector<OpId> witness;  // filled on YES
  std::uint64_t nodes = 0;
  std::string reason;

  bool yes() const { return outcome == OracleOutcome::yes; }
  bool no() const { return outcome == OracleOutcome::no; }
  bool decided() const { return yes() || no(); }
};

OracleResult oracle_is_k_atomic(const History& history, int k,
                                const OracleOptions& options = {});

// Weighted variant: weights[op] is consulted for writes (reads ignored);
// all weights must be positive. A read's staleness is the total weight
// of writes from its dictating write (inclusive) up to the read, which
// must be at most k (Section V).
OracleResult oracle_is_weighted_k_atomic(const History& history,
                                         std::span<const Weight> weights,
                                         Weight k,
                                         const OracleOptions& options = {});

}  // namespace kav

#endif  // KAV_CORE_ORACLE_H
