// Computes the smallest k for which a history is k-atomic -- the
// paper's Section II-B observes this reduces to k-AV queries via binary
// search. The ladder of deciders mirrors the paper's landscape:
//
//   k = 1 : Gibbons-Korach zone conditions (polynomial, solved);
//   k = 2 : FZF (this paper's contribution, O(n log n));
//   k >= 3: exact only via the exponential oracle (the polynomial case
//           is the paper's primary open question, Section VII); for
//           histories too large for the oracle, the greedy checker
//           provides an upper bound (sound YES), reported as inexact.
//
// Every history that is anomaly-free is W-atomic where W is its number
// of writes (any valid order bounds a read's separation by the total
// write count), so the search space is [1, max(1, W)].
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_CORE_MINIMAL_K_H
#define KAV_CORE_MINIMAL_K_H

#include <string>

#include "core/oracle.h"
#include "history/history.h"

namespace kav {

struct MinimalKOptions {
  // Histories with at most this many operations use the oracle for
  // k >= 3 (exact); larger ones fall back to the greedy upper bound.
  std::size_t oracle_max_ops = 48;
  OracleOptions oracle;
  // Cap for the greedy upper-bound scan (and the oracle binary search).
  int max_k = 64;
};

struct MinimalKResult {
  int k = 0;         // 0 => not k-atomic for any k (hard anomalies)
  bool exact = false;
  std::string note;  // how the bound was obtained
};

MinimalKResult minimal_k(const History& history,
                         const MinimalKOptions& options = {});

}  // namespace kav

#endif  // KAV_CORE_MINIMAL_K_H
