#include "core/analysis.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/fzf.h"
#include "core/witness.h"
#include "util/simd.h"

namespace kav {

std::string StalenessSpectrum::to_string() const {
  std::ostringstream out;
  out << "reads: " << reads << ", fresh: " << fresh_fraction * 100.0
      << "%, mean separation: " << mean_separation
      << ", max separation: " << max_separation << "\n";
  for (std::size_t s = 0; s < histogram.size(); ++s) {
    if (histogram[s] == 0) continue;
    out << "  separation " << s << ": " << histogram[s] << " read(s)\n";
  }
  return out.str();
}

StalenessSpectrum staleness_spectrum(const History& history,
                                     std::span<const OpId> order) {
  // Witness validity is a precondition; re-check with a generous k (the
  // separation bound is what we are measuring, so only permutation and
  // precedence matter -- use k = #writes + 1 which no read can exceed).
  const int permissive_k = static_cast<int>(history.write_count()) + 1;
  const WitnessCheck check = validate_witness(history, order, permissive_k);
  if (!check.ok()) {
    throw std::invalid_argument("staleness_spectrum: invalid witness: " +
                                check.detail);
  }

  StalenessSpectrum spectrum;
  std::vector<std::int64_t> writes_before(history.size(), -1);
  std::int64_t writes_seen = 0;
  double total = 0;
  for (OpId id : order) {
    const Operation& op = history.op(id);
    if (op.is_write()) {
      writes_before[id] = writes_seen++;
      continue;
    }
    const OpId w = history.dictating_write(id);
    const std::int64_t separation = writes_seen - writes_before[w] - 1;
    const auto s = static_cast<std::size_t>(separation);
    if (spectrum.histogram.size() <= s) spectrum.histogram.resize(s + 1, 0);
    ++spectrum.histogram[s];
    ++spectrum.reads;
    total += static_cast<double>(separation);
    spectrum.max_separation =
        std::max(spectrum.max_separation, static_cast<int>(separation));
  }
  if (spectrum.reads > 0) {
    spectrum.mean_separation = total / static_cast<double>(spectrum.reads);
    spectrum.fresh_fraction =
        static_cast<double>(spectrum.histogram.empty() ? 0
                                                       : spectrum.histogram[0]) /
        static_cast<double>(spectrum.reads);
  }
  return spectrum;
}

std::string ZoneProfile::to_string() const {
  std::ostringstream out;
  out << clusters << " clusters (" << forward_zones << " forward, "
      << backward_zones << " backward), " << chunks << " chunks, "
      << dangling << " dangling; largest chunk: " << largest_chunk_clusters
      << " clusters, max backward/chunk: " << max_backward_per_chunk
      << "; c = " << max_concurrent_writes
      << ", reads/write = " << mean_reads_per_write;
  return out.str();
}

ZoneProfile zone_profile(const History& history) {
  ZoneProfile profile;
  profile.clusters = history.write_count();
  profile.max_concurrent_writes = history.max_concurrent_writes();
  if (history.write_count() > 0) {
    profile.mean_reads_per_write =
        static_cast<double>(history.read_count()) /
        static_cast<double>(history.write_count());
  }
  // One zone pass feeds both the forward/backward census and the chunk
  // set (compute_chunk_set used to recompute the zones internally).
  // The census runs as a SIMD pairwise scan over the zone endpoint
  // columns: forward <=> min finish < max start, by definition.
  const std::vector<Zone> zones = compute_zones(history);
  std::vector<TimePoint> min_finishes;
  std::vector<TimePoint> max_starts;
  min_finishes.reserve(zones.size());
  max_starts.reserve(zones.size());
  for (const Zone& zone : zones) {
    min_finishes.push_back(zone.min_finish);
    max_starts.push_back(zone.max_start);
  }
  profile.forward_zones = simd::count_less_i64(
      min_finishes.data(), max_starts.data(), zones.size());
  profile.backward_zones = zones.size() - profile.forward_zones;
  const ChunkStats chunk_stats = compute_chunk_stats(zones);
  profile.chunks = chunk_stats.chunks;
  profile.dangling = chunk_stats.dangling;
  profile.largest_chunk_clusters = chunk_stats.largest_chunk_clusters;
  profile.max_backward_per_chunk = chunk_stats.max_backward_per_chunk;
  return profile;
}

}  // namespace kav
