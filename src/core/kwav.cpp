#include "core/kwav.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace kav {

OracleResult check_weighted_k_atomicity(const WeightedHistory& wh, Weight k,
                                        const OracleOptions& options) {
  return oracle_is_weighted_k_atomic(wh.history, wh.weights, k, options);
}

namespace {

class BinPackingSearch {
 public:
  BinPackingSearch(std::vector<Weight> sizes, Weight capacity, int bins,
                   std::uint64_t node_limit)
      : sizes_(std::move(sizes)),
        capacity_(capacity),
        node_limit_(node_limit) {
    // Descending sizes: large items first maximizes pruning.
    std::sort(sizes_.begin(), sizes_.end(), std::greater<>());
    loads_.assign(static_cast<std::size_t>(bins), 0);
  }

  bool feasible() {
    if (std::any_of(sizes_.begin(), sizes_.end(),
                    [this](Weight s) { return s > capacity_; })) {
      return false;
    }
    const Weight total = std::accumulate(sizes_.begin(), sizes_.end(),
                                         Weight{0});
    if (total > capacity_ * static_cast<Weight>(loads_.size())) return false;
    return place(0);
  }

 private:
  bool place(std::size_t item) {
    if (item == sizes_.size()) return true;
    if (++nodes_ > node_limit_) return false;  // conservative: undecided->no
    // Symmetry breaking: never try two bins with equal load, and treat
    // the first empty bin as canonical.
    Weight last_load = -1;
    for (Weight& load : loads_) {
      if (load == last_load) continue;
      last_load = load;
      if (load + sizes_[item] > capacity_) continue;
      load += sizes_[item];
      if (place(item + 1)) return true;
      load -= sizes_[item];
      if (load == 0) break;  // all further empty bins are symmetric
    }
    return false;
  }

  std::vector<Weight> sizes_;
  const Weight capacity_;
  std::vector<Weight> loads_;
  const std::uint64_t node_limit_;
  std::uint64_t nodes_ = 0;
};

}  // namespace

bool bin_packing_feasible(const BinPackingInstance& instance,
                          std::uint64_t node_limit) {
  if (instance.bins < 0) return false;
  for (Weight s : instance.sizes) {
    if (s <= 0) throw std::invalid_argument("item sizes must be positive");
  }
  if (instance.sizes.empty()) return true;
  if (instance.bins == 0) return false;
  return BinPackingSearch(instance.sizes, instance.capacity, instance.bins,
                          node_limit)
      .feasible();
}

int first_fit_decreasing_bins(std::span<const Weight> sizes, Weight capacity) {
  std::vector<Weight> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<Weight> loads;
  for (Weight s : sorted) {
    if (s > capacity) {
      throw std::invalid_argument("item larger than bin capacity");
    }
    bool placed = false;
    for (Weight& load : loads) {
      if (load + s <= capacity) {
        load += s;
        placed = true;
        break;
      }
    }
    if (!placed) loads.push_back(s);
  }
  return static_cast<int>(loads.size());
}

KwavReduction reduce_bin_packing_to_kwav(const BinPackingInstance& instance) {
  if (instance.bins < 1) {
    throw std::invalid_argument("reduction requires at least one bin");
  }
  for (Weight s : instance.sizes) {
    if (s <= 0) throw std::invalid_argument("item sizes must be positive");
  }
  const int m = instance.bins;
  const auto n = static_cast<int>(instance.sizes.size());

  KwavReduction reduction;
  reduction.k = instance.capacity + 2;

  std::vector<Operation> ops;
  std::vector<Weight> weights;
  // Short operations, totally ordered with disjoint intervals:
  //   w(1) w(2) r(1) w(3) r(2) ... w(m) r(m-1) w(m+1) r(m)
  // Short op index i (0-based over that sequence) occupies
  //   [ (i+1)*S, (i+1)*S + S/2 ]
  // leaving room inside w(1) and r(m) for the long writes' endpoints.
  const TimePoint spacing = 1'000'000;
  const TimePoint width = spacing / 2;
  auto slot = [&](int i) {
    const TimePoint start = static_cast<TimePoint>(i + 1) * spacing;
    return std::pair{start, start + width};
  };
  // Values: short write i (1-based) stores value i; r(i) reads value i.
  // Long write j stores value m + 2 + j, never read.
  int slot_index = 0;
  auto push_short_write = [&](int write_number) {
    const auto [s, f] = slot(slot_index++);
    ops.push_back(make_write(s, f, write_number));
    weights.push_back(1);
    reduction.short_writes.push_back(static_cast<OpId>(ops.size() - 1));
  };
  auto push_short_read = [&](int write_number) {
    const auto [s, f] = slot(slot_index++);
    ops.push_back(make_read(s, f, write_number));
    weights.push_back(1);
    reduction.short_reads.push_back(static_cast<OpId>(ops.size() - 1));
  };

  push_short_write(1);
  for (int i = 2; i <= m + 1; ++i) {
    push_short_write(i);
    push_short_read(i - 1);
  }

  // Long writes: weight = item size, spanning the open gap from just
  // after w(1) finishes to just before w(m+1) starts, with staggered
  // endpoints for timestamp uniqueness. Starting after w(1).finish and
  // finishing before w(m+1).start *forces* every long write after w(1)
  // and before w(m+1) in any valid order ("which have to occur after
  // w(1) and before w(m+1)", Section V), while leaving it concurrent
  // with everything in between -- placeable into any bin.
  // Copy the two anchor stamps: pushing long writes reallocates `ops`,
  // so holding references across the loop would dangle.
  const TimePoint w1_finish = ops[reduction.short_writes.front()].finish;
  const TimePoint w_last_start = ops[reduction.short_writes.back()].start;
  if (n >= static_cast<int>(width) / 2 - 2) {
    throw std::invalid_argument("too many items for the reduction layout");
  }
  for (int j = 0; j < n; ++j) {
    const TimePoint start = w1_finish + 1 + j;
    const TimePoint finish = w_last_start - 1 - j;
    ops.push_back(make_write(start, finish, m + 2 + j));
    weights.push_back(instance.sizes[static_cast<std::size_t>(j)]);
    reduction.long_writes.push_back(static_cast<OpId>(ops.size() - 1));
  }

  reduction.instance = WeightedHistory{History(std::move(ops)),
                                       std::move(weights)};
  return reduction;
}

}  // namespace kav
