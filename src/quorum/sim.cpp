#include "quorum/sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace kav::quorum {

void QuorumConfig::validate() const {
  if (replicas < 1) throw std::invalid_argument("replicas must be >= 1");
  if (write_quorum < 1 || write_quorum > replicas) {
    throw std::invalid_argument("write_quorum must be in [1, replicas]");
  }
  if (read_quorum < 1 || read_quorum > replicas) {
    throw std::invalid_argument("read_quorum must be in [1, replicas]");
  }
  if (clients < 1) throw std::invalid_argument("clients must be >= 1");
  if (keys < 1) throw std::invalid_argument("keys must be >= 1");
  if (ops_per_client < 0) throw std::invalid_argument("ops_per_client < 0");
  if (read_fraction < 0 || read_fraction > 1) {
    throw std::invalid_argument("read_fraction must be in [0, 1]");
  }
  if (latency.min < 0 || latency.max < latency.min) {
    throw std::invalid_argument("bad latency range");
  }
  if (think_min < 0 || think_max < think_min) {
    throw std::invalid_argument("bad think range");
  }
  if (anti_entropy && anti_entropy_interval < 1) {
    throw std::invalid_argument("anti_entropy_interval must be >= 1");
  }
  if (clock_skew_max < 0) throw std::invalid_argument("clock_skew_max < 0");
}

namespace {

using Version = std::int64_t;

struct Register {
  Version version = 0;
  Value value = 0;
};

enum class EventKind : unsigned char {
  client_start,
  replica_apply_write,
  write_ack,
  replica_serve_read,
  read_reply,
  anti_entropy,
};

struct Event {
  TimePoint time = 0;
  std::uint64_t seq = 0;  // FIFO tie-break => deterministic runs
  EventKind kind = EventKind::client_start;
  int client = -1;
  std::uint64_t op_seq = 0;  // guards against events for finished ops
  int replica = -1;
  int key = -1;
  Version version = 0;
  Value value = 0;

  bool operator>(const Event& other) const {
    return time != other.time ? time > other.time : seq > other.seq;
  }
};

struct Inflight {
  bool active = false;
  bool is_write = false;
  int key = 0;
  TimePoint start = 0;
  Value written_value = 0;    // writes
  int responses_needed = 0;
  int responses_received = 0;
  Version best_version = -1;  // reads
  Value best_value = 0;
  Version freshest_completed_at_start = 0;  // staleness accounting
};

class Simulator {
 public:
  explicit Simulator(const QuorumConfig& config)
      : config_(config), rng_(config.seed) {
    config_.validate();
    registers_.assign(static_cast<std::size_t>(config_.replicas),
                      std::vector<Register>(
                          static_cast<std::size_t>(config_.keys)));
    inflight_.assign(static_cast<std::size_t>(config_.clients), Inflight{});
    ops_done_.assign(static_cast<std::size_t>(config_.clients), 0);
    op_seq_.assign(static_cast<std::size_t>(config_.clients), 0);
    skew_.reserve(static_cast<std::size_t>(config_.clients));
    for (int c = 0; c < config_.clients; ++c) {
      skew_.push_back(config_.clock_skew_max == 0
                          ? 0
                          : rng_.uniform(-config_.clock_skew_max,
                                         config_.clock_skew_max));
    }
    freshest_completed_.assign(static_cast<std::size_t>(config_.keys), 0);
  }

  SimResult run() {
    bootstrap();
    for (int c = 0; c < config_.clients; ++c) {
      push(Event{start_time_ + rng_.uniform(0, config_.think_max),
                 next_seq(), EventKind::client_start, c});
    }
    if (config_.anti_entropy && config_.replicas > 1) {
      push(Event{start_time_ + config_.anti_entropy_interval, next_seq(),
                 EventKind::anti_entropy});
    }
    while (!queue_.empty()) {
      const Event event = queue_.top();
      queue_.pop();
      stats_.end_time = std::max(stats_.end_time, event.time);
      dispatch(event);
    }
    SimResult result;
    result.trace = std::move(trace_);
    result.stats = stats_;
    return result;
  }

 private:
  // Each key gets an initial write applied to every replica and
  // recorded in the trace, so all later reads have a dictating write.
  void bootstrap() {
    for (int key = 0; key < config_.keys; ++key) {
      const TimePoint t = static_cast<TimePoint>(key) * 10;
      const Value value = ++value_counter_;
      const Version version = ++version_counter_;
      for (auto& replica : registers_) {
        replica[static_cast<std::size_t>(key)] = {version, value};
      }
      freshest_completed_[static_cast<std::size_t>(key)] = version;
      trace_.add(key_name(key), make_write(t, t + 5, value, /*client=*/-2));
    }
    start_time_ = static_cast<TimePoint>(config_.keys) * 10 + 100;
  }

  void dispatch(const Event& event) {
    switch (event.kind) {
      case EventKind::client_start:
        start_operation(event);
        break;
      case EventKind::replica_apply_write:
        apply_write(event);
        break;
      case EventKind::write_ack:
        on_write_ack(event);
        break;
      case EventKind::replica_serve_read:
        serve_read(event);
        break;
      case EventKind::read_reply:
        on_read_reply(event);
        break;
      case EventKind::anti_entropy:
        anti_entropy(event);
        break;
    }
  }

  void start_operation(const Event& event) {
    const int c = event.client;
    if (ops_done_[static_cast<std::size_t>(c)] >= config_.ops_per_client) {
      return;  // client retires
    }
    Inflight& op = inflight_[static_cast<std::size_t>(c)];
    op = Inflight{};
    op.active = true;
    op.key = static_cast<int>(rng_.bounded(
        static_cast<std::uint64_t>(config_.keys)));
    op.start = event.time;
    op.is_write = !rng_.bernoulli(config_.read_fraction);
    op.freshest_completed_at_start =
        freshest_completed_[static_cast<std::size_t>(op.key)];
    const std::uint64_t seq = ++op_seq_[static_cast<std::size_t>(c)];

    const std::vector<int> targets = choose_targets(op.is_write);
    op.responses_needed = config_.first_responders
                              ? (op.is_write ? config_.write_quorum
                                             : config_.read_quorum)
                              : static_cast<int>(targets.size());

    if (op.is_write) {
      op.written_value = ++value_counter_;
      const Version version = ++version_counter_;
      for (int replica : targets) {
        ++stats_.messages;
        push(Event{event.time + latency(), next_seq(),
                   EventKind::replica_apply_write, c, seq, replica, op.key,
                   version, op.written_value});
      }
    } else {
      for (int replica : targets) {
        ++stats_.messages;
        push(Event{event.time + latency(), next_seq(),
                   EventKind::replica_serve_read, c, seq, replica, op.key});
      }
    }
  }

  std::vector<int> choose_targets(bool is_write) {
    std::vector<int> all(static_cast<std::size_t>(config_.replicas));
    for (int i = 0; i < config_.replicas; ++i) {
      all[static_cast<std::size_t>(i)] = i;
    }
    if (config_.first_responders) return all;
    // Fixed random subset of exactly W (or R) replicas.
    const int quorum = is_write ? config_.write_quorum : config_.read_quorum;
    for (int i = 0; i < quorum; ++i) {
      const auto j = i + static_cast<int>(rng_.bounded(
                             static_cast<std::uint64_t>(config_.replicas - i)));
      std::swap(all[static_cast<std::size_t>(i)],
                all[static_cast<std::size_t>(j)]);
    }
    all.resize(static_cast<std::size_t>(quorum));
    return all;
  }

  void apply_write(const Event& event) {
    Register& reg = registers_[static_cast<std::size_t>(event.replica)]
                              [static_cast<std::size_t>(event.key)];
    if (event.version > reg.version) {
      reg = {event.version, event.value};
    }
    ++stats_.messages;
    push(Event{event.time + latency(), next_seq(), EventKind::write_ack,
               event.client, event.op_seq, event.replica, event.key,
               event.version, event.value});
  }

  void on_write_ack(const Event& event) {
    const int c = event.client;
    Inflight& op = inflight_[static_cast<std::size_t>(c)];
    if (!op.active || event.op_seq != op_seq_[static_cast<std::size_t>(c)]) {
      return;  // straggler ack for a completed operation
    }
    if (++op.responses_received < op.responses_needed) return;

    op.active = false;
    ++stats_.writes;
    ++ops_done_[static_cast<std::size_t>(c)];
    freshest_completed_[static_cast<std::size_t>(op.key)] =
        std::max(freshest_completed_[static_cast<std::size_t>(op.key)],
                 event.version);
    record(c, op.key,
           make_write(op.start, event.time, op.written_value, c));
    schedule_next(c, event.time);
  }

  void serve_read(const Event& event) {
    const Register& reg = registers_[static_cast<std::size_t>(event.replica)]
                                    [static_cast<std::size_t>(event.key)];
    ++stats_.messages;
    push(Event{event.time + latency(), next_seq(), EventKind::read_reply,
               event.client, event.op_seq, event.replica, event.key,
               reg.version, reg.value});
  }

  void on_read_reply(const Event& event) {
    const int c = event.client;
    Inflight& op = inflight_[static_cast<std::size_t>(c)];
    if (!op.active || event.op_seq != op_seq_[static_cast<std::size_t>(c)]) {
      return;  // straggler reply beyond the quorum
    }
    if (event.version > op.best_version) {
      op.best_version = event.version;
      op.best_value = event.value;
    }
    if (++op.responses_received < op.responses_needed) return;

    op.active = false;
    ++stats_.reads;
    ++ops_done_[static_cast<std::size_t>(c)];
    if (op.best_version < op.freshest_completed_at_start) {
      ++stats_.stale_reads;
    }
    record(c, op.key, make_read(op.start, event.time, op.best_value, c));
    schedule_next(c, event.time);
  }

  void anti_entropy(const Event& event) {
    // One random ordered pair pulls newer versions source -> target.
    const auto n = static_cast<std::uint64_t>(config_.replicas);
    const int source = static_cast<int>(rng_.bounded(n));
    int target = source;
    while (target == source) target = static_cast<int>(rng_.bounded(n));
    for (int key = 0; key < config_.keys; ++key) {
      const Register& src = registers_[static_cast<std::size_t>(source)]
                                      [static_cast<std::size_t>(key)];
      Register& dst = registers_[static_cast<std::size_t>(target)]
                                [static_cast<std::size_t>(key)];
      if (src.version > dst.version) dst = src;
    }
    stats_.messages += 2;
    ++stats_.anti_entropy_rounds;
    if (clients_active()) {
      push(Event{event.time + config_.anti_entropy_interval, next_seq(),
                 EventKind::anti_entropy});
    }
  }

  bool clients_active() const {
    for (int c = 0; c < config_.clients; ++c) {
      if (ops_done_[static_cast<std::size_t>(c)] < config_.ops_per_client) {
        return true;
      }
    }
    return false;
  }

  void schedule_next(int c, TimePoint now) {
    push(Event{now + rng_.uniform(config_.think_min, config_.think_max) + 1,
               next_seq(), EventKind::client_start, c});
  }

  void record(int client, int key, Operation op) {
    // Clock skew affects only what the trace reports, not the sim.
    const TimePoint shift = skew_[static_cast<std::size_t>(client)];
    op.start += shift;
    op.finish += shift;
    trace_.add(key_name(key), op);
  }

  static std::string key_name(int key) { return "k" + std::to_string(key); }

  TimePoint latency() {
    return rng_.uniform(config_.latency.min, config_.latency.max);
  }

  void push(Event event) { queue_.push(event); }
  std::uint64_t next_seq() { return ++event_seq_; }

  QuorumConfig config_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::vector<Register>> registers_;  // [replica][key]
  std::vector<Inflight> inflight_;
  std::vector<int> ops_done_;
  std::vector<std::uint64_t> op_seq_;
  std::vector<TimePoint> skew_;
  std::vector<Version> freshest_completed_;
  KeyedTrace trace_;
  SimStats stats_;
  Version version_counter_ = 0;
  Value value_counter_ = 0;
  std::uint64_t event_seq_ = 0;
  TimePoint start_time_ = 0;
};

}  // namespace

SimResult run_sloppy_quorum_sim(const QuorumConfig& config) {
  return Simulator(config).run();
}

}  // namespace kav::quorum
