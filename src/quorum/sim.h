// A discrete-event simulator of a Dynamo-style replicated key-value
// store with *sloppy* (non-strict) quorums -- the storage-system class
// the paper cites as its motivation (Section I): when read and write
// quorums are not guaranteed to overlap (R + W <= N), reads may return
// stale values, and k-atomicity is the property that bounds how stale.
//
// Model:
//   - N replicas hold per-key (version, value) registers; versions are
//     issued from a global counter at operation start, so writes are
//     totally ordered by issue time (last-writer-wins).
//   - Clients are closed-loop: issue an operation, wait for completion,
//     think, repeat. A write is sent to all replicas and completes at
//     the W-th acknowledgement; a read queries all replicas and
//     completes at the R-th response, returning the highest-versioned
//     value among those first R ("first responders"). Alternatively
//     (first_responders = false) each operation contacts a fixed random
//     subset of exactly W (or R) replicas and waits for all of them --
//     a sloppier discipline with more staleness at equal quorum sizes.
//   - Optional anti-entropy: periodic random pairwise sync pulls newer
//     versions between replicas (how Dynamo-like systems converge).
//   - Message delays are uniform in [latency.min, latency.max]; all
//     randomness comes from the seed, so traces are reproducible.
//   - Each key is bootstrapped by an initial write that completes on
//     all replicas before clients start (so no read lacks a dictating
//     write).
//   - Optional per-client clock skew perturbs *recorded* timestamps
//     (not the simulation itself), reproducing the measurement-error
//     anomalies Section II-C's accurate-timestamp assumption rules out.
//
// The output trace feeds directly into the verification pipeline; with
// R + W > N and first-responder quorums the traces are observed atomic,
// while R + W <= N yields genuine staleness -- exactly the behaviour
// the paper describes for non-strict quorum systems.
#ifndef KAV_QUORUM_SIM_H
#define KAV_QUORUM_SIM_H

#include <cstdint>
#include <string>

#include "history/keyed_trace.h"
#include "util/rng.h"
#include "util/time_types.h"

namespace kav::quorum {

struct LatencyModel {
  TimePoint min = 1;
  TimePoint max = 20;
};

struct QuorumConfig {
  int replicas = 3;      // N
  int write_quorum = 2;  // W
  int read_quorum = 2;   // R
  int clients = 4;
  int keys = 2;
  int ops_per_client = 50;
  double read_fraction = 0.7;
  LatencyModel latency;
  TimePoint think_min = 0;
  TimePoint think_max = 50;
  std::uint64_t seed = 1;
  // true: contact all replicas, complete on the first R/W responses.
  // false: contact a fixed random subset of exactly R/W replicas.
  bool first_responders = true;
  bool anti_entropy = true;
  TimePoint anti_entropy_interval = 200;
  // Recorded timestamps are shifted by a per-client constant drawn
  // uniformly from [-clock_skew_max, clock_skew_max].
  TimePoint clock_skew_max = 0;

  void validate() const;  // throws std::invalid_argument on nonsense
};

struct SimStats {
  std::uint64_t messages = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  // Reads returning a version older than the newest write *completed*
  // before the read started (an observable staleness event).
  std::uint64_t stale_reads = 0;
  std::uint64_t anti_entropy_rounds = 0;
  TimePoint end_time = 0;
};

struct SimResult {
  KeyedTrace trace;
  SimStats stats;
};

SimResult run_sloppy_quorum_sim(const QuorumConfig& config);

}  // namespace kav::quorum

#endif  // KAV_QUORUM_SIM_H
