#include "store/trace_store.h"

#if defined(__unix__) || defined(__APPLE__)
#define KAV_STORE_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "ingest/trace_source.h"
#include "obs/span.h"
#include "pipeline/thread_pool.h"
#include "store/fault_injection.h"
#include "util/crc32c.h"

namespace kav {

namespace {

// Best-effort durability (POSIX only; a no-op elsewhere): flush the
// written file's pages, and after a rename flush the directory so the
// new name itself survives a crash. "Best effort" because a failing
// fsync on a freshly written, successfully closed file has no useful
// recovery here beyond reporting nothing.
void sync_path(const std::filesystem::path& path) {
#if KAV_STORE_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

constexpr const char* kSegmentPrefix = "seg-";
constexpr const char* kSegmentSuffix = ".kavb";
constexpr const char* kTmpSuffix = ".tmp";
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "kav-store-manifest v1";

// Overflow-checked decimal parse; nullopt on empty input, a non-digit,
// or a value that does not fit uint64.
std::optional<std::uint64_t> parse_decimal(std::string_view digits) {
  if (digits.empty()) return std::nullopt;
  std::uint64_t number = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (number > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    number = number * 10 + digit;
  }
  return number;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The live segment set as committed on disk. Format (text, one fact
// per line, closed by a CRC32C of all preceding bytes -- see
// docs/FORMATS.md):
//
//   kav-store-manifest v1
//   next <next segment number>
//   seg <number>            -- one per live segment, in REPLAY order
//   crc32c <8 hex digits>
struct ManifestData {
  std::vector<std::uint64_t> numbers;  // replay order
  std::uint64_t next = 1;
};

// nullopt when the manifest does not exist (a legacy or fresh
// directory); throws on any structural or checksum problem -- the
// manifest is tiny and replaced atomically, so a damaged one means
// real corruption, and guessing the live set would defeat its point.
std::optional<ManifestData> read_manifest(const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("trace store: cannot open manifest " +
                             path.string());
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("trace store: corrupt manifest " + path.string() +
                             ": " + what);
  };
  if (text.empty() || text.back() != '\n') {
    fail("truncated (no trailing newline)");
  }
  // The last line carries the checksum of everything before it.
  std::size_t crc_begin = text.find_last_of('\n', text.size() - 2);
  crc_begin = crc_begin == std::string::npos ? 0 : crc_begin + 1;
  const std::string_view crc_line(text.data() + crc_begin,
                                  text.size() - crc_begin);
  constexpr std::string_view kCrcPrefix = "crc32c ";
  if (crc_line.size() != kCrcPrefix.size() + 8 + 1 ||
      crc_line.substr(0, kCrcPrefix.size()) != kCrcPrefix) {
    fail("missing checksum line");
  }
  std::uint32_t stored = 0;
  const char* hex_begin = crc_line.data() + kCrcPrefix.size();
  const auto [ptr, ec] = std::from_chars(hex_begin, hex_begin + 8, stored, 16);
  if (ec != std::errc{} || ptr != hex_begin + 8) fail("bad checksum digits");
  const std::uint32_t computed = crc::crc32c(text.data(), crc_begin);
  if (stored != computed) fail("checksum mismatch");

  std::istringstream lines(text.substr(0, crc_begin));
  std::string line;
  if (!std::getline(lines, line) || line != kManifestHeader) {
    fail("bad header line");
  }
  ManifestData data;
  if (!std::getline(lines, line) || line.rfind("next ", 0) != 0) {
    fail("missing next line");
  }
  const auto next = parse_decimal(std::string_view(line).substr(5));
  if (!next.has_value()) fail("bad next line");
  data.next = *next;
  while (std::getline(lines, line)) {
    if (line.rfind("seg ", 0) != 0) fail("bad segment line: " + line);
    const auto number = parse_decimal(std::string_view(line).substr(4));
    if (!number.has_value()) fail("bad segment line: " + line);
    data.numbers.push_back(*number);
  }
  return data;
}

}  // namespace

// Store instrumentation. Counters are lifetime totals; the three
// gauges are re-levelled from the live segment set after every
// committed mutation, so a scraper watching kav_store_bytes_on_disk
// sees retention and compaction land the moment the MANIFEST commit
// makes them real.
struct TraceStore::Metrics {
  obs::Counter& appends;
  obs::Counter& compaction_passes;
  obs::Counter& compaction_folds;
  obs::Counter& retention_drops;
  obs::Counter& bloom_checks;
  obs::Counter& bloom_skips;
  obs::Counter& bloom_false_positives;
  obs::Counter& crc_failures;
  obs::Counter& fsck_runs;
  obs::Counter& fsck_errors;
  obs::Counter& maintenance_errors;
  obs::Gauge& maintenance_ok;
  obs::Gauge& segments;
  obs::Gauge& bytes_on_disk;
  obs::Gauge& records;

  explicit Metrics(obs::MetricsRegistry& registry)
      : appends(registry.counter(
            "kav_store_appends_total",
            "Segments committed by append() or import_file().")),
        compaction_passes(registry.counter(
            "kav_store_compaction_passes_total",
            "run_maintenance() invocations (background or direct).")),
        compaction_folds(registry.counter(
            "kav_store_compaction_folds_total",
            "Tiered folds: adjacent same-tier segment runs rewritten "
            "into one next-tier segment.")),
        retention_drops(registry.counter(
            "kav_store_retention_drops_total",
            "Oldest segments dropped to respect retain_bytes.")),
        bloom_checks(registry.counter(
            "kav_store_bloom_checks_total",
            "Per-segment bloom probes by stat/contains/read_key.")),
        bloom_skips(registry.counter(
            "kav_store_bloom_skips_total",
            "Probes answered 'definitively absent' -- segments never "
            "touched beyond the filter.")),
        bloom_false_positives(registry.counter(
            "kav_store_bloom_false_positives_total",
            "Probes the filter passed but the key table refuted.")),
        crc_failures(registry.counter(
            "kav_store_crc_verify_failures_total",
            "Block checksum mismatches detected on any read path.")),
        fsck_runs(registry.counter("kav_store_fsck_runs_total",
                                   "fsck() invocations.")),
        fsck_errors(registry.counter("kav_store_fsck_errors_total",
                                     "Problems reported across fsck() runs.")),
        maintenance_errors(registry.counter(
            "kav_store_maintenance_errors_total",
            "Background maintenance passes that failed (see "
            "last_maintenance_error()).")),
        maintenance_ok(registry.gauge(
            "kav_store_maintenance_ok",
            "1 while the latest maintenance pass succeeded, 0 after a "
            "failure -- GET /healthz turns 503 on any 0.")),
        segments(registry.gauge("kav_store_segments",
                                "Live segments in the store.")),
        bytes_on_disk(registry.gauge("kav_store_bytes_on_disk",
                                     "Bytes across live segments.")),
        records(registry.gauge("kav_store_records",
                               "Records across live segments.")) {}
};

void TraceStore::refresh_gauges() const {
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  std::size_t count = 0;
  {
    util::ReaderMutexLock lock(segments_mutex_);
    count = segments_.size();
    for (const auto& segment : segments_) {
      bytes += segment->size_bytes();
      records += segment->total_records();
    }
  }
  metrics_->segments.set(static_cast<std::int64_t>(count));
  metrics_->bytes_on_disk.set(static_cast<std::int64_t>(bytes));
  metrics_->records.set(static_cast<std::int64_t>(records));
}

MappedSegmentOptions TraceStore::segment_options() const {
  MappedSegmentOptions options;
  options.crc_failures = &metrics_->crc_failures;
  return options;
}

namespace store_detail {

std::optional<std::uint64_t> parse_segment_number(const std::string& name) {
  const std::string_view prefix = kSegmentPrefix;
  const std::string_view suffix = kSegmentSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (!ends_with(name, suffix)) return std::nullopt;
  const std::string_view digits = std::string_view(name).substr(
      prefix.size(), name.size() - prefix.size() - suffix.size());
  return parse_decimal(digits);
}

std::optional<std::pair<std::size_t, std::size_t>> pick_fold_range(
    const std::vector<std::uint64_t>& segment_records,
    const CompactionOptions& options) {
  const std::size_t fanout = std::max<std::size_t>(options.fanout, 2);
  const std::uint64_t tier0 = std::max<std::uint64_t>(options.tier0_records, 1);
  const auto tier_of = [&](std::uint64_t records) {
    std::size_t tier = 0;
    std::uint64_t cap = tier0;
    while (records >= cap) {
      ++tier;
      if (cap > std::numeric_limits<std::uint64_t>::max() / fanout) break;
      cap *= fanout;
    }
    return tier;
  };
  // Oldest-first scan for a run of >= fanout adjacent same-tier
  // segments; the WHOLE run folds (a longer-than-fanout run can form
  // while a fold is deferred behind appends).
  std::size_t run_begin = 0;
  for (std::size_t i = 1; i <= segment_records.size(); ++i) {
    if (i == segment_records.size() ||
        tier_of(segment_records[i]) != tier_of(segment_records[run_begin])) {
      if (i - run_begin >= fanout) return std::make_pair(run_begin, i - run_begin);
      run_begin = i;
    }
  }
  return std::nullopt;
}

}  // namespace store_detail

std::filesystem::path TraceStore::segment_path(std::uint64_t number) const {
  char name[32];
  std::snprintf(name, sizeof name, "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(number), kSegmentSuffix);
  return directory_ / name;
}

std::filesystem::path TraceStore::manifest_path() const {
  return directory_ / kManifestName;
}

TraceStore::TraceStore(std::filesystem::path directory,
                       obs::MetricsRegistry* metrics)
    : directory_(std::move(directory)),
      metrics_(std::make_unique<Metrics>(
          metrics != nullptr ? *metrics : obs::MetricsRegistry::global())) {
  // Healthy until a maintenance pass says otherwise.
  metrics_->maintenance_ok.set(1);
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec || !std::filesystem::is_directory(directory_)) {
    throw std::runtime_error("trace store: cannot create directory " +
                             directory_.string());
  }
  std::map<std::uint64_t, std::filesystem::path> found;
  std::vector<std::filesystem::path> tmp_files;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (ends_with(name, kTmpSuffix)) {
      // An interrupted segment write or manifest commit; the rename
      // never happened, so the content was never live.
      tmp_files.push_back(entry.path());
      continue;
    }
    const auto number = store_detail::parse_segment_number(name);
    if (!number.has_value()) continue;
    found.emplace(*number, entry.path());
  }

  const auto load = [&](const std::filesystem::path& path) {
    auto segment =
        std::make_shared<const MappedSegment>(path.string(), segment_options());
    if (!segment->indexed()) {
      throw std::runtime_error("trace store: segment is not indexed (v2): " +
                               path.string());
    }
    return segment;
  };

  const std::optional<ManifestData> manifest = read_manifest(manifest_path());
  if (manifest.has_value()) {
    // The manifest IS the live set: serve exactly its segments, in its
    // (replay) order; everything else in the directory is a crash
    // stranded between a segment rename and the manifest commit.
    next_number_ = manifest->next;
    for (const std::uint64_t number : manifest->numbers) {
      const auto it = found.find(number);
      if (it == found.end()) {
        throw std::runtime_error(
            "trace store: manifest names missing or duplicate segment " +
            segment_path(number).filename().string() + " in " +
            directory_.string());
      }
      segments_.push_back(load(it->second));
      numbers_.push_back(number);
      next_number_ = std::max(next_number_, number + 1);
      found.erase(it);
    }
    for (const auto& [number, path] : found) {
      std::error_code remove_ec;
      std::filesystem::remove(path, remove_ec);  // orphan sweep, best effort
    }
  } else {
    // Legacy or fresh directory: adopt every segment in number order
    // and commit a manifest so the next open has one.
    for (const auto& [number, path] : found) {
      segments_.push_back(load(path));
      numbers_.push_back(number);
      next_number_ = std::max(next_number_, number + 1);
    }
    commit_manifest(numbers_, next_number_);
  }
  for (const auto& path : tmp_files) {
    std::error_code remove_ec;
    std::filesystem::remove(path, remove_ec);  // best effort
  }
  refresh_gauges();
}

TraceStore::~TraceStore() { disable_background_compaction(); }

std::vector<std::shared_ptr<const MappedSegment>> TraceStore::snapshot()
    const {
  util::ReaderMutexLock lock(segments_mutex_);
  return segments_;
}

std::size_t TraceStore::segment_count() const {
  util::ReaderMutexLock lock(segments_mutex_);
  return segments_.size();
}

std::vector<SegmentInfo> TraceStore::segments() const {
  const auto segments = snapshot();
  std::vector<SegmentInfo> out;
  out.reserve(segments.size());
  for (const auto& segment : segments) {
    SegmentInfo info;
    info.path = segment->path();
    info.records = segment->total_records();
    info.keys = segment->key_count();
    info.blocks = segment->block_count();
    info.bytes = segment->size_bytes();
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t TraceStore::total_records() const {
  std::uint64_t records = 0;
  for (const auto& segment : snapshot()) records += segment->total_records();
  return records;
}

void TraceStore::commit_manifest(const std::vector<std::uint64_t>& numbers,
                                 std::uint64_t next) const {
  std::string text = kManifestHeader;
  text += "\nnext " + std::to_string(next) + "\n";
  for (const std::uint64_t number : numbers) {
    text += "seg " + std::to_string(number) + "\n";
  }
  char crc_line[24];
  std::snprintf(crc_line, sizeof crc_line, "crc32c %08x\n",
                crc::crc32c(text.data(), text.size()));
  text += crc_line;

  const std::filesystem::path final_path = manifest_path();
  const std::filesystem::path tmp_path(final_path.string() + kTmpSuffix);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("trace store: cannot create " +
                               tmp_path.string());
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("trace store: error writing " +
                               tmp_path.string());
    }
  }
  store_detail::fault_point(store_detail::kFaultManifestAfterTmpWrite);
  sync_path(tmp_path);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp_path, remove_ec);
    throw std::runtime_error("trace store: cannot rename " + tmp_path.string() +
                             " to " + final_path.string());
  }
  store_detail::fault_point(store_detail::kFaultManifestAfterRename);
  sync_path(directory_);
}

template <typename Feed>
std::shared_ptr<const MappedSegment> TraceStore::write_segment(
    std::uint64_t number, std::size_t records_per_block, Feed&& feed) {
  const std::filesystem::path final_path = segment_path(number);
  const std::filesystem::path tmp_path(final_path.string() + kTmpSuffix);
  bool renamed = false;
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("trace store: cannot create " +
                                 tmp_path.string());
      }
      SegmentWriterOptions options;
      options.records_per_block = records_per_block;
      SegmentWriter writer(out, options);
      feed(writer);
      store_detail::fault_point(store_detail::kFaultSegmentBeforeFinish);
      writer.finish();
      if (!out) {
        throw std::runtime_error("trace store: error writing " +
                                 tmp_path.string());
      }
    }
    store_detail::fault_point(store_detail::kFaultSegmentAfterTmpWrite);
    sync_path(tmp_path);
    store_detail::fault_point(store_detail::kFaultSegmentAfterTmpSync);
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
      throw std::runtime_error("trace store: cannot rename " +
                               tmp_path.string() + " to " +
                               final_path.string());
    }
    renamed = true;
    store_detail::fault_point(store_detail::kFaultSegmentAfterRename);
    sync_path(directory_);
    auto segment = std::make_shared<const MappedSegment>(final_path.string(),
                                                         segment_options());
    if (!segment->indexed()) {
      throw std::runtime_error(
          "trace store: freshly written segment has no index: " +
          final_path.string());
    }
    return segment;
  } catch (...) {
    // The segment was never committed (the manifest does not name it):
    // leave nothing behind and burn no number -- the caller advances
    // next_number_ only on success.
    std::error_code ignore;
    std::filesystem::remove(tmp_path, ignore);
    if (renamed) std::filesystem::remove(final_path, ignore);
    throw;
  }
}

template <typename Feed>
std::filesystem::path TraceStore::append_segment_locked(
    std::size_t records_per_block, Feed&& feed) {
  const std::uint64_t number = next_number_;
  auto segment =
      write_segment(number, records_per_block, std::forward<Feed>(feed));
  const std::filesystem::path path(segment->path());

  std::vector<std::uint64_t> numbers;
  {
    // Writers are serialized on writer_mutex_, so nobody can swap the
    // set between this read and the exclusive swap below -- but reads
    // of numbers_ still take the shared side: that is the contract.
    util::ReaderMutexLock lock(segments_mutex_);
    numbers = numbers_;
  }
  numbers.push_back(number);
  store_detail::fault_point(store_detail::kFaultAppendBeforeManifest);
  try {
    commit_manifest(numbers, number + 1);
  } catch (...) {
    // Not committed: remove the renamed-but-unlisted segment so a
    // failed append is a perfect no-op.
    segment.reset();
    std::error_code ignore;
    std::filesystem::remove(path, ignore);
    throw;
  }
  next_number_ = number + 1;
  {
    util::WriterMutexLock lock(segments_mutex_);
    segments_.push_back(std::move(segment));
    numbers_ = std::move(numbers);
  }
  metrics_->appends.add(1);
  refresh_gauges();
  return path;
}

std::filesystem::path TraceStore::append(const KeyedTrace& trace,
                                         std::size_t records_per_block) {
  std::filesystem::path path;
  {
    util::MutexLock writer(writer_mutex_);
    path = append_segment_locked(
        records_per_block, [&](SegmentWriter& writer) { writer.add(trace); });
  }
  maybe_schedule_maintenance();
  return path;
}

std::filesystem::path TraceStore::import_file(const std::string& path,
                                              std::size_t records_per_block) {
  std::filesystem::path segment_file;
  {
    util::MutexLock writer(writer_mutex_);
    segment_file =
        append_segment_locked(records_per_block, [&](SegmentWriter& writer) {
          const std::unique_ptr<TraceSource> source = open_trace_source(path);
          KeyedOperation kop;
          while (source->next(kop)) writer.add(kop.key, kop.op);
        });
  }
  maybe_schedule_maintenance();
  return segment_file;
}

std::vector<std::string> TraceStore::keys() const {
  std::set<std::string_view> merged;
  const auto segments = snapshot();
  for (const auto& segment : segments) {
    merged.insert(segment->keys().begin(), segment->keys().end());
  }
  return {merged.begin(), merged.end()};
}

std::map<std::string, KeyStat> TraceStore::key_stats() const {
  std::map<std::string, KeyStat> merged;
  for (const auto& segment : snapshot()) {
    for (const std::string_view key : segment->keys()) {
      const KeyStat* s = segment->stat(key);
      auto [it, inserted] = merged.try_emplace(std::string(key), *s);
      if (inserted) continue;
      KeyStat& stat = it->second;
      stat.min_start = std::min(stat.min_start, s->min_start);
      stat.max_finish = std::max(stat.max_finish, s->max_finish);
      stat.records += s->records;
      stat.blocks += s->blocks;
    }
  }
  return merged;
}

std::optional<KeyStat> TraceStore::stat(const std::string& key) const {
  const BloomProbe probe = bloom_probe(key);
  std::optional<KeyStat> merged;
  for (const auto& segment : snapshot()) {
    metrics_->bloom_checks.add(1);
    if (!segment->maybe_contains(probe)) {  // definitively absent
      metrics_->bloom_skips.add(1);
      continue;
    }
    const KeyStat* s = segment->stat(key);
    if (s == nullptr) {  // bloom false positive
      metrics_->bloom_false_positives.add(1);
      continue;
    }
    if (!merged.has_value()) {
      merged = *s;
      continue;
    }
    merged->min_start = std::min(merged->min_start, s->min_start);
    merged->max_finish = std::max(merged->max_finish, s->max_finish);
    merged->records += s->records;
    merged->blocks += s->blocks;
  }
  return merged;
}

bool TraceStore::contains(const std::string& key) const {
  const BloomProbe probe = bloom_probe(key);
  for (const auto& segment : snapshot()) {
    metrics_->bloom_checks.add(1);
    if (!segment->maybe_contains(probe)) {
      metrics_->bloom_skips.add(1);
      continue;
    }
    if (segment->contains(key)) return true;
    metrics_->bloom_false_positives.add(1);
  }
  return false;
}

History TraceStore::read_key(const std::string& key) const {
  const BloomProbe probe = bloom_probe(key);
  const auto segments = snapshot();
  // First pass over the indexes: which segments really hold the key,
  // and how many records to reserve.
  std::vector<const MappedSegment*> holders;
  std::uint64_t expected = 0;
  for (const auto& segment : segments) {
    metrics_->bloom_checks.add(1);
    if (!segment->maybe_contains(probe)) {
      metrics_->bloom_skips.add(1);
      continue;
    }
    const KeyStat* s = segment->stat(key);
    if (s == nullptr) {
      metrics_->bloom_false_positives.add(1);
      continue;
    }
    holders.push_back(segment.get());
    expected += s->records;
  }
  std::vector<Operation> ops;
  ops.reserve(static_cast<std::size_t>(expected));
  for (const MappedSegment* segment : holders) {
    std::vector<Operation> part = segment->read_key(key);
    ops.insert(ops.end(), part.begin(), part.end());
  }
  return History(std::move(ops));
}

std::unique_ptr<IndexedTraceSource> TraceStore::open_source() const {
  return std::make_unique<IndexedTraceSource>(
      snapshot(), "store:" + directory_.string());
}

std::size_t TraceStore::compact(std::size_t first_n,
                                std::size_t records_per_block) {
  util::MutexLock writer(writer_mutex_);
  std::size_t count = 0;
  {
    util::ReaderMutexLock lock(segments_mutex_);
    count = segments_.size();
  }
  if (first_n == 0 || first_n > count) first_n = count;
  if (first_n < 2) return count;
  fold_range_locked(0, first_n, records_per_block);
  util::ReaderMutexLock lock(segments_mutex_);
  return segments_.size();
}

void TraceStore::fold_range_locked(std::size_t begin, std::size_t count,
                                   std::size_t records_per_block) {
  std::vector<std::shared_ptr<const MappedSegment>> victims;
  {
    util::ReaderMutexLock lock(segments_mutex_);
    victims.assign(
        segments_.begin() + static_cast<std::ptrdiff_t>(begin),
        segments_.begin() + static_cast<std::ptrdiff_t>(begin + count));
  }

  // The folded segment gets a NEW number and its replay position comes
  // from the manifest, so at no instant do the fold and its victims
  // both belong to the live set -- the double-replay window of the old
  // rename-over-victim scheme cannot exist.
  const std::uint64_t number = next_number_;
  store_detail::fault_point(store_detail::kFaultCompactBeforeFold);
  auto folded =
      write_segment(number, records_per_block, [&](SegmentWriter& writer) {
        // Stream segment by segment in replay order; O(block) memory.
        for (const auto& victim : victims) {
          MappedSegment::Cursor cursor = victim->cursor();
          std::string_view key;
          Operation op;
          while (cursor.next(key, op)) writer.add(key, op);
        }
      });

  std::vector<std::uint64_t> numbers;
  {
    util::ReaderMutexLock lock(segments_mutex_);
    numbers.reserve(numbers_.size() - count + 1);
    numbers.insert(numbers.end(), numbers_.begin(),
                   numbers_.begin() + static_cast<std::ptrdiff_t>(begin));
    numbers.push_back(number);
    numbers.insert(
        numbers.end(),
        numbers_.begin() + static_cast<std::ptrdiff_t>(begin + count),
        numbers_.end());
  }

  // The manifest rename is the commit point: before it, reopen serves
  // the victims and sweeps the fold; after it, the fold replaces them
  // and any not-yet-unlinked victim is the orphan.
  store_detail::fault_point(store_detail::kFaultCompactBeforeManifest);
  try {
    commit_manifest(numbers, number + 1);
  } catch (...) {
    folded.reset();
    std::error_code ignore;
    std::filesystem::remove(segment_path(number), ignore);
    throw;
  }
  store_detail::fault_point(store_detail::kFaultCompactAfterManifest);
  next_number_ = number + 1;
  {
    util::WriterMutexLock lock(segments_mutex_);
    segments_.erase(
        segments_.begin() + static_cast<std::ptrdiff_t>(begin),
        segments_.begin() + static_cast<std::ptrdiff_t>(begin + count));
    segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(begin),
                     std::move(folded));
    numbers_ = std::move(numbers);
  }
  std::vector<std::filesystem::path> victim_paths;
  victim_paths.reserve(victims.size());
  for (const auto& victim : victims) victim_paths.emplace_back(victim->path());
  victims.clear();  // drop mappings before deleting the files
  for (const auto& path : victim_paths) {
    store_detail::fault_point(store_detail::kFaultCompactMidUnlink);
    std::error_code remove_ec;
    std::filesystem::remove(path, remove_ec);  // best effort
  }
  metrics_->compaction_folds.add(1);
  refresh_gauges();
}

std::size_t TraceStore::apply_retention_locked(std::uint64_t retain_bytes) {
  std::size_t drop = 0;
  std::vector<std::uint64_t> numbers;
  std::vector<std::shared_ptr<const MappedSegment>> dropped;
  {
    util::ReaderMutexLock lock(segments_mutex_);
    std::uint64_t total = 0;
    for (const auto& segment : segments_) total += segment->size_bytes();
    while (drop + 1 < segments_.size() && total > retain_bytes) {
      total -= segments_[drop]->size_bytes();
      ++drop;
    }
    if (drop == 0) return 0;
    numbers.assign(numbers_.begin() + static_cast<std::ptrdiff_t>(drop),
                   numbers_.end());
    dropped.assign(segments_.begin(),
                   segments_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  commit_manifest(numbers, next_number_);
  {
    util::WriterMutexLock lock(segments_mutex_);
    segments_.erase(segments_.begin(),
                    segments_.begin() + static_cast<std::ptrdiff_t>(drop));
    numbers_ = std::move(numbers);
  }
  std::vector<std::filesystem::path> paths;
  paths.reserve(dropped.size());
  for (const auto& segment : dropped) paths.emplace_back(segment->path());
  dropped.clear();
  for (const auto& path : paths) {
    std::error_code remove_ec;
    std::filesystem::remove(path, remove_ec);  // best effort
  }
  metrics_->retention_drops.add(drop);
  refresh_gauges();
  return drop;
}

std::size_t TraceStore::run_maintenance(const CompactionOptions& options) {
  metrics_->compaction_passes.add(1);
  std::size_t actions = 0;
  for (;;) {
    // Reacquired per fold so appends interleave with a long run.
    util::MutexLock writer(writer_mutex_);
    std::vector<std::uint64_t> records;
    {
      util::ReaderMutexLock lock(segments_mutex_);
      records.reserve(segments_.size());
      for (const auto& segment : segments_) {
        records.push_back(segment->total_records());
      }
    }
    const auto range = store_detail::pick_fold_range(records, options);
    if (range.has_value()) {
      fold_range_locked(range->first, range->second,
                        std::max<std::size_t>(options.records_per_block, 1));
      ++actions;
      continue;
    }
    if (options.retain_bytes > 0) {
      actions += apply_retention_locked(options.retain_bytes);
    }
    return actions;
  }
}

FsckReport TraceStore::fsck() const {
  metrics_->fsck_runs.add(1);
  FsckReport report;
  for (const auto& segment : snapshot()) {
    ++report.segments;
    report.blocks += segment->block_count();
    if (!segment->has_integrity()) ++report.segments_without_integrity;
    report.records += segment->verify_integrity(report.errors);
  }
  metrics_->fsck_errors.add(report.errors.size());
  return report;
}

void TraceStore::enable_background_compaction(pipeline::ThreadPool& pool,
                                              CompactionOptions options) {
  util::MutexLock lock(bg_mutex_);
  bg_pool_ = &pool;
  bg_options_ = options;
  bg_enabled_ = true;
  schedule_maintenance_locked();
}

void TraceStore::disable_background_compaction() {
  util::MutexLock lock(bg_mutex_);
  bg_enabled_ = false;
  while (bg_running_) bg_cv_.wait(bg_mutex_);
  bg_pool_ = nullptr;
}

std::string TraceStore::last_maintenance_error() const {
  util::MutexLock lock(bg_mutex_);
  return last_maintenance_error_;
}

void TraceStore::maybe_schedule_maintenance() {
  util::MutexLock lock(bg_mutex_);
  schedule_maintenance_locked();
}

void TraceStore::schedule_maintenance_locked() {
  if (!bg_enabled_ || bg_running_ || bg_pool_ == nullptr) return;
  bg_running_ = true;
  try {
    // The returned future is dropped on purpose: the pool stores task
    // exceptions rather than terminating, and maintenance_task catches
    // everything anyway (failures land in last_maintenance_error_).
    bg_pool_->submit([this] { maintenance_task(); });
  } catch (...) {
    // Pool already shut down: background compaction silently stops
    // (the store still works, callers can compact synchronously).
    bg_running_ = false;
    bg_cv_.notify_all();
  }
}

void TraceStore::maintenance_task() {
  obs::Span span(&obs::Tracer::global(), "store.maintenance", "store");
  CompactionOptions options;
  {
    util::MutexLock lock(bg_mutex_);
    options = bg_options_;
  }
  std::string error;
  try {
    run_maintenance(options);
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown maintenance error";
  }
  if (!error.empty()) metrics_->maintenance_errors.add(1);
  // Recovers to healthy on the next clean pass; /healthz mirrors this.
  metrics_->maintenance_ok.set(error.empty() ? 1 : 0);
  util::MutexLock lock(bg_mutex_);
  if (!error.empty()) last_maintenance_error_ = error;
  bg_running_ = false;
  bg_cv_.notify_all();
}

}  // namespace kav
