#include "store/trace_store.h"

#if defined(__unix__) || defined(__APPLE__)
#define KAV_STORE_HAVE_FSYNC 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "ingest/trace_source.h"

namespace kav {

namespace {

// Best-effort durability (POSIX only; a no-op elsewhere): flush the
// written segment's pages, and after a rename flush the directory so
// the new name itself survives a crash. "Best effort" because a
// failing fsync on a freshly written, successfully closed file has no
// useful recovery here beyond reporting nothing.
void sync_path(const std::filesystem::path& path) {
#if KAV_STORE_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

constexpr const char* kSegmentPrefix = "seg-";
constexpr const char* kSegmentSuffix = ".kavb";

// seg-000001.kavb -> 1; nullopt for anything else (including .tmp
// leftovers, which the store ignores rather than trips over).
std::optional<std::uint64_t> parse_segment_number(const std::string& name) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t number = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    number = number * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return number;
}

}  // namespace

std::filesystem::path TraceStore::segment_path(std::uint64_t number) const {
  char name[32];
  std::snprintf(name, sizeof name, "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(number), kSegmentSuffix);
  return directory_ / name;
}

TraceStore::TraceStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec || !std::filesystem::is_directory(directory_)) {
    throw std::runtime_error("trace store: cannot create directory " +
                             directory_.string());
  }
  std::map<std::uint64_t, std::filesystem::path> found;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (!entry.is_regular_file()) continue;
    const auto number = parse_segment_number(entry.path().filename().string());
    if (!number.has_value()) continue;
    found.emplace(*number, entry.path());
  }
  for (const auto& [number, path] : found) {
    auto segment = std::make_shared<const MappedSegment>(path.string());
    if (!segment->indexed()) {
      throw std::runtime_error("trace store: segment is not indexed (v2): " +
                               path.string());
    }
    segments_.push_back(std::move(segment));
    numbers_.push_back(number);
    next_number_ = std::max(next_number_, number + 1);
  }
}

std::vector<SegmentInfo> TraceStore::segments() const {
  std::vector<SegmentInfo> out;
  out.reserve(segments_.size());
  for (const auto& segment : segments_) {
    SegmentInfo info;
    info.path = segment->path();
    info.records = segment->total_records();
    info.keys = segment->key_count();
    info.blocks = segment->block_count();
    info.bytes = segment->size_bytes();
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t TraceStore::total_records() const {
  std::uint64_t records = 0;
  for (const auto& segment : segments_) records += segment->total_records();
  return records;
}

template <typename Feed>
std::shared_ptr<const MappedSegment> TraceStore::write_segment(
    std::uint64_t number, std::size_t records_per_block, Feed&& feed) {
  const std::filesystem::path final_path = segment_path(number);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("trace store: cannot create " +
                               tmp_path.string());
    }
    SegmentWriterOptions options;
    options.records_per_block = records_per_block;
    SegmentWriter writer(out, options);
    feed(writer);
    writer.finish();
    if (!out) {
      throw std::runtime_error("trace store: error writing " +
                               tmp_path.string());
    }
  }
  sync_path(tmp_path);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    throw std::runtime_error("trace store: cannot rename " +
                             tmp_path.string() + " to " + final_path.string());
  }
  sync_path(directory_);
  auto segment = std::make_shared<const MappedSegment>(final_path.string());
  if (!segment->indexed()) {
    throw std::runtime_error("trace store: freshly written segment has no "
                             "index: " +
                             final_path.string());
  }
  return segment;
}

std::filesystem::path TraceStore::append(const KeyedTrace& trace,
                                         std::size_t records_per_block) {
  const std::uint64_t number = next_number_++;
  auto segment = write_segment(number, records_per_block,
                               [&](SegmentWriter& writer) {
                                 writer.add(trace);
                               });
  const std::filesystem::path path(segment->path());
  segments_.push_back(std::move(segment));
  numbers_.push_back(number);
  return path;
}

std::filesystem::path TraceStore::import_file(const std::string& path,
                                              std::size_t records_per_block) {
  const std::uint64_t number = next_number_++;
  auto segment = write_segment(
      number, records_per_block, [&](SegmentWriter& writer) {
        const std::unique_ptr<TraceSource> source = open_trace_source(path);
        KeyedOperation kop;
        while (source->next(kop)) writer.add(kop.key, kop.op);
      });
  const std::filesystem::path segment_file(segment->path());
  segments_.push_back(std::move(segment));
  numbers_.push_back(number);
  return segment_file;
}

std::vector<std::string> TraceStore::keys() const {
  std::set<std::string_view> merged;
  for (const auto& segment : segments_) {
    merged.insert(segment->keys().begin(), segment->keys().end());
  }
  return {merged.begin(), merged.end()};
}

std::map<std::string, KeyStat> TraceStore::key_stats() const {
  std::map<std::string, KeyStat> merged;
  for (const auto& segment : segments_) {
    for (const std::string_view key : segment->keys()) {
      const KeyStat* s = segment->stat(key);
      auto [it, inserted] = merged.try_emplace(std::string(key), *s);
      if (inserted) continue;
      KeyStat& stat = it->second;
      stat.min_start = std::min(stat.min_start, s->min_start);
      stat.max_finish = std::max(stat.max_finish, s->max_finish);
      stat.records += s->records;
      stat.blocks += s->blocks;
    }
  }
  return merged;
}

KeyStat TraceStore::stat(const std::string& key) const {
  KeyStat merged;
  for (const auto& segment : segments_) {
    const KeyStat* s = segment->stat(key);
    if (s == nullptr) continue;
    if (merged.records == 0) {
      merged.min_start = s->min_start;
      merged.max_finish = s->max_finish;
    } else {
      merged.min_start = std::min(merged.min_start, s->min_start);
      merged.max_finish = std::max(merged.max_finish, s->max_finish);
    }
    merged.records += s->records;
    merged.blocks += s->blocks;
  }
  return merged;
}

bool TraceStore::contains(const std::string& key) const {
  for (const auto& segment : segments_) {
    if (segment->contains(key)) return true;
  }
  return false;
}

History TraceStore::read_key(const std::string& key) const {
  std::vector<Operation> ops;
  ops.reserve(static_cast<std::size_t>(stat(key).records));
  for (const auto& segment : segments_) {
    if (!segment->contains(key)) continue;
    std::vector<Operation> part = segment->read_key(key);
    ops.insert(ops.end(), part.begin(), part.end());
  }
  return History(std::move(ops));
}

std::unique_ptr<IndexedTraceSource> TraceStore::open_source() const {
  return std::make_unique<IndexedTraceSource>(
      segments_, "store:" + directory_.string());
}

std::size_t TraceStore::compact(std::size_t first_n,
                                std::size_t records_per_block) {
  if (first_n == 0 || first_n > segments_.size()) first_n = segments_.size();
  if (first_n < 2) return segments_.size();

  // The folded segment takes the first victim's number so replay order
  // (segment-number order) is unchanged for the segments that remain.
  const std::uint64_t number = numbers_.front();
  std::vector<std::shared_ptr<const MappedSegment>> victims(
      segments_.begin(),
      segments_.begin() + static_cast<std::ptrdiff_t>(first_n));

  const std::filesystem::path final_path = segment_path(number);
  const std::filesystem::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("trace store: cannot create " +
                               tmp_path.string());
    }
    SegmentWriterOptions options;
    options.records_per_block = records_per_block;
    SegmentWriter writer(out, options);
    // Stream segment by segment in replay order; O(block) memory.
    for (const auto& victim : victims) {
      MappedSegment::Cursor cursor = victim->cursor();
      std::string_view key;
      Operation op;
      while (cursor.next(key, op)) writer.add(key, op);
    }
    writer.finish();
    if (!out) {
      throw std::runtime_error("trace store: error writing " +
                               tmp_path.string());
    }
  }

  // Commit order matters for failure containment: rename FIRST
  // (atomically replacing the first victim's file -- its mapping stays
  // valid, mappings outlive unlink/replace on POSIX), and only then
  // remove the other victims. A failed rename therefore throws with
  // every original segment still on disk and still served; only the
  // crash window between the rename and the last remove can leave
  // stale (never wrong) extra segments behind.
  sync_path(tmp_path);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    throw std::runtime_error("trace store: cannot rename " +
                             tmp_path.string() + " to " + final_path.string());
  }
  sync_path(directory_);
  auto folded = std::make_shared<const MappedSegment>(final_path.string());

  segments_.erase(segments_.begin(),
                  segments_.begin() + static_cast<std::ptrdiff_t>(first_n));
  numbers_.erase(numbers_.begin(),
                 numbers_.begin() + static_cast<std::ptrdiff_t>(first_n));
  std::vector<std::filesystem::path> victim_paths;
  victim_paths.reserve(victims.size());
  for (const auto& victim : victims) victim_paths.emplace_back(victim->path());
  victims.clear();  // drop mappings before deleting the files
  for (const auto& path : victim_paths) {
    if (path == final_path) continue;  // already replaced by the rename
    std::error_code remove_ec;
    std::filesystem::remove(path, remove_ec);  // best effort
  }
  segments_.insert(segments_.begin(), std::move(folded));
  numbers_.insert(numbers_.begin(), number);
  return segments_.size();
}

}  // namespace kav
