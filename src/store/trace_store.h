// TraceStore: a persistent repository of trace segments -- the
// out-of-core answer to "audit a multi-gigabyte trace without loading
// it". A store is a directory of numbered, indexed .kavb v2.1 segment
// files (seg-000001.kavb, seg-000002.kavb, ...) plus a MANIFEST
// naming the live segment set; every batch of operations appended
// becomes one immutable segment written via SegmentWriter, and every
// read goes through mmap-backed MappedSegments, so the store's memory
// footprint is O(keys + blocks) regardless of how many operations are
// on disk.
//
// Replay order is MANIFEST order (for freshly appended segments that
// is also number order; a compaction's folded segment keeps its
// victims' position under a new number). Within a segment the stream
// order is block order (key-grouped), with every key's own operation
// sequence preserved exactly -- so PER-KEY replay equals append order
// end to end (the only order verification depends on; see
// docs/FORMATS.md on v2 stream order), while cross-key interleaving
// is not reproduced.
//
// Durability: every mutation commits by atomic rename. A segment is
// born as seg-N.kavb.tmp, fsynced, renamed; the mutation then commits
// by writing a new MANIFEST (write MANIFEST.tmp + fsync + rename +
// directory fsync). Reopen serves exactly the manifest's segments and
// sweeps everything else (*.tmp leftovers, segments a crash stranded
// between rename and manifest commit), so a crash at ANY step leaves
// the store bit-identical to either the before or the after state --
// in particular compact() can no longer double-replay its victims
// (tests/store_crash_test.cpp proves every window). A directory
// without a MANIFEST (created by an older build) adopts every
// seg-*.kavb in number order and writes one.
//
// Integrity: segments carry the v2.1 CRC + bloom pages; reads verify
// block checksums transparently, cross-segment stat/contains/read_key
// skip segments whose bloom filter rules the key out, and fsck()
// re-verifies every byte on demand.
//
// Concurrency: const methods are safe to call concurrently with each
// other AND with writers (they serve an immutable snapshot of the
// segment set). Writers (append/import_file/compact/run_maintenance)
// serialize on an internal mutex. Background compaction, when
// enabled, runs run_maintenance() on a borrowed ThreadPool after each
// append; disable_background_compaction() (or the destructor)
// quiesces it -- destroy the store before the pool.
#ifndef KAV_STORE_TRACE_STORE_H
#define KAV_STORE_TRACE_STORE_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "history/history.h"
#include "history/keyed_trace.h"
#include "store/indexed_source.h"
#include "store/mapped_segment.h"
#include "store/segment_writer.h"
#include "util/thread_safety.h"

namespace kav {

namespace pipeline {
class ThreadPool;
}

struct SegmentInfo {
  std::filesystem::path path;
  std::uint64_t records = 0;
  std::size_t keys = 0;
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
};

// Policy for run_maintenance() / background compaction. Segments are
// binned into size tiers (tier t holds [tier0_records * fanout^t,
// tier0_records * fanout^(t+1)) records); when `fanout` adjacent
// segments share a tier, they fold into one segment of the next tier
// -- the classic tiered-LSM shape: every record is rewritten O(log
// total / log fanout) times, and segment counts stay logarithmic in
// data size.
struct CompactionOptions {
  std::size_t fanout = 4;          // segments per tier that trigger a fold
  std::size_t records_per_block = 4096;  // re-blocking granularity of folds
  std::uint64_t tier0_records = 1 << 16;  // tier-0 upper bound (records)
  // Retention cap in bytes; 0 = unlimited. When the store exceeds it
  // after folding, the OLDEST segments are dropped (never below one
  // segment). This deletes data -- it is for bounded-disk monitoring
  // deployments, not archival stores.
  std::uint64_t retain_bytes = 0;
};

// What fsck() found. `errors` is human-readable, one line per
// problem; an empty list means every block of every segment
// structurally validated, checksummed (v2.1), and decoded cleanly.
struct FsckReport {
  std::size_t segments = 0;
  std::uint64_t blocks = 0;
  std::uint64_t records = 0;  // records that decoded cleanly
  // Legacy 'KAVI' segments: readable, served, but carrying no CRC or
  // bloom pages to check (compaction rewrites them as v2.1).
  std::size_t segments_without_integrity = 0;
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
};

namespace store_detail {

// seg-000001.kavb -> 1; nullopt for anything else, INCLUDING digit
// strings that overflow uint64 (silent wrapping would let two
// distinct filenames collide to one segment number).
std::optional<std::uint64_t> parse_segment_number(const std::string& name);

// The tiered-compaction policy, pure and separately testable: given
// the live segments' record counts in replay order, returns the
// (first index, count) of the oldest run of >= fanout adjacent
// same-tier segments, or nullopt when nothing should fold. Only
// ADJACENT runs are ever folded -- folding non-adjacent segments
// would splice their keys' replay order.
std::optional<std::pair<std::size_t, std::size_t>> pick_fold_range(
    const std::vector<std::uint64_t>& segment_records,
    const CompactionOptions& options);

}  // namespace store_detail

class TraceStore {
 public:
  // Opens (creating the directory if needed), recovers to the
  // MANIFEST's segment set (sweeping *.tmp leftovers and segments a
  // crash stranded outside the manifest), and maps every live
  // segment. Throws std::runtime_error when the directory cannot be
  // created, the manifest is corrupt or names a missing segment, or a
  // live segment is corrupt or unindexed.
  //
  // The store instruments itself (kav_store_* series: appends,
  // compaction folds, bloom hit/miss, CRC failures, fsck results, and
  // segments/bytes/records level gauges) into `metrics`; nullptr means
  // the process registry, obs::MetricsRegistry::global(), and
  // Engine::open_store injects the engine's. The registry must outlive
  // the store. The level gauges describe ONE store -- point several
  // stores at distinct registries if their sizes must stay apart.
  explicit TraceStore(std::filesystem::path directory,
                      obs::MetricsRegistry* metrics = nullptr);
  // Quiesces background compaction (waits for an in-flight pass).
  ~TraceStore();

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  const std::filesystem::path& directory() const { return directory_; }
  std::size_t segment_count() const KAV_EXCLUDES(segments_mutex_);
  std::vector<SegmentInfo> segments() const KAV_EXCLUDES(segments_mutex_);
  std::uint64_t total_records() const KAV_EXCLUDES(segments_mutex_);

  // Writes `trace` as a new indexed segment; returns its path.
  std::filesystem::path append(const KeyedTrace& trace,
                               std::size_t records_per_block = 4096)
      KAV_EXCLUDES(writer_mutex_);
  // Streams a trace file in any readable format (text, .kavb v1 or
  // v2) into a new indexed segment -- O(chunk) memory for binary
  // inputs. Returns the new segment's path.
  std::filesystem::path import_file(const std::string& path,
                                    std::size_t records_per_block = 4096)
      KAV_EXCLUDES(writer_mutex_);

  // Key listing/statting across all segments, straight from the
  // indexes (no record decoding). keys() is sorted. stat/contains
  // consult each segment's bloom filter first, so a key that is
  // absent (or held by few segments) costs k bit-probes per segment,
  // not a key-table lookup per segment.
  std::vector<std::string> keys() const;
  std::map<std::string, KeyStat> key_stats() const;
  std::optional<KeyStat> stat(const std::string& key) const;
  bool contains(const std::string& key) const;

  // One key's operations across all segments, in replay order.
  History read_key(const std::string& key) const;

  // The whole store as one source (sequential + selective). The source
  // holds shared mappings, so it stays valid across later append()s
  // and compactions (it serves the segments that existed when it was
  // opened).
  std::unique_ptr<IndexedTraceSource> open_source() const;

  // Folds the `first_n` oldest segments (0 = all) into one indexed
  // segment, re-blocked at records_per_block. No-op when fewer than
  // two segments would fold. Returns the segment count afterwards.
  // Crash-atomic: the fold commits via the MANIFEST rename; a crash
  // at any step reopens as either all victims or only the folded
  // segment, never both.
  std::size_t compact(std::size_t first_n = 0,
                      std::size_t records_per_block = 4096)
      KAV_EXCLUDES(writer_mutex_);

  // One synchronous maintenance pass: tiered folds per `options`
  // (pick_fold_range) until none applies, then retention. Returns the
  // number of folds + retention drops performed. This is exactly what
  // the background task runs; callers without a pool can drive it
  // directly.
  std::size_t run_maintenance(const CompactionOptions& options = {})
      KAV_EXCLUDES(writer_mutex_);

  // Re-verifies every live segment: footer structure, per-block
  // CRC32C, every record decode, bloom self-check. Read-only and
  // safe concurrently with everything else.
  FsckReport fsck() const;

  // Schedules run_maintenance(options) on `pool` after every append/
  // import (one pass in flight at a time). The pool is borrowed: it
  // must outlive the store (or a disable_background_compaction()
  // call). Replaces any earlier enable's pool/options.
  void enable_background_compaction(pipeline::ThreadPool& pool,
                                    CompactionOptions options = {})
      KAV_EXCLUDES(bg_mutex_);
  // Quiesce: no new passes are scheduled, and any in-flight pass has
  // finished when this returns. Idempotent.
  void disable_background_compaction() KAV_EXCLUDES(bg_mutex_);
  // Last error a background pass swallowed ("" when none): background
  // maintenance must not crash the process, so failures land here.
  std::string last_maintenance_error() const KAV_EXCLUDES(bg_mutex_);

 private:
  std::filesystem::path segment_path(std::uint64_t number) const;
  std::filesystem::path manifest_path() const;

  // Reader-side view of the live segment set. Cheap (shared_ptr
  // copies) and immutable once taken.
  std::vector<std::shared_ptr<const MappedSegment>> snapshot() const
      KAV_EXCLUDES(segments_mutex_);

  // Writes a segment file at `number` from `feed(writer)`, maps it,
  // and returns the mapping. The file is written under a .tmp name,
  // fsynced (POSIX; best effort), renamed into place, and the
  // directory is fsynced. On any failure the .tmp (and, past the
  // rename, the final file) is unlinked before the exception leaves
  // -- nothing to leak, no segment number burned (the caller only
  // advances next_number_ on success).
  template <typename Feed>
  std::shared_ptr<const MappedSegment> write_segment(
      std::uint64_t number, std::size_t records_per_block, Feed&& feed);

  // Atomically replaces the MANIFEST with one naming `numbers` (in
  // replay order) and `next`. This rename IS the commit point of
  // every mutation.
  void commit_manifest(const std::vector<std::uint64_t>& numbers,
                       std::uint64_t next) const;

  // Shared append path.
  template <typename Feed>
  std::filesystem::path append_segment_locked(std::size_t records_per_block,
                                              Feed&& feed)
      KAV_REQUIRES(writer_mutex_);
  // Folds segments_[begin, begin+count) into one new segment;
  // count >= 2.
  void fold_range_locked(std::size_t begin, std::size_t count,
                         std::size_t records_per_block)
      KAV_REQUIRES(writer_mutex_);
  // Drops oldest segments while over `retain_bytes` (keeps >= 1).
  // Returns segments dropped.
  std::size_t apply_retention_locked(std::uint64_t retain_bytes)
      KAV_REQUIRES(writer_mutex_);

  void maybe_schedule_maintenance() KAV_EXCLUDES(bg_mutex_);
  void schedule_maintenance_locked() KAV_REQUIRES(bg_mutex_);
  void maintenance_task() KAV_EXCLUDES(bg_mutex_, writer_mutex_);

  // Re-levels the segments/bytes/records gauges from the live set;
  // called after every committed mutation (and once at open).
  void refresh_gauges() const KAV_EXCLUDES(segments_mutex_);
  // Per-segment open options carrying the CRC-failure counter hook.
  MappedSegmentOptions segment_options() const;

  std::filesystem::path directory_;

  // kav_store_* instruments (trace_store.cpp); owned by the registry.
  struct Metrics;
  std::unique_ptr<Metrics> metrics_;

  // Writer serialization: append/import/compact/maintenance hold this
  // for their full duration (fold passes reacquire per fold so
  // appends interleave with a long compaction run). Always taken
  // before segments_mutex_.
  util::Mutex writer_mutex_ KAV_ACQUIRED_BEFORE(segments_mutex_);
  // Guards the in-memory segment set: writers swap under the
  // exclusive side, readers (snapshot(), and writer-path scans) copy
  // under the shared side. Only writers (serialized above) ever
  // modify, so a writer's shared hold can never see a torn set.
  mutable util::SharedMutex segments_mutex_;
  std::vector<std::shared_ptr<const MappedSegment>> segments_
      KAV_GUARDED_BY(segments_mutex_);  // replay order
  std::vector<std::uint64_t> numbers_
      KAV_GUARDED_BY(segments_mutex_);  // parallel to segments_
  std::uint64_t next_number_ KAV_GUARDED_BY(writer_mutex_) = 1;

  // Background compaction accounting (quiesce mirrors the keyed
  // monitor's drain: flag off, wait for running to clear).
  mutable util::Mutex bg_mutex_;
  util::CondVar bg_cv_;
  bool bg_enabled_ KAV_GUARDED_BY(bg_mutex_) = false;
  bool bg_running_ KAV_GUARDED_BY(bg_mutex_) = false;
  pipeline::ThreadPool* bg_pool_ KAV_GUARDED_BY(bg_mutex_) = nullptr;
  CompactionOptions bg_options_ KAV_GUARDED_BY(bg_mutex_);
  std::string last_maintenance_error_ KAV_GUARDED_BY(bg_mutex_);
};

}  // namespace kav

#endif  // KAV_STORE_TRACE_STORE_H
