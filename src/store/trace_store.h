// TraceStore: a persistent repository of trace segments -- the
// out-of-core answer to "audit a multi-gigabyte trace without loading
// it". A store is a directory of numbered, indexed .kavb v2 segment
// files (seg-000001.kavb, seg-000002.kavb, ...); every batch of
// operations appended becomes one immutable segment written via
// SegmentWriter, and every read goes through mmap-backed
// MappedSegments, so the store's memory footprint is O(keys + blocks)
// regardless of how many operations are on disk.
//
// Replay order is segment-number order; within a segment the stream
// order is block order (key-grouped), with every key's own operation
// sequence preserved exactly -- so PER-KEY replay equals append order
// end to end (the only order verification depends on; see
// docs/FORMATS.md on v2 stream order), while cross-key interleaving
// is not reproduced. compact() folds the N oldest segments into one
// (re-blocked, freshly indexed) segment that takes the first folded
// segment's number, so that ordering contract is preserved and
// per-key reads touch fewer, larger blocks afterwards.
//
// open_source() serves the whole store as one IndexedTraceSource:
// sequential streaming for monitors, per-key selective loads for
// kav::Engine's RunOptions::key_filter.
//
// Concurrency: const methods are safe to call concurrently (they read
// immutable mappings); append/import/compact are not -- one writer at
// a time, external to this class. Compaction survives ordinary
// failures (a failed write or rename throws with every original
// segment intact and still served) but is not crash-atomic: the
// folded segment is renamed over the first victim before the other
// victims are removed, so a crash inside that window leaves
// already-folded data also present under its original seg-*.kavb
// names -- recover by deleting those stale files (the folded segment
// supersedes them) before reopening the store.
#ifndef KAV_STORE_TRACE_STORE_H
#define KAV_STORE_TRACE_STORE_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "history/history.h"
#include "history/keyed_trace.h"
#include "store/indexed_source.h"
#include "store/mapped_segment.h"
#include "store/segment_writer.h"

namespace kav {

struct SegmentInfo {
  std::filesystem::path path;
  std::uint64_t records = 0;
  std::size_t keys = 0;
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
};

class TraceStore {
 public:
  // Opens (creating the directory if needed) and maps every
  // seg-*.kavb segment. Throws std::runtime_error when the directory
  // cannot be created or a segment is corrupt or unindexed.
  explicit TraceStore(std::filesystem::path directory);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  const std::filesystem::path& directory() const { return directory_; }
  std::size_t segment_count() const { return segments_.size(); }
  std::vector<SegmentInfo> segments() const;
  std::uint64_t total_records() const;

  // Writes `trace` as a new indexed segment; returns its path.
  std::filesystem::path append(const KeyedTrace& trace,
                               std::size_t records_per_block = 4096);
  // Streams a trace file in any readable format (text, .kavb v1 or
  // v2) into a new indexed segment -- O(chunk) memory for binary
  // inputs. Returns the new segment's path.
  std::filesystem::path import_file(const std::string& path,
                                    std::size_t records_per_block = 4096);

  // Key listing/statting across all segments, straight from the
  // indexes (no record decoding). keys() is sorted.
  std::vector<std::string> keys() const;
  std::map<std::string, KeyStat> key_stats() const;
  // Aggregate stat; records == 0 when the key is absent.
  KeyStat stat(const std::string& key) const;
  bool contains(const std::string& key) const;

  // One key's operations across all segments, in replay order.
  History read_key(const std::string& key) const;

  // The whole store as one source (sequential + selective). The source
  // holds shared mappings, so it stays valid across later append()s
  // (it serves the segments that existed when it was opened).
  std::unique_ptr<IndexedTraceSource> open_source() const;

  // Folds the `first_n` oldest segments (0 = all) into one indexed
  // segment, re-blocked at records_per_block. No-op when fewer than
  // two segments would fold. Returns the segment count afterwards.
  std::size_t compact(std::size_t first_n = 0,
                      std::size_t records_per_block = 4096);

 private:
  std::filesystem::path segment_path(std::uint64_t number) const;
  // Writes a segment file at `number` from `feed(writer)`, maps it,
  // and returns the mapping. The file is written under a .tmp name,
  // fsynced (POSIX; best effort), renamed into place, and the
  // directory is fsynced so the name survives a crash.
  template <typename Feed>
  std::shared_ptr<const MappedSegment> write_segment(
      std::uint64_t number, std::size_t records_per_block, Feed&& feed);

  std::filesystem::path directory_;
  std::vector<std::shared_ptr<const MappedSegment>> segments_;  // number order
  std::vector<std::uint64_t> numbers_;  // parallel to segments_
  std::uint64_t next_number_ = 1;
};

}  // namespace kav

#endif  // KAV_STORE_TRACE_STORE_H
