// Crash-fault injection for the store's durability tests
// (tests/store_crash_test.cpp). The TraceStore sprinkles named
// fault_point() calls between the steps of its commit protocols
// (segment write, manifest commit, compaction fold/unlink); when the
// KAV_STORE_FAULT_POINT environment variable names one of them, the
// process dies on the spot via _Exit -- no stack unwinding, no
// destructors, no stream flushes -- which is as close as a test can
// get to power loss while the page cache (and thus every completed
// write()) stays visible to the parent. The crash matrix forks a
// child per (operation sequence, fault point) pair and asserts that
// reopening the store afterwards yields bit-identical content to a
// run that never crashed.
//
// In production builds the hooks cost one getenv per call on a cold
// path (segment seal / manifest commit), which is noise next to the
// fsyncs they sit between. getenv is deliberately NOT cached: the
// test parent sets the variable in a forked child only, and a static
// read in the parent would poison every child with the parent's
// (unset) value.
#ifndef KAV_STORE_FAULT_INJECTION_H
#define KAV_STORE_FAULT_INJECTION_H

#include <cstdlib>
#include <cstring>

namespace kav::store_detail {

// Every crash site, between each pair of steps in the commit
// protocols of trace_store.cpp. The names are stable test surface.
inline constexpr const char* kFaultSegmentBeforeFinish =
    "segment.before-finish";
inline constexpr const char* kFaultSegmentAfterTmpWrite =
    "segment.after-tmp-write";
inline constexpr const char* kFaultSegmentAfterTmpSync =
    "segment.after-tmp-sync";
inline constexpr const char* kFaultSegmentAfterRename =
    "segment.after-rename";
inline constexpr const char* kFaultAppendBeforeManifest =
    "append.before-manifest";
inline constexpr const char* kFaultManifestAfterTmpWrite =
    "manifest.after-tmp-write";
inline constexpr const char* kFaultManifestAfterRename =
    "manifest.after-rename";
inline constexpr const char* kFaultCompactBeforeFold = "compact.before-fold";
inline constexpr const char* kFaultCompactBeforeManifest =
    "compact.before-manifest";
inline constexpr const char* kFaultCompactAfterManifest =
    "compact.after-manifest";
inline constexpr const char* kFaultCompactMidUnlink = "compact.mid-unlink";

inline constexpr const char* kAllFaultPoints[] = {
    kFaultSegmentBeforeFinish,  kFaultSegmentAfterTmpWrite,
    kFaultSegmentAfterTmpSync,  kFaultSegmentAfterRename,
    kFaultAppendBeforeManifest, kFaultManifestAfterTmpWrite,
    kFaultManifestAfterRename,  kFaultCompactBeforeFold,
    kFaultCompactBeforeManifest, kFaultCompactAfterManifest,
    kFaultCompactMidUnlink,
};

// Distinguishes an injected crash from any real exit status the child
// could produce.
inline constexpr int kFaultExitCode = 42;

inline void fault_point(const char* name) {
  const char* want = std::getenv("KAV_STORE_FAULT_POINT");
  if (want != nullptr && std::strcmp(want, name) == 0) {
    std::_Exit(kFaultExitCode);
  }
}

}  // namespace kav::store_detail

#endif  // KAV_STORE_FAULT_INJECTION_H
