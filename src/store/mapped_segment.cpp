#include "store/mapped_segment.h"

#if defined(__unix__) || defined(__APPLE__)
#define KAV_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "ingest/binary_trace.h"
#include "util/crc32c.h"

namespace kav {

namespace {

using wire::load_u16;
using wire::load_u32;
using wire::load_u64;

std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace

void MappedSegment::fail(std::uint64_t offset, const std::string& what) const {
  throw std::runtime_error("segment " + path_ + ": error at byte " +
                           std::to_string(offset) + ": " + what);
}

void MappedSegment::unmap() noexcept {
#if KAV_STORE_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, size_);
    map_base_ = nullptr;
  }
#endif
  data_ = nullptr;
}

MappedSegment::MappedSegment(const std::string& path,
                             MappedSegmentOptions options)
    : path_(path), options_(options) {
#if KAV_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      size_ = static_cast<std::size_t>(st.st_size);
      if (size_ > 0) {
        void* base = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
          map_base_ = base;
          data_ = static_cast<const unsigned char*>(base);
        }
      }
    }
    ::close(fd);
  }
#endif
  if (data_ == nullptr) {
    // mmap unavailable (platform, filesystem, or an empty file, which
    // cannot be mapped): fall back to reading into a heap buffer. The
    // rest of the class only sees (data_, size_).
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open segment: " + path);
    in.seekg(0, std::ios::end);
    const std::streamoff end = in.tellg();
    in.seekg(0, std::ios::beg);
    size_ = end > 0 ? static_cast<std::size_t>(end) : 0;
    heap_fallback_.resize(size_);
    if (size_ > 0) {
      in.read(reinterpret_cast<char*>(heap_fallback_.data()),
              static_cast<std::streamsize>(size_));
      if (static_cast<std::size_t>(in.gcount()) != size_) {
        throw std::runtime_error("cannot read segment: " + path);
      }
    }
    data_ = heap_fallback_.data();
  }

  try {
    if (size_ < kBinaryTraceHeaderBytes) {
      fail(size_, "truncated header");
    }
    if (load_u32(at(0)) != kBinaryTraceMagic) {
      fail(0, "bad magic (not a .kavb trace)");
    }
    version_ = load_u16(at(4));
    if (version_ != kBinaryTraceVersion && version_ != kBinaryTraceVersion2) {
      fail(4, "unsupported format version " + std::to_string(version_));
    }
    records_end_ = size_;
    if (version_ == kBinaryTraceVersion2) parse_footer();
  } catch (...) {
    // The destructor will not run for a throwing constructor; release
    // the mapping before the exception leaves.
    unmap();
    throw;
  }
}

MappedSegment::~MappedSegment() { unmap(); }

void MappedSegment::parse_footer() {
  // Smallest indexed file: header, sentinel, empty payload (key count +
  // block count), trailer.
  const std::uint64_t min_size =
      kBinaryTraceHeaderBytes + 4 + 8 + kBinaryTraceTrailerBytes;
  if (size_ < min_size) return;  // no room for an index: plain v2 stream
  const std::uint64_t trailer = size_ - kBinaryTraceTrailerBytes;
  const std::uint32_t trailer_magic = load_u32(at(trailer + 8));
  if (trailer_magic != kBinaryTraceFooterMagic &&
      trailer_magic != kBinaryTraceFooterMagic21) {
    // No trailer magic: the segment was never sealed (writer died) or
    // the tail was truncated. Sequential access still works; selective
    // access reports unindexed rather than guessing.
    return;
  }
  has_integrity_ = trailer_magic == kBinaryTraceFooterMagic21;

  // From here on the file claims an index; inconsistency is corruption.
  const std::uint64_t payload_bytes = load_u64(at(trailer));
  // v2.1 payloads additionally carry the bloom header and the trailing
  // payload checksum even when empty.
  const std::uint64_t min_payload = has_integrity_ ? 4 + 4 + 12 + 4 : 8;
  if (payload_bytes < min_payload ||
      payload_bytes > trailer - kBinaryTraceHeaderBytes - 4) {
    fail(trailer, "truncated footer (payload of " +
                      std::to_string(payload_bytes) +
                      " bytes does not fit the file)");
  }
  const std::uint64_t payload = trailer - payload_bytes;
  const std::uint64_t sentinel = payload - 4;
  if (load_u32(at(sentinel)) != kBinaryTraceFooterSentinel) {
    fail(sentinel, "bad footer sentinel");
  }
  records_end_ = sentinel;

  // The payload checksum covers every page below, so footer bit-rot
  // (which could silently clear a bloom bit or redirect a block
  // offset) is rejected here, before any page is trusted.
  std::uint64_t pages_end = trailer;  // first byte past the parseable pages
  if (has_integrity_) {
    pages_end = trailer - 4;
    const std::uint32_t stored = load_u32(at(pages_end));
    const std::uint32_t computed = crc::crc32c(at(payload), payload_bytes - 4);
    if (stored != computed) {
      fail(pages_end, "footer checksum mismatch (stored " + hex32(stored) +
                          ", computed " + hex32(computed) + ")");
    }
  }

  std::uint64_t p = payload;
  const auto need = [&](std::uint64_t n, const char* what) {
    if (pages_end - p < n) {
      fail(p, std::string("truncated footer ") + what);
    }
  };

  need(4, "key count");
  const std::uint32_t key_count = load_u32(at(p));
  p += 4;
  // Like every other count in the format, validated BEFORE it sizes an
  // allocation: each table entry needs at least its 2 length bytes, so
  // a key_count the remaining payload cannot hold is corruption, not a
  // ~170 GB resize.
  if (key_count > (pages_end - p) / 2) {
    fail(p - 4, "truncated footer (key count " + std::to_string(key_count) +
                    " does not fit the remaining " +
                    std::to_string(pages_end - p) + " payload bytes)");
  }
  key_names_.reserve(key_count);
  key_ids_.reserve(key_count);
  key_entries_.resize(key_count);
  for (std::uint32_t id = 0; id < key_count; ++id) {
    need(2, "key length");
    const std::uint16_t length = load_u16(at(p));
    p += 2;
    need(length, "key bytes");
    const std::string_view name(reinterpret_cast<const char*>(at(p)), length);
    p += length;
    if (!key_ids_.emplace(name, id).second) {
      fail(p - length, "duplicate key in footer table");
    }
    key_names_.push_back(name);
  }

  need(4, "block count");
  const std::uint32_t block_count = load_u32(at(p));
  p += 4;
  // v2: the entries fill the remaining payload exactly. v2.1: each
  // entry also owns a CRC page slot, and the bloom header follows;
  // exact fill is re-checked after the bloom page is parsed.
  const std::uint64_t per_block =
      kBinaryTraceBlockEntryBytes + (has_integrity_ ? 4 : 0);
  const std::uint64_t fixed_tail = has_integrity_ ? 12 : 0;
  if (has_integrity_
          ? static_cast<std::uint64_t>(block_count) * per_block + fixed_tail >
                pages_end - p
          : static_cast<std::uint64_t>(block_count) *
                    kBinaryTraceBlockEntryBytes !=
                pages_end - p) {
    fail(p, "footer size mismatch (" + std::to_string(block_count) +
                " block entries do not fit the remaining " +
                std::to_string(pages_end - p) + " payload bytes)");
  }
  // The CRC page sits after the whole entry array, in the same order.
  const std::uint64_t crc_page =
      p + static_cast<std::uint64_t>(block_count) * kBinaryTraceBlockEntryBytes;
  blocks_.reserve(block_count);
  for (std::uint32_t i = 0; i < block_count; ++i) {
    BlockEntry entry;
    entry.key_id = load_u32(at(p));
    entry.offset = load_u64(at(p + 4));
    entry.records = load_u32(at(p + 12));
    entry.min_start = wire::load_i64(at(p + 16));
    entry.max_finish = wire::load_i64(at(p + 24));
    if (has_integrity_) {
      entry.crc = load_u32(at(crc_page + static_cast<std::uint64_t>(i) * 4));
    }
    if (entry.key_id >= key_count) {
      fail(p, "block entry key id " + std::to_string(entry.key_id) +
                  " out of range (table has " + std::to_string(key_count) +
                  " entries)");
    }
    if (entry.records == 0 || entry.records > kBinaryTraceMaxChunkRecords) {
      fail(p + 12,
           "implausible block record count " + std::to_string(entry.records));
    }
    // Ordered so no expression can wrap: records_end_ >= 8 here (the
    // sentinel sits at or past the end of the 8-byte header), offset
    // <= records_end_ - 8 is established before it feeds a
    // subtraction, and records is already capped at 2^24 so the
    // product stays far below 2^64.
    if (entry.offset < kBinaryTraceHeaderBytes ||
        entry.offset > records_end_ - 8 ||
        static_cast<std::uint64_t>(entry.records) * kBinaryTraceRecordBytes >
            records_end_ - entry.offset - 8) {
      fail(p + 4, "block at offset " + std::to_string(entry.offset) + " (" +
                      std::to_string(entry.records) +
                      " records) points past the end of the record region");
    }
    if (!blocks_.empty()) {
      const BlockEntry& prev = blocks_.back();
      if (entry.key_id < prev.key_id ||
          (entry.key_id == prev.key_id && entry.offset <= prev.offset)) {
        fail(p, "index entries not sorted by (key id, offset)");
      }
    }
    KeyEntry& ke = key_entries_[entry.key_id];
    if (ke.block_count == 0) {
      ke.first_block = static_cast<std::uint32_t>(blocks_.size());
      ke.stat.min_start = entry.min_start;
      ke.stat.max_finish = entry.max_finish;
    } else {
      ke.stat.min_start = std::min(ke.stat.min_start, entry.min_start);
      ke.stat.max_finish = std::max(ke.stat.max_finish, entry.max_finish);
    }
    ++ke.block_count;
    ++ke.stat.blocks;
    ke.stat.records += entry.records;
    total_records_ += entry.records;
    blocks_.push_back(entry);
    p += kBinaryTraceBlockEntryBytes;
  }

  if (has_integrity_) {
    p = crc_page + static_cast<std::uint64_t>(block_count) * 4;
    need(12, "bloom header");
    bloom_m_bits_ = load_u64(at(p));
    bloom_hashes_ = load_u32(at(p + 8));
    p += 12;
    if (bloom_m_bits_ % 8 != 0) {
      fail(p - 12, "bloom size " + std::to_string(bloom_m_bits_) +
                       " bits is not a whole number of bytes");
    }
    if ((bloom_m_bits_ == 0) != (bloom_hashes_ == 0) || bloom_hashes_ > 64) {
      fail(p - 4,
           "implausible bloom hash count " + std::to_string(bloom_hashes_));
    }
    if (bloom_m_bits_ / 8 != pages_end - p) {
      fail(p, "footer size mismatch (bloom page of " +
                  std::to_string(bloom_m_bits_ / 8) +
                  " bytes does not fill the remaining " +
                  std::to_string(pages_end - p) + " payload bytes)");
    }
    if (bloom_m_bits_ > 0) bloom_bits_ = at(p);
    // The sequential Cursor meets chunks in file order, not index
    // order: give it an offset-sorted view of the CRC page.
    chunk_crcs_.reserve(blocks_.size());
    for (const BlockEntry& block : blocks_) {
      chunk_crcs_.emplace_back(block.offset, block.crc);
    }
    std::sort(chunk_crcs_.begin(), chunk_crcs_.end());
  }
  indexed_ = true;
}

bool MappedSegment::contains(std::string_view key) const {
  return key_ids_.find(key) != key_ids_.end();
}

const KeyStat* MappedSegment::stat(std::string_view key) const {
  const auto it = key_ids_.find(key);
  return it == key_ids_.end() ? nullptr : &key_entries_[it->second].stat;
}

bool MappedSegment::maybe_contains(const BloomProbe& probe) const {
  // No filter (legacy v2, unindexed, v1): cannot rule the key out. A
  // v2.1 filter with m_bits == 0 holds no keys and rules everything
  // out -- bloom_maybe_contains handles that before touching bits.
  if (!has_integrity_) return true;
  return bloom_maybe_contains(bloom_bits_, bloom_m_bits_, bloom_hashes_, probe);
}

std::uint32_t MappedSegment::decode_record(std::uint64_t offset,
                                           Operation& op) const {
  const unsigned char* p = at(offset);
  const std::uint32_t key_id = load_u32(p);
  op.start = wire::load_i64(p + 4);
  op.finish = wire::load_i64(p + 12);
  op.value = wire::load_i64(p + 20);
  op.client = static_cast<ClientId>(load_u32(p + 28));
  const unsigned char type = p[32];
  if (type > 1) {
    fail(offset + 32, "bad record type byte " + std::to_string(type));
  }
  op.type = type == 1 ? OpType::write : OpType::read;
  if (op.start >= op.finish) {
    fail(offset + 4, "start must be < finish (got [" +
                         std::to_string(op.start) + ", " +
                         std::to_string(op.finish) + "))");
  }
  return key_id;
}

std::uint64_t MappedSegment::block_records_begin(const BlockEntry& block) const {
  std::uint64_t off = block.offset;
  // Offset + 8 is in bounds (validated at open); the key entries the
  // chunk introduces were not, so walk them checked.
  const std::uint32_t new_keys = load_u32(at(off));
  const std::uint32_t records = load_u32(at(off + 4));
  off += 8;
  if (records != block.records) {
    fail(block.offset + 4,
         "block record count " + std::to_string(records) +
             " disagrees with index entry (" + std::to_string(block.records) +
             ")");
  }
  if (new_keys > kBinaryTraceMaxChunkKeys) {
    fail(block.offset,
         "implausible chunk key count " + std::to_string(new_keys));
  }
  for (std::uint32_t k = 0; k < new_keys; ++k) {
    if (records_end_ - off < 2) fail(off, "truncated key length");
    const std::uint16_t length = load_u16(at(off));
    off += 2;
    if (records_end_ - off < length) fail(off, "truncated key bytes");
    off += length;
  }
  if (records_end_ - off <
      static_cast<std::uint64_t>(records) * kBinaryTraceRecordBytes) {
    fail(off, "block extent points past the end of the record region");
  }
  // Integrity gate for every indexed read (read_key here, BlockCursor
  // via ensure_block): the stored CRC covers the chunk exactly as
  // mapped -- header, key entries, records -- so no corrupt byte can
  // reach a decoder.
  if (has_integrity_ && options_.verify_block_crc) {
    const std::uint64_t end =
        off + static_cast<std::uint64_t>(records) * kBinaryTraceRecordBytes;
    const std::uint32_t computed =
        crc::crc32c(at(block.offset), end - block.offset);
    if (computed != block.crc) {
      if (options_.crc_failures != nullptr) options_.crc_failures->add(1);
      fail(block.offset, "block checksum mismatch (stored " +
                             hex32(block.crc) + ", computed " +
                             hex32(computed) + ")");
    }
  }
  return off;
}

std::vector<Operation> MappedSegment::read_key(std::string_view key) const {
  if (!indexed_) {
    throw std::logic_error("MappedSegment::read_key requires an indexed (v2) "
                           "segment: " +
                           path_);
  }
  const auto it = key_ids_.find(key);
  if (it == key_ids_.end()) return {};
  const KeyEntry& ke = key_entries_[it->second];
  std::vector<Operation> ops;
  ops.reserve(ke.stat.records);
  for (std::uint32_t b = ke.first_block; b < ke.first_block + ke.block_count;
       ++b) {
    const BlockEntry& block = blocks_[b];
    std::uint64_t off = block_records_begin(block);
    for (std::uint32_t r = 0; r < block.records; ++r) {
      Operation op;
      const std::uint32_t key_id = decode_record(off, op);
      if (key_id != block.key_id) {
        fail(off, "foreign record (key id " + std::to_string(key_id) +
                      ") in block of key id " + std::to_string(block.key_id));
      }
      ops.push_back(op);
      off += kBinaryTraceRecordBytes;
    }
  }
  return ops;
}

// --- Cursor ----------------------------------------------------------------

MappedSegment::Cursor::Cursor(const MappedSegment* segment)
    : segment_(segment), offset_(kBinaryTraceHeaderBytes) {}

bool MappedSegment::Cursor::next(std::string_view& key, Operation& op) {
  const MappedSegment& seg = *segment_;
  while (chunk_records_ == 0) {
    if (offset_ >= seg.records_end_) return false;  // clean end of stream
    if (seg.records_end_ - offset_ < 4) {
      seg.fail(offset_, "truncated chunk header");
    }
    const std::uint32_t new_keys = wire::load_u32(seg.at(offset_));
    if (seg.version_ >= kBinaryTraceVersion2 &&
        new_keys == kBinaryTraceFooterSentinel) {
      // Unindexed v2 (records_end_ == size_): the sentinel still marks
      // the end of the record stream.
      return false;
    }
    if (seg.records_end_ - offset_ < 8) {
      seg.fail(offset_, "truncated chunk header");
    }
    const std::uint32_t records = wire::load_u32(seg.at(offset_ + 4));
    if (new_keys > kBinaryTraceMaxChunkKeys) {
      seg.fail(offset_,
               "implausible chunk key count " + std::to_string(new_keys));
    }
    if (records > kBinaryTraceMaxChunkRecords) {
      seg.fail(offset_ + 4,
               "implausible chunk record count " + std::to_string(records));
    }
    if (new_keys == 0 && records == 0) {
      seg.fail(offset_, "empty chunk");
    }
    const std::uint64_t chunk_start = offset_;
    offset_ += 8;
    for (std::uint32_t k = 0; k < new_keys; ++k) {
      if (seg.records_end_ - offset_ < 2) {
        seg.fail(offset_, "truncated key length");
      }
      const std::uint16_t length = wire::load_u16(seg.at(offset_));
      offset_ += 2;
      if (seg.records_end_ - offset_ < length) {
        seg.fail(offset_, "truncated key bytes");
      }
      keys_.emplace_back(reinterpret_cast<const char*>(seg.at(offset_)),
                         length);
      offset_ += length;
    }
    // v2.1: the whole chunk is covered by its CRC page slot, so the
    // sequential path is as tamper-evident as the indexed one. Every
    // chunk of a sealed v2.1 file IS a block, so an offset the index
    // does not know is itself corruption.
    if (seg.has_integrity_ && seg.options_.verify_block_crc) {
      if (seg.records_end_ - offset_ <
          static_cast<std::uint64_t>(records) * kBinaryTraceRecordBytes) {
        seg.fail(offset_, "truncated record payload");
      }
      const std::uint64_t chunk_end =
          offset_ + static_cast<std::uint64_t>(records) * kBinaryTraceRecordBytes;
      const auto it = std::lower_bound(
          seg.chunk_crcs_.begin(), seg.chunk_crcs_.end(),
          std::make_pair(chunk_start, std::uint32_t{0}));
      if (it == seg.chunk_crcs_.end() || it->first != chunk_start) {
        seg.fail(chunk_start, "chunk not present in the block index");
      }
      const std::uint32_t computed =
          crc::crc32c(seg.at(chunk_start), chunk_end - chunk_start);
      if (computed != it->second) {
        if (seg.options_.crc_failures != nullptr) {
          seg.options_.crc_failures->add(1);
        }
        seg.fail(chunk_start, "block checksum mismatch (stored " +
                                  hex32(it->second) + ", computed " +
                                  hex32(computed) + ")");
      }
    }
    chunk_records_ = records;
  }
  if (seg.records_end_ - offset_ < kBinaryTraceRecordBytes) {
    seg.fail(offset_, "truncated record payload");
  }
  const std::uint32_t key_id = seg.decode_record(offset_, op);
  if (key_id >= keys_.size()) {
    seg.fail(offset_, "key id " + std::to_string(key_id) +
                          " out of range (table has " +
                          std::to_string(keys_.size()) + " entries)");
  }
  key = keys_[key_id];
  offset_ += kBinaryTraceRecordBytes;
  --chunk_records_;
  return true;
}

KeyedTrace MappedSegment::read_all() const {
  KeyedTrace trace;
  Cursor walk = cursor();
  std::string_view key;
  Operation op;
  while (walk.next(key, op)) trace.add(std::string(key), op);
  return trace;
}

std::uint64_t MappedSegment::verify_integrity(
    std::vector<std::string>& errors) const {
  std::uint64_t records_ok = 0;
  if (!indexed_) {
    errors.push_back("segment " + path_ +
                     ": not indexed (unsealed or pre-v2 file)");
    return 0;
  }
  for (const BlockEntry& block : blocks_) {
    // One bad block must not hide the rest: collect its error and keep
    // scanning. block_records_begin re-runs the structural and CRC
    // checks; the record loop re-runs the decoder's.
    try {
      std::uint64_t off = block_records_begin(block);
      for (std::uint32_t r = 0; r < block.records; ++r) {
        Operation op;
        const std::uint32_t key_id = decode_record(off, op);
        if (key_id != block.key_id) {
          fail(off, "foreign record (key id " + std::to_string(key_id) +
                        ") in block of key id " + std::to_string(block.key_id));
        }
        off += kBinaryTraceRecordBytes;
        ++records_ok;
      }
    } catch (const std::exception& e) {
      errors.emplace_back(e.what());
    }
  }
  if (has_integrity_) {
    // Bloom self-check: a filter that misses its own table keys would
    // silently hide data from cross-segment lookups.
    for (const std::string_view name : key_names_) {
      if (!maybe_contains(bloom_probe(name))) {
        errors.push_back("segment " + path_ +
                         ": bloom filter misses table key \"" +
                         std::string(name) + "\"");
      }
    }
  }
  return records_ok;
}

}  // namespace kav
