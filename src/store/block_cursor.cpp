#include "store/block_cursor.h"

#include <stdexcept>

namespace kav {

BlockCursor::BlockCursor(const MappedSegment& segment, std::string_view key)
    : segment_(&segment) {
  if (!segment.indexed_) {
    throw std::logic_error(
        "BlockCursor requires an indexed (v2) segment: " + segment.path_);
  }
  const auto it = segment.key_ids_.find(key);
  if (it == segment.key_ids_.end()) return;  // absent key: exhausted
  const MappedSegment::KeyEntry& ke = segment.key_entries_[it->second];
  block_ = ke.first_block;
  block_end_ = ke.first_block + ke.block_count;
  remaining_ = ke.stat.records;
}

bool BlockCursor::ensure_block() {
  while (block_left_ == 0) {
    if (block_ >= block_end_) return false;
    const MappedSegment::BlockEntry& block = segment_->blocks_[block_];
    record_off_ = segment_->block_records_begin(block);
    block_left_ = block.records;
    ++block_;
  }
  return true;
}

bool BlockCursor::next(OpView& view) {
  if (!ensure_block()) return false;
  // Validate exactly like read_key's per-record walk: decode_record
  // checks the type byte then the interval, then the key id must match
  // the block's. The block entered via ensure_block is
  // segment_->blocks_[block_ - 1].
  Operation scratch;
  const std::uint32_t key_id = segment_->decode_record(record_off_, scratch);
  if (key_id != segment_->blocks_[block_ - 1].key_id) {
    segment_->fail(record_off_,
                   "foreign record (key id " + std::to_string(key_id) +
                       ") in block of key id " +
                       std::to_string(segment_->blocks_[block_ - 1].key_id));
  }
  view = OpView(segment_->at(record_off_));
  record_off_ += kBinaryTraceRecordBytes;
  --block_left_;
  --remaining_;
  return true;
}

void BlockCursor::rescan_corrupt_block() const {
  // Some column scan rejected the current block. Re-walk it record by
  // record from the cursor position with the scalar validator, which
  // throws at the first bad record with read_key's exact offset and
  // message. The walk cannot succeed: the scans only report failures
  // the scalar checks also detect.
  std::uint64_t off = record_off_;
  const MappedSegment::BlockEntry& block = segment_->blocks_[block_ - 1];
  for (std::uint32_t r = 0; r < block_left_; ++r) {
    Operation scratch;
    const std::uint32_t key_id = segment_->decode_record(off, scratch);
    if (key_id != block.key_id) {
      segment_->fail(off, "foreign record (key id " + std::to_string(key_id) +
                              ") in block of key id " +
                              std::to_string(block.key_id));
    }
    off += kBinaryTraceRecordBytes;
  }
  throw std::logic_error(
      "BlockCursor: column validation rejected a block the scalar walk "
      "accepts (kernel bug)");
}

void BlockCursor::decode_columns(OperationColumns& out, simd::Level level) {
  out.reserve(out.size() + remaining_);
  std::vector<std::uint32_t> key_ids;  // per-block scratch, reused
  while (ensure_block()) {
    const std::size_t n = block_left_;
    const unsigned char* base = segment_->at(record_off_);
    const std::size_t at = out.size();
    out.starts.resize(at + n);
    out.finishes.resize(at + n);
    out.values.resize(at + n);
    out.clients.resize(at + n);
    out.types.resize(at + n);

    // Field-wise strided gathers straight off the mapping into the
    // column tails; no per-record materialization.
    simd::gather_i64_strided(base + 4, kBinaryTraceRecordBytes, n,
                             out.starts.data() + at, level);
    simd::gather_i64_strided(base + 12, kBinaryTraceRecordBytes, n,
                             out.finishes.data() + at, level);
    simd::gather_i64_strided(base + 20, kBinaryTraceRecordBytes, n,
                             out.values.data() + at, level);
    static_assert(sizeof(ClientId) == sizeof(std::uint32_t));
    simd::gather_u32_strided(
        base + 28, kBinaryTraceRecordBytes, n,
        reinterpret_cast<std::uint32_t*>(out.clients.data() + at), level);
    bool types_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char type = base[i * kBinaryTraceRecordBytes + 32];
      out.types[at + i] = type;
      types_ok &= type <= 1;
    }

    // Whole-block validation as column scans; any failure drops to the
    // scalar re-walk for the exact read_key error (offset precedence
    // included -- the re-walk stops at the first bad record whatever
    // mix of defects the block has).
    const MappedSegment::BlockEntry& block = segment_->blocks_[block_ - 1];
    key_ids.resize(n);
    simd::gather_u32_strided(base, kBinaryTraceRecordBytes, n, key_ids.data(),
                             level);
    if (!types_ok ||
        simd::first_mismatch_u32(key_ids.data(), n, block.key_id, level) != n ||
        simd::first_not_less_i64(out.starts.data() + at,
                                 out.finishes.data() + at, n, level) != n) {
      out.starts.resize(at);
      out.finishes.resize(at);
      out.values.resize(at);
      out.clients.resize(at);
      out.types.resize(at);
      rescan_corrupt_block();
    }

    record_off_ += static_cast<std::uint64_t>(n) * kBinaryTraceRecordBytes;
    block_left_ = 0;
    remaining_ -= n;
  }
}

}  // namespace kav
