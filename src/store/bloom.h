// The v2.1 segment bloom filter (docs/FORMATS.md, "bloom page"): one
// per segment, over the segment's key set, so cross-segment lookups
// (TraceStore::stat/contains/read_key, IndexedTraceSource's selective
// loads) skip segments that cannot hold the key without touching
// their key tables. The win is not asymptotic -- a lookup still
// visits every segment -- but the per-segment cost drops from a
// string hash + table probe to k bit tests against an already-derived
// probe, which is what keeps single-key stat over 1000 segments ~flat
// (bench/bench_store.cpp tracks it).
//
// Derivation is double hashing over wire.h's pinned functions, so it
// is part of the on-disk format:
//   h1    = fnv1a64(key bytes)
//   h2    = splitmix64(h1) | 1          (odd, so probes cycle all bits)
//   bit_i = (h1 + i * h2) mod m_bits    for i in [0, k)
// A bit b lives in byte bits[b >> 3], mask 1 << (b & 7).
#ifndef KAV_STORE_BLOOM_H
#define KAV_STORE_BLOOM_H

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "ingest/wire.h"

namespace kav {

// A key's two derived hashes -- computed once per lookup, probed
// against any number of segments' pages.
struct BloomProbe {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 1;
};

inline BloomProbe bloom_probe(std::string_view key) {
  BloomProbe probe;
  probe.h1 = wire::fnv1a64(key.data(), key.size());
  probe.h2 = wire::splitmix64(probe.h1) | 1;
  return probe;
}

// ~10 bits per key, k = 7 probes: ~0.8% false positives. m is rounded
// up to a whole number of bytes and floored at 64 bits so tiny
// segments still get a real filter.
inline constexpr std::size_t kBloomBitsPerKey = 10;
inline constexpr std::uint32_t kBloomHashes = 7;

// True when the page MAY contain the key; false is definitive. A page
// with m_bits == 0 holds no keys.
inline bool bloom_maybe_contains(const unsigned char* bits,
                                 std::uint64_t m_bits, std::uint32_t k,
                                 const BloomProbe& probe) {
  if (m_bits == 0) return false;
  std::uint64_t h = probe.h1;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint64_t bit = h % m_bits;
    if ((bits[bit >> 3] & (1u << (bit & 7))) == 0) return false;
    h += probe.h2;
  }
  return true;
}

// Build side (SegmentWriter::finish). Sized from the final key count,
// so the writer adds every key right before sealing.
class BloomBuilder {
 public:
  explicit BloomBuilder(std::size_t keys) {
    if (keys > 0) {
      std::uint64_t bits = static_cast<std::uint64_t>(keys) * kBloomBitsPerKey;
      if (bits < 64) bits = 64;
      m_bits_ = (bits + 7) & ~std::uint64_t{7};  // whole bytes
      bytes_.resize(static_cast<std::size_t>(m_bits_ / 8), 0);
    }
  }

  void add(std::string_view key) {
    if (m_bits_ == 0) return;
    const BloomProbe probe = bloom_probe(key);
    std::uint64_t h = probe.h1;
    for (std::uint32_t i = 0; i < kBloomHashes; ++i) {
      const std::uint64_t bit = h % m_bits_;
      bytes_[static_cast<std::size_t>(bit >> 3)] |=
          static_cast<unsigned char>(1u << (bit & 7));
      h += probe.h2;
    }
  }

  std::uint64_t m_bits() const { return m_bits_; }
  std::uint32_t hashes() const { return m_bits_ == 0 ? 0 : kBloomHashes; }
  const std::vector<unsigned char>& bytes() const { return bytes_; }

 private:
  std::uint64_t m_bits_ = 0;
  std::vector<unsigned char> bytes_;
};

}  // namespace kav

#endif  // KAV_STORE_BLOOM_H
