// IndexedTraceSource: the TraceSource the trace store serves. Wraps
// one or more MappedSegments (one for a single indexed .kavb file
// opened via open_trace_source; several for a whole TraceStore) behind
// both faces of the source abstraction:
//
//   - as a plain TraceSource, next() streams every record of every
//     segment in order (segment order; within a segment the v2 stream
//     order, i.e. block order: key-grouped, each key's own sequence in
//     add() order), zero-copy from the mappings -- full-trace
//     Engine::verify is unaffected (verdicts depend only on per-key
//     order), and Engine::monitor sees each key's stream in order,
//     just not the original cross-key interleaving;
//   - as a SelectiveTraceSource, selectable_keys / key_op_count /
//     load_key answer from the segments' indexes without decoding
//     records, and load_key materializes one key's History straight
//     from its blocks -- Engine::verify with RunOptions::key_filter
//     runs these concurrently on pool workers.
//
// A key living in several segments is reassembled in segment order;
// within each segment, block order is add() order, so the concatenation
// equals the key's subsequence of the full arrival-order stream.
#ifndef KAV_STORE_INDEXED_SOURCE_H
#define KAV_STORE_INDEXED_SOURCE_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ingest/trace_source.h"
#include "store/mapped_segment.h"

namespace kav {

class IndexedTraceSource final : public SelectiveTraceSource {
 public:
  // Opens one segment file; throws std::runtime_error when the file
  // cannot be opened, is not a .kavb trace, or carries a corrupt
  // index, and std::invalid_argument when it is merely unindexed (v1
  // or unsealed v2) -- callers wanting a graceful fallback use
  // try_open.
  explicit IndexedTraceSource(const std::string& path);
  // Wraps already-open segments (the TraceStore path). Every segment
  // must be indexed. `label` is used by describe().
  IndexedTraceSource(std::vector<std::shared_ptr<const MappedSegment>> segments,
                     std::string label);

  // nullptr when `path` is readable .kavb but has no index (v1 or
  // unsealed v2) -- the caller should fall back to sequential access.
  // Throws like the constructor on unreadable files or corrupt indexes.
  static std::unique_ptr<IndexedTraceSource> try_open(const std::string& path);

  bool next(KeyedOperation& out) override;
  std::string describe() const override;

  std::vector<std::string> selectable_keys() const override;
  std::size_t key_op_count(const std::string& key) const override;
  // Zero-copy decode: index -> BlockCursor -> SIMD column gathers ->
  // History, with no intermediate Operation vector (see
  // store/block_cursor.h for the equivalence contract).
  History load_key(const std::string& key) const override;
  // The reference decode path (MappedSegment::read_key row-at-a-time
  // into a vector<Operation>). Kept for the differential fuzz tests
  // and benches that prove load_key bit-identical; same result, same
  // errors, more allocation.
  History load_key_materializing(const std::string& key) const;

  // Aggregate stat across segments; nullopt when the key is absent
  // everywhere. Like every per-key lookup here, consults each
  // segment's bloom filter before its key table.
  std::optional<KeyStat> stat(const std::string& key) const;
  std::uint64_t total_records() const;
  const std::vector<std::shared_ptr<const MappedSegment>>& segments() const {
    return segments_;
  }

 private:
  std::vector<std::shared_ptr<const MappedSegment>> segments_;
  std::string label_;
  // next() state: current segment and its cursor.
  std::size_t segment_index_ = 0;
  std::optional<MappedSegment::Cursor> cursor_;
};

}  // namespace kav

#endif  // KAV_STORE_INDEXED_SOURCE_H
