#include "store/segment_writer.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "ingest/binary_trace.h"
#include "store/bloom.h"
#include "util/crc32c.h"

namespace kav {

namespace {

using wire::append_u16;
using wire::append_u32;
using wire::append_u64;
using wire::append_i64;

}  // namespace

SegmentWriter::SegmentWriter(std::ostream& out, SegmentWriterOptions options)
    : out_(&out), options_(options) {
  options_.records_per_block = std::clamp<std::size_t>(
      options_.records_per_block, 1, kBinaryTraceMaxChunkRecords);
  // The upper clamp keeps flush_block's prefix introduction legal:
  // every not-yet-introduced key holds at least one buffered record,
  // so capping buffered records at the reader's per-chunk key cap
  // guarantees no chunk ever introduces more keys than readers accept.
  options_.max_buffered_records = std::clamp<std::size_t>(
      options_.max_buffered_records, 1, kBinaryTraceMaxChunkKeys);
  std::string header;
  append_u32(header, kBinaryTraceMagic);
  append_u16(header, kBinaryTraceVersion2);
  append_u16(header, 0);  // reserved
  write_raw(header);
}

SegmentWriter::~SegmentWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; call finish() explicitly to observe
    // stream errors.
  }
}

void SegmentWriter::write_raw(const std::string& bytes) {
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  offset_ += bytes.size();
}

void SegmentWriter::add(std::string_view key, const Operation& op) {
  if (finished_) {
    throw std::logic_error("segment writer: add() after finish()");
  }
  validate_record("segment writer", key, op);
  auto [it, inserted] = key_ids_.try_emplace(
      std::string(key), static_cast<std::uint32_t>(keys_.size()));
  const std::uint32_t id = it->second;
  if (inserted) {
    KeyState state;
    state.name = it->first;
    keys_.push_back(std::move(state));
  }
  KeyState& state = keys_[id];
  if (state.pending_records == 0) {
    state.pending_min_start = op.start;
    state.pending_max_finish = op.finish;
  } else {
    state.pending_min_start = std::min(state.pending_min_start, op.start);
    state.pending_max_finish = std::max(state.pending_max_finish, op.finish);
  }
  append_record(state.pending, id, op);
  ++state.pending_records;
  ++state.records;
  ++records_added_;
  ++buffered_records_;
  if (state.pending_records >= options_.records_per_block) {
    flush_block(id);
  } else if (buffered_records_ >= options_.max_buffered_records) {
    // Memory pressure across a wide key space: flush every pending
    // buffer (memtable style), in id order. Evicting only the fattest
    // buffer would go quadratic when keys outnumber the cap (each
    // eviction frees ~1 record, so every add() rescans); one full
    // flush costs O(keys) but buys max_buffered_records further
    // add()s, so the amortized cost per record stays O(1).
    for (std::uint32_t k = 0; k < keys_.size(); ++k) flush_block(k);
  }
}

void SegmentWriter::add(const KeyedTrace& trace) {
  for (const KeyedOperation& kop : trace.ops) add(kop.key, kop.op);
}

void SegmentWriter::flush_block(std::uint32_t key_id) {
  KeyState& state = keys_[key_id];
  if (state.pending_records == 0) return;

  // Introduce every id up to and including this one that is not yet on
  // disk (see the header comment on flush_block for why the introduced
  // set must stay a prefix of the id space).
  std::string key_entries;
  std::uint32_t new_keys = 0;
  while (introduced_keys_ <= key_id) {
    const std::string& name = keys_[introduced_keys_].name;
    append_u16(key_entries, static_cast<std::uint16_t>(name.size()));
    key_entries.append(name);
    ++introduced_keys_;
    ++new_keys;
  }

  std::string chunk_header;
  append_u32(chunk_header, new_keys);
  append_u32(chunk_header, state.pending_records);

  BlockEntry entry;
  entry.key_id = key_id;
  entry.offset = offset_;
  entry.records = state.pending_records;
  entry.min_start = state.pending_min_start;
  entry.max_finish = state.pending_max_finish;
  // The CRC covers the block exactly as a reader maps it: chunk header,
  // key-table delta, records.
  entry.crc = crc::crc32c_extend(
      crc::crc32c_extend(
          crc::crc32c(chunk_header.data(), chunk_header.size()),
          key_entries.data(), key_entries.size()),
      state.pending.data(), state.pending.size());

  write_raw(chunk_header);
  write_raw(key_entries);
  write_raw(state.pending);
  blocks_.push_back(entry);

  buffered_records_ -= state.pending_records;
  state.pending.clear();
  state.pending.shrink_to_fit();
  state.pending_records = 0;
}

SegmentStats SegmentWriter::finish() {
  if (finished_) return stats_;

  // Drain remaining buffers in id order (deterministic output for a
  // given add() sequence, regardless of earlier eviction choices).
  for (std::uint32_t id = 0; id < keys_.size(); ++id) flush_block(id);
  // Keys that were added but never flushed cannot exist (flush_block
  // drains all); keys introduced but with zero records cannot exist
  // either (introduction happens only inside some block's chunk).

  std::string footer;
  append_u32(footer, kBinaryTraceFooterSentinel);

  std::string payload;
  append_u32(payload, static_cast<std::uint32_t>(keys_.size()));
  for (const KeyState& state : keys_) {
    append_u16(payload, static_cast<std::uint16_t>(state.name.size()));
    payload.append(state.name);
  }
  // Index entries sorted by (key_id, offset): all of one key's blocks
  // are adjacent, and within a key offsets ascend = add() order, so a
  // reader reassembles the per-key history by walking a contiguous
  // range. blocks_ is in flush order; stable_sort by key id preserves
  // the per-key offset order without comparing offsets.
  std::stable_sort(blocks_.begin(), blocks_.end(),
                   [](const BlockEntry& a, const BlockEntry& b) {
                     return a.key_id < b.key_id;
                   });
  append_u32(payload, static_cast<std::uint32_t>(blocks_.size()));
  for (const BlockEntry& block : blocks_) {
    append_u32(payload, block.key_id);
    append_u64(payload, block.offset);
    append_u32(payload, block.records);
    append_i64(payload, block.min_start);
    append_i64(payload, block.max_finish);
  }

  // v2.1 integrity pages. CRC page: one u32 per index entry, same
  // (key_id, offset) order as the index itself.
  for (const BlockEntry& block : blocks_) {
    append_u32(payload, block.crc);
  }
  // Bloom page over the segment's key set.
  BloomBuilder bloom(keys_.size());
  for (const KeyState& state : keys_) bloom.add(state.name);
  append_u64(payload, bloom.m_bits());
  append_u32(payload, bloom.hashes());
  payload.append(reinterpret_cast<const char*>(bloom.bytes().data()),
                 bloom.bytes().size());
  // Payload checksum: everything from key_count through the bloom page,
  // so footer bit-rot (a cleared bloom bit would be a silent false
  // negative) is caught at open, before any page is trusted.
  append_u32(payload, crc::crc32c(payload.data(), payload.size()));

  std::string trailer;
  append_u64(trailer, static_cast<std::uint64_t>(payload.size()));
  append_u32(trailer, kBinaryTraceFooterMagic21);

  write_raw(footer);
  write_raw(payload);
  write_raw(trailer);
  out_->flush();

  finished_ = true;
  stats_.records = records_added_;
  stats_.blocks = blocks_.size();
  stats_.keys = keys_.size();
  stats_.bytes = offset_;
  return stats_;
}

}  // namespace kav
