// The zero-copy hot path from a MappedSegment's index to a decidable
// History: BlockCursor walks exactly one key's blocks and either
//
//   - streams non-owning OpViews over the raw 33-byte records (next()),
//     for consumers that want per-record access with zero heap, or
//   - bulk-decodes every remaining record into OperationColumns
//     (decode_columns()) with the SIMD strided-gather kernels of
//     util/simd.h -- each record field lands in its own contiguous
//     column, validation (key-id uniformity, type byte, start < finish)
//     runs as whole-block column scans, and History adopts the time
//     columns in place. No intermediate std::vector<Operation> exists
//     anywhere on this path.
//
// Equivalence contract: for any byte stream, valid or corrupt, both
// BlockCursor paths yield exactly what MappedSegment::read_key yields
// -- the same operations in the same (add()) order, or a
// std::runtime_error pointing at the same byte offset with the same
// message. Corruption handling works by falling back to the scalar
// per-record walk, so the exact error precedence of read_key (first
// failing record; within a record type byte, then interval, then
// foreign key id) is reproduced by construction, not re-implemented.
// tests/store_fuzz_test.cpp enforces verdict/Report bit-identity over
// the two paths; this is the safety invariant that makes the fast path
// trustworthy (see docs/ALGORITHMS.md).
//
// Thread-safety: like read_key, a BlockCursor only reads the immutable
// mapping, so many cursors over one segment may run concurrently; a
// single cursor is not itself thread-safe.
#ifndef KAV_STORE_BLOCK_CURSOR_H
#define KAV_STORE_BLOCK_CURSOR_H

#include <cstdint>
#include <string_view>

#include "history/history.h"
#include "ingest/binary_trace.h"
#include "store/mapped_segment.h"
#include "util/simd.h"

namespace kav {

// Non-owning view of one on-disk record (kBinaryTraceRecordBytes bytes
// in ingest/wire.h little-endian layout). Fields decode on access --
// reading two fields costs two loads, not a 33-byte materialization.
// Valid only while the segment that owns the bytes is alive. Accessors
// do not validate; BlockCursor::next() hands out only views whose
// type, interval, and key id have already been checked.
class OpView {
 public:
  OpView() = default;
  explicit OpView(const unsigned char* record) : p_(record) {}

  std::uint32_t key_id() const { return wire::load_u32(p_); }
  TimePoint start() const { return wire::load_i64(p_ + 4); }
  TimePoint finish() const { return wire::load_i64(p_ + 12); }
  Value value() const { return wire::load_i64(p_ + 20); }
  ClientId client() const {
    return static_cast<ClientId>(wire::load_u32(p_ + 28));
  }
  OpType type() const { return p_[32] == 1 ? OpType::write : OpType::read; }
  bool is_write() const { return p_[32] == 1; }
  bool is_read() const { return p_[32] != 1; }

  Operation materialize() const {
    return Operation{start(), finish(), type(), value(), client()};
  }

  const unsigned char* raw() const { return p_; }

 private:
  const unsigned char* p_ = nullptr;
};

class BlockCursor {
 public:
  // Positions at the first record of `key`. An absent key yields an
  // exhausted cursor; an unindexed segment throws std::logic_error
  // (same contract as read_key).
  BlockCursor(const MappedSegment& segment, std::string_view key);

  // Records not yet yielded, from the index (no decoding).
  std::uint64_t remaining() const { return remaining_; }

  // Yields the next record as a validated view, or returns false at
  // the end. Throws std::runtime_error on corrupt bytes, identically
  // to read_key.
  bool next(OpView& view);

  // Decodes every remaining record, appending one element per record
  // to each column of `out` (in add() order), then leaves the cursor
  // exhausted. The explicit level lets tests run every dispatch tier;
  // results are bit-identical across tiers by the simd.h contract.
  void decode_columns(OperationColumns& out,
                      simd::Level level = simd::active_level());

 private:
  // Enters blocks until one with records remains; false when done.
  bool ensure_block();
  [[noreturn]] void rescan_corrupt_block() const;

  const MappedSegment* segment_ = nullptr;
  std::uint32_t block_ = 0;       // current index into segment_->blocks_
  std::uint32_t block_end_ = 0;   // one past the key's last block
  std::uint64_t record_off_ = 0;  // next record's file offset
  std::uint32_t block_left_ = 0;  // records left in the current block
  std::uint64_t remaining_ = 0;   // records left across all blocks
};

}  // namespace kav

#endif  // KAV_STORE_BLOCK_CURSOR_H
