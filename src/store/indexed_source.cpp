#include "store/indexed_source.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>

#include "ingest/binary_trace.h"
#include "store/block_cursor.h"

namespace kav {

namespace {

std::shared_ptr<const MappedSegment> open_indexed(const std::string& path) {
  auto segment = std::make_shared<const MappedSegment>(path);
  if (!segment->indexed()) {
    throw std::invalid_argument("not an indexed (v2) trace: " + path);
  }
  return segment;
}

}  // namespace

IndexedTraceSource::IndexedTraceSource(const std::string& path)
    : segments_{open_indexed(path)}, label_("indexed:" + path) {}

IndexedTraceSource::IndexedTraceSource(
    std::vector<std::shared_ptr<const MappedSegment>> segments,
    std::string label)
    : segments_(std::move(segments)), label_(std::move(label)) {
  for (const auto& segment : segments_) {
    if (!segment->indexed()) {
      throw std::invalid_argument("not an indexed (v2) trace: " +
                                  segment->path());
    }
  }
}

std::unique_ptr<IndexedTraceSource> IndexedTraceSource::try_open(
    const std::string& path) {
  // Cheap 8-byte probe before mapping anything: only version-2 files
  // can carry an index, and on a platform without mmap constructing a
  // MappedSegment would read the whole file into memory just to
  // discover a v1 stream and throw it away. Short or non-v2 files are
  // the sequential reader's to handle (including its error messages).
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open trace file: " + path);
    unsigned char header[kBinaryTraceHeaderBytes];
    in.read(reinterpret_cast<char*>(header), sizeof header);
    if (static_cast<std::size_t>(in.gcount()) != sizeof header) return nullptr;
    if (wire::load_u32(header) != kBinaryTraceMagic) return nullptr;
    if (wire::load_u16(header + 4) != kBinaryTraceVersion2) return nullptr;
  }
  auto segment = std::make_shared<const MappedSegment>(path);
  if (!segment->indexed()) return nullptr;
  return std::make_unique<IndexedTraceSource>(
      std::vector<std::shared_ptr<const MappedSegment>>{std::move(segment)},
      "indexed:" + path);
}

bool IndexedTraceSource::next(KeyedOperation& out) {
  std::string_view key;
  for (;;) {
    if (!cursor_.has_value()) {
      if (segment_index_ >= segments_.size()) return false;
      cursor_.emplace(segments_[segment_index_]->cursor());
    }
    if (cursor_->next(key, out.op)) {
      out.key.assign(key);
      return true;
    }
    cursor_.reset();
    ++segment_index_;
  }
}

std::string IndexedTraceSource::describe() const {
  std::uint64_t records = 0;
  std::set<std::string_view> keys;
  for (const auto& segment : segments_) {
    records += segment->total_records();
    keys.insert(segment->keys().begin(), segment->keys().end());
  }
  return label_ + "(" + std::to_string(keys.size()) + " keys, " +
         std::to_string(records) + " records)";
}

std::vector<std::string> IndexedTraceSource::selectable_keys() const {
  std::set<std::string_view> merged;
  for (const auto& segment : segments_) {
    merged.insert(segment->keys().begin(), segment->keys().end());
  }
  return {merged.begin(), merged.end()};
}

std::size_t IndexedTraceSource::key_op_count(const std::string& key) const {
  const BloomProbe probe = bloom_probe(key);
  std::uint64_t records = 0;
  for (const auto& segment : segments_) {
    if (!segment->maybe_contains(probe)) continue;
    if (const KeyStat* s = segment->stat(key)) records += s->records;
  }
  return static_cast<std::size_t>(records);
}

std::optional<KeyStat> IndexedTraceSource::stat(const std::string& key) const {
  const BloomProbe probe = bloom_probe(key);
  std::optional<KeyStat> merged;
  for (const auto& segment : segments_) {
    if (!segment->maybe_contains(probe)) continue;
    const KeyStat* s = segment->stat(key);
    if (s == nullptr) continue;  // bloom false positive
    if (!merged.has_value()) {
      merged = *s;
      continue;
    }
    merged->min_start = std::min(merged->min_start, s->min_start);
    merged->max_finish = std::max(merged->max_finish, s->max_finish);
    merged->records += s->records;
    merged->blocks += s->blocks;
  }
  return merged;
}

std::uint64_t IndexedTraceSource::total_records() const {
  std::uint64_t records = 0;
  for (const auto& segment : segments_) records += segment->total_records();
  return records;
}

History IndexedTraceSource::load_key(const std::string& key) const {
  // Zero-copy: each segment's blocks decode field-wise into one shared
  // set of columns (SIMD strided gathers, whole-block validation), and
  // History adopts the time columns in place -- no intermediate
  // std::vector<Operation>, no per-segment partial vectors. Must stay
  // bit-identical to load_key_materializing (store_fuzz differential).
  const BloomProbe probe = bloom_probe(key);
  OperationColumns columns;
  columns.reserve(key_op_count(key));
  for (const auto& segment : segments_) {
    if (!segment->maybe_contains(probe)) continue;
    BlockCursor cursor(*segment, key);
    cursor.decode_columns(columns);
  }
  return History(std::move(columns));
}

History IndexedTraceSource::load_key_materializing(
    const std::string& key) const {
  const BloomProbe probe = bloom_probe(key);
  std::vector<Operation> ops;
  ops.reserve(key_op_count(key));
  for (const auto& segment : segments_) {
    if (!segment->maybe_contains(probe)) continue;
    std::vector<Operation> part = segment->read_key(key);
    ops.insert(ops.end(), part.begin(), part.end());
  }
  return History(std::move(ops));
}

}  // namespace kav
