// SegmentWriter: the streaming writer of .kavb v2.1 "segments" -- the
// persistent unit of the trace store (store/trace_store.h). Where
// BinaryTraceWriter (ingest/binary_trace.h) emits records in arrival
// order interleaved across keys, SegmentWriter regroups them into
// per-key *blocks* (single-key chunks) and appends a key-table +
// block-index footer, so an indexed reader (store/mapped_segment.h)
// can later decode exactly one key's operations without touching the
// rest of the file -- the out-of-core selective-verification path of
// kav::Engine (RunOptions::key_filter). The v2.1 footer additionally
// carries a per-block CRC32C page (verified on every indexed read), a
// per-segment bloom page (store/bloom.h) for cross-segment key skips,
// and a whole-payload checksum; the chunk stream itself is bit-for-bit
// v2, so sequential readers are unaffected.
//
// Within a key, block order equals add() order, so a per-key history
// reassembled from the index is bit-identical to one filtered out of
// an arrival-order stream; across keys, on-disk order is flush order
// (verification splits by key, so it never matters, and sequential
// readers see a legal v1-style chunk stream either way).
//
// Memory: O(keys + buffered records). Each key buffers at most
// records_per_block operations; when the total buffered across keys
// exceeds max_buffered_records, every pending buffer is flushed
// (memtable style, amortized O(1) per record even when keys far
// outnumber the cap), so wide key spaces cannot hold the writer's
// memory hostage.
#ifndef KAV_STORE_SEGMENT_WRITER_H
#define KAV_STORE_SEGMENT_WRITER_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "history/keyed_trace.h"
#include "util/time_types.h"

namespace kav {

struct SegmentWriterOptions {
  // Records per block: the flush threshold of each key's buffer and
  // the granularity of selective reads. Clamped to the reader's chunk
  // sanity cap.
  std::size_t records_per_block = 4096;
  // Total buffered records across all keys before every pending block
  // is flushed early (bounds writer memory on wide key spaces).
  // Clamped to the reader's 2^20 per-chunk key cap, which keeps the
  // prefix key introduction of any single flush within what every
  // reader accepts.
  std::size_t max_buffered_records = 1 << 16;
};

// What finish() reports about the segment it just sealed.
struct SegmentStats {
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;
  std::size_t keys = 0;
  std::uint64_t bytes = 0;  // total file size, footer included
};

class SegmentWriter {
 public:
  // Writes the v2 file header immediately. The stream must be binary.
  explicit SegmentWriter(std::ostream& out, SegmentWriterOptions options = {});
  // Flushes and writes the footer best-effort; call finish() explicitly
  // to observe stream errors and obtain SegmentStats.
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  // Buffers one operation. Throws std::invalid_argument on
  // start >= finish or a key longer than 65535 bytes, std::logic_error
  // after finish().
  void add(std::string_view key, const Operation& op);
  void add(const KeyedTrace& trace);

  // Flushes every pending block and writes the key-table + index
  // footer. Idempotent; after it returns, add() throws.
  SegmentStats finish();

  std::uint64_t records_added() const { return records_added_; }
  std::size_t key_count() const { return keys_.size(); }
  std::uint64_t blocks_written() const { return blocks_.size(); }

 private:
  struct KeyState {
    std::string name;
    std::string pending;                // encoded records, not yet flushed
    std::uint32_t pending_records = 0;  // count behind `pending`
    TimePoint pending_min_start = 0;    // block time bounds (valid when
    TimePoint pending_max_finish = 0;   // pending_records > 0)
    std::uint64_t records = 0;          // flushed + pending
  };
  struct BlockEntry {
    std::uint32_t key_id = 0;
    std::uint64_t offset = 0;  // absolute offset of the block's chunk header
    std::uint32_t records = 0;
    TimePoint min_start = 0;
    TimePoint max_finish = 0;
    std::uint32_t crc = 0;  // CRC32C of the block's full chunk bytes
  };

  // Emits `key_id`'s pending records as one single-key chunk. Key table
  // ids are assigned in first-add order, but blocks flush in any order,
  // and the sequential reader's table grows in chunk order -- so the
  // chunk introduces every not-yet-introduced id <= key_id, keeping the
  // introduced set a prefix of the id space at all times.
  void flush_block(std::uint32_t key_id);
  void write_raw(const std::string& bytes);

  std::ostream* out_;
  SegmentWriterOptions options_;
  std::unordered_map<std::string, std::uint32_t> key_ids_;
  std::vector<KeyState> keys_;  // indexed by key id (= first-add order)
  std::uint32_t introduced_keys_ = 0;  // ids [0, introduced_keys_) are on disk
  std::vector<BlockEntry> blocks_;
  std::uint64_t offset_ = 0;  // bytes written so far
  std::uint64_t records_added_ = 0;
  std::size_t buffered_records_ = 0;
  bool finished_ = false;
  SegmentStats stats_;  // valid once finished_
};

}  // namespace kav

#endif  // KAV_STORE_SEGMENT_WRITER_H
