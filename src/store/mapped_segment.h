// MappedSegment: a zero-copy, memory-mapped reader of one .kavb file.
// The whole file is mapped read-only (falling back to a heap buffer on
// platforms or filesystems where mmap fails); the v2 key-table/index
// footer is parsed into string_views and block extents pointing
// straight into the mapping, so opening a multi-gigabyte segment costs
// O(keys + blocks), not O(records), and extracting one key decodes
// only that key's blocks -- the paper's audit-one-register workload
// without decoding the other million.
//
// Reads are const and touch only immutable mapping state, so many pool
// workers can decode different keys of one MappedSegment concurrently
// (the Engine's index-driven sharding does exactly that).
//
// v1 files (and v2 files whose footer is absent, e.g. a writer died
// mid-seal) open with indexed() == false: sequential access via
// Cursor/read_all still works, selective access does not.
//
// v2.1 footers (trailer magic 'KAVJ') add integrity pages: a CRC32C
// per block, verified transparently on every read path (read_key,
// BlockCursor, the sequential Cursor) before any record byte is
// trusted, and a per-segment bloom filter answering maybe_contains()
// without a key-table probe. Old 'KAVI' footers still open, with
// has_integrity() == false and maybe_contains() always true.
#ifndef KAV_STORE_MAPPED_SEGMENT_H
#define KAV_STORE_MAPPED_SEGMENT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "history/keyed_trace.h"
#include "obs/metrics.h"
#include "store/bloom.h"
#include "util/time_types.h"

namespace kav {

// Aggregate per-key statistics from the index -- available without
// decoding a single record, which is what lets the verification
// pipeline budget and shard work before reading anything.
struct KeyStat {
  std::uint64_t records = 0;
  std::uint32_t blocks = 0;
  TimePoint min_start = 0;
  TimePoint max_finish = 0;
};

struct MappedSegmentOptions {
  // Verify each block's CRC page entry before decoding it (v2.1
  // segments only; a no-op on files without integrity pages). Off
  // exists solely so bench_store can price the check -- every product
  // path leaves it on.
  bool verify_block_crc = true;
  // Incremented once per detected block-checksum mismatch, on every
  // read path (read_key, BlockCursor, the sequential Cursor), just
  // before the read throws. TraceStore wires this to its registry's
  // kav_store_crc_verify_failures_total so corruption is visible to a
  // scraper even when the thrown error is swallowed upstream. The
  // counter must outlive the segment; nullptr disables the hook.
  obs::Counter* crc_failures = nullptr;
};

class MappedSegment {
 public:
  // Maps the file and parses header + footer. Throws std::runtime_error
  // on open failure, bad magic/version, or a corrupt index (trailer
  // magic present but sentinel/sizes/offsets/checksum inconsistent --
  // including any block offset or extent pointing past the record
  // region).
  explicit MappedSegment(const std::string& path,
                         MappedSegmentOptions options = {});
  ~MappedSegment();

  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  const std::string& path() const { return path_; }
  std::size_t size_bytes() const { return size_; }
  std::uint16_t version() const { return version_; }
  bool indexed() const { return indexed_; }
  // True when the footer carries the v2.1 integrity pages (per-block
  // CRC + bloom). Legacy 'KAVI' segments are readable but unverified.
  bool has_integrity() const { return has_integrity_; }

  // Index accessors; all require indexed() (they return empty/null/0
  // otherwise, they do not throw).
  std::size_t key_count() const { return key_names_.size(); }
  // Keys in table (id) order -- the order of first flush to disk.
  const std::vector<std::string_view>& keys() const { return key_names_; }
  bool contains(std::string_view key) const;
  const KeyStat* stat(std::string_view key) const;  // nullptr when absent
  // Bloom precheck: false means the key is definitively absent; true
  // means "probe the table" (always true for segments without a
  // filter). The probe is hashed once by the caller and reused across
  // every segment -- the cheap half of cross-segment lookups.
  bool maybe_contains(const BloomProbe& probe) const;
  std::uint64_t total_records() const { return total_records_; }
  std::uint64_t block_count() const { return blocks_.size(); }

  // Decodes only `key`'s blocks, in add() order. Returns an empty
  // vector for an absent key. Throws std::logic_error when
  // !indexed(), std::runtime_error on corrupt block bytes.
  std::vector<Operation> read_key(std::string_view key) const;

  // Sequential zero-copy walk over the whole record stream (works for
  // v1 and unindexed files too). The string_view points into the
  // mapping and stays valid for the segment's lifetime.
  class Cursor {
   public:
    bool next(std::string_view& key, Operation& op);

   private:
    friend class MappedSegment;
    explicit Cursor(const MappedSegment* segment);
    const MappedSegment* segment_;
    std::uint64_t offset_;               // next unread byte
    std::vector<std::string_view> keys_; // table as introduced so far
    std::uint32_t chunk_records_ = 0;    // records left in current chunk
  };
  Cursor cursor() const { return Cursor(this); }

  KeyedTrace read_all() const;  // drain a cursor

  // Deep scan for TraceStore::fsck(): re-validates every block's
  // structure and checksum, decodes every record, and self-checks the
  // bloom filter (each table key must pass the segment's own filter).
  // Appends one human-readable line per problem to `errors` and keeps
  // going; returns the number of records successfully decoded.
  std::uint64_t verify_integrity(std::vector<std::string>& errors) const;

 private:
  friend class BlockCursor;  // store/block_cursor.h: zero-copy key reads

  struct BlockEntry {
    std::uint32_t key_id = 0;
    std::uint64_t offset = 0;
    std::uint32_t records = 0;
    TimePoint min_start = 0;
    TimePoint max_finish = 0;
    std::uint32_t crc = 0;  // CRC page entry (v2.1; 0 when absent)
  };
  struct KeyEntry {
    KeyStat stat;
    // Range into blocks_ (sorted by key id, offsets ascending within).
    std::uint32_t first_block = 0;
    std::uint32_t block_count = 0;
  };

  const unsigned char* at(std::uint64_t offset) const { return data_ + offset; }
  [[noreturn]] void fail(std::uint64_t offset, const std::string& what) const;
  void parse_footer();
  // Decodes the 33-byte record at `offset` (caller bounds-checks),
  // validating type byte and interval; returns the record's key id.
  std::uint32_t decode_record(std::uint64_t offset, Operation& op) const;
  // Validates `block`'s chunk header (record count against the index,
  // introduced-key entries, record extent) and returns the offset of
  // its first record. Shared by read_key and BlockCursor so both paths
  // reject corruption with identical errors.
  std::uint64_t block_records_begin(const BlockEntry& block) const;
  void unmap() noexcept;

  std::string path_;
  MappedSegmentOptions options_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;                 // non-null iff mmap succeeded
  std::vector<unsigned char> heap_fallback_; // used when mmap unavailable
  std::uint16_t version_ = 0;
  bool indexed_ = false;
  bool has_integrity_ = false;
  std::uint64_t records_end_ = 0;  // first byte past the last chunk
  std::uint64_t total_records_ = 0;
  std::vector<std::string_view> key_names_;  // id order, views into mapping
  std::unordered_map<std::string_view, std::uint32_t> key_ids_;
  std::vector<KeyEntry> key_entries_;        // parallel to key_names_
  std::vector<BlockEntry> blocks_;
  // v2.1 bloom page, pointing into the mapping.
  std::uint64_t bloom_m_bits_ = 0;
  std::uint32_t bloom_hashes_ = 0;
  const unsigned char* bloom_bits_ = nullptr;
  // (chunk offset, crc) sorted by offset: the sequential Cursor's view
  // of the CRC page (blocks_ is sorted by key id, not by position).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> chunk_crcs_;
};

}  // namespace kav

#endif  // KAV_STORE_MAPPED_SEGMENT_H
