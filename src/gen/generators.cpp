#include "gen/generators.h"

#include <algorithm>
#include <stdexcept>

#include "history/anomaly.h"

namespace kav::gen {

namespace {

// Commit-point spacing used by the constructive generator; interval
// spreads are expressed relative to it.
constexpr TimePoint kSpacing = 1000;

}  // namespace

GeneratedHistory generate_k_atomic(const KAtomicConfig& config, Rng& rng) {
  if (config.writes < 1) throw std::invalid_argument("writes must be >= 1");
  if (config.k < 1) throw std::invalid_argument("k must be >= 1");
  if (config.min_reads_per_write < 0 ||
      config.max_reads_per_write < config.min_reads_per_write) {
    throw std::invalid_argument("bad reads-per-write range");
  }

  const int m = config.writes;
  const auto spread = std::max<TimePoint>(
      1, static_cast<TimePoint>(config.spread * static_cast<double>(kSpacing)));

  struct Planned {
    Operation op;
    TimePoint commit;
  };
  std::vector<Planned> planned;

  // Write j commits at (j + 1) * kSpacing.
  auto write_commit = [](int j) {
    return static_cast<TimePoint>(j + 1) * kSpacing;
  };
  for (int j = 0; j < m; ++j) {
    const TimePoint commit = write_commit(j);
    const TimePoint start = commit - rng.uniform(1, spread);
    const TimePoint finish = commit + rng.uniform(1, spread);
    planned.push_back({make_write(start, finish, j + 1), commit});
  }

  // Reads of write j commit strictly between writes j+s and j+s+1,
  // where the separation s < k (s intervening writes in the commit
  // order -- the defining property of k-atomicity).
  for (int j = 0; j < m; ++j) {
    const int reads = static_cast<int>(rng.uniform(
        config.min_reads_per_write, config.max_reads_per_write));
    for (int r = 0; r < reads; ++r) {
      int separation;
      if (rng.bernoulli(config.max_staleness_fraction)) {
        separation = config.k - 1;
      } else {
        separation = static_cast<int>(rng.uniform(0, config.k - 1));
      }
      separation = std::min(separation, m - 1 - j);
      const TimePoint lo = write_commit(j + separation) + 1;
      const TimePoint hi = write_commit(j + separation) + kSpacing - 1;
      const TimePoint commit = rng.uniform(lo, hi);
      const TimePoint start = commit - rng.uniform(1, spread);
      const TimePoint finish = commit + rng.uniform(1, spread);
      planned.push_back({make_read(start, finish, j + 1), commit});
    }
  }

  // Enforce the Section II-C write-shortening invariant *before*
  // normalization so that only the order-preserving uniquification pass
  // runs and the intended commit order stays a valid witness.
  for (int j = 0; j < m; ++j) {
    TimePoint min_read_finish = kTimeMax;
    for (const Planned& p : planned) {
      if (p.op.is_read() && p.op.value == j + 1) {
        min_read_finish = std::min(min_read_finish, p.op.finish);
      }
    }
    if (planned[static_cast<std::size_t>(j)].op.finish >= min_read_finish) {
      planned[static_cast<std::size_t>(j)].op.finish = min_read_finish - 1;
    }
  }

  // Intended witness: ops by commit point (ties broken by id; reads tie
  // with their write only if spread rounding collides, and id order
  // keeps the write first because writes were appended first).
  std::vector<OpId> order(planned.size());
  for (OpId i = 0; i < planned.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return planned[a].commit != planned[b].commit
               ? planned[a].commit < planned[b].commit
               : a < b;
  });

  std::vector<Operation> ops;
  ops.reserve(planned.size());
  for (const Planned& p : planned) ops.push_back(p.op);

  GeneratedHistory out;
  out.history = normalize(History(std::move(ops)));
  out.intended_order = std::move(order);
  return out;
}

History generate_forced_separation(int separation, int blocks) {
  if (separation < 0) throw std::invalid_argument("separation must be >= 0");
  if (blocks < 1) throw std::invalid_argument("blocks must be >= 1");
  std::vector<Operation> ops;
  Value value = 1;
  TimePoint base = 0;
  for (int b = 0; b < blocks; ++b) {
    const Value first_value = value;
    for (int i = 0; i <= separation; ++i) {
      const TimePoint start = base + static_cast<TimePoint>(i) * 100;
      ops.push_back(make_write(start, start + 50, value++));
    }
    const TimePoint read_start =
        base + static_cast<TimePoint>(separation + 1) * 100;
    ops.push_back(make_read(read_start, read_start + 50, first_value));
    base += static_cast<TimePoint>(separation + 2) * 100 + 1000;
  }
  return History(std::move(ops));
}

namespace {

// Emits the two-operation cluster realizing forward zone
// [low, high] * scale: a write finishing at the low endpoint and a read
// starting at the high endpoint.
void emit_forward_cluster(std::vector<Operation>& ops, TimePoint low,
                          TimePoint high, TimePoint scale, Value value) {
  ops.push_back(
      make_write(low * scale - scale / 2, low * scale, value));
  ops.push_back(make_read(high * scale, high * scale + scale / 2, value));
}

}  // namespace

History generate_property_p_triple(TimePoint scale) {
  if (scale < 4) throw std::invalid_argument("scale must be >= 4");
  std::vector<Operation> ops;
  // Zones [1,4], [2,5], [3,6]: all three contain the point 3.5.
  emit_forward_cluster(ops, 1, 4, scale, 1);
  emit_forward_cluster(ops, 2, 5, scale, 2);
  emit_forward_cluster(ops, 3, 6, scale, 3);
  return normalize(History(std::move(ops)));
}

History generate_property_p_fan(int others, TimePoint scale) {
  if (others < 3) throw std::invalid_argument("fan needs others >= 3");
  if (scale < 8) throw std::invalid_argument("scale must be >= 8");
  std::vector<Operation> ops;
  // One long zone overlapping `others` short pairwise-disjoint zones.
  const TimePoint span = static_cast<TimePoint>(others) * 10 + 2;
  emit_forward_cluster(ops, 1, span, scale, 1);
  for (int i = 0; i < others; ++i) {
    const TimePoint lo = 10 * static_cast<TimePoint>(i) + 3;
    emit_forward_cluster(ops, lo, lo + 4, scale, 2 + i);
  }
  return normalize(History(std::move(ops)));
}

History generate_b3_chunk(int backward_clusters) {
  if (backward_clusters < 3) {
    throw std::invalid_argument("need at least 3 backward clusters");
  }
  const int b = backward_clusters;
  // Forward run spanning [0, length] via three chained zones; length
  // grows with b so all backward zones fit strictly inside.
  const TimePoint length = 60 + 35 * static_cast<TimePoint>(b);
  const TimePoint third = length / 3;
  std::vector<Operation> ops;
  Value value = 1;
  // Forward clusters (coordinates * 10 keeps them on even stamps).
  auto forward = [&](TimePoint lo, TimePoint hi) {
    ops.push_back(make_write(lo * 10 - 50, lo * 10, value));
    ops.push_back(make_read(hi * 10, hi * 10 + 50, value));
    ++value;
  };
  forward(2, third);
  forward(third - 7, 2 * third);
  forward(2 * third - 7, length);
  // Backward clusters: zone [c, c + 5] strictly inside the run; stamps
  // offset by +1 (odd) so they can never tie with forward stamps.
  for (int i = 0; i < b; ++i) {
    const TimePoint c = (15 + 35 * static_cast<TimePoint>(i)) * 10 + 1;
    ops.push_back(make_write(c - 200, c + 50, value));
    ops.push_back(make_read(c, c + 100, value));
    ++value;
  }
  return normalize(History(std::move(ops)));
}

History generate_random_mix(const RandomMixConfig& config, Rng& rng) {
  if (config.operations < 1) throw std::invalid_argument("need >= 1 op");
  std::vector<Operation> ops;
  std::vector<std::size_t> writes;  // indexes into ops
  for (int i = 0; i < config.operations; ++i) {
    const TimePoint start = rng.uniform(0, config.horizon - 1);
    const TimePoint finish = start + rng.uniform(1, config.max_duration);
    const bool is_write = i == 0 || rng.bernoulli(config.write_fraction);
    if (is_write) {
      ops.push_back(make_write(start, finish, static_cast<Value>(i + 1)));
      writes.push_back(ops.size() - 1);
    } else {
      ops.push_back(make_read(start, finish, 0));  // value assigned below
    }
  }
  // Writes ordered by start, freshest (latest start) first for sampling.
  std::sort(writes.begin(), writes.end(), [&](std::size_t a, std::size_t b) {
    return ops[a].start > ops[b].start;
  });
  for (Operation& op : ops) {
    if (op.is_write()) continue;
    // Candidates: writes the read does not precede (w.start < r.finish
    // keeps the pair either overlapping or write-first).
    std::vector<std::size_t> candidates;
    for (std::size_t w : writes) {
      if (ops[w].start < op.finish) candidates.push_back(w);
    }
    if (candidates.empty()) {
      // Shift the read after the earliest write; guaranteed non-empty
      // because op 0 is a write.
      const Operation& w0 = ops[writes.back()];
      const TimePoint duration = op.finish - op.start;
      op.start = w0.start + 1;
      op.finish = op.start + duration;
      candidates.push_back(writes.back());
    }
    // Geometric staleness: index 0 is the freshest candidate.
    std::size_t index = 0;
    while (index + 1 < candidates.size() &&
           rng.bernoulli(config.staleness_decay)) {
      ++index;
    }
    op.value = ops[candidates[index]].value;
  }
  return normalize(History(std::move(ops)));
}

History generate_high_concurrency(int groups, int concurrent, Rng& rng) {
  if (groups < 1 || concurrent < 3) {
    throw std::invalid_argument("need groups >= 1 and concurrent >= 3");
  }
  (void)rng;  // layout is deterministic; parameter kept for API symmetry
  const int c = concurrent;
  const int b = concurrent;  // decoy-read block size, b = c
  std::vector<Operation> ops;
  Value value = 1;
  TimePoint base = 0;
  const TimePoint clump_span = 1'000'000;
  for (int g = 0; g < groups; ++g) {
    const Value first_value = value;
    // c pairwise-concurrent writes, finishes descending so the
    // successful epoch candidates (the two smallest finishes) are
    // examined last in C's order.
    for (int i = 0; i < c; ++i) {
      ops.push_back(make_write(base + i,
                               base + clump_span - 2 * static_cast<TimePoint>(i),
                               value++));
    }
    // Decoy block: b reads of the smallest-finish write, starting above
    // every clump finish. Any wrong candidate consumes the whole block
    // (first foreign write) before...
    const Value last_value = first_value + c - 1;
    const Value second_last_value = first_value + c - 2;
    for (int i = 0; i < b; ++i) {
      const TimePoint start =
          base + clump_span + 100 + 3 * static_cast<TimePoint>(i);
      ops.push_back(make_read(start, start + 1, last_value));
    }
    // ...hitting this read of the second-smallest-finish write (second
    // foreign write => candidate fails, having done Theta(b) work).
    ops.push_back(make_read(base + clump_span + 50,
                            base + clump_span + 51, second_last_value));
    base += clump_span + 100 + 3 * static_cast<TimePoint>(b) + 1'000;
  }
  return normalize(History(std::move(ops)));
}

}  // namespace kav::gen
