#include "gen/mutators.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace kav::gen {

std::optional<History> inject_staler_read(const History& history, Rng& rng) {
  std::vector<std::pair<OpId, OpId>> choices;  // (read, older write)
  for (OpId r : history.reads()) {
    const OpId w = history.dictating_write(r);
    if (w == kInvalidOp) continue;
    for (OpId older : history.writes_by_start()) {
      if (history.op(older).start >= history.op(w).start) break;
      if (history.op(older).start < history.op(r).finish) {
        choices.emplace_back(r, older);
      }
    }
  }
  if (choices.empty()) return std::nullopt;
  const auto [read, older] = choices[rng.bounded(choices.size())];
  std::vector<Operation> ops(history.operations().begin(),
                             history.operations().end());
  ops[read].value = history.op(older).value;
  return History(std::move(ops));
}

History delay_read(const History& history, OpId read, TimePoint delta) {
  if (read >= history.size() || !history.op(read).is_read()) {
    throw std::invalid_argument("delay_read: not a read");
  }
  std::vector<Operation> ops(history.operations().begin(),
                             history.operations().end());
  ops[read].start += delta;
  ops[read].finish += delta;
  return History(std::move(ops));
}

History drop_operation(const History& history, OpId victim) {
  if (victim >= history.size()) {
    throw std::invalid_argument("drop_operation: bad id");
  }
  std::vector<Operation> ops;
  ops.reserve(history.size() - 1);
  for (OpId id = 0; id < history.size(); ++id) {
    if (id != victim) ops.push_back(history.op(id));
  }
  return History(std::move(ops));
}

History jitter_timestamps(const History& history, TimePoint amount, Rng& rng) {
  std::vector<Operation> ops(history.operations().begin(),
                             history.operations().end());
  for (Operation& op : ops) {
    op.start += rng.uniform(-amount, amount);
    op.finish += rng.uniform(-amount, amount);
    if (op.finish <= op.start) op.finish = op.start + 1;
  }
  return History(std::move(ops));
}

History duplicate_write_value(const History& history, Rng& rng) {
  const auto writes = history.writes_by_start();
  if (writes.size() < 2) {
    throw std::invalid_argument("duplicate_write_value: needs >= 2 writes");
  }
  const OpId a = writes[rng.bounded(writes.size())];
  OpId b = a;
  while (b == a) b = writes[rng.bounded(writes.size())];
  std::vector<Operation> ops(history.operations().begin(),
                             history.operations().end());
  ops[a].value = ops[b].value;
  return History(std::move(ops));
}

}  // namespace kav::gen
