// Trace mutators for failure injection: each takes a well-formed
// history and damages it in a controlled way, so tests can assert that
// detection (anomaly scan) and decision (verdict flips) react as
// specified. All mutators preserve operation count and ids unless noted.
#ifndef KAV_GEN_MUTATORS_H
#define KAV_GEN_MUTATORS_H

#include <optional>

#include "history/history.h"
#include "util/rng.h"

namespace kav::gen {

// Rebinds a random read to the value of a strictly older write (an
// extra staleness hop), preserving anomaly-freedom: the chosen write
// still starts before the read finishes. Returns nullopt if the history
// has no read with an older compatible write.
std::optional<History> inject_staler_read(const History& history, Rng& rng);

// Shifts one read's interval `delta` later in time (same duration).
History delay_read(const History& history, OpId read, TimePoint delta);

// Removes one operation. Ids above `victim` shift down by one; dropping
// a write with dictated reads leaves them dangling (a hard anomaly that
// find_anomalies must flag).
History drop_operation(const History& history, OpId victim);

// Adds uniform noise in [-amount, amount] to every timestamp, keeping
// start < finish. May introduce duplicate timestamps (repairable).
History jitter_timestamps(const History& history, TimePoint amount, Rng& rng);

// Overwrites one write's value with another write's value, creating a
// duplicate-write-value hard anomaly. Requires >= 2 writes.
History duplicate_write_value(const History& history, Rng& rng);

}  // namespace kav::gen

#endif  // KAV_GEN_MUTATORS_H
