// Synthetic history generators. The paper has no published traces, so
// every experiment runs on histories from one of three sources, each
// with a known relationship to ground truth:
//
//   1. generate_k_atomic: k-atomic *by construction* -- operations are
//      realized around an explicit commit-point sequence in which every
//      read commits within k-1 writes of its dictating write; the
//      commit order itself is returned as an intended witness.
//      Tunable interval spread controls the write-concurrency level c
//      (the workload knob in LBT's O(n log n + c n) bound).
//
//   2. adversarial NO-instances for 2-AV, built from the paper's own
//      impossibility patterns: forced separation chains (w1 < w2 < w3 <
//      read-of-w1 entirely ordered in real time), property-P zone
//      patterns (three forward zones sharing a point, or one zone
//      overlapping more than two others -- Lemma 4.2), and chunks with
//      three or more backward clusters (Lemma 4.3).
//
//   3. generate_random_mix: organically mixed histories (random
//      intervals, reads sampling geometrically stale values) whose
//      verdict is unknown a priori -- cross-validation suites compare
//      all deciders against the oracle on thousands of these.
//
// All generators are deterministic given the Rng and return normalized,
// anomaly-free histories.
#ifndef KAV_GEN_GENERATORS_H
#define KAV_GEN_GENERATORS_H

#include <vector>

#include "history/history.h"
#include "util/rng.h"

namespace kav::gen {

struct KAtomicConfig {
  int writes = 10;
  int min_reads_per_write = 0;
  int max_reads_per_write = 3;
  int k = 2;  // every read commits within k-1 writes of its write
  // Fraction of reads pushed to the maximum allowed staleness (k-1
  // intervening writes); the rest draw separation uniformly.
  double max_staleness_fraction = 0.25;
  // Interval half-widths as multiples of the commit spacing; larger
  // values overlap more operations and raise c.
  double spread = 0.8;
};

struct GeneratedHistory {
  History history;
  // The commit order used during construction: a valid k-atomic total
  // order, usable as an intended witness.
  std::vector<OpId> intended_order;
};

GeneratedHistory generate_k_atomic(const KAtomicConfig& config, Rng& rng);

// --- Adversarial NO-instances (for 2-AV) -------------------------------

// `separation + 1` writes followed by a read of the first, all disjoint
// and sequential: minimal k is exactly separation + 1. blocks > 1
// concatenates independent copies along the timeline.
History generate_forced_separation(int separation, int blocks = 1);

// Three forward zones sharing a common point (Lemma 4.2's property P);
// not 2-atomic. `scale` stretches the layout.
History generate_property_p_triple(TimePoint scale = 10);

// One forward zone overlapping `others >= 3` other forward zones (the
// second shape of property P); not 2-atomic.
History generate_property_p_fan(int others = 3, TimePoint scale = 10);

// A single maximal chunk whose extent contains `backward_clusters >= 3`
// backward clusters (Lemma 4.3, case B >= 3); not 2-atomic.
History generate_b3_chunk(int backward_clusters = 3);

// --- Organic mixed workloads -------------------------------------------

struct RandomMixConfig {
  int operations = 12;
  double write_fraction = 0.45;
  TimePoint horizon = 1000;   // starts drawn uniformly from [0, horizon)
  TimePoint max_duration = 150;
  // Read values: 0 picks the freshest plausible write, i picks the
  // i-th-freshest with geometrically decaying probability.
  double staleness_decay = 0.5;
};

// May need several attempts to produce a history with at least one
// write; always returns a normalized anomaly-free history.
History generate_random_mix(const RandomMixConfig& config, Rng& rng);

// --- Workloads for scaling benchmarks ----------------------------------

// Adversarial for LBT's candidate search: `concurrent` pairwise-
// overlapping writes (c = concurrent) whose reads force most candidates
// to fail late. Used to exhibit the O(c n) term of Theorem 3.2.
History generate_high_concurrency(int groups, int concurrent, Rng& rng);

}  // namespace kav::gen

#endif  // KAV_GEN_GENERATORS_H
