// Minimal HTTP/1.1 for the telemetry endpoints: an incremental request
// parser (enough for GET/HEAD with headers, no chunked bodies -- the
// telemetry server rejects bodies anyway), a response renderer, and a
// small blocking client used by tests and the CI smoke script.
//
// The parser is restartable: feed it the connection's cumulative input
// buffer; need_more means "keep reading", ok means `consumed` bytes
// formed one full request head (+ its declared body, which we require
// to be empty). Header names are lowercased during parsing so lookups
// are case-insensitive per RFC 9110.
#ifndef KAV_NET_HTTP_H
#define KAV_NET_HTTP_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kav::net {

struct HttpRequest {
  std::string method;   // as sent: "GET", "HEAD", ...
  std::string target;   // path + optional query, e.g. "/metrics"
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  // Names lowercased; values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;

  // First matching header value, or "" when absent.
  std::string_view header(std::string_view lowercase_name) const;
  // HTTP/1.1 defaults to keep-alive; "connection: close" (or 1.0
  // without "keep-alive") turns it off.
  bool keep_alive() const;
  // The path without any "?query" suffix.
  std::string_view path() const;
};

enum class ParseStatus {
  need_more,  // incomplete head: keep accumulating bytes
  ok,         // one request parsed; `consumed` bytes used
  bad,        // malformed request: respond 400 and close
  too_large,  // head exceeds the size cap: respond 431 and close
};

struct ParseResult {
  ParseStatus status = ParseStatus::need_more;
  std::size_t consumed = 0;
};

// Parses one request head from the front of `input`. `max_head_bytes`
// caps how large a head may grow before we give up (0 = unlimited).
// Requests that declare a non-empty body parse as bad: the telemetry
// surface is read-only.
ParseResult parse_request(std::string_view input, HttpRequest& out,
                          std::size_t max_head_bytes = 0);

// Renders a full response with Content-Length and Connection headers.
// `status` is e.g. 200; the reason phrase is derived from it.
std::string render_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive);

// Blocking one-shot GET against 127.0.0.1-style endpoints -- the test
// and smoke-script client, not a general HTTP client. Throws
// std::runtime_error on connect/IO failure or an unparseable response.
struct HttpResponse {
  int status = 0;
  std::string body;
};
HttpResponse http_get(const std::string& address, std::uint16_t port,
                      const std::string& target,
                      int timeout_ms = 5000);

}  // namespace kav::net

#endif  // KAV_NET_HTTP_H
