#include "net/tcp.h"

#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace kav::net {

#if defined(__linux__)

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking_cloexec(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  flags = fcntl(fd, F_GETFD, 0);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

TcpListener::TcpListener(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("TcpListener: not an IPv4 address: " + address);
  }

  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");

  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  if (bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }

  // Read back the bound endpoint -- this is how port 0 resolves.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &bound.sin_addr, buf, sizeof(buf));
  bound_address_ = buf;
  bound_port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) close(fd_);
}

int TcpListener::accept_one() {
  const int fd = accept(fd_, nullptr, nullptr);
  if (fd < 0) return -1;
  set_nonblocking_cloexec(fd);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

TcpConnection::TcpConnection(EventLoop& loop, int fd)
    : loop_(loop), fd_(fd), last_activity_(std::chrono::steady_clock::now()) {
  loop_.add_fd(fd_, kReadable,
               [this](std::uint32_t ready) { handle_events(ready); });
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) {
    loop_.remove_fd(fd_);
    close(fd_);
    fd_ = -1;
  }
}

void TcpConnection::handle_events(std::uint32_t ready) {
  if (ready & kError) {
    close_now();
    return;
  }
  if (ready & kWritable) handle_writable();
  if (fd_ >= 0 && (ready & kReadable)) handle_readable();
}

void TcpConnection::handle_readable() {
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      in_.append(buf, static_cast<std::size_t>(n));
      last_activity_ = std::chrono::steady_clock::now();
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed its write side; anything still buffered stays
      // unanswered -- hang up.
      close_now();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_now();
    return;
  }

  if (on_data_ && !in_.empty()) {
    const std::size_t consumed = on_data_(in_);
    // The handler may have closed us (bad request, response +
    // close_after_flush with nothing pending).
    if (fd_ < 0) return;
    if (consumed >= in_.size()) {
      in_.clear();
    } else if (consumed > 0) {
      in_.erase(0, consumed);
    }
  }
  if (fd_ >= 0 && max_input_ != 0 && in_.size() > max_input_) close_now();
}

void TcpConnection::handle_writable() {
  while (out_offset_ < out_.size()) {
    const ssize_t n = write(fd_, out_.data() + out_offset_,
                            out_.size() - out_offset_);
    if (n > 0) {
      out_offset_ += static_cast<std::size_t>(n);
      last_activity_ = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_now();
    return;
  }
  if (out_offset_ >= out_.size()) {
    out_.clear();
    out_offset_ = 0;
    if (close_after_flush_) {
      close_now();
      return;
    }
  } else if (out_offset_ > out_.size() / 2) {
    out_.erase(0, out_offset_);
    out_offset_ = 0;
  }
  update_interest();
}

void TcpConnection::send(std::string_view data) {
  if (fd_ < 0 || close_after_flush_ || data.empty()) return;
  out_.append(data);
  handle_writable();
}

void TcpConnection::close_after_flush() {
  if (fd_ < 0) return;
  close_after_flush_ = true;
  if (pending_output() == 0) close_now();
}

void TcpConnection::close_now() {
  if (fd_ < 0) return;
  loop_.remove_fd(fd_);
  close(fd_);
  fd_ = -1;
  if (on_close_) {
    // Move out first: on_close typically destroys this connection.
    const std::function<void()> on_close = std::move(on_close_);
    on_close_ = nullptr;
    on_close();
  }
}

void TcpConnection::update_interest() {
  if (fd_ < 0) return;
  const bool want_write = pending_output() > 0;
  if (want_write == want_write_) return;
  want_write_ = want_write;
  loop_.modify_fd(fd_, kReadable | (want_write ? kWritable : 0));
}

#else  // !defined(__linux__)

TcpListener::TcpListener(const std::string&, std::uint16_t) {
  throw std::runtime_error("kav::net::TcpListener requires Linux");
}
TcpListener::~TcpListener() = default;
int TcpListener::accept_one() { return -1; }

TcpConnection::TcpConnection(EventLoop& loop, int fd) : loop_(loop), fd_(fd) {
  throw std::runtime_error("kav::net::TcpConnection requires Linux");
}
TcpConnection::~TcpConnection() = default;
void TcpConnection::handle_events(std::uint32_t) {}
void TcpConnection::handle_readable() {}
void TcpConnection::handle_writable() {}
void TcpConnection::send(std::string_view) {}
void TcpConnection::close_after_flush() {}
void TcpConnection::close_now() {}
void TcpConnection::update_interest() {}

#endif

}  // namespace kav::net
