// Non-blocking TCP on the EventLoop: a lean listener + buffered
// connection in the ScalienDB TCPConnection mold. TcpListener owns the
// bound/listening socket (port 0 picks an ephemeral port and reports
// it back -- tests and CI bind 127.0.0.1:0 and read bound_port()).
// TcpConnection owns one accepted fd registered on the loop: reads
// append to an in-memory buffer handed to on_data, writes queue into
// an output buffer flushed as EPOLLOUT allows (the writer never
// blocks), and close_after_flush() is the graceful "respond then hang
// up" path HTTP needs.
//
// Everything here runs on the loop thread (see net/event_loop.h's
// contract); the classes carry no locks on purpose.
#ifndef KAV_NET_TCP_H
#define KAV_NET_TCP_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/event_loop.h"

namespace kav::net {

// Binds, listens, accepts -- all non-blocking. Register fd() on an
// EventLoop for kReadable and call accept_one() until it returns -1.
class TcpListener {
 public:
  // Throws std::runtime_error when the address does not parse
  // (IPv4 dotted quad only) or bind/listen fail (port in use, no
  // permission). port 0 = ephemeral.
  TcpListener(const std::string& address, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int fd() const { return fd_; }
  // The actually-bound endpoint (resolves port 0).
  const std::string& bound_address() const { return bound_address_; }
  std::uint16_t bound_port() const { return bound_port_; }

  // One pending connection as a non-blocking CLOEXEC fd, or -1 when
  // the accept queue is drained (or a transient error occurred).
  int accept_one();

 private:
  int fd_ = -1;
  std::string bound_address_;
  std::uint16_t bound_port_ = 0;
};

// One accepted connection, loop-registered for its lifetime. The
// owner keeps it in a container and destroys it after on_close fires
// (destruction deregisters and closes the fd if still open).
class TcpConnection {
 public:
  // `fd` must be non-blocking; the connection takes ownership and
  // registers with `loop` immediately (kReadable).
  TcpConnection(EventLoop& loop, int fd);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // `on_data` runs after each successful read with the cumulative
  // input buffer; the handler consumes a prefix by returning how many
  // bytes it used (0 = keep accumulating). `on_close` runs exactly
  // once, after the fd is deregistered and closed. Do NOT destroy the
  // connection from inside on_close -- its member frames may still be
  // on the stack; defer destruction via EventLoop::post() instead.
  void set_on_data(std::function<std::size_t(std::string_view)> on_data) {
    on_data_ = std::move(on_data);
  }
  void set_on_close(std::function<void()> on_close) {
    on_close_ = std::move(on_close);
  }

  // Queues `data` for writing; flushes as much as the socket takes
  // now and arms EPOLLOUT for the rest. Never blocks. Data queued
  // after close_after_flush() is dropped.
  void send(std::string_view data);

  // Closes once the output buffer drains (immediately when empty).
  void close_after_flush();
  // Closes now, dropping any unflushed output. Triggers on_close.
  void close_now();

  bool closed() const { return fd_ < 0; }
  // Bytes queued but not yet accepted by the socket.
  std::size_t pending_output() const { return out_.size() - out_offset_; }
  // Seconds since the last successful read or write, for idle sweeps.
  double idle_seconds(std::chrono::steady_clock::time_point now) const {
    return std::chrono::duration<double>(now - last_activity_).count();
  }

  // Caps the input buffer: a peer that sends more than this without
  // the handler consuming it is closed (slowloris guard). 0 = no cap.
  void set_max_buffered_input(std::size_t bytes) { max_input_ = bytes; }

 private:
  void handle_events(std::uint32_t ready);
  void handle_readable();
  void handle_writable();
  void update_interest();

  EventLoop& loop_;
  int fd_;
  std::function<std::size_t(std::string_view)> on_data_;
  std::function<void()> on_close_;
  std::string in_;
  std::string out_;
  // Flushed prefix of out_; compacted once it passes half the buffer.
  std::size_t out_offset_ = 0;
  std::size_t max_input_ = 0;
  bool close_after_flush_ = false;
  bool want_write_ = false;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace kav::net

#endif  // KAV_NET_TCP_H
