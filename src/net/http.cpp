#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace kav::net {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

}  // namespace

std::string_view HttpRequest::header(std::string_view lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return value;
  }
  return {};
}

bool HttpRequest::keep_alive() const {
  const std::string_view connection = header("connection");
  if (iequals(connection, "close")) return false;
  if (version == "HTTP/1.0") return iequals(connection, "keep-alive");
  return true;  // HTTP/1.1 default
}

std::string_view HttpRequest::path() const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

ParseResult parse_request(std::string_view input, HttpRequest& out,
                          std::size_t max_head_bytes) {
  const std::size_t head_end = input.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (max_head_bytes != 0 && input.size() > max_head_bytes) {
      return {ParseStatus::too_large, 0};
    }
    return {ParseStatus::need_more, 0};
  }
  if (max_head_bytes != 0 && head_end + 4 > max_head_bytes) {
    return {ParseStatus::too_large, 0};
  }

  out = HttpRequest{};
  const std::string_view head = input.substr(0, head_end);

  // Request line: METHOD SP TARGET SP VERSION
  std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return {ParseStatus::bad, 0};
  }
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (out.method.empty() || out.target.empty() ||
      (out.version != "HTTP/1.1" && out.version != "HTTP/1.0")) {
    return {ParseStatus::bad, 0};
  }

  // Header lines.
  std::size_t pos =
      line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return {ParseStatus::bad, 0};
    out.headers.emplace_back(to_lower(trim(line.substr(0, colon))),
                             std::string(trim(line.substr(colon + 1))));
  }

  // Read-only surface: refuse bodies outright rather than buffering
  // and discarding attacker-sized payloads.
  const std::string_view content_length = out.header("content-length");
  if (!content_length.empty() && content_length != "0") {
    return {ParseStatus::bad, 0};
  }
  if (!out.header("transfer-encoding").empty()) {
    return {ParseStatus::bad, 0};
  }

  return {ParseStatus::ok, head_end + 4};
}

std::string render_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: ";
    out += content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

#if defined(__linux__)

HttpResponse http_get(const std::string& address, std::uint16_t port,
                      const std::string& target, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("http_get: not an IPv4 address: " + address);
  }

  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("http_get: socket failed");

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    throw std::runtime_error("http_get: connect to " + address + ":" +
                             std::to_string(port) + " failed: " +
                             std::strerror(errno));
  }

  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + address +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close(fd);
      throw std::runtime_error("http_get: send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      close(fd);
      throw std::runtime_error("http_get: read failed (timeout?)");
    }
    break;  // EOF: Connection: close means the server hangs up after
  }
  close(fd);

  // Minimal response parse: status line + blank line + body. We asked
  // for Connection: close, so EOF delimits the body regardless of
  // Content-Length.
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    throw std::runtime_error("http_get: malformed response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > head_end) {
    throw std::runtime_error("http_get: malformed status line");
  }
  HttpResponse response;
  response.status = std::stoi(raw.substr(sp + 1, 3));
  response.body = raw.substr(head_end + 4);
  return response;
}

#else  // !defined(__linux__)

HttpResponse http_get(const std::string&, std::uint16_t, const std::string&,
                      int) {
  throw std::runtime_error("kav::net::http_get requires Linux");
}

#endif

}  // namespace kav::net
