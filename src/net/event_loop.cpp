#include "net/event_loop.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace kav::net {

#if defined(__linux__)

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if (interest & kReadable) events |= EPOLLIN;
  if (interest & kWritable) events |= EPOLLOUT;
  return events;
}

std::uint32_t from_epoll(std::uint32_t events) {
  std::uint32_t ready = 0;
  if (events & (EPOLLIN | EPOLLPRI)) ready |= kReadable;
  if (events & EPOLLOUT) ready |= kWritable;
  if (events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) ready |= kError;
  return ready;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    close(wakeup_fd_);
    close(epoll_fd_);
    throw_errno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() {
  assert(!running_.load(std::memory_order_acquire) &&
         "EventLoop destroyed while run() is live");
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

bool EventLoop::on_loop_thread() const {
  return loop_thread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback callback) {
  assert(!running_.load(std::memory_order_acquire) || on_loop_thread());
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  callbacks_[fd] = std::move(callback);
}

void EventLoop::modify_fd(int fd, std::uint32_t interest) {
  assert(!running_.load(std::memory_order_acquire) || on_loop_thread());
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void EventLoop::remove_fd(int fd) {
  assert(!running_.load(std::memory_order_acquire) || on_loop_thread());
  // Deregister from epoll first so a pending event cannot fire into a
  // just-erased callback slot.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::add_periodic(std::chrono::milliseconds interval,
                             std::function<void()> fn) {
  assert(!running_.load(std::memory_order_acquire) || on_loop_thread());
  Periodic periodic;
  periodic.interval = interval;
  periodic.next = std::chrono::steady_clock::now() + interval;
  periodic.fn = std::move(fn);
  periodics_.push_back(std::move(periodic));
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wake.
  [[maybe_unused]] const ssize_t n =
      write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::drain_wakeup_fd() {
  std::uint64_t count = 0;
  while (read(wakeup_fd_, &count, sizeof(count)) > 0) {
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<std::function<void()>> batch;
  {
    util::MutexLock lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

int EventLoop::poll_timeout_ms() const {
  if (periodics_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  auto nearest = periodics_.front().next;
  for (const Periodic& periodic : periodics_) {
    if (periodic.next < nearest) nearest = periodic.next;
  }
  if (nearest <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(nearest - now)
          .count();
  // +1 rounds up so we never spin on a sub-millisecond residue.
  return static_cast<int>(ms) + 1;
}

void EventLoop::fire_due_periodics() {
  const auto now = std::chrono::steady_clock::now();
  for (Periodic& periodic : periodics_) {
    if (periodic.next > now) continue;
    // Re-arm from now, not from the missed deadline: coarse timers
    // must not burst-fire after a long dispatch stall.
    periodic.next = now + periodic.interval;
    periodic.fn();
  }
}

void EventLoop::run() {
  // The stop flag is consumed at exit, not reset here: a stop() that
  // lands between spawning the loop thread and this line must make
  // this run() return immediately, not vanish (the caller may already
  // be blocked in join()).
  running_.store(true, std::memory_order_release);
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);

  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents,
                             poll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      running_.store(false, std::memory_order_release);
      loop_thread_.store(std::thread::id{}, std::memory_order_release);
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        drain_wakeup_fd();
        continue;
      }
      // Look up per event: an earlier callback in this batch may have
      // removed this fd.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      // Copy: the callback may remove_fd(fd) (erasing the slot under
      // the map iterator) and even re-add it.
      const FdCallback callback = it->second;
      callback(from_epoll(events[i].events));
    }
    run_posted_tasks();
    fire_due_periodics();
  }
  // Final drain so a post()+stop() pair from another thread cannot
  // strand its task.
  run_posted_tasks();
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);  // consumed: re-runnable
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::post(std::function<void()> task) {
  {
    util::MutexLock lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::close_fd(int fd) {
  if (fd >= 0) close(fd);
}

#else  // !defined(__linux__)

// Non-Linux: the loop is a stub that refuses to construct. The rest of
// the library (verification, store, metrics) is platform-independent;
// only live telemetry serving needs the epoll substrate.
EventLoop::EventLoop() {
  throw std::runtime_error(
      "kav::net::EventLoop requires Linux (epoll/eventfd)");
}
EventLoop::~EventLoop() = default;
bool EventLoop::on_loop_thread() const { return false; }
void EventLoop::add_fd(int, std::uint32_t, FdCallback) {}
void EventLoop::modify_fd(int, std::uint32_t) {}
void EventLoop::remove_fd(int) {}
void EventLoop::add_periodic(std::chrono::milliseconds,
                             std::function<void()>) {}
void EventLoop::wake() {}
void EventLoop::drain_wakeup_fd() {}
void EventLoop::run_posted_tasks() {}
int EventLoop::poll_timeout_ms() const { return -1; }
void EventLoop::fire_due_periodics() {}
void EventLoop::run() {}
void EventLoop::stop() {}
void EventLoop::post(std::function<void()>) {}
void EventLoop::close_fd(int) {}

#endif

}  // namespace kav::net
