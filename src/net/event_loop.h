// kav::net -- the async substrate for everything that speaks to the
// outside world. One EventLoop is one epoll instance driven by one
// thread: non-blocking fds register interest + a callback, periodic
// timers fire between polls, and other threads reach the loop only
// through post() (task queue + eventfd wakeup) or stop(). This is the
// event loop ROADMAP item 1 blesses as its own PR: the telemetry
// server (obs/telemetry_server.h) runs on it today, and the kavd
// frame-protocol listener sits on the same loop next.
//
// Threading contract, enforced with assertions where cheap:
//
//   * add_fd / modify_fd / remove_fd / add_periodic are loop-thread
//     only once run() has started (call them freely before, while the
//     loop is still single-owner; afterwards, hop via post()).
//   * post() and stop() are safe from any thread, including fd
//     callbacks on the loop thread itself.
//   * Callbacks run on the loop thread, one at a time -- handler code
//     needs no locks for state only the loop touches.
//
// The loop never owns fds: whoever registered an fd closes it (after
// remove_fd). TcpListener / TcpConnection (net/tcp.h) wrap that
// pattern for sockets.
//
// Platform: epoll + eventfd, i.e. Linux. On other platforms the
// constructor throws; nothing else in the library links against this
// unless telemetry serving is actually used.
#ifndef KAV_NET_EVENT_LOOP_H
#define KAV_NET_EVENT_LOOP_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "util/thread_safety.h"

namespace kav::net {

// Interest / readiness bits, deliberately not the raw EPOLL* values so
// this header needs no <sys/epoll.h>. kError is delivery-only (always
// monitored): closed/han-gup/error conditions arrive as kError |
// whatever else was ready.
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
inline constexpr std::uint32_t kError = 1u << 2;

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t ready)>;

  EventLoop();
  // The loop must be stopped (run() returned) before destruction when
  // it ever ran; destroying a never-run loop is fine.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` (must already be non-blocking) for `interest`
  // (kReadable/kWritable). The callback receives the ready set each
  // time the fd polls ready.
  void add_fd(int fd, std::uint32_t interest, FdCallback callback);
  // Re-arms an already-added fd with a new interest set.
  void modify_fd(int fd, std::uint32_t interest);
  // Unregisters; the caller still owns (and closes) the fd. Safe to
  // call from inside the fd's own callback.
  void remove_fd(int fd);

  // Runs `fn` every `interval`, first firing one interval from now.
  // Coarse by design (per-poll resolution): idle sweeps and samplers,
  // not high-resolution timers.
  void add_periodic(std::chrono::milliseconds interval,
                    std::function<void()> fn);

  // Blocks servicing the loop until stop(). Re-runnable after a stop.
  // A stop() that lands before run() begins is not lost: that run()
  // drains any posted tasks and returns immediately.
  void run();

  // Requests run() to return once the current dispatch finishes. Any
  // thread; idempotent.
  void stop();

  // Enqueues `task` to run on the loop thread (FIFO, between polls).
  // Any thread. Tasks enqueued after stop() run on the next run().
  void post(std::function<void()> task);

  // True while the calling thread is inside run(). add/modify/remove
  // assert this once the loop is live.
  bool on_loop_thread() const;

  // Closes a raw fd -- a shim so fd-owning callers (e.g. a server
  // refusing an accepted connection) need no platform headers.
  static void close_fd(int fd);

 private:
  struct Periodic {
    std::chrono::milliseconds interval{0};
    std::chrono::steady_clock::time_point next{};
    std::function<void()> fn;
  };

  void wake();
  void drain_wakeup_fd();
  void run_posted_tasks();
  // Milliseconds until the nearest periodic deadline (-1: no timers).
  int poll_timeout_ms() const;
  void fire_due_periodics();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  // The thread currently inside run(); null id otherwise.
  std::atomic<std::thread::id> loop_thread_{};

  // Loop-thread-only state (no lock: see the threading contract).
  std::map<int, FdCallback> callbacks_;
  std::vector<Periodic> periodics_;

  // The one cross-thread door besides stop_: post()'s task queue.
  util::Mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_ KAV_GUARDED_BY(tasks_mutex_);
};

}  // namespace kav::net

#endif  // KAV_NET_EVENT_LOOP_H
