// Span tracing: where metrics answer "how much / how fast overall",
// spans answer "what was this thread doing at t". A Tracer keeps a
// fixed-size ring of completed spans (oldest dropped first, drops
// counted) that dump_chrome_json() renders as a chrome://tracing /
// Perfetto-loadable document.
//
// The taxonomy is intentionally small (see docs/OBSERVABILITY.md):
// engine.verify / engine.monitor wrap whole runs, shard.verify and
// shard.decode wrap per-shard pipeline work, store.maintenance wraps
// background compaction passes. Everything is keyed off the process
// tracer, which is disabled unless KAV_TRACE is set in the environment
// (or enable() is called) -- a disabled tracer costs one relaxed bool
// load per span, and ScopedTimer skips clock reads entirely when
// neither its histogram nor its tracer is live.
#ifndef KAV_OBS_SPAN_H
#define KAV_OBS_SPAN_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_safety.h"

namespace kav::obs {

// One completed span. Times are nanoseconds on the steady clock, tid
// is the obs thread slot (small, stable per thread).
struct TraceEvent {
  const char* name = "";      // static-storage strings only
  const char* category = "";  // ditto
  std::uint64_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

class Tracer {
 public:
  // Ring capacity is fixed at construction; the process tracer keeps
  // the last 64Ki spans (~3 MiB).
  explicit Tracer(std::size_t capacity = 64 * 1024);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  void record(const TraceEvent& event);

  // Completed spans, oldest first, plus how many were evicted before
  // them. Safe concurrently with record().
  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const;

  void clear();

  // Chrome trace-event JSON ("X" complete events, ts/dur in
  // microseconds): load via chrome://tracing or ui.perfetto.dev.
  std::string dump_chrome_json() const;

  // Process-wide tracer; enabled at startup iff KAV_TRACE is set to
  // anything other than empty/"0". Never destroyed, same rationale as
  // MetricsRegistry::global().
  static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> ring_ KAV_GUARDED_BY(mutex_);
  // Immutable after construction; readable without the lock.
  const std::size_t capacity_;
  // Ring write position once full.
  std::size_t next_ KAV_GUARDED_BY(mutex_) = 0;
  // Lifetime record() count.
  std::uint64_t total_ KAV_GUARDED_BY(mutex_) = 0;
};

// RAII span: records [construction, destruction) into `tracer` under
// `name`/`category`. Inert (no clock reads) when the tracer is null or
// disabled at construction time.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const char* category) noexcept
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        category_(category) {
    if (tracer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void finish() noexcept;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_{};
};

// One timing, two sinks: observes elapsed seconds into `histogram`
// (if non-null and its registry is enabled) and emits a span into
// `tracer` (if non-null, named, and enabled). When both sinks are
// inactive no clock is read -- this is what instrumented hot paths use
// so KAV_NO_METRICS really does strip the timing cost.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, Tracer* tracer = nullptr,
                       const char* name = nullptr,
                       const char* category = "kav") noexcept
      : histogram_(histogram != nullptr && histogram->enabled() ? histogram
                                                                : nullptr),
        tracer_(tracer != nullptr && name != nullptr && tracer->enabled()
                    ? tracer
                    : nullptr),
        name_(name),
        category_(category) {
    if (histogram_ != nullptr || tracer_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Idempotent; returns elapsed seconds (0.0 when inactive).
  double stop() noexcept;

 private:
  Histogram* histogram_;
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace kav::obs

#endif  // KAV_OBS_SPAN_H
