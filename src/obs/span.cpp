#include "obs/span.h"

#include <cstdlib>

namespace kav::obs {

namespace {

std::uint64_t steady_ns(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

bool tracing_enabled_by_env() {
  const char* raw = std::getenv("KAV_TRACE");
  return raw != nullptr && raw[0] != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[(c >> 4) & 0xF];
      out += hex[c & 0xF];
    } else {
      out += c;
    }
  }
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  util::MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceEvent> Tracer::events() const {
  util::MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, next_ points at the oldest surviving event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  util::MutexLock lock(mutex_);
  return total_ - ring_.size();
}

void Tracer::clear() {
  util::MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string Tracer::dump_chrome_json() const {
  const std::vector<TraceEvent> snapshot = events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    // chrome://tracing wants microseconds; keep sub-us precision as a
    // zero-padded fraction (Perfetto accepts fractional ts/dur).
    const auto append_us = [&out](std::uint64_t ns) {
      out += std::to_string(ns / 1000);
      const std::uint64_t frac = ns % 1000;
      out += '.';
      out += static_cast<char>('0' + frac / 100);
      out += static_cast<char>('0' + (frac / 10) % 10);
      out += static_cast<char>('0' + frac % 10);
    };
    out += ",\"ts\":";
    append_us(e.start_ns);
    out += ",\"dur\":";
    append_us(e.duration_ns);
    out += '}';
  }
  out += "]}";
  return out;
}

Tracer& Tracer::global() {
  // kav-lint: allow-next-line(naked-new) intentionally leaked singleton
  static Tracer* instance = new Tracer();
  static bool init = [] {
    if (tracing_enabled_by_env()) instance->enable();
    return true;
  }();
  (void)init;
  return *instance;
}

void Span::finish() noexcept {
  if (tracer_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tid = detail::thread_slot();
  event.start_ns = steady_ns(start_);
  event.duration_ns = steady_ns(end) - event.start_ns;
  tracer_->record(event);
  tracer_ = nullptr;
}

double ScopedTimer::stop() noexcept {
  if (histogram_ == nullptr && tracer_ == nullptr) return 0.0;
  const auto end = std::chrono::steady_clock::now();
  const auto elapsed = end - start_;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  if (histogram_ != nullptr) {
    histogram_->observe(seconds);
    histogram_ = nullptr;
  }
  if (tracer_ != nullptr) {
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.tid = detail::thread_slot();
    event.start_ns = steady_ns(start_);
    event.duration_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    tracer_->record(event);
    tracer_ = nullptr;
  }
  return seconds;
}

}  // namespace kav::obs
