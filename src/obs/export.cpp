#include "obs/export.h"

#include <charconv>
#include <system_error>

namespace kav::obs {

namespace detail {

std::string format_double(double v) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  if (result.ec != std::errc()) return "0";  // cannot happen with 64 bytes
  return std::string(buf, result.ptr);
}

void append_prometheus_escaped(std::string& out, std::string_view s,
                               bool escape_quotes) {
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"' && escape_quotes) {
      out += "\\\"";
    } else {
      out += c;
    }
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[(c >> 4) & 0xF];
      out += hex[c & 0xF];
    } else {
      out += c;
    }
  }
}

}  // namespace detail

namespace {

using detail::append_json_escaped;
using detail::append_prometheus_escaped;
using detail::format_double;

// {k1="v1",k2="v2"} with `extra` appended last (used for le=""), or
// nothing when there are no labels at all.
void append_label_set(std::string& out, const Labels& labels,
                      const std::string* extra_key = nullptr,
                      const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_prometheus_escaped(out, v, /*escape_quotes=*/true);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += *extra_key;
    out += "=\"";
    out += *extra_value;
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string render_prometheus(const RegistrySnapshot& snapshot) {
  static const std::string kLe = "le";
  std::string out;
  const std::string* last_name = nullptr;
  for (const MetricSnapshot& m : snapshot.metrics) {
    // Snapshots are sorted, so all series of one name are contiguous:
    // emit HELP/TYPE once, at the first series.
    if (last_name == nullptr || *last_name != m.name) {
      out += "# HELP ";
      out += m.name;
      out += ' ';
      append_prometheus_escaped(out, m.help, /*escape_quotes=*/false);
      out += "\n# TYPE ";
      out += m.name;
      out += ' ';
      out += to_string(m.type);
      out += '\n';
      last_name = &m.name;
    }
    if (m.type == MetricType::histogram) {
      const HistogramSnapshot& h = m.histogram;
      std::uint64_t cumulative = 0;
      for (int b = 0; b + 1 < kHistogramBuckets; ++b) {
        const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;  // only populated bounds; +Inf closes the set
        cumulative += n;
        const std::string bound =
            format_double(Histogram::bucket_upper_bound(b));
        out += m.name;
        out += "_bucket";
        append_label_set(out, m.labels, &kLe, &bound);
        out += ' ';
        out += std::to_string(cumulative);
        out += '\n';
      }
      static const std::string kInf = "+Inf";
      out += m.name;
      out += "_bucket";
      append_label_set(out, m.labels, &kLe, &kInf);
      out += ' ';
      out += std::to_string(h.count);
      out += '\n';
      out += m.name;
      out += "_sum";
      append_label_set(out, m.labels);
      out += ' ';
      out += format_double(h.sum);
      out += '\n';
      out += m.name;
      out += "_count";
      append_label_set(out, m.labels);
      out += ' ';
      out += std::to_string(h.count);
      out += '\n';
    } else {
      out += m.name;
      append_label_set(out, m.labels);
      out += ' ';
      out += format_double(m.value);
      out += '\n';
    }
  }
  return out;
}

std::string render_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, m.name);
    out += "\",\"type\":\"";
    out += to_string(m.type);
    out += "\",\"help\":\"";
    append_json_escaped(out, m.help);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      append_json_escaped(out, k);
      out += "\":\"";
      append_json_escaped(out, v);
      out += '"';
    }
    out += '}';
    if (m.type == MetricType::histogram) {
      const HistogramSnapshot& h = m.histogram;
      out += ",\"count\":";
      out += std::to_string(h.count);
      out += ",\"sum\":";
      out += format_double(h.sum);
      // Cumulative counts at each populated finite bound; the total
      // (including the overflow bucket) is "count" above.
      out += ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      bool first_bucket = true;
      for (int b = 0; b + 1 < kHistogramBuckets; ++b) {
        const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        cumulative += n;
        if (!first_bucket) out += ',';
        first_bucket = false;
        out += "{\"le\":";
        out += format_double(Histogram::bucket_upper_bound(b));
        out += ",\"count\":";
        out += std::to_string(cumulative);
        out += '}';
      }
      out += ']';
    } else {
      out += ",\"value\":";
      out += format_double(m.value);
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string render(const RegistrySnapshot& snapshot, ExportFormat format) {
  return format == ExportFormat::prometheus ? render_prometheus(snapshot)
                                            : render_json(snapshot);
}

bool write_snapshot(std::FILE* stream, const RegistrySnapshot& snapshot,
                    ExportFormat format) {
  const std::string text = render(snapshot, format);
  return std::fwrite(text.data(), 1, text.size(), stream) == text.size();
}

}  // namespace kav::obs
