// kav::obs -- the always-on observability spine. One MetricsRegistry
// per process (or per Engine, when injected via EngineOptions::metrics)
// holds every instrument the engine, pipeline, monitor, and store
// update while they run; kavd (ROADMAP item 1) and the scale-out
// coordinator (item 2) scrape it through obs/export.h's pure renderers.
//
// Design constraints, in order:
//
//   1. Hot paths pay one relaxed atomic add. Counter and Histogram are
//      sharded into cache-line-sized per-thread cells (a thread hashes
//      to a cell once, via a thread_local slot id), so concurrent
//      writers on the SIMD decode/verify path and the monitor's ingest
//      path never contend on one cache line. Totals are exact: cells
//      are summed on read.
//   2. Reads never stop writers. snapshot() takes the registration
//      mutex (instrument creation is cold) and reads each cell with a
//      relaxed load -- a scrape concurrent with a run sees a value
//      between the run's start and end states, which is what a
//      monotonic counter means.
//   3. Disabled means cheap, not absent. KAV_NO_METRICS=1 (env, read
//      at registry construction) or set_enabled(false) turns every
//      add/observe into a relaxed bool load + branch, so the 2%
//      overhead guardrail in bench/run_bench.sh has a true baseline to
//      compare against without recompiling.
//
// Instruments follow Prometheus semantics: Counter (monotonic, u64),
// Gauge (settable, i64), Histogram (log-bucketed, base-2 bounds
// 2^(b-30) -- ~1ns to ~272yr when observing seconds, still usable for
// sizes/occupancies). Same (name, labels) pair always returns the same
// instrument; a type conflict on a name throws.
//
// Metric catalog, naming rules, and exporter formats: docs/OBSERVABILITY.md.
#ifndef KAV_OBS_METRICS_H
#define KAV_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_safety.h"

namespace kav::obs {

// Label set of one instrument, e.g. {{"mode", "batch"}}. Stored sorted
// by key; duplicate keys are rejected at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : unsigned char { counter, gauge, histogram };

const char* to_string(MetricType type);

namespace detail {

// Process-unique small id per thread, assigned on first use: the cell
// index every sharded instrument derives from. Monotonically growing,
// so long-lived pools map to stable cells.
inline std::atomic<std::size_t> g_next_thread_slot{0};
inline std::size_t thread_slot() noexcept {
  thread_local const std::size_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

inline constexpr std::size_t kCounterCells = 16;   // power of two
inline constexpr std::size_t kHistogramCells = 4;  // power of two

}  // namespace detail

// Monotonic event count. add() is wait-free: one relaxed fetch_add on
// the calling thread's cell.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[detail::thread_slot() & (detail::kCounterCells - 1)]
        .value.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  // Exact sum over cells (each increment lands in exactly one cell).
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::array<detail::CounterCell, detail::kCounterCells> cells_;
  const std::atomic<bool>* enabled_;
};

// Point-in-time level (queue depth, bytes on disk, watermark lag).
// Signed so paired add/sub never saturates; one atomic, not sharded --
// gauges are updated per task / per drain pass, not per operation.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d) noexcept { add(-d); }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<std::int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

inline constexpr int kHistogramBuckets = 64;

struct HistogramSnapshot {
  // Per-bucket (NOT cumulative) observation counts; bucket b covers
  // (upper_bound(b-1), upper_bound(b)], bucket 0 additionally takes
  // everything <= upper_bound(0) (zeros and negatives included), and
  // the last bucket takes everything above the penultimate bound
  // (rendered as le="+Inf").
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  double sum = 0.0;
  std::uint64_t count = 0;  // == sum of buckets, by construction
};

// Log-bucketed distribution with exact count/sum. Bucket upper bounds
// are powers of two, 2^(b-30): observing seconds, bucket 0 ends at
// ~0.93ns and bucket 62 at 2^32 s; the last bucket is the +Inf
// overflow. Base-2 bounds make bucket_index() branch-light and
// float-exact (frexp), which the bucket-boundary property test pins.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Upper bound of bucket b in native units: 2^(b - 30).
  static double bucket_upper_bound(int b) noexcept {
    return std::ldexp(1.0, b - 30);
  }

  // Smallest b with v <= bucket_upper_bound(b), clamped to the last
  // bucket; NaN and everything <= the smallest bound land in bucket 0.
  static int bucket_index(double v) noexcept {
    if (!(v > 0x1p-30)) return 0;
    if (v > 0x1p33) return kHistogramBuckets - 1;  // past bucket 62's bound
    int exp = 0;
    // v * 2^30 = frac * 2^exp with frac in [0.5, 1): exact for any
    // finite double (scaling by a power of two never rounds).
    const double frac = std::frexp(std::ldexp(v, 30), &exp);
    const int b = (frac == 0.5) ? exp - 1 : exp;
    return b < 0 ? 0 : b;
  }

  void observe(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Cell& cell =
        cells_[detail::thread_slot() & (detail::kHistogramCells - 1)];
    cell.buckets[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    cell.sum.fetch_add(v, std::memory_order_relaxed);  // C++20 atomic<double>
  }

  bool enabled() const noexcept {
    return enabled_->load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (const Cell& cell : cells_) {
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[static_cast<std::size_t>(b)] +=
            cell.buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
      out.sum += cell.sum.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t n : out.buckets) out.count += n;
    return out;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::array<Cell, detail::kHistogramCells> cells_;
  const std::atomic<bool>* enabled_;
};

// One instrument's state at snapshot time. `value` carries counters
// (cast from u64) and gauges; `histogram` carries histograms.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::counter;
  Labels labels;  // sorted by key
  double value = 0.0;
  HistogramSnapshot histogram;
};

// Point-in-time view of a whole registry, sorted by (name, labels) so
// renders and golden tests are deterministic. Counters are monotonic,
// so a snapshot taken during a run is a valid state between the run's
// start and end -- Engine::snapshot() leans on exactly this.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
};

class MetricsRegistry {
 public:
  // Enabled unless the environment says KAV_NO_METRICS=1 (any value
  // other than empty/"0" disables); set_enabled overrides either way.
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The same (name, labels) always returns the same
  // instrument (help is taken from the first registration); a name
  // already registered as a different type throws std::logic_error,
  // as do duplicate label keys. Returned references live as long as
  // the registry. Registration takes a mutex -- create instruments at
  // construction time, not on hot paths.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {});

  RegistrySnapshot snapshot() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // The process-wide default registry every subsystem instruments into
  // unless handed another one (EngineOptions::metrics). Never
  // destroyed: instruments handed out from it stay valid through
  // static teardown.
  static MetricsRegistry& global();

 private:
  struct Entry;

  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, MetricType type)
      KAV_EXCLUDES(mutex_);

  // Registration-side lock only: instrument creation and snapshot()
  // serialize here, while add/observe on handed-out instruments stay
  // lock-free (per-thread atomic cells).
  mutable util::Mutex mutex_;
  // Keyed by name + serialized labels: map order IS snapshot order.
  std::map<std::string, std::unique_ptr<Entry>> entries_
      KAV_GUARDED_BY(mutex_);
  // One type per name.
  std::map<std::string, MetricType> types_ KAV_GUARDED_BY(mutex_);
  std::atomic<bool> enabled_{true};
};

}  // namespace kav::obs

#endif  // KAV_OBS_METRICS_H
