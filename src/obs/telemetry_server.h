// Live telemetry over HTTP: the scrape surface for a running Engine.
// One TelemetryServer owns one net::EventLoop on one background
// thread, binds a listener (port 0 = ephemeral, read port() back), and
// serves four read-only endpoints:
//
//   GET /metrics  Prometheus text exposition 0.0.4 -- byte-identical
//                 to render_prometheus(registry.snapshot()) taken at
//                 the same instant, because the handler IS exactly
//                 that call (after the rate tick below).
//   GET /status   operator JSON: uptime, build info, run summaries
//                 from the engine's status source, per-key violation
//                 top-N, rolling rates, server stats.
//   GET /healthz  200 "ok" or 503 listing what failed: custom health
//                 checks plus any kav_store_maintenance_ok gauge at 0.
//   GET /spans    chrome://tracing JSON from the global Tracer
//                 (enable with KAV_TRACE=1).
//
// Rolling rates: each counter in TelemetryOptions::rate_counters gets
// an obs::RateWindow fed from counter deltas and three gauges in the
// SAME registry -- `<name minus _total>_rate{window="1s|10s|60s"}`,
// ops/sec rounded to integers (Gauge is i64). The tick runs only at
// scrape time, on the loop thread, BEFORE the snapshot that scrape
// renders: between scrapes the registry does not change on its own,
// which is what keeps /metrics byte-identical to a same-instant
// render_prometheus(engine.snapshot()) (the CI smoke diffs exactly
// that). The server's own stats (requests, bytes) live in plain
// atomics outside the registry for the same reason.
//
// Threading: the constructor binds and starts serving; handlers run on
// the loop thread. set_status_source / add_health_check are
// mutex-guarded and callable any time from any thread. stop() (or the
// destructor) joins the loop thread; it is safe to destroy the
// registry after that.
#ifndef KAV_OBS_TELEMETRY_SERVER_H
#define KAV_OBS_TELEMETRY_SERVER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace kav::obs {

struct TelemetryOptions {
  // IPv4 dotted quad to bind; loopback by default -- exposing the
  // telemetry surface beyond the host is an explicit operator choice.
  std::string address = "127.0.0.1";
  // 0 picks an ephemeral port (tests, CI smoke); read port() back.
  std::uint16_t port = 0;
  // Keep-alive connections idle longer than this are closed by the
  // loop's sweep. <= 0 disables the sweep.
  double idle_timeout_seconds = 30.0;
  // Accepted connections beyond this are refused at accept time.
  std::size_t max_connections = 64;
  // Request heads larger than this answer 431 and close.
  std::size_t max_request_bytes = 16 * 1024;
  // Counters (exposition names, summed across label sets) that get
  // rolling `_rate` gauges. The defaults cover the hot dashboards:
  // monitor throughput, violation rate, batch verification progress.
  std::vector<std::string> rate_counters = {
      "kav_monitor_ops_ingested_total",
      "kav_monitor_violations_total",
      "kav_engine_keys_verified_total",
  };
  // Gauges (max across label sets) whose per-second history /status
  // shows -- watermark lag is the one operators watch.
  std::vector<std::string> level_gauges = {
      "kav_monitor_watermark_lag",
  };
};

// One finished engine run, as /status shows it.
struct RunSummaryInfo {
  std::string mode;     // "batch" | "monitor"
  std::string outcome;  // "completed" | "cancelled"
  double seconds = 0.0;
  std::uint64_t keys = 0;
  std::uint64_t findings = 0;  // NO verdicts (batch) or violations
};

// What the status source hands /status. Engine::status() fills this
// from its run ledger; a bespoke embedder can supply its own.
struct StatusSnapshot {
  double uptime_seconds = 0.0;
  std::uint64_t runs_started = 0;
  std::uint64_t runs_completed = 0;
  std::uint64_t runs_cancelled = 0;
  std::uint64_t runs_in_flight = 0;
  std::vector<RunSummaryInfo> recent_runs;  // newest first
  // Per-key violation counts, descending -- the top-N hot keys.
  std::vector<std::pair<std::string, std::uint64_t>> violation_top;
};

class TelemetryServer {
 public:
  using StatusSource = std::function<StatusSnapshot()>;
  // true = healthy. Runs on the loop thread per /healthz hit: cheap
  // and non-blocking only.
  using HealthCheck = std::function<bool()>;

  // Binds and starts serving immediately; throws on bind failure (port
  // in use, bad address). `registry` must outlive the server.
  explicit TelemetryServer(MetricsRegistry& registry,
                           TelemetryOptions options = {});
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // The bound endpoint (port 0 resolved).
  const std::string& address() const;
  std::uint16_t port() const;

  // /status delegates here; unset, the JSON carries server-side fields
  // only. Any thread, any time.
  void set_status_source(StatusSource source);
  // Adds a named /healthz criterion. Any thread, any time.
  void add_health_check(std::string name, HealthCheck check);

  // Stops accepting, closes connections, joins the loop thread.
  // Idempotent; the destructor calls it.
  void stop();

  // Served-request count -- test/bench introspection, NOT a registry
  // metric (see the header comment on byte-identity).
  std::uint64_t requests_served() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace kav::obs

#endif  // KAV_OBS_TELEMETRY_SERVER_H
