// Rolling-rate time series over monotone counters. A dashboard needs
// ops/sec, not a raw counter that only ever grows; RateWindow turns
// "the counter moved by N during second S" into 1s/10s/60s rolling
// rates without locks, so the telemetry server can sample every scrape
// and concurrent recorders never contend.
//
//   RateWindow window;
//   window.record(second, delta);          // any thread, wait-free-ish
//   double r = window.rate(second, 10);    // ops/sec over the last 10s
//
// Design: a power-of-two ring of per-second slots, each one 64-bit
// atomic packing {epoch tag : 24 bits, count : 40 bits}. record() is a
// CAS loop that either adds into the slot (same second) or replaces a
// stale slot wholesale (the ring wrapped past it) -- both transitions
// are single-word, so concurrent recorders are EXACT: every recorded
// unit lands in exactly one slot and slot resets can never race a
// concurrent add into losing it (the classic two-atomic {epoch, count}
// design has exactly that lost-update window; the packed word is why
// tests/rate_window_test.cpp can differential-test against a plain
// accumulator under hammering writers).
//
// Limits, by construction: counts saturate per second at 2^40-1 (a
// trillion events per second per series; saturation clamps, never
// wraps into the tag), and the 24-bit epoch tag aliases after 2^24
// seconds (~194 days) -- a slot untouched for exactly that long could
// be misread as current, which rolling windows of <= kSlots seconds
// never are because a live sampler re-tags slots as the ring wraps.
//
// rate()/total() cover COMPLETED seconds only -- the window
// [second - n, second - 1] -- so a rate read mid-second is not biased
// low by the current second's partial bucket. LevelWindow is the gauge
// sibling: last-write-wins per-second levels (watermark lag history),
// approximate by design where RateWindow is exact.
//
// Cadence contract: the sampler that feeds record() from counter
// deltas (obs::TelemetryServer ticks on every scrape) attributes a
// whole delta to the second it sampled in, so scraping slower than
// 1 Hz smears bursts across the sampling gap. Rates are averages over
// their window either way; docs/OBSERVABILITY.md#serving-telemetry
// spells out the semantics.
#ifndef KAV_OBS_RATE_WINDOW_H
#define KAV_OBS_RATE_WINDOW_H

#include <array>
#include <atomic>
#include <cstdint>

namespace kav::obs {

class RateWindow {
 public:
  // Ring size: power of two, > 60 so a 60s window of completed seconds
  // plus the live second never alias.
  static constexpr int kSlots = 64;
  // Largest queryable window: every second of [second - n, second - 1]
  // must still be in the ring while second itself occupies a slot.
  static constexpr int kMaxWindowSeconds = kSlots - 1;

  static constexpr int kCountBits = 40;
  static constexpr std::uint64_t kCountMask =
      (std::uint64_t{1} << kCountBits) - 1;

  // Adds `count` events to the bucket for `second` (a non-negative
  // wall- or steady-clock second counter; the caller picks the epoch
  // and sticks with it). Safe from any thread; exact under concurrency.
  void record(std::int64_t second, std::uint64_t count) noexcept {
    const std::uint64_t tag = tag_of(second);
    std::atomic<std::uint64_t>& slot =
        slots_[static_cast<std::size_t>(second) & (kSlots - 1)].packed;
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    for (;;) {
      std::uint64_t next;
      if ((current >> kCountBits) == tag) {
        // Same second: add, clamping at the 40-bit ceiling rather than
        // carrying into the tag.
        const std::uint64_t have = current & kCountMask;
        const std::uint64_t sum =
            count > kCountMask - have ? kCountMask : have + count;
        next = (tag << kCountBits) | sum;
      } else {
        // Stale slot from kSlots seconds ago: replace it wholesale.
        next = (tag << kCountBits) |
               (count > kCountMask ? kCountMask : count);
      }
      if (slot.compare_exchange_weak(current, next,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  // Sum of events recorded for the `window_seconds` completed seconds
  // before `second`, i.e. [second - window_seconds, second - 1].
  // Windows are clamped to [1, kMaxWindowSeconds].
  std::uint64_t total(std::int64_t second, int window_seconds) const noexcept {
    window_seconds = clamp_window(window_seconds);
    std::uint64_t sum = 0;
    for (int back = 1; back <= window_seconds; ++back) {
      const std::int64_t s = second - back;
      if (s < 0) break;  // before the epoch: nothing recorded
      const std::uint64_t packed =
          slots_[static_cast<std::size_t>(s) & (kSlots - 1)].packed.load(
              std::memory_order_acquire);
      if ((packed >> kCountBits) == tag_of(s)) sum += packed & kCountMask;
    }
    return sum;
  }

  // total() averaged per second: the rolling rate. Seconds with no
  // record() count as zero, which is what "rate" means on an idle
  // series (it decays to 0 as the window slides past the last burst).
  double rate(std::int64_t second, int window_seconds) const noexcept {
    window_seconds = clamp_window(window_seconds);
    return static_cast<double>(total(second, window_seconds)) /
           static_cast<double>(window_seconds);
  }

 private:
  static constexpr std::uint64_t tag_of(std::int64_t second) noexcept {
    return static_cast<std::uint64_t>(second) & 0xFFFFFF;
  }
  static constexpr int clamp_window(int window_seconds) noexcept {
    if (window_seconds < 1) return 1;
    if (window_seconds > kMaxWindowSeconds) return kMaxWindowSeconds;
    return window_seconds;
  }

  struct Slot {
    std::atomic<std::uint64_t> packed{0};
  };
  // No slot is ever valid for second 0's tag until record() writes it:
  // tag 0 with count 0 is the empty state, and a real record for a
  // tag-0 second overwrites it with the same tag -- indistinguishable
  // from empty only when the count is also 0, which reads as 0 anyway.
  std::array<Slot, kSlots> slots_;
};

// Per-second level history for gauges (watermark lag, queue depth):
// last write per second wins, reads walk the trailing completed
// seconds. Unlike RateWindow this is deliberately approximate under
// concurrent writers -- levels are sampled, not accumulated, so a lost
// update between two same-second samples of the same gauge is noise.
class LevelWindow {
 public:
  static constexpr int kSlots = RateWindow::kSlots;
  static constexpr int kMaxWindowSeconds = RateWindow::kMaxWindowSeconds;

  void record(std::int64_t second, std::int64_t level) noexcept {
    Slot& slot = slots_[static_cast<std::size_t>(second) & (kSlots - 1)];
    // Value first, tag second (release): a reader that sees the tag
    // sees a value some writer stored for this second.
    slot.level.store(level, std::memory_order_relaxed);
    slot.second.store(second, std::memory_order_release);
  }

  // The level recorded for second `second - back` (back >= 1), or
  // `absent` when that second never saw a record (or has already been
  // overwritten by a ring wrap).
  std::int64_t at(std::int64_t second, int back,
                  std::int64_t absent = 0) const noexcept {
    const std::int64_t s = second - back;
    if (s < 0) return absent;
    const Slot& slot = slots_[static_cast<std::size_t>(s) & (kSlots - 1)];
    if (slot.second.load(std::memory_order_acquire) != s) return absent;
    return slot.level.load(std::memory_order_relaxed);
  }

  // Whether second `second - back` holds a recorded level.
  bool has(std::int64_t second, int back) const noexcept {
    const std::int64_t s = second - back;
    if (s < 0) return false;
    const Slot& slot = slots_[static_cast<std::size_t>(s) & (kSlots - 1)];
    return slot.second.load(std::memory_order_acquire) == s;
  }

 private:
  struct Slot {
    std::atomic<std::int64_t> second{-1};
    std::atomic<std::int64_t> level{0};
  };
  std::array<Slot, kSlots> slots_;
};

}  // namespace kav::obs

#endif  // KAV_OBS_RATE_WINDOW_H
