#include "obs/telemetry_server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>
#include <thread>

#include "net/event_loop.h"
#include "net/http.h"
#include "net/tcp.h"
#include "obs/export.h"
#include "obs/rate_window.h"
#include "obs/span.h"
#include "util/thread_safety.h"

namespace kav::obs {

namespace {

constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJsonContentType = "application/json";
constexpr const char* kTextContentType = "text/plain; charset=utf-8";

// The store sets this gauge to 0 when a background maintenance pass
// fails and back to 1 when one succeeds; /healthz scans every series
// with this name (one per open store) so an ailing store flips the
// whole process unhealthy without the server holding store pointers.
constexpr const char* kMaintenanceOkGauge = "kav_store_maintenance_ok";

std::string rate_gauge_name(const std::string& counter_name) {
  // kav_monitor_ops_ingested_total -> kav_monitor_ops_ingested_rate.
  constexpr std::string_view kTotal = "_total";
  std::string base = counter_name;
  if (base.size() > kTotal.size() &&
      base.compare(base.size() - kTotal.size(), kTotal.size(), kTotal) == 0) {
    base.resize(base.size() - kTotal.size());
  }
  return base + "_rate";
}

}  // namespace

struct TelemetryServer::Impl {
  // One tracked counter: its rolling window plus the three window
  // gauges registered into the scraped registry itself.
  struct RateSeries {
    std::string counter_name;
    RateWindow window;
    // Loop-thread-only tick state (ticks run on the loop thread).
    std::uint64_t last = 0;
    bool primed = false;
    Gauge* gauge_1s = nullptr;
    Gauge* gauge_10s = nullptr;
    Gauge* gauge_60s = nullptr;
  };

  struct LevelSeries {
    std::string gauge_name;
    LevelWindow window;
    std::int64_t current = 0;  // loop-thread-only
  };

  struct Conn {
    std::unique_ptr<net::TcpConnection> tcp;
  };

  MetricsRegistry& registry;
  TelemetryOptions options;
  std::string bound_address;
  std::uint16_t bound_port = 0;
  std::chrono::steady_clock::time_point start_time;

  net::EventLoop loop;
  std::unique_ptr<net::TcpListener> listener;
  std::thread loop_thread;
  bool stopped = false;  // guarded by stop being called once on owner side

  // Loop-thread-only connection table, keyed by a monotone id (never
  // an fd: fds are reused by the kernel before deferred erases run).
  std::map<std::uint64_t, Conn> connections;
  std::uint64_t next_conn_id = 1;

  // deques: the windows hold atomics (immovable), and deque grows
  // without relocating elements.
  std::deque<RateSeries> rates;
  std::deque<LevelSeries> levels;

  // Server-side stats: atomics OUTSIDE the registry, so scraping does
  // not perturb the scraped payload (byte-identity with
  // render_prometheus of the same registry).
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_refused{0};
  std::atomic<std::size_t> active_connections{0};
  RateWindow bytes_window;

  util::Mutex sources_mutex;
  StatusSource status_source KAV_GUARDED_BY(sources_mutex);
  std::vector<std::pair<std::string, HealthCheck>> health_checks
      KAV_GUARDED_BY(sources_mutex);

  Impl(MetricsRegistry& r, TelemetryOptions opts)
      : registry(r),
        options(std::move(opts)),
        start_time(std::chrono::steady_clock::now()) {}

  std::int64_t now_second() const {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - start_time)
        .count();
  }

  // --- rate / level sampling (loop thread, scrape time only) ---

  void register_rate_gauges() {
    for (const std::string& name : options.rate_counters) {
      RateSeries& series = rates.emplace_back();
      series.counter_name = name;
      const std::string gauge_name = rate_gauge_name(name);
      const std::string help =
          "Rolling per-second rate of " + name + ", sampled at scrape time";
      series.gauge_1s = &registry.gauge(gauge_name, help, {{"window", "1s"}});
      series.gauge_10s =
          &registry.gauge(gauge_name, help, {{"window", "10s"}});
      series.gauge_60s =
          &registry.gauge(gauge_name, help, {{"window", "60s"}});
    }
    for (const std::string& name : options.level_gauges) {
      levels.emplace_back().gauge_name = name;
    }
  }

  // Advances every rate/level window from a fresh registry snapshot.
  // Runs on the loop thread only, at scrape time only: between
  // scrapes the registry holds still, which is what the byte-identity
  // guarantee (/metrics == same-instant render) rests on.
  void tick_windows() {
    if (rates.empty() && levels.empty()) return;
    const std::int64_t second = now_second();
    const RegistrySnapshot snap = registry.snapshot();
    for (RateSeries& series : rates) {
      std::uint64_t sum = 0;
      for (const MetricSnapshot& m : snap.metrics) {
        if (m.type == MetricType::counter && m.name == series.counter_name) {
          sum += static_cast<std::uint64_t>(m.value);
        }
      }
      if (series.primed && sum >= series.last) {
        series.window.record(second, sum - series.last);
      }
      series.last = sum;
      series.primed = true;
      series.gauge_1s->set(
          static_cast<std::int64_t>(std::llround(series.window.rate(second, 1))));
      series.gauge_10s->set(static_cast<std::int64_t>(
          std::llround(series.window.rate(second, 10))));
      series.gauge_60s->set(static_cast<std::int64_t>(
          std::llround(series.window.rate(second, 60))));
    }
    for (LevelSeries& series : levels) {
      bool seen = false;
      std::int64_t level = 0;
      for (const MetricSnapshot& m : snap.metrics) {
        if (m.type == MetricType::gauge && m.name == series.gauge_name) {
          const auto v = static_cast<std::int64_t>(m.value);
          level = seen ? std::max(level, v) : v;
          seen = true;
        }
      }
      if (seen) {
        series.current = level;
        series.window.record(second, level);
      }
    }
  }

  // --- endpoint bodies ---

  std::string metrics_body() {
    tick_windows();
    return render_prometheus(registry.snapshot());
  }

  std::string healthz_body(int& status) {
    std::string failed;
    {
      util::MutexLock lock(sources_mutex);
      for (const auto& [name, check] : health_checks) {
        if (!check()) {
          if (!failed.empty()) failed += ", ";
          failed += name;
        }
      }
    }
    const RegistrySnapshot snap = registry.snapshot();
    for (const MetricSnapshot& m : snap.metrics) {
      if (m.type == MetricType::gauge && m.name == kMaintenanceOkGauge &&
          m.value == 0.0) {
        if (!failed.empty()) failed += ", ";
        failed += kMaintenanceOkGauge;
        for (const auto& [k, v] : m.labels) {
          failed += '{';
          failed += k;
          failed += '=';
          failed += v;
          failed += '}';
        }
      }
    }
    if (failed.empty()) {
      status = 200;
      return "ok\n";
    }
    status = 503;
    return "unhealthy: " + failed + "\n";
  }

  std::string status_body() {
    tick_windows();
    const std::int64_t second = now_second();
    StatusSnapshot status;
    StatusSource source;
    {
      util::MutexLock lock(sources_mutex);
      source = status_source;
    }
    if (source) status = source();

    std::string out = "{\n";
    out += "  \"uptime_seconds\": ";
    out += detail::format_double(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time)
            .count());
    out += ",\n  \"build\": {\"compiler\": \"";
    detail::append_json_escaped(out, __VERSION__);
    out += "\", \"standard\": ";
    out += std::to_string(__cplusplus);
    out += "},\n  \"runs\": {\"started\": ";
    out += std::to_string(status.runs_started);
    out += ", \"completed\": ";
    out += std::to_string(status.runs_completed);
    out += ", \"cancelled\": ";
    out += std::to_string(status.runs_cancelled);
    out += ", \"in_flight\": ";
    out += std::to_string(status.runs_in_flight);
    out += ", \"recent\": [";
    bool first = true;
    for (const RunSummaryInfo& run : status.recent_runs) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"mode\": \"";
      detail::append_json_escaped(out, run.mode);
      out += "\", \"outcome\": \"";
      detail::append_json_escaped(out, run.outcome);
      out += "\", \"seconds\": ";
      out += detail::format_double(run.seconds);
      out += ", \"keys\": ";
      out += std::to_string(run.keys);
      out += ", \"findings\": ";
      out += std::to_string(run.findings);
      out += '}';
    }
    out += first ? "]" : "\n  ]";
    out += "},\n  \"violation_top\": [";
    first = true;
    for (const auto& [key, count] : status.violation_top) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"key\": \"";
      detail::append_json_escaped(out, key);
      out += "\", \"violations\": ";
      out += std::to_string(count);
      out += '}';
    }
    out += first ? "]" : "\n  ]";
    out += ",\n  \"rates\": {";
    first = true;
    for (const RateSeries& series : rates) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += '"';
      detail::append_json_escaped(out, series.counter_name);
      out += "\": {\"1s\": ";
      out += detail::format_double(series.window.rate(second, 1));
      out += ", \"10s\": ";
      out += detail::format_double(series.window.rate(second, 10));
      out += ", \"60s\": ";
      out += detail::format_double(series.window.rate(second, 60));
      out += '}';
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"levels\": {";
    first = true;
    for (const LevelSeries& series : levels) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += '"';
      detail::append_json_escaped(out, series.gauge_name);
      out += "\": {\"current\": ";
      out += std::to_string(series.current);
      out += ", \"recent\": [";
      bool first_level = true;
      for (int back = 10; back >= 1; --back) {
        if (!series.window.has(second, back)) continue;
        if (!first_level) out += ", ";
        first_level = false;
        out += std::to_string(series.window.at(second, back));
      }
      out += "]}";
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"server\": {\"requests\": ";
    out += std::to_string(requests.load(std::memory_order_relaxed));
    out += ", \"bytes_sent\": ";
    out += std::to_string(bytes_sent.load(std::memory_order_relaxed));
    out += ", \"active_connections\": ";
    out += std::to_string(active_connections.load(std::memory_order_relaxed));
    out += ", \"connections_accepted\": ";
    out +=
        std::to_string(connections_accepted.load(std::memory_order_relaxed));
    out += ", \"connections_refused\": ";
    out += std::to_string(connections_refused.load(std::memory_order_relaxed));
    out += ", \"bytes_rate_10s\": ";
    out += detail::format_double(bytes_window.rate(second, 10));
    out += "}\n}\n";
    return out;
  }

  // --- request dispatch (loop thread) ---

  void respond(Conn& conn, int status, const char* content_type,
               const std::string& body, bool keep_alive) {
    const std::string wire =
        net::render_response(status, content_type, body, keep_alive);
    requests.fetch_add(1, std::memory_order_relaxed);
    bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);
    bytes_window.record(now_second(), wire.size());
    conn.tcp->send(wire);
    if (!keep_alive) conn.tcp->close_after_flush();
  }

  void handle_request(Conn& conn, const net::HttpRequest& request) {
    const bool keep_alive = request.keep_alive();
    if (request.method != "GET") {
      respond(conn, 405, kTextContentType, "method not allowed\n",
              /*keep_alive=*/false);
      return;
    }
    const std::string_view path = request.path();
    if (path == "/metrics") {
      respond(conn, 200, kMetricsContentType, metrics_body(), keep_alive);
    } else if (path == "/status") {
      respond(conn, 200, kJsonContentType, status_body(), keep_alive);
    } else if (path == "/healthz") {
      int status = 200;
      const std::string body = healthz_body(status);
      respond(conn, status, kTextContentType, body, keep_alive);
    } else if (path == "/spans") {
      respond(conn, 200, kJsonContentType, Tracer::global().dump_chrome_json(),
              keep_alive);
    } else {
      respond(conn, 404, kTextContentType, "not found\n", keep_alive);
    }
  }

  // Parses as many complete requests as the buffer holds; returns
  // bytes consumed (TcpConnection erases that prefix).
  std::size_t on_data(std::uint64_t conn_id, std::string_view input) {
    const auto it = connections.find(conn_id);
    if (it == connections.end()) return input.size();
    Conn& conn = it->second;
    std::size_t consumed = 0;
    while (consumed < input.size() && !conn.tcp->closed()) {
      net::HttpRequest request;
      const net::ParseResult parsed = net::parse_request(
          input.substr(consumed), request, options.max_request_bytes);
      if (parsed.status == net::ParseStatus::need_more) break;
      if (parsed.status == net::ParseStatus::bad) {
        respond(conn, 400, kTextContentType, "bad request\n",
                /*keep_alive=*/false);
        break;
      }
      if (parsed.status == net::ParseStatus::too_large) {
        respond(conn, 431, kTextContentType, "request too large\n",
                /*keep_alive=*/false);
        break;
      }
      consumed += parsed.consumed;
      handle_request(conn, request);
    }
    return consumed;
  }

  void accept_ready() {
    for (;;) {
      const int fd = listener->accept_one();
      if (fd < 0) return;
      if (connections.size() >= options.max_connections) {
        connections_refused.fetch_add(1, std::memory_order_relaxed);
        net::EventLoop::close_fd(fd);
        continue;
      }
      const std::uint64_t id = next_conn_id++;
      Conn conn;
      conn.tcp = std::make_unique<net::TcpConnection>(loop, fd);
      conn.tcp->set_max_buffered_input(options.max_request_bytes * 2);
      conn.tcp->set_on_data([this, id](std::string_view input) {
        return on_data(id, input);
      });
      // Deferred erase: on_close fires with connection frames still on
      // the stack, so destruction hops through post().
      conn.tcp->set_on_close([this, id] {
        active_connections.fetch_sub(1, std::memory_order_relaxed);
        loop.post([this, id] { connections.erase(id); });
      });
      connections.emplace(id, std::move(conn));
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
      active_connections.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void sweep_idle() {
    if (options.idle_timeout_seconds <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, conn] : connections) {
      if (!conn.tcp->closed() &&
          conn.tcp->idle_seconds(now) > options.idle_timeout_seconds) {
        conn.tcp->close_now();  // erase is deferred via on_close
      }
    }
  }

  void start() {
    listener =
        std::make_unique<net::TcpListener>(options.address, options.port);
    bound_address = listener->bound_address();
    bound_port = listener->bound_port();
    register_rate_gauges();
    loop.add_fd(listener->fd(), net::kReadable,
                [this](std::uint32_t) { accept_ready(); });
    loop.add_periodic(std::chrono::milliseconds(1000),
                      [this] { sweep_idle(); });
    loop_thread = std::thread([this] { loop.run(); });
  }

  void shut_down() {
    if (stopped) return;
    stopped = true;
    loop.stop();
    if (loop_thread.joinable()) loop_thread.join();
    // The loop is down; destroy connections and the listener from this
    // thread (EventLoop allows fd ops while not running).
    connections.clear();
    listener.reset();
  }
};

TelemetryServer::TelemetryServer(MetricsRegistry& registry,
                                 TelemetryOptions options)
    : impl_(std::make_unique<Impl>(registry, std::move(options))) {
  impl_->start();
}

TelemetryServer::~TelemetryServer() { impl_->shut_down(); }

const std::string& TelemetryServer::address() const {
  return impl_->bound_address;
}

std::uint16_t TelemetryServer::port() const { return impl_->bound_port; }

void TelemetryServer::set_status_source(StatusSource source) {
  util::MutexLock lock(impl_->sources_mutex);
  impl_->status_source = std::move(source);
}

void TelemetryServer::add_health_check(std::string name, HealthCheck check) {
  util::MutexLock lock(impl_->sources_mutex);
  impl_->health_checks.emplace_back(std::move(name), std::move(check));
}

void TelemetryServer::stop() { impl_->shut_down(); }

std::uint64_t TelemetryServer::requests_served() const {
  return impl_->requests.load(std::memory_order_relaxed);
}

}  // namespace kav::obs
