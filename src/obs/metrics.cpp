#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace kav::obs {

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::counter:
      return "counter";
    case MetricType::gauge:
      return "gauge";
    case MetricType::histogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

bool metrics_disabled_by_env() {
  const char* raw = std::getenv("KAV_NO_METRICS");
  return raw != nullptr && raw[0] != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

Labels sorted_labels(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i - 1].first == out[i].first) {
      throw std::logic_error("duplicate metric label key: " + out[i].first);
    }
  }
  return out;
}

// Entry map key: metric name, then each sorted label pair, joined with
// control bytes no Prometheus-legal name contains. Map order therefore
// groups every series of a name together, before any longer name that
// shares the prefix -- which is exactly the snapshot/render order.
std::string entry_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

}  // namespace

struct MetricsRegistry::Entry {
  std::string name;
  std::string help;
  MetricType type;
  Labels labels;
  // Exactly one of these is set, matching `type`.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() {
  if (metrics_disabled_by_env()) enabled_.store(false);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, const Labels& labels,
    MetricType type) {
  Labels sorted = sorted_labels(labels);
  const std::string key = entry_key(name, sorted);

  util::MutexLock lock(mutex_);
  auto [type_it, type_inserted] = types_.emplace(name, type);
  if (!type_inserted && type_it->second != type) {
    throw std::logic_error("metric '" + name + "' already registered as " +
                           std::string(to_string(type_it->second)) +
                           ", requested " + to_string(type));
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) return *it->second;

  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = type;
  entry->labels = std::move(sorted);
  switch (type) {
    // Instrument constructors are private (only the registry may mint
    // them), so make_unique cannot reach them and the raw news below
    // are a sanctioned exception to the arena rule.
    case MetricType::counter:
      // kav-lint: allow-next-line(naked-new) private instrument ctor
      entry->counter.reset(new Counter(&enabled_));
      break;
    case MetricType::gauge:
      // kav-lint: allow-next-line(naked-new) private instrument ctor
      entry->gauge.reset(new Gauge(&enabled_));
      break;
    case MetricType::histogram:
      // kav-lint: allow-next-line(naked-new) private instrument ctor
      entry->histogram.reset(new Histogram(&enabled_));
      break;
  }
  return *entries_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return *find_or_create(name, help, labels, MetricType::counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *find_or_create(name, help, labels, MetricType::gauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const Labels& labels) {
  return *find_or_create(name, help, labels, MetricType::histogram).histogram;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot out;
  util::MutexLock lock(mutex_);
  out.metrics.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot m;
    m.name = entry->name;
    m.help = entry->help;
    m.type = entry->type;
    m.labels = entry->labels;
    switch (entry->type) {
      case MetricType::counter:
        m.value = static_cast<double>(entry->counter->value());
        break;
      case MetricType::gauge:
        m.value = static_cast<double>(entry->gauge->value());
        break;
      case MetricType::histogram:
        m.histogram = entry->histogram->snapshot();
        break;
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instruments borrowed from the global registry
  // (e.g. by a static Engine in a test binary) must stay valid during
  // static destruction, so the registry must never be destroyed.
  // kav-lint: allow-next-line(naked-new) intentionally leaked singleton
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace kav::obs
