// Exposition renderers: pure functions from a RegistrySnapshot to
// text, with no clocks, no I/O, and no global state, so the kavd HTTP
// endpoint (ROADMAP item 1) can serve their output verbatim and golden
// tests can pin it byte-for-byte.
//
//   render_prometheus() -- Prometheus text exposition format 0.0.4:
//     # HELP/# TYPE per metric name, histograms as cumulative
//     <name>_bucket{le="..."} series plus _sum/_count.
//   render_json()       -- one JSON document {"metrics": [...]}, each
//     metric carrying name/type/help/labels and either "value" or
//     histogram "count"/"sum"/"buckets".
//
// Both render doubles via shortest-round-trip formatting
// (std::to_chars), so output is locale-independent and deterministic
// for identical snapshots. Exact grammar: docs/OBSERVABILITY.md.
#ifndef KAV_OBS_EXPORT_H
#define KAV_OBS_EXPORT_H

#include <string>

#include "obs/metrics.h"

namespace kav::obs {

std::string render_prometheus(const RegistrySnapshot& snapshot);
std::string render_json(const RegistrySnapshot& snapshot);

}  // namespace kav::obs

#endif  // KAV_OBS_EXPORT_H
