// Exposition renderers: pure functions from a RegistrySnapshot to
// text, with no clocks, no I/O, and no global state, so the kavd HTTP
// endpoint (ROADMAP item 1) can serve their output verbatim and golden
// tests can pin it byte-for-byte.
//
//   render_prometheus() -- Prometheus text exposition format 0.0.4:
//     # HELP/# TYPE per metric name, histograms as cumulative
//     <name>_bucket{le="..."} series plus _sum/_count.
//   render_json()       -- one JSON document {"metrics": [...]}, each
//     metric carrying name/type/help/labels and either "value" or
//     histogram "count"/"sum"/"buckets".
//
// Both render doubles via shortest-round-trip formatting
// (std::to_chars), so output is locale-independent and deterministic
// for identical snapshots. Exact grammar: docs/OBSERVABILITY.md.
#ifndef KAV_OBS_EXPORT_H
#define KAV_OBS_EXPORT_H

#include <cstdio>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace kav::obs {

std::string render_prometheus(const RegistrySnapshot& snapshot);
std::string render_json(const RegistrySnapshot& snapshot);

// Format selector for the shared CLI/server dump path: trace_check
// --json, streaming_monitor --metrics, and the telemetry endpoints all
// go through the same renderers.
enum class ExportFormat {
  prometheus,
  json,
};

std::string render(const RegistrySnapshot& snapshot, ExportFormat format);

// Renders and writes in one call -- the CLI dump helper (stdout today,
// but any stream works). Returns false when the write came up short.
bool write_snapshot(std::FILE* stream, const RegistrySnapshot& snapshot,
                    ExportFormat format);

namespace detail {

// Building blocks shared with obs/telemetry_server.cpp (the /status
// JSON is hand-assembled from the same escaping + number formatting the
// exporters use, so the two surfaces cannot drift).
//
// Shortest round-trip decimal form via std::to_chars: "3", "0.004",
// "9.313225746154785e-10". Locale-independent and deterministic.
std::string format_double(double v);
// JSON string-content escaping (quotes, backslash, control chars).
void append_json_escaped(std::string& out, std::string_view s);
// Prometheus exposition escaping: backslash + newline always, quotes
// only inside label values (escape_quotes=true), per format 0.0.4.
void append_prometheus_escaped(std::string& out, std::string_view s,
                               bool escape_quotes);

}  // namespace detail

}  // namespace kav::obs

#endif  // KAV_OBS_EXPORT_H
