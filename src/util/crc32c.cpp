#include "util/crc32c.h"

#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KAV_CRC32C_X86 1
#include <nmmintrin.h>
#else
#define KAV_CRC32C_X86 0
#endif

namespace kav::crc {

namespace {

// Slicing-by-8 tables for the reflected Castagnoli polynomial,
// generated once at startup. table[0] is the classic byte-at-a-time
// table; table[k] advances a byte that sits k positions deeper in the
// 8-byte word, so the hot loop folds 8 input bytes per iteration.
struct Tables {
  std::uint32_t t[8][256];
  Tables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables shared;
  return shared;
}

#if KAV_CRC32C_X86

// `_mm_crc32_u64` has 3-cycle latency but 1/cycle throughput, so a
// single dependency chain caps out near 8/3 bytes per cycle. The hot
// loop therefore runs THREE independent chains over adjacent
// kStreamBytes slices and recombines them. Recombination uses the
// linearity of the CRC state update: for raw (uninverted) states,
// state(A|B) = zshift_{|B|}(state(A)) ^ state_from_zero(B), where
// zshift_k is the linear operator "append k zero bytes". For the
// fixed k = kStreamBytes that operator is precomputed as 4x256
// byte-slice tables.
constexpr std::size_t kStreamBytes = 1024;

struct ShiftTables {
  std::uint32_t t[4][256];
  ShiftTables() {
    const Tables& tb = tables();
    std::uint32_t basis[32];
    for (int bit = 0; bit < 32; ++bit) {
      std::uint32_t state = std::uint32_t{1} << bit;
      for (std::size_t step = 0; step < kStreamBytes; ++step) {
        state = tb.t[0][state & 0xff] ^ (state >> 8);
      }
      basis[bit] = state;
    }
    for (int j = 0; j < 4; ++j) {
      for (std::uint32_t v = 0; v < 256; ++v) {
        std::uint32_t image = 0;
        for (int bit = 0; bit < 8; ++bit) {
          if (v & (std::uint32_t{1} << bit)) image ^= basis[8 * j + bit];
        }
        t[j][v] = image;
      }
    }
  }
};

const ShiftTables& shift_tables() {
  static const ShiftTables shared;
  return shared;
}

std::uint32_t zshift_stream(const ShiftTables& st, std::uint32_t x) {
  return st.t[0][x & 0xff] ^ st.t[1][(x >> 8) & 0xff] ^
         st.t[2][(x >> 16) & 0xff] ^ st.t[3][x >> 24];
}

__attribute__((target("sse4.2"))) std::uint32_t crc32c_sse42(
    std::uint32_t state, const unsigned char* p, std::size_t n) {
  const ShiftTables& st = shift_tables();
  std::uint64_t s = state;
  while (n >= 3 * kStreamBytes) {
    std::uint64_t s0 = s;
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    for (std::size_t i = 0; i < kStreamBytes; i += 8) {
      std::uint64_t w0, w1, w2;
      __builtin_memcpy(&w0, p + i, 8);
      __builtin_memcpy(&w1, p + kStreamBytes + i, 8);
      __builtin_memcpy(&w2, p + 2 * kStreamBytes + i, 8);
      s0 = _mm_crc32_u64(s0, w0);
      s1 = _mm_crc32_u64(s1, w1);
      s2 = _mm_crc32_u64(s2, w2);
    }
    s = zshift_stream(st, zshift_stream(st, static_cast<std::uint32_t>(s0)) ^
                              static_cast<std::uint32_t>(s1)) ^
        static_cast<std::uint32_t>(s2);
    p += 3 * kStreamBytes;
    n -= 3 * kStreamBytes;
  }
  while (n >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    s = _mm_crc32_u64(s, word);
    p += 8;
    n -= 8;
  }
  std::uint32_t s32 = static_cast<std::uint32_t>(s);
  while (n > 0) {
    s32 = _mm_crc32_u8(s32, *p);
    ++p;
    --n;
  }
  return s32;
}

#endif  // KAV_CRC32C_X86

bool detect_hardware() {
  if (const char* force = std::getenv("KAV_FORCE_SCALAR")) {
    if (force[0] == '1' && force[1] == '\0') return false;
  }
#if KAV_CRC32C_X86
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

bool use_hardware() {
  static const bool cached = detect_hardware();
  return cached;
}

std::uint32_t software_state(std::uint32_t state, const unsigned char* p,
                             std::size_t n) {
  const Tables& tb = tables();
  while (n >= 8) {
    const std::uint32_t lo = state ^ (static_cast<std::uint32_t>(p[0]) |
                                      (static_cast<std::uint32_t>(p[1]) << 8) |
                                      (static_cast<std::uint32_t>(p[2]) << 16) |
                                      (static_cast<std::uint32_t>(p[3]) << 24));
    state = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
            tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
            tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = tb.t[0][(state ^ *p) & 0xff] ^ (state >> 8);
    ++p;
    --n;
  }
  return state;
}

}  // namespace

std::uint32_t crc32c_software(std::uint32_t crc, const void* data,
                              std::size_t n) {
  return ~software_state(~crc, static_cast<const unsigned char*>(data), n);
}

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
#if KAV_CRC32C_X86
  if (use_hardware()) return ~crc32c_sse42(~crc, p, n);
#endif
  return ~software_state(~crc, p, n);
}

std::uint32_t crc32c(const void* data, std::size_t n) {
  return crc32c_extend(0, data, n);
}

bool hardware_accelerated() { return use_hardware(); }

}  // namespace kav::crc
