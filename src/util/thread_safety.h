// Compile-time concurrency proofs: Clang capability-analysis macros
// plus the annotated synchronization wrappers every lock in the tree
// goes through. With clang and -Wthread-safety (ci.sh --tidy, or
// -DKAV_THREAD_SAFETY=ON), each class's locking contract -- which
// mutex guards which field, which private methods demand which lock
// held -- is a compile-time fact instead of a comment; with any other
// compiler the macros expand to nothing and Mutex/CondVar cost exactly
// a std::mutex / std::condition_variable.
//
// Conventions (docs/STATIC_ANALYSIS.md has the full catalog):
//
//   * Fields a mutex protects carry KAV_GUARDED_BY(that_mutex_) on the
//     declaration; the mutex is declared before the fields it guards.
//   * Private helpers that assume a lock is already held carry
//     KAV_REQUIRES(lock) -- this replaces "caller holds X" prose and
//     is enforced at every call site.
//   * Condition-variable predicates are written as explicit
//     while-loops around CondVar::wait(mutex), never as predicate
//     lambdas: the analysis checks lambda bodies as separate
//     functions with no capabilities, so a predicate lambda reading
//     guarded state would (rightly) not prove.
//   * Constructors and destructors are exempt from the analysis
//     (no concurrent access can exist yet / anymore), but the repo
//     still takes the locks there when a background task could be
//     mid-flight -- see ~KeyedStreamingMonitor.
//   * kav-lint (tools/kav_lint.py) rejects raw std::mutex /
//     std::lock_guard & friends anywhere outside this header, so the
//     annotated wrappers are not optional.
#ifndef KAV_UTIL_THREAD_SAFETY_H
#define KAV_UTIL_THREAD_SAFETY_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Annotation macros (Clang thread-safety attributes; no-ops elsewhere)
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define KAV_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef KAV_THREAD_ANNOTATION
#define KAV_THREAD_ANNOTATION(x)  // non-Clang: annotations compile away
#endif

// A type that is a lockable capability ("mutex" names the kind in
// diagnostics).
#define KAV_CAPABILITY(x) KAV_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires in its constructor and releases in its
// destructor.
#define KAV_SCOPED_CAPABILITY KAV_THREAD_ANNOTATION(scoped_lockable)
// Field is only read/written with `x` held (shared reads need at
// least a shared hold).
#define KAV_GUARDED_BY(x) KAV_THREAD_ANNOTATION(guarded_by(x))
// Pointer field whose pointee is protected by `x`.
#define KAV_PT_GUARDED_BY(x) KAV_THREAD_ANNOTATION(pt_guarded_by(x))
// Documented lock-ordering edges (enforced under -Wthread-safety-beta).
#define KAV_ACQUIRED_BEFORE(...) \
  KAV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define KAV_ACQUIRED_AFTER(...) \
  KAV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
// Function precondition: capability held on entry (and still on exit).
#define KAV_REQUIRES(...) \
  KAV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define KAV_REQUIRES_SHARED(...) \
  KAV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function acquires / releases the capability.
#define KAV_ACQUIRE(...) \
  KAV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KAV_ACQUIRE_SHARED(...) \
  KAV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define KAV_RELEASE(...) \
  KAV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KAV_RELEASE_SHARED(...) \
  KAV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define KAV_TRY_ACQUIRE(...) \
  KAV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function must NOT hold the capability on entry (deadlock guard for
// public methods that take the lock themselves).
#define KAV_EXCLUDES(...) KAV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Runtime assertion that the capability is held (no acquire emitted).
#define KAV_ASSERT_CAPABILITY(x) \
  KAV_THREAD_ANNOTATION(assert_capability(x))
// Function returns a reference to the given capability.
#define KAV_RETURN_CAPABILITY(x) KAV_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch; every use must carry a justifying comment.
#define KAV_NO_THREAD_SAFETY_ANALYSIS \
  KAV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kav::util {

class CondVar;

// ---------------------------------------------------------------------------
// Annotated wrappers
// ---------------------------------------------------------------------------

// std::mutex as a capability. Prefer the scoped MutexLock; bare
// lock()/unlock() exist for the rare hand-over-hand pattern and for
// CondVar's internals.
class KAV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KAV_ACQUIRE() { raw_.lock(); }
  void unlock() KAV_RELEASE() { raw_.unlock(); }
  bool try_lock() KAV_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;  // waits need the underlying std::mutex
  std::mutex raw_;
};

// std::shared_mutex as a capability: exclusive side for the (already
// externally serialized) writers, shared side for concurrent readers.
class KAV_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() KAV_ACQUIRE() { raw_.lock(); }
  void unlock() KAV_RELEASE() { raw_.unlock(); }
  void lock_shared() KAV_ACQUIRE_SHARED() { raw_.lock_shared(); }
  void unlock_shared() KAV_RELEASE_SHARED() { raw_.unlock_shared(); }

 private:
  std::shared_mutex raw_;
};

// Scoped exclusive hold of a Mutex for the enclosing block.
class KAV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) KAV_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() KAV_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// Scoped exclusive hold of a SharedMutex (the writer side).
class KAV_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) KAV_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterMutexLock() KAV_RELEASE() { mutex_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// Scoped shared hold of a SharedMutex (the reader side).
class KAV_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) KAV_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderMutexLock() KAV_RELEASE() { mutex_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// Condition variable paired with Mutex. wait/wait_until demand the
// mutex held (KAV_REQUIRES) and hold it again on return; spurious
// wakeups are possible, so callers loop:
//
//   MutexLock lock(mutex_);
//   while (!condition) cv_.wait(mutex_);
//
// There is deliberately no predicate-lambda overload -- see the
// header comment on why lambdas defeat the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mutex`, blocks, and reacquires before
  // returning. The adopt/release dance hands the already-held
  // std::mutex to a unique_lock for the wait without a second
  // lock/unlock pair.
  void wait(Mutex& mutex) KAV_REQUIRES(mutex) KAV_NO_THREAD_SAFETY_ANALYSIS {
    // Analysis off: the unique_lock juggling below releases and
    // reacquires the capability in a way the checker cannot follow,
    // but the net effect (held on entry, held on exit) matches the
    // REQUIRES contract above.
    std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
    raw_.wait(lock);
    lock.release();  // still locked; ownership returns to the caller
  }

  // As wait(), giving up at `deadline`; returns cv_status::timeout
  // when the deadline passed (the mutex is reacquired either way).
  std::cv_status wait_until(
      Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      KAV_REQUIRES(mutex) KAV_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
    const std::cv_status status = raw_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void notify_one() noexcept { raw_.notify_one(); }
  void notify_all() noexcept { raw_.notify_all(); }

 private:
  std::condition_variable raw_;
};

}  // namespace kav::util

#endif  // KAV_UTIL_THREAD_SAFETY_H
