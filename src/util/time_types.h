// Basic scalar types shared by the whole library.
//
// Times are opaque integer ticks (the paper's model only relies on the
// total order of start/finish events, never on durations); values are
// integers per the paper's assumption (Section II-C); operation ids are
// dense indexes into a History's operation vector.
#ifndef KAV_UTIL_TIME_TYPES_H
#define KAV_UTIL_TIME_TYPES_H

#include <cstdint>
#include <limits>

namespace kav {

using TimePoint = std::int64_t;
using Value = std::int64_t;
using OpId = std::uint32_t;
using ClientId = std::int32_t;
using Weight = std::int64_t;

inline constexpr OpId kInvalidOp = std::numeric_limits<OpId>::max();
inline constexpr ClientId kNoClient = -1;
inline constexpr TimePoint kTimeMin = std::numeric_limits<TimePoint>::min();
inline constexpr TimePoint kTimeMax = std::numeric_limits<TimePoint>::max();

}  // namespace kav

#endif  // KAV_UTIL_TIME_TYPES_H
