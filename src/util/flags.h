// Minimal command-line flag parsing for the example binaries.
// Supports --name=value and --name value; everything else is collected
// as a positional argument. A boolean flag that greedily consumed a
// following non-boolean token (`--json trace.kavb`) hands it back as a
// positional at get_bool time. Unknown flags are an error so typos
// fail loudly rather than silently running a default experiment.
#ifndef KAV_UTIL_FLAGS_H
#define KAV_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace kav {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // bare flag
      }
    }
  }

  std::string get_string(const std::string& name, std::string def) {
    note(name);
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t def) {
    note(name);
    auto it = values_.find(name);
    return it == values_.end() ? def : std::stoll(it->second);
  }

  double get_double(const std::string& name, double def) {
    note(name);
    auto it = values_.find(name);
    return it == values_.end() ? def : std::stod(it->second);
  }

  bool get_bool(const std::string& name, bool def) {
    note(name);
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    if (it->second == "true" || it->second == "1" || it->second == "yes") {
      return true;
    }
    if (it->second == "false" || it->second == "0" || it->second == "no") {
      return false;
    }
    // `--flag path` adjacency: the constructor greedily consumed the
    // next token as this flag's value, but the caller says the flag is
    // boolean -- hand the token back as a positional (e.g.
    // `trace_check --json trace.kavb`) and treat the flag as bare.
    positional_.push_back(it->second);
    it->second = "true";
    return true;
  }

  const std::vector<std::string>& positional() const { return positional_; }

  // Call after all get_* calls; throws on flags that nothing consumed.
  void check_unknown() const {
    for (const auto& [name, value] : values_) {
      if (!known_.count(name)) {
        throw std::invalid_argument("unknown flag: --" + name);
      }
    }
  }

 private:
  void note(const std::string& name) { known_.insert(name); }

  std::map<std::string, std::string> values_;
  std::set<std::string> known_;
  std::vector<std::string> positional_;
};

}  // namespace kav

#endif  // KAV_UTIL_FLAGS_H
