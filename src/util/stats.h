// Small statistics toolkit used by benchmarks and the simulator:
// streaming moments, quantiles over collected samples, and a log-log
// least-squares fit used to sanity-check asymptotic growth exponents
// (e.g. "LBT on adversarial inputs grows like n^2", Theorem 3.2).
#ifndef KAV_UTIL_STATS_H
#define KAV_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kav {

// Streaming mean/variance (Welford) plus min/max.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  // sample variance; 0 if fewer than 2 points
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Batch sample container with quantiles. Quantile uses the nearest-rank
// method on a sorted copy, which is adequate for reporting.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double quantile(double q) const;  // q in [0, 1]; requires non-empty
  double min() const { return quantile(0.0); }
  double median() const { return quantile(0.5); }
  double max() const { return quantile(1.0); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

// Least-squares fit of y = a * x^b via log-log regression.
// Points with non-positive coordinates are skipped.
struct PowerFit {
  double exponent = 0;     // b
  double coefficient = 0;  // a
  double r_squared = 0;
  std::size_t points = 0;
};

PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys);

// Renders a fixed-width text table; used by examples and the "--table"
// style bench reports so series are easy to eyeball against the paper.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::int64_t v);
  static std::string fmt(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kav

#endif  // KAV_UTIL_STATS_H
