// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum of the .kavb v2.1 integrity pages (docs/FORMATS.md).
// Chosen over the zlib CRC32 because x86-64 has carried a dedicated
// instruction for it since SSE4.2, so verifying a block on the
// zero-copy read path costs a few percent, not a second decode.
//
// Dispatch follows util/simd.h's model: the software slicing-by-8
// implementation is always compiled and IS the semantics; the SSE4.2
// variant is compiled behind a target attribute, selected once at
// runtime via cpuid, and must produce bit-identical results
// (tests/store_test.cpp pits them against each other and against the
// published check value crc32c("123456789") == 0xE3069283).
// KAV_FORCE_SCALAR=1 pins the software path, same as the SIMD kernels.
#ifndef KAV_UTIL_CRC32C_H
#define KAV_UTIL_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace kav::crc {

// One-shot checksum of [data, data + n).
std::uint32_t crc32c(const void* data, std::size_t n);

// Incremental form: crc32c(d, n) == crc32c_extend(crc32c_extend(0, d,
// k), d + k, n - k) for any split k. `crc` is a finalized checksum
// (the functions fold the standard pre/post inversion internally), so
// partial values are directly comparable and storable.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t n);

// True when the SSE4.2 instruction path is active (false on non-x86
// builds, pre-SSE4.2 hardware, or under KAV_FORCE_SCALAR=1).
bool hardware_accelerated();

// The software reference, always available regardless of dispatch --
// the differential test target.
std::uint32_t crc32c_software(std::uint32_t crc, const void* data,
                              std::size_t n);

}  // namespace kav::crc

#endif  // KAV_UTIL_CRC32C_H
