// Interval utilities used by the zone/chunk machinery (FZF Stage 1) and
// its tests: a sorted-disjoint interval set built by merging, plus a
// static interval tree supporting stabbing and overlap queries.
//
// All intervals are treated as open-ended real segments (lo, hi) with
// lo < hi; the library guarantees distinct endpoints after
// normalization, so open-versus-closed never matters and comparisons
// are strict everywhere, mirroring the paper's "distinct timestamps"
// assumption (Section II-C).
#ifndef KAV_UTIL_INTERVAL_SET_H
#define KAV_UTIL_INTERVAL_SET_H

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/time_types.h"

namespace kav {

struct Interval {
  TimePoint lo = 0;
  TimePoint hi = 0;

  bool overlaps(const Interval& o) const { return lo < o.hi && o.lo < hi; }
  bool contains(const Interval& o) const { return lo < o.lo && o.hi < hi; }
  bool contains(TimePoint t) const { return lo < t && t < hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

// Union of intervals kept as a minimal sorted list of disjoint runs.
class IntervalSet {
 public:
  void add(Interval iv) {
    if (iv.lo >= iv.hi) throw std::invalid_argument("empty interval");
    pending_.push_back(iv);
    dirty_ = true;
  }

  // Disjoint maximal runs in increasing order.
  const std::vector<Interval>& runs() const {
    compact();
    return runs_;
  }

  bool covers(TimePoint t) const {
    compact();
    auto it = std::upper_bound(
        runs_.begin(), runs_.end(), t,
        [](TimePoint v, const Interval& r) { return v < r.lo; });
    if (it == runs_.begin()) return false;
    --it;
    return it->contains(t);
  }

  // True when the union contains interval iv entirely (strictly).
  bool covers(const Interval& iv) const {
    compact();
    for (const Interval& r : runs_) {
      if (r.contains(iv)) return true;
    }
    return false;
  }

 private:
  void compact() const {
    if (!dirty_) return;
    std::vector<Interval> all = runs_;
    all.insert(all.end(), pending_.begin(), pending_.end());
    std::sort(all.begin(), all.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    std::vector<Interval> merged;
    for (const Interval& iv : all) {
      if (!merged.empty() && iv.lo < merged.back().hi) {
        merged.back().hi = std::max(merged.back().hi, iv.hi);
      } else {
        merged.push_back(iv);
      }
    }
    runs_ = std::move(merged);
    pending_.clear();
    dirty_ = false;
  }

  mutable std::vector<Interval> runs_;
  mutable std::vector<Interval> pending_;
  mutable bool dirty_ = false;
};

// Immutable interval tree (centered / augmented-array flavor): built
// once over a fixed interval collection, answers "all intervals
// overlapping a query interval" and "all intervals containing a point".
// Build is O(n log n); queries are O(log n + answer).
class IntervalTree {
 public:
  struct Entry {
    Interval iv;
    std::size_t tag = 0;  // caller-defined payload (e.g. zone index)
  };

  IntervalTree() = default;

  explicit IntervalTree(std::vector<Entry> entries)
      : entries_(std::move(entries)) {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.iv.lo < b.iv.lo; });
    max_hi_.resize(entries_.size());
    build_max(0, entries_.size());
  }

  std::size_t size() const { return entries_.size(); }

  // Tags of all stored intervals overlapping `query`, in lo order.
  std::vector<std::size_t> overlapping(const Interval& query) const {
    std::vector<std::size_t> out;
    collect_overlap(0, entries_.size(), query, out);
    return out;
  }

  std::vector<std::size_t> stabbing(TimePoint t) const {
    return overlapping(Interval{t, t + 1});
  }

 private:
  // Segment-tree-over-sorted-array: max_hi_[node(range)] is the max hi
  // in that range; descend only into ranges whose max hi exceeds
  // query.lo, and stop scanning right of the first lo >= query.hi.
  TimePoint build_max(std::size_t lo, std::size_t hi) {
    if (lo >= hi) return kTimeMin;
    const std::size_t mid = lo + (hi - lo) / 2;
    TimePoint best = entries_[mid].iv.hi;
    best = std::max(best, build_max(lo, mid));
    best = std::max(best, build_max(mid + 1, hi));
    max_hi_[mid] = best;
    return best;
  }

  void collect_overlap(std::size_t lo, std::size_t hi, const Interval& query,
                       std::vector<std::size_t>& out) const {
    if (lo >= hi) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    if (max_hi_[mid] <= query.lo) return;  // nothing here can overlap
    collect_overlap(lo, mid, query, out);
    if (entries_[mid].iv.overlaps(query)) out.push_back(entries_[mid].tag);
    if (entries_[mid].iv.lo < query.hi) {
      collect_overlap(mid + 1, hi, query, out);
    }
  }

  std::vector<Entry> entries_;
  std::vector<TimePoint> max_hi_;
};

}  // namespace kav

#endif  // KAV_UTIL_INTERVAL_SET_H
