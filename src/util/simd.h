// Runtime-dispatched SIMD kernels for the hot decode/verify paths:
// fixed-width little-endian record decode (ingest/wire.h layout) and
// the column scans History / ZoneProfile / find_anomalies run over
// per-operation time columns.
//
// Dispatch model:
//   - Every kernel has a scalar reference implementation that is
//     always compiled and always available; it IS the semantics, and
//     the vector variants must be bit-identical to it on every input
//     (tests/simd_test.cpp pits them against each other on adversarial
//     inputs, under ASan/UBSan, at every compiled level).
//   - On x86-64, SSE2 is the baseline (part of the ABI, no runtime
//     check needed) and AVX2 variants are compiled with
//     __attribute__((target("avx2"))) and selected at runtime via
//     cpuid -- the binary stays runnable on pre-AVX2 hardware.
//   - KAV_FORCE_SCALAR=1 in the environment pins active_level() to
//     Level::scalar (read once, cached), so any result difference can
//     be bisected to a vector kernel by rerunning one process.
//   - Callers may also pass an explicit Level; passing an unsupported
//     one silently degrades to the highest supported level at or below
//     it, so "run this at sse2" is portable to non-x86 builds (where
//     everything degrades to scalar).
//
// Not every kernel has every tier: SSE2 has no 64-bit compare, so the
// i64 scans only gain a vector path at AVX2; the u32 scan vectorizes
// from SSE2 up. A tier a kernel lacks falls through to the next lower
// one -- never to different semantics.
#ifndef KAV_UTIL_SIMD_H
#define KAV_UTIL_SIMD_H

#include <cstddef>
#include <cstdint>
#include <utility>

namespace kav::simd {

enum class Level : unsigned char { scalar = 0, sse2 = 1, avx2 = 2 };

const char* to_string(Level level);

// Highest level this binary has code for (compile-time property).
Level max_compiled_level();

// True when `level`'s kernels can run on this machine (compiled in and
// the CPU reports the feature). scalar is always supported.
bool supported(Level level);

// The level kernels default to: the highest supported level, unless
// KAV_FORCE_SCALAR=1 pinned it to scalar. Cached after the first call.
Level active_level();

// --- Column scans (i64) ----------------------------------------------------

// True iff a[i] < a[i+1] for all consecutive pairs (vacuously true for
// n <= 1). Used to detect already-sorted time columns so History can
// skip its O(n log n) index sorts.
bool is_strictly_increasing_i64(const std::int64_t* a, std::size_t n,
                                Level level = active_level());

// True iff a[i] == a[i+1] for some i -- duplicate detection over a
// sorted column (find_anomalies' fast path).
bool has_adjacent_duplicate_i64(const std::int64_t* a, std::size_t n,
                                Level level = active_level());

// {min, max} of a[0..n). For n == 0 returns {INT64_MAX, INT64_MIN}
// (the fold identity), so callers can combine partial scans.
std::pair<std::int64_t, std::int64_t> min_max_i64(
    const std::int64_t* a, std::size_t n, Level level = active_level());

// Number of indices with a[i] < b[i] -- e.g. forward zones, where
// zone.low (min finish) < zone.high (max start).
std::size_t count_less_i64(const std::int64_t* a, const std::int64_t* b,
                           std::size_t n, Level level = active_level());

// First index with a[i] >= b[i], or n when a[i] < b[i] everywhere.
// Record validation (start < finish) uses this to accept a whole block
// in one scan and still point at the exact offending record.
std::size_t first_not_less_i64(const std::int64_t* a, const std::int64_t* b,
                               std::size_t n, Level level = active_level());

// --- Column scans (u32) ----------------------------------------------------

// First index with a[i] != expected, or n. Key-id uniformity check of
// a decoded block (every record must belong to the block's key).
std::size_t first_mismatch_u32(const std::uint32_t* a, std::size_t n,
                               std::uint32_t expected,
                               Level level = active_level());

// --- Strided little-endian field decode ------------------------------------
//
// out[i] = wire::load_*(base + i * stride). This is the structure-of-
// arrays decode of one fixed-width record field across a whole block
// (stride = kBinaryTraceRecordBytes); base needs no alignment and may
// point anywhere into an mmap. AVX2 uses vector gathers; below that
// the scalar loop already compiles to one unaligned load per record on
// little-endian hardware.

void gather_i64_strided(const unsigned char* base, std::size_t stride,
                        std::size_t n, std::int64_t* out,
                        Level level = active_level());

void gather_u32_strided(const unsigned char* base, std::size_t stride,
                        std::size_t n, std::uint32_t* out,
                        Level level = active_level());

}  // namespace kav::simd

#endif  // KAV_UTIL_SIMD_H
