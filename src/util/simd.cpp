#include "util/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KAV_SIMD_X86 1
#include <immintrin.h>
#else
#define KAV_SIMD_X86 0
#endif

namespace kav::simd {

namespace {

// --- Scalar reference implementations --------------------------------------
// These define the semantics; every vector variant below must agree
// bit-for-bit on every input.

inline std::int64_t load_le_i64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return static_cast<std::int64_t>(v);
}

inline std::uint32_t load_le_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool scalar_is_strictly_increasing(const std::int64_t* a, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    if (a[i - 1] >= a[i]) return false;
  }
  return true;
}

bool scalar_has_adjacent_duplicate(const std::int64_t* a, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    if (a[i - 1] == a[i]) return true;
  }
  return false;
}

std::pair<std::int64_t, std::int64_t> scalar_min_max(const std::int64_t* a,
                                                     std::size_t n) {
  std::int64_t lo = INT64_MAX;
  std::int64_t hi = INT64_MIN;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < lo) lo = a[i];
    if (a[i] > hi) hi = a[i];
  }
  return {lo, hi};
}

std::size_t scalar_count_less(const std::int64_t* a, const std::int64_t* b,
                              std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += a[i] < b[i] ? 1 : 0;
  }
  return count;
}

std::size_t scalar_first_not_less(const std::int64_t* a, const std::int64_t* b,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] >= b[i]) return i;
  }
  return n;
}

std::size_t scalar_first_mismatch(const std::uint32_t* a, std::size_t n,
                                  std::uint32_t expected) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != expected) return i;
  }
  return n;
}

void scalar_gather_i64(const unsigned char* base, std::size_t stride,
                       std::size_t n, std::int64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = load_le_i64(base + i * stride);
  }
}

void scalar_gather_u32(const unsigned char* base, std::size_t stride,
                       std::size_t n, std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = load_le_u32(base + i * stride);
  }
}

#if KAV_SIMD_X86

// --- SSE2 (x86-64 ABI baseline, no runtime check) --------------------------
// SSE2 has no 64-bit integer compare, so only the u32 scan gains a
// vector path at this tier.

std::size_t sse2_first_mismatch(const std::uint32_t* a, std::size_t n,
                                std::uint32_t expected) {
  const __m128i want = _mm_set1_epi32(static_cast<int>(expected));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const int eq = _mm_movemask_epi8(_mm_cmpeq_epi32(v, want));
    if (eq != 0xFFFF) {
      // Some lane differs; the scalar tail below pinpoints which.
      break;
    }
  }
  return i + scalar_first_mismatch(a + i, n - i, expected);
}

// --- AVX2 (runtime-dispatched) ---------------------------------------------
// Compiled with a per-function target attribute so the translation
// unit itself needs no -mavx2 and the binary stays runnable on
// pre-AVX2 CPUs; these bodies only execute after a cpuid check.

__attribute__((target("avx2"))) bool avx2_is_strictly_increasing(
    const std::int64_t* a, std::size_t n) {
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i - 1));
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // strictly increasing <=> cur > prev in every lane
    const __m256i gt = _mm256_cmpgt_epi64(cur, prev);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(gt)) != 0xF) return false;
  }
  return scalar_is_strictly_increasing(a + (i - 1), n - (i - 1));
}

__attribute__((target("avx2"))) bool avx2_has_adjacent_duplicate(
    const std::int64_t* a, std::size_t n) {
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i - 1));
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i eq = _mm256_cmpeq_epi64(cur, prev);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) != 0) return true;
  }
  return scalar_has_adjacent_duplicate(a + (i - 1), n - (i - 1));
}

__attribute__((target("avx2"))) std::pair<std::int64_t, std::int64_t>
avx2_min_max(const std::int64_t* a, std::size_t n) {
  std::size_t i = 0;
  std::int64_t lo = INT64_MAX;
  std::int64_t hi = INT64_MIN;
  if (n >= 4) {
    // AVX2 has no 64-bit min/max instruction; keep vector accumulators
    // via compare + blend and reduce at the end.
    __m256i vlo = _mm256_set1_epi64x(INT64_MAX);
    __m256i vhi = _mm256_set1_epi64x(INT64_MIN);
    for (; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      vlo = _mm256_blendv_epi8(vlo, v, _mm256_cmpgt_epi64(vlo, v));
      vhi = _mm256_blendv_epi8(vhi, v, _mm256_cmpgt_epi64(v, vhi));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vlo);
    for (std::int64_t lane : lanes) lo = lane < lo ? lane : lo;
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vhi);
    for (std::int64_t lane : lanes) hi = lane > hi ? lane : hi;
  }
  const auto [tail_lo, tail_hi] = scalar_min_max(a + i, n - i);
  return {tail_lo < lo ? tail_lo : lo, tail_hi > hi ? tail_hi : hi};
}

__attribute__((target("avx2"))) std::size_t avx2_count_less(
    const std::int64_t* a, const std::int64_t* b, std::size_t n) {
  std::size_t i = 0;
  std::size_t count = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i lt = _mm256_cmpgt_epi64(vb, va);  // a < b
    count += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(lt)))));
  }
  return count + scalar_count_less(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) std::size_t avx2_first_not_less(
    const std::int64_t* a, const std::int64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i lt = _mm256_cmpgt_epi64(vb, va);  // a < b
    if (_mm256_movemask_pd(_mm256_castsi256_pd(lt)) != 0xF) break;
  }
  return i + scalar_first_not_less(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) std::size_t avx2_first_mismatch(
    const std::uint32_t* a, std::size_t n, std::uint32_t expected) {
  const __m256i want = _mm256_set1_epi32(static_cast<int>(expected));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const unsigned eq = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi32(v, want)));
    if (eq != 0xFFFFFFFFu) break;
  }
  return i + scalar_first_mismatch(a + i, n - i, expected);
}

__attribute__((target("avx2"))) void avx2_gather_i64(const unsigned char* base,
                                                     std::size_t stride,
                                                     std::size_t n,
                                                     std::int64_t* out) {
  // Byte offsets {0, stride, 2*stride, 3*stride} with scale 1 and an
  // advancing base, so offsets never overflow whatever the block size.
  // Gathers perform independent element loads: no alignment needed and
  // each lane reads the same 8 bytes the scalar loop would. Endianness
  // matches load_le_i64 because x86 is little-endian.
  const __m256i offsets = _mm256_set_epi64x(
      static_cast<long long>(3 * stride), static_cast<long long>(2 * stride),
      static_cast<long long>(stride), 0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base + i * stride), offsets, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  scalar_gather_i64(base + i * stride, stride, n - i, out + i);
}

__attribute__((target("avx2"))) void avx2_gather_u32(const unsigned char* base,
                                                     std::size_t stride,
                                                     std::size_t n,
                                                     std::uint32_t* out) {
  const __m256i offsets = _mm256_set_epi32(
      static_cast<int>(7 * stride), static_cast<int>(6 * stride),
      static_cast<int>(5 * stride), static_cast<int>(4 * stride),
      static_cast<int>(3 * stride), static_cast<int>(2 * stride),
      static_cast<int>(stride), 0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(base + i * stride), offsets, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  scalar_gather_u32(base + i * stride, stride, n - i, out + i);
}

#endif  // KAV_SIMD_X86

bool force_scalar_env() {
  const char* value = std::getenv("KAV_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

Level detect_level() {
  if (force_scalar_env()) return Level::scalar;
#if KAV_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::avx2;
  return Level::sse2;  // part of the x86-64 ABI
#else
  return Level::scalar;
#endif
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::scalar:
      return "scalar";
    case Level::sse2:
      return "sse2";
    case Level::avx2:
      return "avx2";
  }
  return "unknown";
}

Level max_compiled_level() {
#if KAV_SIMD_X86
  return Level::avx2;
#else
  return Level::scalar;
#endif
}

bool supported(Level level) {
  if (level == Level::scalar) return true;
#if KAV_SIMD_X86
  if (level == Level::sse2) return true;
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Level active_level() {
  static const Level cached = detect_level();
  return cached;
}

bool is_strictly_increasing_i64(const std::int64_t* a, std::size_t n,
                                Level level) {
  if (n <= 1) return true;
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    return avx2_is_strictly_increasing(a, n);
  }
#endif
  return scalar_is_strictly_increasing(a, n);
}

bool has_adjacent_duplicate_i64(const std::int64_t* a, std::size_t n,
                                Level level) {
  if (n <= 1) return false;
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    return avx2_has_adjacent_duplicate(a, n);
  }
#endif
  return scalar_has_adjacent_duplicate(a, n);
}

std::pair<std::int64_t, std::int64_t> min_max_i64(const std::int64_t* a,
                                                  std::size_t n, Level level) {
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    return avx2_min_max(a, n);
  }
#endif
  return scalar_min_max(a, n);
}

std::size_t count_less_i64(const std::int64_t* a, const std::int64_t* b,
                           std::size_t n, Level level) {
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    return avx2_count_less(a, b, n);
  }
#endif
  return scalar_count_less(a, b, n);
}

std::size_t first_not_less_i64(const std::int64_t* a, const std::int64_t* b,
                               std::size_t n, Level level) {
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    return avx2_first_not_less(a, b, n);
  }
#endif
  return scalar_first_not_less(a, b, n);
}

std::size_t first_mismatch_u32(const std::uint32_t* a, std::size_t n,
                               std::uint32_t expected, Level level) {
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    return avx2_first_mismatch(a, n, expected);
  }
  if (level >= Level::sse2) {
    return sse2_first_mismatch(a, n, expected);
  }
#endif
  return scalar_first_mismatch(a, n, expected);
}

void gather_i64_strided(const unsigned char* base, std::size_t stride,
                        std::size_t n, std::int64_t* out, Level level) {
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    avx2_gather_i64(base, stride, n, out);
    return;
  }
#endif
  scalar_gather_i64(base, stride, n, out);
}

void gather_u32_strided(const unsigned char* base, std::size_t stride,
                        std::size_t n, std::uint32_t* out, Level level) {
#if KAV_SIMD_X86
  if (level >= Level::avx2 && supported(Level::avx2)) {
    avx2_gather_u32(base, stride, n, out);
    return;
  }
#endif
  scalar_gather_u32(base, stride, n, out);
}

}  // namespace kav::simd
