// Deterministic, seedable random number generation.
//
// All randomness in the library (generators, simulator, benchmarks)
// flows through Rng so every experiment is reproducible from a seed.
// The engine is xoshiro256++ seeded via splitmix64, which is fast,
// high-quality, and has a trivially portable implementation -- we avoid
// std::mt19937 so that streams are identical across standard libraries.
#ifndef KAV_UTIL_RNG_H
#define KAV_UTIL_RNG_H

#include <array>
#include <cstdint>

#include "util/time_types.h"

namespace kav {

inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  // Uniform in [0, n). Requires n > 0. Uses Lemire-style rejection to
  // avoid modulo bias.
  std::uint64_t bounded(std::uint64_t n) {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  double uniform_double() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform_double() < p; }

  // Picks an index in [0, weights.size()) proportionally to weights.
  template <typename Container>
  std::size_t weighted_index(const Container& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double x = uniform_double() * total;
    std::size_t i = 0;
    for (double w : weights) {
      if (x < w || i + 1 == static_cast<std::size_t>(weights.size())) break;
      x -= w;
      ++i;
    }
    return i;
  }

  // Derives an independent child stream; used to give each simulated
  // client its own stream so event interleavings stay reproducible.
  Rng fork() { return Rng(next() ^ 0x5851f42d4c957f2dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) {
    return (x << s) | (x >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kav

#endif  // KAV_UTIL_RNG_H
