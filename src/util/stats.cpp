#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace kav {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double total = 0;
  for (double x : xs_) total += x;
  return total / static_cast<double>(xs_.size());
}

double Samples::quantile(double q) const {
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[rank];
}

PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  PowerFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) continue;
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
    ++m;
  }
  fit.points = m;
  if (m < 2) return fit;
  const double dm = static_cast<double>(m);
  const double denom = dm * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.exponent = (dm * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / dm;
  fit.coefficient = std::exp(intercept);
  const double sst = syy - sy * sy / dm;
  const double ssr =
      syy - intercept * sy - fit.exponent * sxy;
  fit.r_squared = sst == 0 ? 1.0 : 1.0 - ssr / sst;
  return fit;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt(std::int64_t v) { return std::to_string(v); }
std::string TablePrinter::fmt(std::uint64_t v) { return std::to_string(v); }

}  // namespace kav
