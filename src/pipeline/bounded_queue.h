// A small bounded MPMC blocking queue -- the backpressure primitive the
// ingest subsystem puts in front of every per-key streaming checker.
//
// push() blocks while the queue is at capacity, so a producer that
// outruns a slow consumer is throttled instead of growing an unbounded
// backlog (the monitor's memory bound depends on this); try_pop() never
// blocks, so a pool worker can drain a queue and move on the moment it
// runs dry. Capacity 0 is normalized to 1 so push() can always make
// progress.
#ifndef KAV_PIPELINE_BOUNDED_QUEUE_H
#define KAV_PIPELINE_BOUNDED_QUEUE_H

#include <cstddef>
#include <deque>
#include <utility>

#include "util/thread_safety.h"

namespace kav::pipeline {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room (backpressure), then enqueues.
  void push(T value) KAV_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (items_.size() >= capacity_) not_full_.wait(mutex_);
    items_.push_back(std::move(value));
  }

  // Enqueues only if there is room; never blocks.
  bool try_push(T value) KAV_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  // Dequeues into `out` if an item is available; never blocks.
  bool try_pop(T& out) KAV_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  bool empty() const KAV_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const KAV_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable util::Mutex mutex_;
  util::CondVar not_full_;
  std::deque<T> items_ KAV_GUARDED_BY(mutex_);
  // Immutable after construction; readable without the lock.
  const std::size_t capacity_;
};

}  // namespace kav::pipeline

#endif  // KAV_PIPELINE_BOUNDED_QUEUE_H
