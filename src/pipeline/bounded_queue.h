// A small bounded MPMC blocking queue -- the backpressure primitive the
// ingest subsystem puts in front of every per-key streaming checker.
//
// push() blocks while the queue is at capacity, so a producer that
// outruns a slow consumer is throttled instead of growing an unbounded
// backlog (the monitor's memory bound depends on this); try_pop() never
// blocks, so a pool worker can drain a queue and move on the moment it
// runs dry. Capacity 0 is normalized to 1 so push() can always make
// progress.
#ifndef KAV_PIPELINE_BOUNDED_QUEUE_H
#define KAV_PIPELINE_BOUNDED_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace kav::pipeline {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room (backpressure), then enqueues.
  void push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_; });
    items_.push_back(std::move(value));
  }

  // Enqueues only if there is room; never blocks.
  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  // Dequeues into `out` if an item is available; never blocks.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
};

}  // namespace kav::pipeline

#endif  // KAV_PIPELINE_BOUNDED_QUEUE_H
