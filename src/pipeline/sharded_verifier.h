// Parallel multi-register verification. k-atomicity is local (paper
// Section II-B): a trace is k-atomic iff its projection onto each
// register is, and the projections share no state, so per-key shards
// are embarrassingly parallel. ShardedVerifier splits a KeyedTrace by
// key, dispatches each per-key History to a work-stealing ThreadPool,
// and merges the per-key Verdicts back into a KeyedReport in key order.
//
// Determinism guarantee: with fail_fast off, every shard's verdict is a
// pure function of (shard history, VerifyOptions, shard_op_budget) --
// including the ZoneProfile-based LBT/FZF choice under
// Algorithm::auto_select, which looks only at the shard -- and the
// merge orders by key, so the returned KeyedReport never depends on
// thread count or scheduling; with shard_op_budget also unset it is
// bit-identical to the serial verify_keyed_trace() (checked by
// tests/pipeline_fuzz_test.cpp).
//
// Fail-fast mode trades that for latency: once any shard answers NO,
// shards that have not started yet return UNDECIDED instead of running.
// At least one NO always survives into the report; *which* other shards
// still get verdicts depends on scheduling.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_PIPELINE_SHARDED_VERIFIER_H
#define KAV_PIPELINE_SHARDED_VERIFIER_H

#include <cstddef>
#include <memory>

#include "core/verify.h"
#include "history/keyed_trace.h"
#include "pipeline/thread_pool.h"

namespace kav {

struct PipelineOptions {
  // Worker threads; 0 picks std::thread::hardware_concurrency().
  std::size_t threads = 0;
  // Largest shard (per-key operation count) the pipeline will hand to a
  // decider; bigger shards answer UNDECIDED with a budget reason rather
  // than stalling a worker. 0 = unlimited. The cutoff depends only on
  // the shard, so it does not break determinism.
  std::size_t shard_op_budget = 0;
  // Early-cancel: once one shard answers NO, not-yet-started shards are
  // skipped (UNDECIDED). Useful when any violation fails the audit and
  // per-key detail beyond the first NO is not needed.
  bool fail_fast = false;
};

class ShardedVerifier {
 public:
  explicit ShardedVerifier(VerifyOptions verify_options = {},
                           PipelineOptions pipeline_options = {});

  // The pool is created once and reused across verify() calls, so a
  // monitor can re-verify batches without respawning threads.
  KeyedReport verify(const KeyedTrace& trace);
  KeyedReport verify(const KeyedHistories& shards);
  // Same, overriding the constructor's VerifyOptions for this call --
  // e.g. auditing the same shards at several k on one pool.
  KeyedReport verify(const KeyedHistories& shards,
                     const VerifyOptions& options);

  std::size_t thread_count() const { return pool_->thread_count(); }

 private:
  VerifyOptions verify_options_;
  PipelineOptions pipeline_options_;
  std::unique_ptr<pipeline::ThreadPool> pool_;
};

// The facade overload declared in core/verify.h; spins up a pipeline
// for a single trace.
KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options,
                               const PipelineOptions& pipeline_options);

}  // namespace kav

#endif  // KAV_PIPELINE_SHARDED_VERIFIER_H
