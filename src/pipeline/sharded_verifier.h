// Parallel multi-register verification. k-atomicity is local (paper
// Section II-B): a trace is k-atomic iff its projection onto each
// register is, and the projections share no state, so per-key shards
// are embarrassingly parallel. ShardedVerifier splits a KeyedTrace by
// key, dispatches each per-key History to a work-stealing ThreadPool,
// and merges the per-key Verdicts back into a KeyedReport in key order.
//
// The pool can be owned (legacy constructor: the verifier spawns one)
// or borrowed (ThreadPool& constructor: kav::Engine wires batch and
// monitor work onto ONE shared pool -- see core/engine.h, the library's
// front door). In borrowed mode PipelineOptions::threads is ignored:
// the pool's size wins.
//
// Determinism guarantee: with fail_fast off and no RunControl trigger,
// every shard's verdict is a pure function of (shard history,
// VerifyOptions, shard_op_budget) -- including the ZoneProfile-based
// LBT/FZF choice under Algorithm::auto_select, which looks only at the
// shard -- and the merge orders by key, so the returned KeyedReport
// never depends on thread count or scheduling; with shard_op_budget
// also unset it is bit-identical to the serial verify_keyed_trace()
// (checked by tests/pipeline_fuzz_test.cpp and tests/engine_fuzz_test.cpp).
//
// Early-stop modes trade that for latency, and all three report skipped
// shards as UNDECIDED with the exact reasons in core/run_control.h:
// fail_fast (once any shard answers NO, shards that have not started
// are skipped; at least one NO always survives into the report),
// RunControl::cancel (caller-initiated), and RunControl::deadline
// (wall-clock). *Which* shards still get verdicts under any of them
// depends on scheduling.
//
// Paper-section map and guarantees for every procedure: docs/ALGORITHMS.md.
#ifndef KAV_PIPELINE_SHARDED_VERIFIER_H
#define KAV_PIPELINE_SHARDED_VERIFIER_H

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/run_control.h"
#include "core/verify.h"
#include "history/keyed_trace.h"
#include "pipeline/thread_pool.h"

namespace kav {

// One unit of parallel work for verify_shards: a key plus EITHER a
// pre-materialized history (`pinned`, the classic KeyedHistories path)
// OR a loader the worker invokes to materialize it lazily (`load`, the
// trace store's index-driven path: op_count comes from index
// statistics, and the shard's operations are decoded from their mmap
// blocks inside the pool worker -- the full trace is never
// materialized anywhere). op_count is what shard_op_budget is checked
// against, so over-budget lazy shards are skipped without decoding a
// single record.
struct ShardSpec {
  std::string key;
  std::size_t op_count = 0;
  const History* pinned = nullptr;   // used when non-null
  std::function<History()> load;     // else called on the worker;
                                     // must be thread-safe
};

struct PipelineOptions {
  // Worker threads; 0 picks std::thread::hardware_concurrency().
  // Ignored when the verifier borrows a caller-provided pool.
  std::size_t threads = 0;
  // Largest shard (per-key operation count) the pipeline will hand to a
  // decider; bigger shards answer UNDECIDED with a budget reason rather
  // than stalling a worker. 0 = unlimited. The cutoff depends only on
  // the shard, so it does not break determinism.
  std::size_t shard_op_budget = 0;
  // Early-cancel: once one shard answers NO, not-yet-started shards are
  // skipped (UNDECIDED). Useful when any violation fails the audit and
  // per-key detail beyond the first NO is not needed.
  bool fail_fast = false;
};

class ShardedVerifier {
 public:
  // Owning: spawns a pool sized by pipeline_options.threads. The pool
  // is created once and reused across verify() calls, so a monitor can
  // re-verify batches without respawning threads.
  //
  // Both constructors instrument per-shard work (kav_engine_shard_*
  // latency histograms, kav_verify_* decision-procedure counters) into
  // `metrics`; nullptr means obs::MetricsRegistry::global(). The
  // registry must outlive the verifier.
  explicit ShardedVerifier(VerifyOptions verify_options = {},
                           PipelineOptions pipeline_options = {},
                           obs::MetricsRegistry* metrics = nullptr);
  // Non-owning: runs every shard on the caller's pool, which must
  // outlive the verifier. This is how kav::Engine keeps a process doing
  // batch + online work down to exactly one pool.
  ShardedVerifier(pipeline::ThreadPool& pool, VerifyOptions verify_options = {},
                  PipelineOptions pipeline_options = {},
                  obs::MetricsRegistry* metrics = nullptr);

  KeyedReport verify(const KeyedTrace& trace);
  KeyedReport verify(const KeyedHistories& shards);
  // Same, overriding the constructor's VerifyOptions for this call --
  // e.g. auditing the same shards at several k on one pool.
  KeyedReport verify(const KeyedHistories& shards,
                     const VerifyOptions& options);
  // Full form: per-call options plus run control (cancellation,
  // deadline, live per-key callback). The default RunControl reproduces
  // the overloads above bit for bit.
  KeyedReport verify(const KeyedHistories& shards,
                     const VerifyOptions& options, const RunControl& run);

  // The general core every overload above funnels into: one task per
  // ShardSpec on the pool, merged into a KeyedReport in spec order
  // (keys must be unique). Lazy specs let a caller hand the pipeline
  // shard *descriptions* (key + op count from an index) instead of
  // materialized histories; each worker materializes, decides, and
  // discards its own shard, so peak memory is O(threads * max shard)
  // rather than O(trace). A lazy loader that throws (e.g. corrupt
  // bytes under an mmap) propagates out of this call after every other
  // shard has been waited for. Determinism: verdicts are a pure
  // function of each spec's history + options, exactly as for verify().
  KeyedReport verify_shards(const std::vector<ShardSpec>& shards,
                            const VerifyOptions& options,
                            const RunControl& run);

  std::size_t thread_count() const { return pool_->thread_count(); }

 private:
  VerifyOptions verify_options_;
  PipelineOptions pipeline_options_;
  std::unique_ptr<pipeline::ThreadPool> owned_pool_;
  pipeline::ThreadPool* pool_;  // owned_pool_.get() or the borrowed pool
  // Shard latency + decision-procedure instruments (sharded_verifier.cpp);
  // owned by the registry, shared safely by concurrent run_shard tasks.
  struct Metrics;
  std::shared_ptr<Metrics> metrics_;
};

}  // namespace kav

#endif  // KAV_PIPELINE_SHARDED_VERIFIER_H
