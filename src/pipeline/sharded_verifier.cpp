#include "pipeline/sharded_verifier.h"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kav {

ShardedVerifier::ShardedVerifier(VerifyOptions verify_options,
                                 PipelineOptions pipeline_options)
    : verify_options_(verify_options),
      pipeline_options_(pipeline_options),
      owned_pool_(
          std::make_unique<pipeline::ThreadPool>(pipeline_options.threads)),
      pool_(owned_pool_.get()) {}

ShardedVerifier::ShardedVerifier(pipeline::ThreadPool& pool,
                                 VerifyOptions verify_options,
                                 PipelineOptions pipeline_options)
    : verify_options_(verify_options),
      pipeline_options_(pipeline_options),
      pool_(&pool) {}

KeyedReport ShardedVerifier::verify(const KeyedTrace& trace) {
  return verify(split_by_key(trace));
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards) {
  return verify(shards, verify_options_);
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards,
                                    const VerifyOptions& verify_options) {
  return verify(shards, verify_options, RunControl{});
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards,
                                    const VerifyOptions& verify_options,
                                    const RunControl& run) {
  // One fail-fast flag per call: a NO on one trace must not poison a
  // later verify() on the same (reused) pool. Caller cancellation is
  // the token inside `run` -- also per call, by construction.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  // Serializes the optional live per-key callback across workers.
  auto sink_mutex = std::make_shared<std::mutex>();
  const bool fail_fast = pipeline_options_.fail_fast;
  const std::size_t budget = pipeline_options_.shard_op_budget;
  const VerifyOptions options = verify_options;

  // Captured by pointer, not copied per shard: every exit path of this
  // function (normal merge AND the submit-failure catch below) waits
  // for all submitted futures first, so `run` strictly outlives every
  // task that dereferences it.
  const RunControl* run_ptr = &run;

  std::vector<std::future<Verdict>> futures;
  futures.reserve(shards.per_key.size());
  try {
    for (const auto& [key, history] : shards.per_key) {
      const History* shard = &history;
      const std::string* shard_key = &key;
      futures.push_back(pool_->submit([shard, shard_key, options, budget,
                                       fail_fast, failed, sink_mutex,
                                       run_ptr]() -> Verdict {
        const Verdict verdict = [&]() -> Verdict {
          if (budget > 0 && shard->size() > budget) {
            return Verdict::make_undecided(
                "shard exceeds per-shard op budget (" +
                std::to_string(shard->size()) + " ops > " +
                std::to_string(budget) + ")");
          }
          // Skip checks in precedence order: the caller's intent
          // (cancel, then deadline) outranks the internal fail-fast
          // flag, so a cancelled run reports "cancelled" even if a NO
          // also landed.
          if (run_ptr->cancel.cancelled()) {
            return Verdict::make_undecided(kSkipCancelledReason);
          }
          if (run_ptr->deadline.has_value() &&
              std::chrono::steady_clock::now() >= *run_ptr->deadline) {
            return Verdict::make_undecided(kSkipDeadlineReason);
          }
          if (fail_fast && failed->load(std::memory_order_acquire)) {
            return Verdict::make_undecided(kSkipFailFastReason);
          }
          return verify_k_atomicity(*shard, options);
        }();
        if (fail_fast && verdict.no()) {
          failed->store(true, std::memory_order_release);
        }
        // Every shard's verdict reaches the sink, skipped shards
        // (budget, cancel, deadline, fail-fast) included: a progress
        // consumer counting callbacks sees exactly one per key.
        if (run_ptr->on_key) {
          std::lock_guard<std::mutex> lock(*sink_mutex);
          run_ptr->on_key(*shard_key, verdict);
        }
        return verdict;
      }));
    }
  } catch (...) {
    // submit() can throw mid-fan-out (e.g. a borrowed pool shut down by
    // its owner). Already-queued tasks hold pointers into `shards` and
    // WILL still run (shutdown drains, it does not abort), so they must
    // finish before this exception may unwind past the caller's
    // arguments.
    for (const auto& future : futures) future.wait();
    throw;
  }

  // Wait for every shard before any get() can rethrow: queued tasks
  // hold pointers into `shards`, which the caller may destroy during
  // unwinding while the reused pool lives on -- no task may outlive
  // this function.
  for (const auto& future : futures) future.wait();

  // Merge in key order (shards.per_key is a sorted map and futures were
  // submitted in that order), so the report layout never depends on
  // which worker finished first.
  KeyedReport report;
  std::size_t i = 0;
  for (const auto& [key, history] : shards.per_key) {
    report.per_key.emplace(key, futures[i++].get());
  }
  return report;
}

}  // namespace kav
