#include "pipeline/sharded_verifier.h"

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "util/thread_safety.h"

namespace kav {

// Per-shard pipeline instruments. The kav_verify_* counters mirror
// VerifyStats field-for-field: each decided shard adds its verdict's
// stats here, so after a batch run the registry totals equal
// Report::verify_totals exactly (pinned by the differential test in
// tests/engine_fuzz_test.cpp). The structs stay the per-run view;
// these are the process-lifetime series a scraper watches.
struct ShardedVerifier::Metrics {
  obs::Histogram& shard_verify_seconds;
  obs::Histogram& shard_decode_seconds;
  obs::Counter& shards_verified;
  obs::Counter& skipped_budget;
  obs::Counter& skipped_cancelled;
  obs::Counter& skipped_deadline;
  obs::Counter& skipped_fail_fast;
  obs::Counter& steps;
  obs::Counter& epochs;
  obs::Counter& candidates;
  obs::Counter& chunks;
  obs::Counter& dangling;
  obs::Counter& orders_tested;
  obs::Counter& oracle_nodes;

  explicit Metrics(obs::MetricsRegistry& registry)
      : shard_verify_seconds(registry.histogram(
            "kav_engine_shard_verify_seconds",
            "Wall time deciding one per-key shard (decode excluded).")),
        shard_decode_seconds(registry.histogram(
            "kav_engine_shard_decode_seconds",
            "Wall time materializing one lazy shard from its source "
            "(mmap block decode on the selective path).")),
        shards_verified(registry.counter(
            "kav_engine_shards_verified_total",
            "Per-key shards a decision procedure actually ran on.")),
        skipped_budget(registry.counter("kav_engine_shards_skipped_total",
                                        "Shards skipped without deciding.",
                                        {{"reason", "budget"}})),
        skipped_cancelled(registry.counter("kav_engine_shards_skipped_total",
                                           "Shards skipped without deciding.",
                                           {{"reason", "cancelled"}})),
        skipped_deadline(registry.counter("kav_engine_shards_skipped_total",
                                          "Shards skipped without deciding.",
                                          {{"reason", "deadline"}})),
        skipped_fail_fast(registry.counter("kav_engine_shards_skipped_total",
                                           "Shards skipped without deciding.",
                                           {{"reason", "fail_fast"}})),
        steps(registry.counter("kav_verify_steps_total",
                               "LBT/FZF ops processed, reverts included.")),
        epochs(registry.counter("kav_verify_epochs_total",
                                "LBT committed epochs.")),
        candidates(registry.counter("kav_verify_candidates_total",
                                    "LBT RunEpoch invocations.")),
        chunks(registry.counter("kav_verify_chunks_total",
                                "FZF chunk-sequence elements |CS(H)|.")),
        dangling(registry.counter("kav_verify_dangling_total",
                                  "FZF dangling backward clusters.")),
        orders_tested(registry.counter("kav_verify_orders_tested_total",
                                       "FZF viability subroutine calls.")),
        oracle_nodes(registry.counter("kav_verify_oracle_nodes_total",
                                      "Oracle search nodes expanded.")) {}

  void add_stats(const VerifyStats& stats) {
    steps.add(stats.steps);
    epochs.add(stats.epochs);
    candidates.add(stats.candidates_tried);
    chunks.add(stats.chunks);
    dangling.add(stats.dangling);
    orders_tested.add(stats.orders_tested);
    oracle_nodes.add(stats.nodes);
  }
};

ShardedVerifier::ShardedVerifier(VerifyOptions verify_options,
                                 PipelineOptions pipeline_options,
                                 obs::MetricsRegistry* metrics)
    : verify_options_(verify_options),
      pipeline_options_(pipeline_options),
      owned_pool_(std::make_unique<pipeline::ThreadPool>(
          pipeline_options.threads, metrics)),
      pool_(owned_pool_.get()),
      metrics_(std::make_shared<Metrics>(
          metrics != nullptr ? *metrics : obs::MetricsRegistry::global())) {}

ShardedVerifier::ShardedVerifier(pipeline::ThreadPool& pool,
                                 VerifyOptions verify_options,
                                 PipelineOptions pipeline_options,
                                 obs::MetricsRegistry* metrics)
    : verify_options_(verify_options),
      pipeline_options_(pipeline_options),
      pool_(&pool),
      metrics_(std::make_shared<Metrics>(
          metrics != nullptr ? *metrics : obs::MetricsRegistry::global())) {}

KeyedReport ShardedVerifier::verify(const KeyedTrace& trace) {
  return verify(split_by_key(trace));
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards) {
  return verify(shards, verify_options_);
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards,
                                    const VerifyOptions& verify_options) {
  return verify(shards, verify_options, RunControl{});
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards,
                                    const VerifyOptions& verify_options,
                                    const RunControl& run) {
  // The map path pins each shard's History by pointer -- no copies;
  // verify_shards waits for every task before returning, so the
  // pointers never dangle.
  std::vector<ShardSpec> specs;
  specs.reserve(shards.per_key.size());
  for (const auto& [key, history] : shards.per_key) {
    ShardSpec spec;
    spec.key = key;
    spec.op_count = history.size();
    spec.pinned = &history;
    specs.push_back(std::move(spec));
  }
  return verify_shards(specs, verify_options, run);
}

KeyedReport ShardedVerifier::verify_shards(const std::vector<ShardSpec>& shards,
                                           const VerifyOptions& options,
                                           const RunControl& run) {
  // One fail-fast flag per call: a NO on one trace must not poison a
  // later verify() on the same (reused) pool. Caller cancellation is
  // the token inside `run` -- also per call, by construction.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  // Serializes the optional live per-key callback across workers.
  auto sink_mutex = std::make_shared<util::Mutex>();
  const bool fail_fast = pipeline_options_.fail_fast;
  const std::size_t budget = pipeline_options_.shard_op_budget;
  const VerifyOptions verify_options = options;

  // Captured by pointer, not copied per shard: every exit path of this
  // function (normal merge AND the submit-failure catch below) waits
  // for all submitted futures first, so `run` and the specs strictly
  // outlive every task that dereferences them.
  const RunControl* run_ptr = &run;

  const auto run_shard = [verify_options, budget, fail_fast, failed,
                          sink_mutex, run_ptr,
                          metrics = metrics_](const ShardSpec* spec)
      -> Verdict {
        bool decided = false;
        const Verdict verdict = [&]() -> Verdict {
          if (budget > 0 && spec->op_count > budget) {
            metrics->skipped_budget.add(1);
            return Verdict::make_undecided(
                "shard exceeds per-shard op budget (" +
                std::to_string(spec->op_count) + " ops > " +
                std::to_string(budget) + ")");
          }
          // Skip checks in precedence order: the caller's intent
          // (cancel, then deadline) outranks the internal fail-fast
          // flag, so a cancelled run reports "cancelled" even if a NO
          // also landed. All three fire BEFORE a lazy shard decodes
          // anything -- skipping costs no I/O.
          if (run_ptr->cancel.cancelled()) {
            metrics->skipped_cancelled.add(1);
            return Verdict::make_undecided(kSkipCancelledReason);
          }
          if (run_ptr->deadline.has_value() &&
              std::chrono::steady_clock::now() >= *run_ptr->deadline) {
            metrics->skipped_deadline.add(1);
            return Verdict::make_undecided(kSkipDeadlineReason);
          }
          if (fail_fast && failed->load(std::memory_order_acquire)) {
            metrics->skipped_fail_fast.add(1);
            return Verdict::make_undecided(kSkipFailFastReason);
          }
          decided = true;
          if (spec->pinned != nullptr) {
            obs::ScopedTimer verify_timer(&metrics->shard_verify_seconds,
                                          &obs::Tracer::global(),
                                          "shard.verify", "pipeline");
            return verify_k_atomicity(*spec->pinned, verify_options);
          }
          // Lazy shard: materialize on this worker, decide, discard.
          const History loaded = [&] {
            obs::ScopedTimer decode_timer(&metrics->shard_decode_seconds,
                                          &obs::Tracer::global(),
                                          "shard.decode", "pipeline");
            return spec->load();
          }();
          obs::ScopedTimer verify_timer(&metrics->shard_verify_seconds,
                                        &obs::Tracer::global(),
                                        "shard.verify", "pipeline");
          return verify_k_atomicity(loaded, verify_options);
        }();
        if (decided) {
          metrics->shards_verified.add(1);
          metrics->add_stats(verdict.stats);
        }
        if (fail_fast && verdict.no()) {
          failed->store(true, std::memory_order_release);
        }
        // Every shard's verdict reaches the sink, skipped shards
        // (budget, cancel, deadline, fail-fast) included: a progress
        // consumer counting callbacks sees exactly one per key.
        if (run_ptr->on_key) {
          util::MutexLock lock(*sink_mutex);
          run_ptr->on_key(spec->key, verdict);
        }
        return verdict;
      };

  // Single-shard fast path: run on the caller's thread. A one-key
  // selective audit pays no pool handoff (submit + wake + future wait
  // dwarf a small shard's decode-and-decide); semantics are identical
  // -- same skip precedence, same sink callback, and a throwing lazy
  // loader propagates out of this call exactly as the pooled path
  // rethrows it from future::get with no sibling shards to wait on.
  if (shards.size() == 1) {
    KeyedReport report;
    report.per_key.emplace(shards.front().key, run_shard(&shards.front()));
    return report;
  }

  std::vector<std::future<Verdict>> futures;
  futures.reserve(shards.size());
  try {
    for (const ShardSpec& shard : shards) {
      const ShardSpec* spec = &shard;
      futures.push_back(pool_->submit([&run_shard, spec] {
        return run_shard(spec);
      }));
    }
  } catch (...) {
    // submit() can throw mid-fan-out (e.g. a borrowed pool shut down by
    // its owner). Already-queued tasks hold pointers into `shards` and
    // WILL still run (shutdown drains, it does not abort), so they must
    // finish before this exception may unwind past the caller's
    // arguments.
    for (const auto& future : futures) future.wait();
    throw;
  }

  // Wait for every shard before any get() can rethrow: queued tasks
  // hold pointers into `shards`, which the caller may destroy during
  // unwinding while the reused pool lives on -- no task may outlive
  // this function.
  for (const auto& future : futures) future.wait();

  // Merge in spec order (the map overload builds specs in sorted-key
  // order), so the report layout never depends on which worker
  // finished first.
  KeyedReport report;
  std::size_t i = 0;
  for (const ShardSpec& shard : shards) {
    report.per_key.emplace(shard.key, futures[i++].get());
  }
  return report;
}

}  // namespace kav
