#include "pipeline/sharded_verifier.h"

#include <atomic>
#include <future>
#include <string>
#include <utility>
#include <vector>

namespace kav {

ShardedVerifier::ShardedVerifier(VerifyOptions verify_options,
                                 PipelineOptions pipeline_options)
    : verify_options_(verify_options),
      pipeline_options_(pipeline_options),
      pool_(std::make_unique<pipeline::ThreadPool>(pipeline_options.threads)) {}

KeyedReport ShardedVerifier::verify(const KeyedTrace& trace) {
  return verify(split_by_key(trace));
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards) {
  return verify(shards, verify_options_);
}

KeyedReport ShardedVerifier::verify(const KeyedHistories& shards,
                                    const VerifyOptions& verify_options) {
  // One cancellation flag per call: fail-fast on one trace must not
  // poison a later verify() on the same (reused) pool.
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  const bool fail_fast = pipeline_options_.fail_fast;
  const std::size_t budget = pipeline_options_.shard_op_budget;
  const VerifyOptions options = verify_options;

  std::vector<std::future<Verdict>> futures;
  futures.reserve(shards.per_key.size());
  for (const auto& [key, history] : shards.per_key) {
    const History* shard = &history;
    futures.push_back(pool_->submit([shard, options, budget, fail_fast,
                                     cancelled]() -> Verdict {
      if (budget > 0 && shard->size() > budget) {
        return Verdict::make_undecided(
            "shard exceeds per-shard op budget (" +
            std::to_string(shard->size()) + " ops > " +
            std::to_string(budget) + ")");
      }
      if (fail_fast && cancelled->load(std::memory_order_acquire)) {
        return Verdict::make_undecided(
            "skipped: fail-fast cancellation after another shard answered "
            "NO");
      }
      Verdict verdict = verify_k_atomicity(*shard, options);
      if (fail_fast && verdict.no()) {
        cancelled->store(true, std::memory_order_release);
      }
      return verdict;
    }));
  }

  // Wait for every shard before any get() can rethrow: queued tasks
  // hold pointers into `shards`, which the caller may destroy during
  // unwinding while the reused pool lives on -- no task may outlive
  // this function.
  for (const auto& future : futures) future.wait();

  // Merge in key order (shards.per_key is a sorted map and futures were
  // submitted in that order), so the report layout never depends on
  // which worker finished first.
  KeyedReport report;
  std::size_t i = 0;
  for (const auto& [key, history] : shards.per_key) {
    report.per_key.emplace(key, futures[i++].get());
  }
  return report;
}

KeyedReport verify_keyed_trace(const KeyedTrace& trace,
                               const VerifyOptions& options,
                               const PipelineOptions& pipeline_options) {
  ShardedVerifier verifier(options, pipeline_options);
  return verifier.verify(trace);
}

}  // namespace kav
