// A small work-stealing thread pool for per-shard verification tasks.
//
// Each worker owns a deque; submissions are distributed round-robin
// across the deques. A worker drains its own deque front-first (FIFO:
// all tasks here are external submissions, so this keeps execution
// close to submission order -- which is what makes fail-fast skips
// land on the *later* shards) and, when idle, steals from the back of
// the other deques, so uneven shard sizes (one hot key, many cold
// ones) keep every thread busy while owner and thief contend on
// opposite ends.
//
// The pool makes two guarantees the verification pipeline leans on:
//
//   1. every task submitted before shutdown() runs to completion
//      (shutdown drains, it does not abort), and
//   2. a task's exception is captured and rethrown from the future
//      submit() returned, never swallowed or left to terminate().
//
// Cancellation is cooperative and lives in the caller (see
// pipeline/sharded_verifier.cpp's fail-fast flag): tasks that want to
// be cancellable check shared state and return cheaply.
#ifndef KAV_PIPELINE_THREAD_POOL_H
#define KAV_PIPELINE_THREAD_POOL_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_safety.h"

namespace kav::pipeline {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  // The pool instruments itself (kav_pool_* metrics: queue depth,
  // steals, task latency) into `metrics`; nullptr means the process
  // registry, obs::MetricsRegistry::global(). The registry must
  // outlive the pool.
  explicit ThreadPool(std::size_t threads = 0,
                      obs::MetricsRegistry* metrics = nullptr);
  ~ThreadPool();  // shutdown()

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Process-wide count of pools ever constructed -- a test hook
  // (tests/engine_test.cpp) asserting that one kav::Engine running
  // batch and monitor work spawns exactly one pool.
  static std::uint64_t created_count();

  // Schedules fn and returns a future for its result; an exception
  // thrown by fn surfaces from future.get(). Throws std::runtime_error
  // if the pool has been shut down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // targets, so the task rides in a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  // Runs every already-submitted task to completion, then joins the
  // workers. Idempotent; later submit() calls throw.
  void shutdown();

 private:
  // Locking contract: state_mutex_ orders the submission cursor, the
  // pending-task count, and shutdown; each WorkerQueue's own mutex
  // orders its deque. The only nesting anywhere is state_mutex_ ->
  // queue mutex (enqueue); workers never take state_mutex_ while
  // holding a queue mutex.
  struct WorkerQueue {
    util::Mutex mutex;
    std::deque<std::function<void()>> tasks KAV_GUARDED_BY(mutex);
  };

  void enqueue(std::function<void()> task) KAV_EXCLUDES(state_mutex_);
  void run_worker(std::size_t self) KAV_EXCLUDES(state_mutex_);
  // Pops own front, else steals another queue's back. Claims one unit
  // of pending_ on success.
  bool try_run_one(std::size_t self) KAV_EXCLUDES(state_mutex_);

  // kav_pool_* instruments, resolved once at construction (see
  // thread_pool.cpp). Owned by the registry, not the pool.
  struct Metrics;
  std::unique_ptr<Metrics> metrics_;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  util::Mutex state_mutex_;
  util::CondVar wake_;
  // Round-robin submission cursor.
  std::size_t next_queue_ KAV_GUARDED_BY(state_mutex_) = 0;
  // Queued tasks not yet claimed by any worker.
  std::size_t pending_ KAV_GUARDED_BY(state_mutex_) = 0;
  bool stopping_ KAV_GUARDED_BY(state_mutex_) = false;
};

}  // namespace kav::pipeline

#endif  // KAV_PIPELINE_THREAD_POOL_H
