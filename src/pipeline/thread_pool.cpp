#include "pipeline/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "obs/span.h"

namespace kav::pipeline {

namespace {
std::atomic<std::uint64_t> g_pools_created{0};
}  // namespace

// All counters are cumulative across every pool wired to the same
// registry; kav_pool_threads and kav_pool_queue_depth are likewise
// sums (each pool adds its contribution and removes it on shutdown).
struct ThreadPool::Metrics {
  obs::Counter& tasks_submitted;
  obs::Counter& tasks_completed;
  obs::Counter& steals;
  obs::Gauge& queue_depth;
  obs::Gauge& threads;
  obs::Histogram& task_seconds;

  explicit Metrics(obs::MetricsRegistry& registry)
      : tasks_submitted(registry.counter(
            "kav_pool_tasks_submitted_total",
            "Tasks submitted to the work-stealing pool.")),
        tasks_completed(registry.counter(
            "kav_pool_tasks_completed_total",
            "Tasks the pool ran to completion (including ones whose "
            "exception was captured into a future).")),
        steals(registry.counter(
            "kav_pool_steals_total",
            "Tasks claimed from another worker's queue (work stealing).")),
        queue_depth(registry.gauge(
            "kav_pool_queue_depth",
            "Tasks enqueued but not yet claimed by any worker.")),
        threads(registry.gauge("kav_pool_threads",
                               "Worker threads across live pools.")),
        task_seconds(registry.histogram(
            "kav_pool_task_seconds",
            "Wall time per pool task, submission excluded.")) {}
};

std::uint64_t ThreadPool::created_count() {
  return g_pools_created.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads, obs::MetricsRegistry* metrics) {
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  metrics_ = std::make_unique<Metrics>(
      metrics != nullptr ? *metrics : obs::MetricsRegistry::global());
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  metrics_->threads.add(static_cast<std::int64_t>(threads));
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { run_worker(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    util::MutexLock state_lock(state_mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    const std::size_t target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    {
      // Nested state -> queue locking is the one ordering used anywhere
      // (workers never take state_mutex_ while holding a queue mutex).
      // Pushing before ++pending_ means a woken worker always finds the
      // task; incrementing first would let idle workers spin through
      // empty queues until the push lands.
      util::MutexLock queue_lock(queues_[target]->mutex);
      queues_[target]->tasks.push_back(std::move(task));
    }
    ++pending_;
  }
  metrics_->tasks_submitted.add(1);
  metrics_->queue_depth.add(1);
  wake_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  bool stolen = false;
  {
    WorkerQueue& own = *queues_[self];
    util::MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (!task) {
    // Steal from the back of the other queues (the end their owners
    // will reach last), scanning from the next worker over so victims
    // are spread instead of piling onto worker 0.
    for (std::size_t hop = 1; hop < queues_.size() && !task; ++hop) {
      WorkerQueue& victim = *queues_[(self + hop) % queues_.size()];
      util::MutexLock lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  {
    util::MutexLock lock(state_mutex_);
    --pending_;
  }
  metrics_->queue_depth.sub(1);
  if (stolen) metrics_->steals.add(1);
  {
    obs::ScopedTimer timer(&metrics_->task_seconds, &obs::Tracer::global(),
                           "pool.task", "pipeline");
    task();  // packaged_task: exceptions are captured into the future
  }
  metrics_->tasks_completed.add(1);
  return true;
}

void ThreadPool::run_worker(std::size_t self) {
  for (;;) {
    if (try_run_one(self)) continue;
    util::MutexLock lock(state_mutex_);
    while (!stopping_ && pending_ == 0) wake_.wait(state_mutex_);
    if (stopping_ && pending_ == 0) return;
  }
}

void ThreadPool::shutdown() {
  {
    util::MutexLock lock(state_mutex_);
    if (stopping_) {
      // Idempotent: the first call already joined the workers.
      return;
    }
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  metrics_->threads.sub(static_cast<std::int64_t>(workers_.size()));
}

}  // namespace kav::pipeline
