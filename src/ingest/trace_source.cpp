#include "ingest/trace_source.h"

#include <stdexcept>
#include <utility>

#include "history/serialization.h"
#include "store/indexed_source.h"

namespace kav {

// --- MemoryTraceSource -----------------------------------------------------

bool MemoryTraceSource::next(KeyedOperation& out) {
  if (pos_ >= trace_.ops.size()) return false;
  out = trace_.ops[pos_++];
  return true;
}

std::string MemoryTraceSource::describe() const {
  return "memory(" + std::to_string(trace_.size()) + " ops)";
}

// --- TextFileTraceSource ---------------------------------------------------

TextFileTraceSource::TextFileTraceSource(const std::string& path)
    : path_(path), trace_(read_trace_file(path)) {}

bool TextFileTraceSource::next(KeyedOperation& out) {
  if (pos_ >= trace_.ops.size()) return false;
  // Single-pass source: moving the key string out keeps the legacy
  // read_any_trace_file (= drain over this source) a one-copy path.
  out = std::move(trace_.ops[pos_++]);
  return true;
}

std::string TextFileTraceSource::describe() const { return "text:" + path_; }

// --- BinaryFileTraceSource -------------------------------------------------

namespace {

// Turns an unopenable path into a clear error before BinaryTraceReader
// would report a confusing truncated-header one.
const std::string& require_readable(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw std::runtime_error("cannot open trace file: " + path);
  return path;
}

}  // namespace

BinaryFileTraceSource::BinaryFileTraceSource(const std::string& path)
    : path_(path),
      in_(require_readable(path), std::ios::binary),
      reader_(in_) {}

bool BinaryFileTraceSource::next(KeyedOperation& out) {
  return reader_.next(out);
}

std::string BinaryFileTraceSource::describe() const {
  return "binary:" + path_;
}

// --- PushTraceSource -------------------------------------------------------

void PushTraceSource::push(std::string key, Operation op) {
  push(KeyedOperation{std::move(key), op});
}

void PushTraceSource::push(KeyedOperation kop) {
  util::MutexLock lock(mutex_);
  while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
  if (closed_) {
    throw std::logic_error("PushTraceSource::push after close()");
  }
  items_.push_back(std::move(kop));
  not_empty_.notify_one();
}

void PushTraceSource::close() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool PushTraceSource::next(KeyedOperation& out) {
  util::MutexLock lock(mutex_);
  while (!closed_ && items_.empty()) not_empty_.wait(mutex_);
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

TraceSource::Pull PushTraceSource::try_next_for(
    KeyedOperation& out, std::chrono::milliseconds wait) {
  const auto deadline = std::chrono::steady_clock::now() + wait;
  util::MutexLock lock(mutex_);
  while (!closed_ && items_.empty()) {
    if (not_empty_.wait_until(mutex_, deadline) == std::cv_status::timeout &&
        !closed_ && items_.empty()) {
      return Pull::pending;
    }
  }
  if (items_.empty()) return Pull::closed;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return Pull::item;
}

std::string PushTraceSource::describe() const {
  util::MutexLock lock(mutex_);
  return "push(" + std::to_string(items_.size()) + " queued" +
         (closed_ ? ", closed)" : ")");
}

// --- Factory + drain -------------------------------------------------------

std::unique_ptr<TraceSource> open_trace_source(const std::string& path) {
  if (is_binary_trace_file(path)) {
    // Indexed v2 segments open mmap-backed with the selective
    // interface; v1 (and unsealed v2) files stream chunk by chunk.
    // A file claiming an index it cannot back up (corrupt footer)
    // throws here rather than silently degrading.
    if (auto indexed = IndexedTraceSource::try_open(path)) return indexed;
    return std::make_unique<BinaryFileTraceSource>(path);
  }
  return std::make_unique<TextFileTraceSource>(path);
}

KeyedTrace drain(TraceSource& source) {
  KeyedTrace trace;
  KeyedOperation kop;
  while (source.next(kop)) trace.ops.push_back(std::move(kop));
  return trace;
}

}  // namespace kav
