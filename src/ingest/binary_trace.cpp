#include "ingest/binary_trace.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "history/serialization.h"
#include "ingest/trace_source.h"

namespace kav {

namespace {

// Encoding helpers append little-endian bytes to a string buffer; the
// byte-composition idiom compiles to single moves on LE hardware.
void append_u16(std::string& buffer, std::uint16_t v) {
  buffer.push_back(static_cast<char>(v & 0xff));
  buffer.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& buffer, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void append_u64(std::string& buffer, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void append_i64(std::string& buffer, std::int64_t v) {
  append_u64(buffer, static_cast<std::uint64_t>(v));
}

std::uint16_t load_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::int64_t load_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(load_u64(p));
}

[[noreturn]] void fail_at(std::uint64_t offset, const std::string& message) {
  throw std::runtime_error("binary trace error at byte " +
                           std::to_string(offset) + ": " + message);
}

// Reads exactly `n` bytes or fails; `what` names the structure being
// read so truncation errors say what was expected.
void read_exact(std::istream& in, unsigned char* dst, std::size_t n,
                std::uint64_t offset, const char* what) {
  in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    fail_at(offset + static_cast<std::uint64_t>(in.gcount()),
            std::string("truncated ") + what);
  }
}

}  // namespace

// --- Writer ----------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out,
                                     std::size_t records_per_chunk)
    : out_(&out),
      // Clamp into what the reader accepts: 0 would never flush, and a
      // chunk above the reader's sanity cap would make the library
      // write files its own reader rejects.
      records_per_chunk_(std::clamp<std::size_t>(
          records_per_chunk, 1, kBinaryTraceMaxChunkRecords)) {
  std::string header;
  append_u32(header, kBinaryTraceMagic);
  append_u16(header, kBinaryTraceVersion);
  append_u16(header, 0);  // reserved
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; call flush() explicitly to observe
    // stream errors.
  }
}

void BinaryTraceWriter::add(std::string_view key, const Operation& op) {
  if (op.start >= op.finish) {
    throw std::invalid_argument(
        "binary trace writer: start must be < finish (got [" +
        std::to_string(op.start) + ", " + std::to_string(op.finish) + "))");
  }
  if (key.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("binary trace writer: key longer than 65535 "
                                "bytes");
  }
  auto [it, inserted] = key_ids_.try_emplace(
      std::string(key), static_cast<std::uint32_t>(key_ids_.size()));
  if (inserted) {
    append_u16(pending_keys_, static_cast<std::uint16_t>(key.size()));
    pending_keys_.append(key);
    ++pending_key_count_;
  }
  append_u32(pending_records_, it->second);
  append_i64(pending_records_, op.start);
  append_i64(pending_records_, op.finish);
  append_i64(pending_records_, op.value);
  append_u32(pending_records_, static_cast<std::uint32_t>(op.client));
  pending_records_.push_back(op.is_write() ? '\x01' : '\x00');
  ++pending_record_count_;
  // The key-cap guard matters only for pathological all-new-key
  // streams; each record introduces at most one key.
  if (pending_record_count_ >= records_per_chunk_ ||
      pending_key_count_ >= kBinaryTraceMaxChunkKeys) {
    flush();
  }
}

void BinaryTraceWriter::add(const KeyedTrace& trace) {
  for (const KeyedOperation& kop : trace.ops) add(kop.key, kop.op);
}

void BinaryTraceWriter::flush() {
  if (pending_record_count_ == 0) return;
  std::string chunk_header;
  append_u32(chunk_header, pending_key_count_);
  append_u32(chunk_header, pending_record_count_);
  out_->write(chunk_header.data(),
              static_cast<std::streamsize>(chunk_header.size()));
  out_->write(pending_keys_.data(),
              static_cast<std::streamsize>(pending_keys_.size()));
  out_->write(pending_records_.data(),
              static_cast<std::streamsize>(pending_records_.size()));
  records_written_ += pending_record_count_;
  pending_keys_.clear();
  pending_records_.clear();
  pending_key_count_ = 0;
  pending_record_count_ = 0;
}

// --- Reader ----------------------------------------------------------------

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(&in) {
  unsigned char header[kBinaryTraceHeaderBytes];
  read_exact(*in_, header, sizeof header, offset_, "header");
  const std::uint32_t magic = load_u32(header);
  if (magic != kBinaryTraceMagic) {
    fail_at(0, "bad magic (not a .kavb trace)");
  }
  const std::uint16_t version = load_u16(header + 4);
  if (version != kBinaryTraceVersion) {
    fail_at(4, "unsupported format version " + std::to_string(version));
  }
  offset_ += sizeof header;
}

bool BinaryTraceReader::load_chunk() {
  unsigned char chunk_header[8];
  in_->read(reinterpret_cast<char*>(chunk_header), sizeof chunk_header);
  if (in_->gcount() == 0) return false;  // clean EOF at a chunk boundary
  if (static_cast<std::size_t>(in_->gcount()) != sizeof chunk_header) {
    fail_at(offset_ + static_cast<std::uint64_t>(in_->gcount()),
            "truncated chunk header");
  }
  const std::uint32_t new_keys = load_u32(chunk_header);
  const std::uint32_t records = load_u32(chunk_header + 4);
  if (new_keys > kBinaryTraceMaxChunkKeys) {
    fail_at(offset_, "implausible chunk key count " + std::to_string(new_keys));
  }
  if (records > kBinaryTraceMaxChunkRecords) {
    fail_at(offset_ + 4,
            "implausible chunk record count " + std::to_string(records));
  }
  if (new_keys == 0 && records == 0) {
    fail_at(offset_, "empty chunk");
  }
  offset_ += sizeof chunk_header;

  for (std::uint32_t i = 0; i < new_keys; ++i) {
    unsigned char len_bytes[2];
    read_exact(*in_, len_bytes, sizeof len_bytes, offset_, "key length");
    const std::uint16_t length = load_u16(len_bytes);
    offset_ += sizeof len_bytes;
    std::string key(length, '\0');
    if (length > 0) {
      read_exact(*in_, reinterpret_cast<unsigned char*>(key.data()), length,
                 offset_, "key bytes");
    }
    offset_ += length;
    keys_.push_back(std::move(key));
  }

  const std::size_t payload =
      static_cast<std::size_t>(records) * kBinaryTraceRecordBytes;
  buffer_.resize(payload);
  if (payload > 0) {
    read_exact(*in_, buffer_.data(), payload, offset_, "record payload");
  }
  buffer_pos_ = 0;
  return true;
}

bool BinaryTraceReader::next(std::string_view& key, Operation& op) {
  while (buffer_pos_ >= buffer_.size()) {
    if (!load_chunk()) return false;
  }
  const unsigned char* p = buffer_.data() + buffer_pos_;
  const std::uint32_t key_id = load_u32(p);
  if (key_id >= keys_.size()) {
    fail_at(offset_ + buffer_pos_,
            "key id " + std::to_string(key_id) + " out of range (table has " +
                std::to_string(keys_.size()) + " entries)");
  }
  op.start = load_i64(p + 4);
  op.finish = load_i64(p + 12);
  op.value = load_i64(p + 20);
  op.client = static_cast<ClientId>(load_u32(p + 28));
  const unsigned char type = p[32];
  if (type > 1) {
    fail_at(offset_ + buffer_pos_ + 32,
            "bad record type byte " + std::to_string(type));
  }
  op.type = type == 1 ? OpType::write : OpType::read;
  if (op.start >= op.finish) {
    fail_at(offset_ + buffer_pos_ + 4,
            "start must be < finish (got [" + std::to_string(op.start) + ", " +
                std::to_string(op.finish) + "))");
  }
  key = keys_[key_id];
  buffer_pos_ += kBinaryTraceRecordBytes;
  if (buffer_pos_ >= buffer_.size()) {
    // Chunk fully consumed; account for it before the next load reports
    // offsets.
    offset_ += buffer_.size();
  }
  ++records_read_;
  return true;
}

bool BinaryTraceReader::next(KeyedOperation& out) {
  std::string_view key;
  if (!next(key, out.op)) return false;
  out.key.assign(key);
  return true;
}

// --- Whole-trace wrappers --------------------------------------------------

void write_binary_trace(std::ostream& out, const KeyedTrace& trace,
                        std::size_t records_per_chunk) {
  BinaryTraceWriter writer(out, records_per_chunk);
  writer.add(trace);
  writer.flush();
}

void write_binary_trace_file(const std::string& path,
                             const KeyedTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_binary_trace(out, trace);
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

KeyedTrace read_binary_trace(std::istream& in) {
  BinaryTraceReader reader(in);
  KeyedTrace trace;
  std::string_view key;
  Operation op;
  while (reader.next(key, op)) trace.add(std::string(key), op);
  return trace;
}

KeyedTrace read_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_binary_trace(in);
}

bool is_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  unsigned char magic_bytes[4];
  in.read(reinterpret_cast<char*>(magic_bytes), sizeof magic_bytes);
  return static_cast<std::size_t>(in.gcount()) == sizeof magic_bytes &&
         load_u32(magic_bytes) == kBinaryTraceMagic;
}

KeyedTrace read_any_trace_file(const std::string& path) {
  // Legacy spelling of the TraceSource abstraction (ingest/trace_source.h):
  // one polymorphic input behind the same magic sniff.
  return drain(*open_trace_source(path));
}

// --- Converters ------------------------------------------------------------

void convert_text_to_binary(std::istream& text_in, std::ostream& binary_out) {
  write_binary_trace(binary_out, read_trace(text_in));
}

void convert_binary_to_text(std::istream& binary_in, std::ostream& text_out) {
  BinaryTraceReader reader(binary_in);
  text_out << "# kav trace v1\n";
  std::string_view key;
  Operation op;
  while (reader.next(key, op)) write_trace_op(text_out, key, op);
}

}  // namespace kav
