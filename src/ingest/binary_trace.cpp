#include "ingest/binary_trace.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "history/serialization.h"
#include "ingest/trace_source.h"
#include "store/segment_writer.h"

namespace kav {

namespace {

using wire::append_u16;
using wire::append_u32;
using wire::load_u16;
using wire::load_u32;

[[noreturn]] void fail_at(std::uint64_t offset, const std::string& message) {
  throw std::runtime_error("binary trace error at byte " +
                           std::to_string(offset) + ": " + message);
}

// Reads exactly `n` bytes or fails; `what` names the structure being
// read so truncation errors say what was expected.
void read_exact(std::istream& in, unsigned char* dst, std::size_t n,
                std::uint64_t offset, const char* what) {
  in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    fail_at(offset + static_cast<std::uint64_t>(in.gcount()),
            std::string("truncated ") + what);
  }
}

}  // namespace

void validate_record(const char* who, std::string_view key,
                     const Operation& op) {
  if (op.start >= op.finish) {
    throw std::invalid_argument(
        std::string(who) + ": start must be < finish (got [" +
        std::to_string(op.start) + ", " + std::to_string(op.finish) + "))");
  }
  if (key.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument(std::string(who) +
                                ": key longer than 65535 bytes");
  }
}

// --- Writer ----------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out,
                                     std::size_t records_per_chunk)
    : out_(&out),
      // Clamp into what the reader accepts: 0 would never flush, and a
      // chunk above the reader's sanity cap would make the library
      // write files its own reader rejects.
      records_per_chunk_(std::clamp<std::size_t>(
          records_per_chunk, 1, kBinaryTraceMaxChunkRecords)) {
  std::string header;
  append_u32(header, kBinaryTraceMagic);
  append_u16(header, kBinaryTraceVersion);
  append_u16(header, 0);  // reserved
  out_->write(header.data(), static_cast<std::streamsize>(header.size()));
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; call flush() explicitly to observe
    // stream errors.
  }
}

void BinaryTraceWriter::add(std::string_view key, const Operation& op) {
  validate_record("binary trace writer", key, op);
  auto [it, inserted] = key_ids_.try_emplace(
      std::string(key), static_cast<std::uint32_t>(key_ids_.size()));
  if (inserted) {
    append_u16(pending_keys_, static_cast<std::uint16_t>(key.size()));
    pending_keys_.append(key);
    ++pending_key_count_;
  }
  append_record(pending_records_, it->second, op);
  ++pending_record_count_;
  // The key-cap guard matters only for pathological all-new-key
  // streams; each record introduces at most one key.
  if (pending_record_count_ >= records_per_chunk_ ||
      pending_key_count_ >= kBinaryTraceMaxChunkKeys) {
    flush();
  }
}

void BinaryTraceWriter::add(const KeyedTrace& trace) {
  for (const KeyedOperation& kop : trace.ops) add(kop.key, kop.op);
}

void BinaryTraceWriter::flush() {
  if (pending_record_count_ == 0) return;
  std::string chunk_header;
  append_u32(chunk_header, pending_key_count_);
  append_u32(chunk_header, pending_record_count_);
  out_->write(chunk_header.data(),
              static_cast<std::streamsize>(chunk_header.size()));
  out_->write(pending_keys_.data(),
              static_cast<std::streamsize>(pending_keys_.size()));
  out_->write(pending_records_.data(),
              static_cast<std::streamsize>(pending_records_.size()));
  records_written_ += pending_record_count_;
  pending_keys_.clear();
  pending_records_.clear();
  pending_key_count_ = 0;
  pending_record_count_ = 0;
}

// --- Reader ----------------------------------------------------------------

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(&in) {
  unsigned char header[kBinaryTraceHeaderBytes];
  read_exact(*in_, header, sizeof header, offset_, "header");
  const std::uint32_t magic = load_u32(header);
  if (magic != kBinaryTraceMagic) {
    fail_at(0, "bad magic (not a .kavb trace)");
  }
  version_ = load_u16(header + 4);
  if (version_ != kBinaryTraceVersion && version_ != kBinaryTraceVersion2) {
    fail_at(4, "unsupported format version " + std::to_string(version_));
  }
  offset_ += sizeof header;
}

bool BinaryTraceReader::load_chunk() {
  // The chunk header is read in two halves: for v2 the first u32 may be
  // the footer sentinel, which ends the record stream without the 4
  // bytes that a real chunk header would still owe.
  unsigned char first[4];
  in_->read(reinterpret_cast<char*>(first), sizeof first);
  if (in_->gcount() == 0) return false;  // clean EOF at a chunk boundary
  if (static_cast<std::size_t>(in_->gcount()) != sizeof first) {
    fail_at(offset_ + static_cast<std::uint64_t>(in_->gcount()),
            "truncated chunk header");
  }
  const std::uint32_t new_keys = load_u32(first);
  if (version_ >= kBinaryTraceVersion2 &&
      new_keys == kBinaryTraceFooterSentinel) {
    // Footer reached: the record stream is complete. The footer payload
    // is only meaningful to seeking readers (store/mapped_segment.h);
    // a forward-only stream has no use for it.
    return false;
  }
  unsigned char second[4];
  read_exact(*in_, second, sizeof second, offset_ + sizeof first,
             "chunk header");
  const std::uint32_t records = load_u32(second);
  if (new_keys > kBinaryTraceMaxChunkKeys) {
    fail_at(offset_, "implausible chunk key count " + std::to_string(new_keys));
  }
  if (records > kBinaryTraceMaxChunkRecords) {
    fail_at(offset_ + 4,
            "implausible chunk record count " + std::to_string(records));
  }
  if (new_keys == 0 && records == 0) {
    fail_at(offset_, "empty chunk");
  }
  offset_ += sizeof first + sizeof second;

  for (std::uint32_t i = 0; i < new_keys; ++i) {
    unsigned char len_bytes[2];
    read_exact(*in_, len_bytes, sizeof len_bytes, offset_, "key length");
    const std::uint16_t length = load_u16(len_bytes);
    offset_ += sizeof len_bytes;
    std::string key(length, '\0');
    if (length > 0) {
      read_exact(*in_, reinterpret_cast<unsigned char*>(key.data()), length,
                 offset_, "key bytes");
    }
    offset_ += length;
    keys_.push_back(std::move(key));
  }

  const std::size_t payload =
      static_cast<std::size_t>(records) * kBinaryTraceRecordBytes;
  buffer_.resize(payload);
  if (payload > 0) {
    read_exact(*in_, buffer_.data(), payload, offset_, "record payload");
  }
  buffer_pos_ = 0;
  return true;
}

bool BinaryTraceReader::next(std::string_view& key, Operation& op) {
  while (buffer_pos_ >= buffer_.size()) {
    if (!load_chunk()) return false;
  }
  const unsigned char* p = buffer_.data() + buffer_pos_;
  const std::uint32_t key_id = load_u32(p);
  if (key_id >= keys_.size()) {
    fail_at(offset_ + buffer_pos_,
            "key id " + std::to_string(key_id) + " out of range (table has " +
                std::to_string(keys_.size()) + " entries)");
  }
  op.start = wire::load_i64(p + 4);
  op.finish = wire::load_i64(p + 12);
  op.value = wire::load_i64(p + 20);
  op.client = static_cast<ClientId>(load_u32(p + 28));
  const unsigned char type = p[32];
  if (type > 1) {
    fail_at(offset_ + buffer_pos_ + 32,
            "bad record type byte " + std::to_string(type));
  }
  op.type = type == 1 ? OpType::write : OpType::read;
  if (op.start >= op.finish) {
    fail_at(offset_ + buffer_pos_ + 4,
            "start must be < finish (got [" + std::to_string(op.start) + ", " +
                std::to_string(op.finish) + "))");
  }
  key = keys_[key_id];
  buffer_pos_ += kBinaryTraceRecordBytes;
  if (buffer_pos_ >= buffer_.size()) {
    // Chunk fully consumed; account for it before the next load reports
    // offsets.
    offset_ += buffer_.size();
  }
  ++records_read_;
  return true;
}

bool BinaryTraceReader::next(KeyedOperation& out) {
  std::string_view key;
  if (!next(key, out.op)) return false;
  out.key.assign(key);
  return true;
}

// --- Whole-trace wrappers --------------------------------------------------

void write_binary_trace(std::ostream& out, const KeyedTrace& trace,
                        std::size_t records_per_chunk, std::uint16_t version) {
  if (version == kBinaryTraceVersion2) {
    SegmentWriterOptions options;
    options.records_per_block = records_per_chunk;
    SegmentWriter writer(out, options);
    writer.add(trace);
    writer.finish();
    return;
  }
  if (version != kBinaryTraceVersion) {
    throw std::invalid_argument("write_binary_trace: unsupported version " +
                                std::to_string(version));
  }
  BinaryTraceWriter writer(out, records_per_chunk);
  writer.add(trace);
  writer.flush();
}

void write_binary_trace_file(const std::string& path, const KeyedTrace& trace,
                             std::uint16_t version) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  write_binary_trace(out, trace, 4096, version);
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

KeyedTrace read_binary_trace(std::istream& in) {
  BinaryTraceReader reader(in);
  KeyedTrace trace;
  std::string_view key;
  Operation op;
  while (reader.next(key, op)) trace.add(std::string(key), op);
  return trace;
}

KeyedTrace read_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_binary_trace(in);
}

bool is_binary_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  unsigned char magic_bytes[4];
  in.read(reinterpret_cast<char*>(magic_bytes), sizeof magic_bytes);
  return static_cast<std::size_t>(in.gcount()) == sizeof magic_bytes &&
         load_u32(magic_bytes) == kBinaryTraceMagic;
}

KeyedTrace read_any_trace_file(const std::string& path) {
  // Legacy spelling of the TraceSource abstraction (ingest/trace_source.h):
  // one polymorphic input behind the same magic sniff.
  return drain(*open_trace_source(path));
}

// --- Converters ------------------------------------------------------------

void convert_text_to_binary(std::istream& text_in, std::ostream& binary_out,
                            std::uint16_t version) {
  write_binary_trace(binary_out, read_trace(text_in), 4096, version);
}

void convert_binary_to_text(std::istream& binary_in, std::ostream& text_out) {
  BinaryTraceReader reader(binary_in);
  text_out << "# kav trace v1\n";
  std::string_view key;
  Operation op;
  while (reader.next(key, op)) write_trace_op(text_out, key, op);
}

}  // namespace kav
