// Keyed online monitoring: the piece that lets a storage system stream
// live traffic through the checker. k-atomicity is local (paper
// Section II-B), so the monitor shards incoming operations to one
// StreamingChecker per key; a ReorderBuffer in front of each checker
// turns bounded arrival disorder into the watermark promise the
// checker needs, and a bounded per-key queue decouples producers from
// checking while capping memory (backpressure: ingest() blocks when a
// key's queue is full). Checking runs as tasks on a work-stealing
// pipeline::ThreadPool -- at most one drain task per key at a time, so
// per-key processing is serial (checkers are not thread-safe) while
// distinct keys check in parallel.
//
// The pool can be owned (legacy constructor) or borrowed (ThreadPool&
// constructor): kav::Engine (core/engine.h, the library's front door)
// runs batch verification and monitoring on ONE shared pool. A monitor
// on a borrowed pool never shuts the pool down; its destructor only
// waits for its own in-flight drain tasks to quiesce.
//
// Soundness inherits from the two layers (see docs/ALGORITHMS.md):
// the reorder slack S gives each checker a valid watermark, and the
// staleness horizon H lets it evict settled chunks, so each per-key
// window is O(ops in flight within S + H ticks) -- not O(trace).
//
// Ingest may be called from many producer threads concurrently;
// per-key violation order is arrival order. finish() must be called
// from one thread after all producers stop.
#ifndef KAV_INGEST_KEYED_MONITOR_H
#define KAV_INGEST_KEYED_MONITOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/report.h"
#include "core/streaming.h"
#include "history/keyed_trace.h"
#include "ingest/reorder_buffer.h"
#include "obs/metrics.h"
#include "pipeline/bounded_queue.h"
#include "pipeline/thread_pool.h"
#include "util/thread_safety.h"

namespace kav {

struct MonitorOptions {
  // Per-key checker options (staleness horizon).
  StreamingOptions streaming;
  // Arrival disorder bound handed to each key's ReorderBuffer: every
  // arrival starts at most this many ticks before the key's maximum
  // start seen so far. Safe choice: max operation duration plus
  // delivery jitter. Arrivals beyond the slack are late_arrival
  // violations, not crashes.
  TimePoint reorder_slack = 1'000;
  // Worker threads; 0 picks std::thread::hardware_concurrency().
  // Ignored when the monitor borrows a caller-provided pool.
  std::size_t threads = 0;
  // Per-key queue capacity; a producer that outruns checking blocks
  // here (backpressure) instead of growing an unbounded backlog.
  std::size_t queue_capacity = 1'024;
  // Optional live sink: invoked as violations are detected (drain time,
  // not finish time), from pool workers, serialized per key and holding
  // that key's processing lock -- keep it cheap and never call back
  // into the monitor. Per-key order is detection order. A sink that
  // throws disables live emission for the rest of the run (recorded as
  // a hard_anomaly finding); the final report is never affected.
  std::function<void(const std::string& key,
                     const StreamingViolation& violation)>
      on_violation;
  // Registry the monitor instruments into (kav_monitor_* series: live
  // ingest/violation counters plus watermark-lag, reorder-occupancy,
  // and backlog gauges -- ops/sec is rate(kav_monitor_ops_ingested_total)
  // on the scraper side). nullptr means the process registry,
  // obs::MetricsRegistry::global(); kav::Engine injects its own. Must
  // outlive the monitor. MonitorStats stays the per-run summary view
  // and is computed from the same per-key state, never from these.
  obs::MetricsRegistry* metrics = nullptr;
};

// MonitorStats lives in core/report.h (the unified Report embeds it).

struct KeyMonitorResult {
  Verdict verdict;  // YES iff the key's stream produced no violations
  StreamingStats stats;
  std::vector<StreamingViolation> violations;  // late_arrivals appended
};

struct MonitorReport {
  std::map<std::string, KeyMonitorResult> per_key;
  MonitorStats totals;

  bool all_clean() const;
  // Rendered by the shared format_key_counts() formatter (core/report.h)
  // so monitor and batch tallies are grep-compatible.
  std::string summary() const;
};

class KeyedStreamingMonitor {
 public:
  // Owning: spawns a pool sized by options.threads.
  explicit KeyedStreamingMonitor(const MonitorOptions& options = {});
  // Non-owning: checking tasks run on the caller's pool, which must
  // outlive the monitor.
  KeyedStreamingMonitor(pipeline::ThreadPool& pool,
                        const MonitorOptions& options = {});
  ~KeyedStreamingMonitor();

  KeyedStreamingMonitor(const KeyedStreamingMonitor&) = delete;
  KeyedStreamingMonitor& operator=(const KeyedStreamingMonitor&) = delete;

  // Thread-safe; blocks when the key's queue is full (backpressure).
  // Throws std::logic_error after finish().
  void ingest(const std::string& key, const Operation& op)
      KAV_EXCLUDES(keys_mutex_, drains_mutex_);
  void ingest(const KeyedOperation& kop)
      KAV_EXCLUDES(keys_mutex_, drains_mutex_);

  // Drains every queue, flushes every reorder buffer, finishes every
  // checker, and returns the per-key results. Call once, from one
  // thread, after all producers have stopped.
  MonitorReport finish() KAV_EXCLUDES(keys_mutex_);

  // Aggregated snapshot; safe to call from any thread mid-stream.
  MonitorStats stats() const KAV_EXCLUDES(keys_mutex_);

  std::size_t thread_count() const { return pool_->thread_count(); }
  std::size_t key_count() const KAV_EXCLUDES(keys_mutex_);

 private:
  // Per-key state. Defined here (not in the .cpp) so the KAV_REQUIRES
  // contracts on the helpers below can name state.process_mutex.
  struct KeyState {
    KeyState(std::string key_name, const MonitorOptions& options)
        : key(std::move(key_name)),
          queue(options.queue_capacity),
          reorder(options.reorder_slack),
          checker(options.streaming) {}

    const std::string key;
    pipeline::BoundedQueue<Operation> queue;
    // True while a drain task is scheduled or running; together with
    // process_mutex this guarantees at most one drainer per key, so the
    // (non-thread-safe) reorder buffer and checker see serial access.
    std::atomic<bool> scheduled{false};
    std::atomic<std::int64_t> ingested{0};
    // This key's share of the kav_monitor_queue_backlog gauge (ops
    // pushed minus ops popped), so the destructor can retire exactly
    // what was never processed.
    std::atomic<std::int64_t> backlog{0};
    std::atomic<TimePoint> newest_start{kTimeMin};
    std::atomic<TimePoint> oldest_start{kTimeMax};

    util::Mutex process_mutex;
    ReorderBuffer reorder KAV_GUARDED_BY(process_mutex);
    StreamingChecker checker KAV_GUARDED_BY(process_mutex);
    // Violations detected by the monitor layer rather than the checker:
    // late arrivals, and drain-task failures (which must be surfaced as
    // findings -- a swallowed exception would wedge the key forever).
    std::vector<StreamingViolation> extra_violations
        KAV_GUARDED_BY(process_mutex);
    std::size_t peak_window KAV_GUARDED_BY(process_mutex) = 0;
    // High-water marks of violations already handed to the live
    // on_violation sink, so each finding is emitted exactly once.
    std::size_t reported_checker KAV_GUARDED_BY(process_mutex) = 0;
    std::size_t reported_extra KAV_GUARDED_BY(process_mutex) = 0;
    // High-water marks of what update_key_metrics() already folded into
    // the registry, so counter deltas are exact (checker totals are
    // monotone for the life of the key).
    std::size_t counted_checker KAV_GUARDED_BY(process_mutex) = 0;
    std::size_t counted_extra KAV_GUARDED_BY(process_mutex) = 0;
    std::uint64_t counted_chunks KAV_GUARDED_BY(process_mutex) = 0;
    std::int64_t last_reorder_pending KAV_GUARDED_BY(process_mutex) = 0;
  };

  KeyState& state_for(const std::string& key) KAV_EXCLUDES(keys_mutex_);
  void drain(KeyState& state) KAV_EXCLUDES(drains_mutex_);
  // Feeds one arrival through the reorder buffer into the checker.
  void process_one(KeyState& state, const Operation& op)
      KAV_REQUIRES(state.process_mutex);
  // Reports not-yet-reported violations to options_.on_violation.
  void emit_new_violations(KeyState& state) KAV_REQUIRES(state.process_mutex);
  // Folds the key's progress since the last call into the registry
  // (violation/chunk deltas via per-key high-water marks, gauge
  // refreshes).
  void update_key_metrics(KeyState& state) KAV_REQUIRES(state.process_mutex);
  // Blocks until no drain task of this monitor is queued or running.
  void quiesce() KAV_EXCLUDES(drains_mutex_);
  MonitorStats snapshot_totals() const KAV_EXCLUDES(keys_mutex_);

  MonitorOptions options_;
  // kav_monitor_* instruments (keyed_monitor.cpp); owned by the
  // registry in options_.metrics, not by the monitor.
  struct Metrics;
  std::unique_ptr<Metrics> metrics_;
  std::unique_ptr<pipeline::ThreadPool> owned_pool_;
  pipeline::ThreadPool* pool_;  // owned_pool_.get() or the borrowed pool

  // Shared for the per-ingest known-key lookup (the hot path stays
  // contention-free across producers), exclusive only when a key is
  // first seen.
  mutable util::SharedMutex keys_mutex_;
  std::unordered_map<std::string, std::unique_ptr<KeyState>> keys_
      KAV_GUARDED_BY(keys_mutex_);
  std::chrono::steady_clock::time_point start_time_
      KAV_GUARDED_BY(keys_mutex_);
  bool started_ KAV_GUARDED_BY(keys_mutex_) = false;
  std::atomic<bool> finished_{false};
  // Set when the user's on_violation sink throws: live emission is
  // disabled for the rest of the run (recorded as a hard_anomaly
  // finding) rather than letting the exception destroy the report.
  std::atomic<bool> sink_failed_{false};

  // In-flight drain-task accounting, so a monitor on a borrowed pool
  // can quiesce without shutting the shared pool down.
  util::Mutex drains_mutex_;
  util::CondVar drains_cv_;
  std::size_t active_drains_ KAV_GUARDED_BY(drains_mutex_) = 0;
};

// The facade overload declared in core/verify.h: replays a complete
// trace (in its arrival order) through a KeyedStreamingMonitor.
// Legacy wrapper -- new code should use kav::Engine::monitor.
MonitorReport monitor_trace(const KeyedTrace& trace,
                            const MonitorOptions& options);

}  // namespace kav

#endif  // KAV_INGEST_KEYED_MONITOR_H
