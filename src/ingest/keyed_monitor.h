// Keyed online monitoring: the piece that lets a storage system stream
// live traffic through the checker. k-atomicity is local (paper
// Section II-B), so the monitor shards incoming operations to one
// StreamingChecker per key; a ReorderBuffer in front of each checker
// turns bounded arrival disorder into the watermark promise the
// checker needs, and a bounded per-key queue decouples producers from
// checking while capping memory (backpressure: ingest() blocks when a
// key's queue is full). Checking runs as tasks on the existing
// work-stealing pipeline::ThreadPool -- at most one drain task per key
// at a time, so per-key processing is serial (checkers are not
// thread-safe) while distinct keys check in parallel.
//
// Soundness inherits from the two layers (see docs/ALGORITHMS.md):
// the reorder slack S gives each checker a valid watermark, and the
// staleness horizon H lets it evict settled chunks, so each per-key
// window is O(ops in flight within S + H ticks) -- not O(trace).
//
// Ingest may be called from many producer threads concurrently;
// per-key violation order is arrival order. finish() must be called
// from one thread after all producers stop.
#ifndef KAV_INGEST_KEYED_MONITOR_H
#define KAV_INGEST_KEYED_MONITOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/streaming.h"
#include "history/keyed_trace.h"
#include "ingest/reorder_buffer.h"
#include "pipeline/bounded_queue.h"
#include "pipeline/thread_pool.h"

namespace kav {

struct MonitorOptions {
  // Per-key checker options (staleness horizon).
  StreamingOptions streaming;
  // Arrival disorder bound handed to each key's ReorderBuffer: every
  // arrival starts at most this many ticks before the key's maximum
  // start seen so far. Safe choice: max operation duration plus
  // delivery jitter. Arrivals beyond the slack are late_arrival
  // violations, not crashes.
  TimePoint reorder_slack = 1'000;
  // Worker threads; 0 picks std::thread::hardware_concurrency().
  std::size_t threads = 0;
  // Per-key queue capacity; a producer that outruns checking blocks
  // here (backpressure) instead of growing an unbounded backlog.
  std::size_t queue_capacity = 1'024;
};

// Aggregated snapshot across all keys; available mid-stream via
// stats() and as MonitorReport::totals after finish().
struct MonitorStats {
  std::uint64_t operations_ingested = 0;  // ingest() calls accepted
  std::uint64_t late_arrivals = 0;        // beyond the reorder slack
  std::uint64_t violations = 0;           // all kinds, all keys
  std::uint64_t chunks_verified = 0;
  std::size_t keys = 0;
  // Max over keys of (checker window + reorder pending): the memory
  // high-water mark, bounded by O(slack + horizon) ops in flight.
  std::size_t peak_window = 0;
  // Max over keys of (newest start enqueued - checker watermark): how
  // far verification trails ingest.
  TimePoint max_watermark_lag = 0;
  double elapsed_seconds = 0.0;  // since the first ingest()
  double ops_per_second = 0.0;
  // Keys with at least one violation and their counts.
  std::map<std::string, std::uint64_t> violations_per_key;
};

struct KeyMonitorResult {
  Verdict verdict;  // YES iff the key's stream produced no violations
  StreamingStats stats;
  std::vector<StreamingViolation> violations;  // late_arrivals appended
};

struct MonitorReport {
  std::map<std::string, KeyMonitorResult> per_key;
  MonitorStats totals;

  bool all_clean() const;
  std::string summary() const;  // e.g. "7/8 keys clean, 1 with violations"
};

class KeyedStreamingMonitor {
 public:
  explicit KeyedStreamingMonitor(const MonitorOptions& options = {});
  ~KeyedStreamingMonitor();

  KeyedStreamingMonitor(const KeyedStreamingMonitor&) = delete;
  KeyedStreamingMonitor& operator=(const KeyedStreamingMonitor&) = delete;

  // Thread-safe; blocks when the key's queue is full (backpressure).
  // Throws std::logic_error after finish().
  void ingest(const std::string& key, const Operation& op);
  void ingest(const KeyedOperation& kop);

  // Drains every queue, flushes every reorder buffer, finishes every
  // checker, and returns the per-key results. Call once, from one
  // thread, after all producers have stopped.
  MonitorReport finish();

  // Aggregated snapshot; safe to call from any thread mid-stream.
  MonitorStats stats() const;

  std::size_t thread_count() const { return pool_->thread_count(); }
  std::size_t key_count() const;

 private:
  struct KeyState;

  KeyState& state_for(const std::string& key);
  void drain(KeyState& state);
  // Feeds one arrival through the reorder buffer into the checker.
  // Caller holds state.process_mutex.
  void process_one(KeyState& state, const Operation& op);
  MonitorStats snapshot_totals() const;

  MonitorOptions options_;
  std::unique_ptr<pipeline::ThreadPool> pool_;

  // Guards keys_, started_, start_time_. Shared for the per-ingest
  // known-key lookup (the hot path stays contention-free across
  // producers), exclusive only when a key is first seen.
  mutable std::shared_mutex keys_mutex_;
  std::unordered_map<std::string, std::unique_ptr<KeyState>> keys_;
  std::chrono::steady_clock::time_point start_time_;
  bool started_ = false;
  std::atomic<bool> finished_{false};
};

// The facade overload declared in core/verify.h: replays a complete
// trace (in its arrival order) through a KeyedStreamingMonitor.
MonitorReport monitor_trace(const KeyedTrace& trace,
                            const MonitorOptions& options);

}  // namespace kav

#endif  // KAV_INGEST_KEYED_MONITOR_H
