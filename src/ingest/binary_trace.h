// The compact binary trace format (.kavb) -- the ingest-side answer to
// the text format's parse cost. A trace from a real storage system is
// millions of operations; reading them through a line parser costs more
// than deciding 2-atomicity does, so the binary format stores
// fixed-width little-endian records behind a versioned header, interns
// repeated keys into an id table, and groups records into chunks so
// both writer and reader stream in O(chunk) memory.
//
// Byte-for-byte layout (all integers little-endian): docs/FORMATS.md.
// In short:
//
//   file   := header chunk* [footer]                   -- footer: v2 only
//   header := magic 'KAVB' (u32) | version (u16) | reserved (u16)
//   chunk  := new_keys (u32) | records (u32)
//             new_keys * { length (u16) | bytes }      -- key table delta
//             records  * { key_id (u32) | start (i64) | finish (i64) |
//                          value (i64) | client (i32) | type (u8) }
//
// Key ids are file-global and assigned in order of first appearance; a
// chunk carries only the table entries it introduces, so appending
// chunks never rewrites earlier bytes. A reader detects truncation,
// bad magic/version, out-of-range key ids, bad type bytes, and
// non-increasing intervals, and reports the absolute byte offset.
//
// Format v2 (the trace-store segment format, src/store/) keeps the
// header and chunk encoding bit-for-bit and appends a footer: a
// sentinel u32 = 0xFFFFFFFF where the next chunk's new_keys would be
// (no legal chunk can declare that many keys, so a sequential reader
// stops cleanly), the full key table, a per-key block index (one entry
// per single-key chunk: absolute offset, record count, time bounds),
// and a fixed 12-byte trailer { payload_bytes u64 | magic 'KAVI' u32 }
// so an indexed reader (store/mapped_segment.h) can seek from the end
// and decode only the blocks of requested keys. BinaryTraceReader
// streams both versions; v2 files with a damaged or missing footer
// remain sequentially readable.
//
// Both formats are lossless for any trace the text format accepts
// (property-tested by tests/ingest_fuzz_test.cpp); the binary format
// additionally allows keys containing whitespace, which the text
// format cannot express.
#ifndef KAV_INGEST_BINARY_TRACE_H
#define KAV_INGEST_BINARY_TRACE_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "history/keyed_trace.h"
#include "ingest/wire.h"

namespace kav {

inline constexpr std::uint32_t kBinaryTraceMagic = 0x4256414Bu;  // "KAVB"
inline constexpr std::uint16_t kBinaryTraceVersion = 1;
// Format v2 = v1 chunk stream + key-table/block-index footer; written
// by store/segment_writer.h, random-accessed by store/mapped_segment.h.
inline constexpr std::uint16_t kBinaryTraceVersion2 = 2;
inline constexpr std::size_t kBinaryTraceHeaderBytes = 8;
inline constexpr std::size_t kBinaryTraceRecordBytes = 33;
// Reader sanity caps: a corrupt chunk header cannot make the reader
// allocate unbounded memory.
inline constexpr std::uint32_t kBinaryTraceMaxChunkRecords = 1u << 24;
inline constexpr std::uint32_t kBinaryTraceMaxChunkKeys = 1u << 20;

// v2 footer framing. The sentinel occupies the new_keys position of a
// would-be next chunk and exceeds kBinaryTraceMaxChunkKeys, so v1-style
// sequential decoding of the record stream terminates exactly where the
// footer begins. The trailer is the fixed last 12 bytes of the file:
// payload_bytes (u64, counting key table + index, i.e. everything
// between sentinel and trailer) then the footer magic.
inline constexpr std::uint32_t kBinaryTraceFooterSentinel = 0xFFFFFFFFu;
inline constexpr std::uint32_t kBinaryTraceFooterMagic = 0x4956414Bu;  // "KAVI"
// v2.1 footer magic ("KAVJ"): same header and chunk stream as v2, but
// the footer payload carries two extra integrity pages after the block
// index -- a per-block CRC32C page and a per-segment bloom page -- and
// ends with a CRC32C of the whole payload. The header version stays 2
// (sequential readers are unaffected); indexed readers dispatch on the
// trailer magic, so v2-only readers reject v2.1 footers cleanly instead
// of misparsing the extra pages. Byte spec: docs/FORMATS.md.
inline constexpr std::uint32_t kBinaryTraceFooterMagic21 = 0x4A56414Bu;
inline constexpr std::size_t kBinaryTraceTrailerBytes = 12;
// One index entry: key_id u32 | offset u64 | records u32 | min_start
// i64 | max_finish i64.
inline constexpr std::size_t kBinaryTraceBlockEntryBytes = 32;

// Record codec shared by the chunked stream writer below and the
// store's SegmentWriter / MappedSegment. Encoding validation
// (start < finish, key length) is validate_record(); decoding leaves
// key-id range and interval checks to the caller, whose error messages
// carry reader-specific byte offsets.
inline void append_record(std::string& buffer, std::uint32_t key_id,
                          const Operation& op) {
  wire::append_u32(buffer, key_id);
  wire::append_i64(buffer, op.start);
  wire::append_i64(buffer, op.finish);
  wire::append_i64(buffer, op.value);
  wire::append_u32(buffer, static_cast<std::uint32_t>(op.client));
  buffer.push_back(op.is_write() ? '\x01' : '\x00');
}

// Throws std::invalid_argument on start >= finish or a key longer than
// 65535 bytes (the u16 length field); `who` names the writer.
void validate_record(const char* who, std::string_view key,
                     const Operation& op);

// Streaming writer: add() operations in any key order; records are
// buffered and emitted as one chunk every `records_per_chunk` adds (or
// on flush()). Keys are interned on first use; the entry rides in the
// chunk that introduces it. The destructor flushes best-effort, but
// call flush() explicitly to observe stream errors.
class BinaryTraceWriter {
 public:
  // Writes the file header immediately. The stream must be binary.
  explicit BinaryTraceWriter(std::ostream& out,
                             std::size_t records_per_chunk = 4096);
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  // Throws std::invalid_argument on start >= finish or a key longer
  // than 65535 bytes (the u16 length field).
  void add(std::string_view key, const Operation& op);
  void add(const KeyedTrace& trace);

  // Emits buffered records as a chunk (no-op when empty).
  void flush();

  std::uint64_t records_written() const { return records_written_; }
  std::size_t key_count() const { return key_ids_.size(); }

 private:
  std::ostream* out_;
  std::size_t records_per_chunk_;
  std::unordered_map<std::string, std::uint32_t> key_ids_;
  std::string pending_keys_;     // encoded table delta for the open chunk
  std::uint32_t pending_key_count_ = 0;
  std::string pending_records_;  // encoded records for the open chunk
  std::uint32_t pending_record_count_ = 0;
  std::uint64_t records_written_ = 0;
};

// Streaming reader: pull one record at a time; memory stays O(chunk +
// key table). Reads format v1 and v2 (for v2 the record stream ends at
// the footer sentinel; the footer itself is never materialized -- use
// MappedSegment for indexed access). Throws std::runtime_error with
// the absolute byte offset on any malformed input.
class BinaryTraceReader {
 public:
  // Reads and validates the header immediately.
  explicit BinaryTraceReader(std::istream& in);

  // Returns false at a clean end of stream. The string_view overload
  // avoids a per-record key copy; the view stays valid for the
  // reader's lifetime (the interned table never discards entries).
  bool next(std::string_view& key, Operation& op);
  bool next(KeyedOperation& out);

  std::size_t key_count() const { return keys_.size(); }
  const std::string& key(std::uint32_t id) const { return keys_[id]; }
  std::uint64_t records_read() const { return records_read_; }
  std::uint16_t version() const { return version_; }

 private:
  bool load_chunk();  // false at clean EOF (v2: at the footer sentinel)

  std::istream* in_;
  std::uint16_t version_ = kBinaryTraceVersion;
  // deque: growth never moves existing strings, so string_views handed
  // to the caller stay valid across chunk loads.
  std::deque<std::string> keys_;
  std::vector<unsigned char> buffer_;  // current chunk's record payload
  std::size_t buffer_pos_ = 0;
  std::uint64_t records_read_ = 0;
  std::uint64_t offset_ = 0;  // absolute byte offset, for error messages
};

// Whole-trace convenience wrappers, mirroring history/serialization.h.
// `version` selects the on-disk format: kBinaryTraceVersion (chunked
// stream, records_per_chunk-sized chunks in arrival order) or
// kBinaryTraceVersion2 (indexed segment via store/segment_writer.h;
// records grouped into per-key blocks of at most records_per_chunk,
// key-table + index footer appended). Readers accept both.
void write_binary_trace(std::ostream& out, const KeyedTrace& trace,
                        std::size_t records_per_chunk = 4096,
                        std::uint16_t version = kBinaryTraceVersion);
void write_binary_trace_file(const std::string& path, const KeyedTrace& trace,
                             std::uint16_t version = kBinaryTraceVersion);
KeyedTrace read_binary_trace(std::istream& in);
KeyedTrace read_binary_trace_file(const std::string& path);

// Format sniffing: true iff the file starts with the .kavb magic.
bool is_binary_trace_file(const std::string& path);
// Reads either format, deciding by magic (not by file extension).
// Legacy wrapper: equals drain(*open_trace_source(path)) over the
// polymorphic TraceSource abstraction in ingest/trace_source.h.
KeyedTrace read_any_trace_file(const std::string& path);

// Lossless format converters. text -> binary loads the trace (the text
// reader is whole-stream) and can emit either version; binary -> text
// streams record by record and reads either version.
void convert_text_to_binary(std::istream& text_in, std::ostream& binary_out,
                            std::uint16_t version = kBinaryTraceVersion);
void convert_binary_to_text(std::istream& binary_in, std::ostream& text_out);

}  // namespace kav

#endif  // KAV_INGEST_BINARY_TRACE_H
