// The compact binary trace format (.kavb) -- the ingest-side answer to
// the text format's parse cost. A trace from a real storage system is
// millions of operations; reading them through a line parser costs more
// than deciding 2-atomicity does, so the binary format stores
// fixed-width little-endian records behind a versioned header, interns
// repeated keys into an id table, and groups records into chunks so
// both writer and reader stream in O(chunk) memory.
//
// Byte-for-byte layout (all integers little-endian): docs/FORMATS.md.
// In short:
//
//   file   := header chunk*
//   header := magic 'KAVB' (u32) | version (u16) | reserved (u16)
//   chunk  := new_keys (u32) | records (u32)
//             new_keys * { length (u16) | bytes }      -- key table delta
//             records  * { key_id (u32) | start (i64) | finish (i64) |
//                          value (i64) | client (i32) | type (u8) }
//
// Key ids are file-global and assigned in order of first appearance; a
// chunk carries only the table entries it introduces, so appending
// chunks never rewrites earlier bytes. A reader detects truncation,
// bad magic/version, out-of-range key ids, bad type bytes, and
// non-increasing intervals, and reports the absolute byte offset.
//
// Both formats are lossless for any trace the text format accepts
// (property-tested by tests/ingest_fuzz_test.cpp); the binary format
// additionally allows keys containing whitespace, which the text
// format cannot express.
#ifndef KAV_INGEST_BINARY_TRACE_H
#define KAV_INGEST_BINARY_TRACE_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "history/keyed_trace.h"

namespace kav {

inline constexpr std::uint32_t kBinaryTraceMagic = 0x4256414Bu;  // "KAVB"
inline constexpr std::uint16_t kBinaryTraceVersion = 1;
inline constexpr std::size_t kBinaryTraceHeaderBytes = 8;
inline constexpr std::size_t kBinaryTraceRecordBytes = 33;
// Reader sanity caps: a corrupt chunk header cannot make the reader
// allocate unbounded memory.
inline constexpr std::uint32_t kBinaryTraceMaxChunkRecords = 1u << 24;
inline constexpr std::uint32_t kBinaryTraceMaxChunkKeys = 1u << 20;

// Streaming writer: add() operations in any key order; records are
// buffered and emitted as one chunk every `records_per_chunk` adds (or
// on flush()). Keys are interned on first use; the entry rides in the
// chunk that introduces it. The destructor flushes best-effort, but
// call flush() explicitly to observe stream errors.
class BinaryTraceWriter {
 public:
  // Writes the file header immediately. The stream must be binary.
  explicit BinaryTraceWriter(std::ostream& out,
                             std::size_t records_per_chunk = 4096);
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  // Throws std::invalid_argument on start >= finish or a key longer
  // than 65535 bytes (the u16 length field).
  void add(std::string_view key, const Operation& op);
  void add(const KeyedTrace& trace);

  // Emits buffered records as a chunk (no-op when empty).
  void flush();

  std::uint64_t records_written() const { return records_written_; }
  std::size_t key_count() const { return key_ids_.size(); }

 private:
  std::ostream* out_;
  std::size_t records_per_chunk_;
  std::unordered_map<std::string, std::uint32_t> key_ids_;
  std::string pending_keys_;     // encoded table delta for the open chunk
  std::uint32_t pending_key_count_ = 0;
  std::string pending_records_;  // encoded records for the open chunk
  std::uint32_t pending_record_count_ = 0;
  std::uint64_t records_written_ = 0;
};

// Streaming reader: pull one record at a time; memory stays O(chunk +
// key table). Throws std::runtime_error with the absolute byte offset
// on any malformed input.
class BinaryTraceReader {
 public:
  // Reads and validates the header immediately.
  explicit BinaryTraceReader(std::istream& in);

  // Returns false at a clean end of stream. The string_view overload
  // avoids a per-record key copy; the view stays valid for the
  // reader's lifetime (the interned table never discards entries).
  bool next(std::string_view& key, Operation& op);
  bool next(KeyedOperation& out);

  std::size_t key_count() const { return keys_.size(); }
  const std::string& key(std::uint32_t id) const { return keys_[id]; }
  std::uint64_t records_read() const { return records_read_; }

 private:
  bool load_chunk();  // false at clean EOF

  std::istream* in_;
  // deque: growth never moves existing strings, so string_views handed
  // to the caller stay valid across chunk loads.
  std::deque<std::string> keys_;
  std::vector<unsigned char> buffer_;  // current chunk's record payload
  std::size_t buffer_pos_ = 0;
  std::uint64_t records_read_ = 0;
  std::uint64_t offset_ = 0;  // absolute byte offset, for error messages
};

// Whole-trace convenience wrappers, mirroring history/serialization.h.
void write_binary_trace(std::ostream& out, const KeyedTrace& trace,
                        std::size_t records_per_chunk = 4096);
void write_binary_trace_file(const std::string& path, const KeyedTrace& trace);
KeyedTrace read_binary_trace(std::istream& in);
KeyedTrace read_binary_trace_file(const std::string& path);

// Format sniffing: true iff the file starts with the .kavb magic.
bool is_binary_trace_file(const std::string& path);
// Reads either format, deciding by magic (not by file extension).
// Legacy wrapper: equals drain(*open_trace_source(path)) over the
// polymorphic TraceSource abstraction in ingest/trace_source.h.
KeyedTrace read_any_trace_file(const std::string& path);

// Lossless format converters. text -> binary loads the trace (the text
// reader is whole-stream); binary -> text streams record by record.
void convert_text_to_binary(std::istream& text_in, std::ostream& binary_out);
void convert_binary_to_text(std::istream& binary_in, std::ostream& text_out);

}  // namespace kav

#endif  // KAV_INGEST_BINARY_TRACE_H
