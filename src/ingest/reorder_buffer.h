// Out-of-order admission for the streaming checker. A real store
// reports operations when they *complete*, so arrivals are not sorted
// by start time -- but StreamingChecker's soundness rests on a
// watermark promise ("no future add starts at or before t"). The
// ReorderBuffer converts a bounded-disorder arrival stream into that
// promise automatically, replacing the caller-managed
// advance_watermark discipline.
//
// Contract: the producer promises *reorder slack* S -- when an
// operation arrives, every operation yet to arrive starts no more than
// S ticks before the maximum start seen so far (true whenever an
// operation's completion lags its start by at most S, e.g. S = max
// operation duration + delivery jitter). Under that promise:
//
//   * once max_start_seen reaches M, every future arrival starts
//     >= M - S, i.e. strictly after watermark = M - S - 1;
//   * every buffered operation with start <= watermark can be released
//     in start order, because nothing that could precede it is still
//     in flight.
//
// An arrival that violates the promise (start <= watermark) cannot be
// ordered any more; push() rejects it and counts it, and the keyed
// monitor reports it as a late_arrival violation -- for a monitor,
// "the slack was exceeded" is itself a finding.
//
// Memory is O(pending) = O(ops in flight within one slack window), the
// first factor of the monitor's O(slack + horizon) window bound.
#ifndef KAV_INGEST_REORDER_BUFFER_H
#define KAV_INGEST_REORDER_BUFFER_H

#include <cstdint>
#include <queue>
#include <vector>

#include "history/operation.h"
#include "util/time_types.h"

namespace kav {

class ReorderBuffer {
 public:
  // slack < 0 is normalized to 0 (arrivals already in start order).
  explicit ReorderBuffer(TimePoint slack);

  // Accepts one completed operation. Returns false -- and counts a
  // late rejection -- if op.start <= watermark(), i.e. the arrival
  // broke the slack promise and can no longer be emitted in order.
  bool push(const Operation& op);

  // Emits the next ready operation (start <= watermark()) in start
  // order; returns false when nothing is ready yet.
  bool pop(Operation& out);

  // End of stream: makes every buffered operation ready and pins the
  // watermark at +infinity (later pushes are all late).
  void flush();

  // Every future accepted push starts strictly after this; monotone.
  TimePoint watermark() const { return watermark_; }
  TimePoint max_start_seen() const { return max_start_seen_; }
  std::size_t pending() const { return pending_.size(); }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t late_rejected() const { return late_rejected_; }

 private:
  struct LaterStart {
    bool operator()(const Operation& a, const Operation& b) const {
      return a.start > b.start;  // min-heap by start
    }
  };

  TimePoint slack_;
  TimePoint watermark_ = kTimeMin;
  TimePoint max_start_seen_ = kTimeMin;
  std::priority_queue<Operation, std::vector<Operation>, LaterStart> pending_;
  std::uint64_t accepted_ = 0;
  std::uint64_t late_rejected_ = 0;
};

}  // namespace kav

#endif  // KAV_INGEST_REORDER_BUFFER_H
