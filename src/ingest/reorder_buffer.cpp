#include "ingest/reorder_buffer.h"

#include <algorithm>

namespace kav {

ReorderBuffer::ReorderBuffer(TimePoint slack)
    : slack_(std::max<TimePoint>(slack, 0)) {}

bool ReorderBuffer::push(const Operation& op) {
  if (op.start <= watermark_) {
    ++late_rejected_;
    return false;
  }
  ++accepted_;
  max_start_seen_ = std::max(max_start_seen_, op.start);
  pending_.push(op);
  // Future arrivals start >= max_start_seen - slack, i.e. strictly
  // after max_start_seen - slack - 1. Guarded against underflow near
  // kTimeMin and against degenerate slacks that would wrap.
  if (slack_ < kTimeMax / 2 && max_start_seen_ > kTimeMin + slack_ + 1) {
    watermark_ = std::max(watermark_, max_start_seen_ - slack_ - 1);
  }
  return true;
}

bool ReorderBuffer::pop(Operation& out) {
  if (pending_.empty() || pending_.top().start > watermark_) return false;
  out = pending_.top();
  pending_.pop();
  return true;
}

void ReorderBuffer::flush() { watermark_ = kTimeMax; }

}  // namespace kav
