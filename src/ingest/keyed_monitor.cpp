#include "ingest/keyed_monitor.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

namespace kav {

// Live series behind MonitorStats. Counters advance by per-key deltas
// computed against high-water marks stored in KeyState (always under
// that key's process_mutex), so registry totals equal the
// snapshot_totals() sums at every quiescent point -- the differential
// test in tests/engine_fuzz_test.cpp pins that equality. Gauges are
// refreshed on the same cadence (every drain pass), which is what
// makes them *live*: a scraper sees lag and occupancy move while the
// run is still in flight.
struct KeyedStreamingMonitor::Metrics {
  obs::Counter& ops_ingested;
  obs::Counter& late_arrivals;
  obs::Counter& violations;
  obs::Counter& chunks_verified;
  obs::Gauge& watermark_lag;
  obs::Gauge& reorder_pending;
  obs::Gauge& queue_backlog;
  obs::Gauge& active_keys;

  explicit Metrics(obs::MetricsRegistry& registry)
      : ops_ingested(registry.counter(
            "kav_monitor_ops_ingested_total",
            "Operations accepted by ingest(); live ops/sec is this "
            "series' rate.")),
        late_arrivals(registry.counter(
            "kav_monitor_late_arrivals_total",
            "Arrivals behind the reorder watermark (slack exceeded), "
            "recorded as late_arrival findings.")),
        violations(registry.counter(
            "kav_monitor_violations_total",
            "Streaming violations of every kind, checker- and "
            "monitor-level (late arrivals included).")),
        chunks_verified(registry.counter(
            "kav_monitor_chunks_verified_total",
            "Chunks the per-key streaming checkers settled.")),
        watermark_lag(registry.gauge(
            "kav_monitor_watermark_lag",
            "Verification lag in trace ticks (newest ingested start "
            "minus checker watermark) of the most recently drained "
            "key.")),
        reorder_pending(registry.gauge(
            "kav_monitor_reorder_pending",
            "Operations buffered in reorder buffers across keys.")),
        queue_backlog(registry.gauge(
            "kav_monitor_queue_backlog",
            "Operations ingested but not yet processed by a drain "
            "task, across keys.")),
        active_keys(registry.gauge("kav_monitor_active_keys",
                                   "Distinct keys seen by live monitors.")) {}
};

// KeyState is defined in keyed_monitor.h so the locking contracts
// (KAV_REQUIRES(state.process_mutex)) can name its mutex.

// --- MonitorReport ---------------------------------------------------------

bool MonitorReport::all_clean() const {
  for (const auto& [key, result] : per_key) {
    if (!result.violations.empty()) return false;
  }
  return true;
}

std::string MonitorReport::summary() const {
  std::size_t yes = 0, no = 0, undecided = 0, invalid = 0;
  for (const auto& [key, result] : per_key) {
    switch (result.verdict.outcome) {
      case Outcome::yes:
        ++yes;
        break;
      case Outcome::no:
        ++no;
        break;
      case Outcome::undecided:
        ++undecided;
        break;
      case Outcome::precondition_failed:
        ++invalid;
        break;
    }
  }
  return format_key_counts(per_key.size(), yes, no, undecided, invalid);
}

// --- KeyedStreamingMonitor -------------------------------------------------

KeyedStreamingMonitor::KeyedStreamingMonitor(const MonitorOptions& options)
    : options_(options),
      metrics_(std::make_unique<Metrics>(
          options.metrics != nullptr ? *options.metrics
                                     : obs::MetricsRegistry::global())),
      owned_pool_(std::make_unique<pipeline::ThreadPool>(options.threads,
                                                         options.metrics)),
      pool_(owned_pool_.get()) {}

KeyedStreamingMonitor::KeyedStreamingMonitor(pipeline::ThreadPool& pool,
                                             const MonitorOptions& options)
    : options_(options),
      metrics_(std::make_unique<Metrics>(
          options.metrics != nullptr ? *options.metrics
                                     : obs::MetricsRegistry::global())),
      pool_(&pool) {}

KeyedStreamingMonitor::~KeyedStreamingMonitor() {
  // Every queued or running drain task holds a pointer into keys_; wait
  // for them all before the key states are destroyed. A borrowed pool
  // is never shut down here -- it belongs to the caller (typically a
  // kav::Engine outliving many monitors).
  quiesce();
  // Retire this monitor's share of the level gauges so a shared
  // registry (several monitors over one Engine lifetime) returns to
  // zero between runs. Counters stay -- they are lifetime series.
  util::ReaderMutexLock lock(keys_mutex_);
  for (const auto& [key, state] : keys_) {
    metrics_->queue_backlog.sub(state->backlog.load(std::memory_order_relaxed));
    // last_reorder_pending is guarded by the key's process_mutex; the
    // drain tasks have quiesced, but taking the lock keeps the contract
    // unconditional (and pairs with the acquire of anything the last
    // drainer published).
    util::MutexLock state_lock(state->process_mutex);
    metrics_->reorder_pending.sub(state->last_reorder_pending);
  }
  metrics_->active_keys.sub(static_cast<std::int64_t>(keys_.size()));
}

void KeyedStreamingMonitor::quiesce() {
  util::MutexLock lock(drains_mutex_);
  while (active_drains_ != 0) drains_cv_.wait(drains_mutex_);
}

KeyedStreamingMonitor::KeyState& KeyedStreamingMonitor::state_for(
    const std::string& key) {
  {
    util::ReaderMutexLock lock(keys_mutex_);
    auto it = keys_.find(key);
    if (it != keys_.end()) return *it->second;
  }
  util::WriterMutexLock lock(keys_mutex_);
  if (!started_) {
    started_ = true;
    start_time_ = std::chrono::steady_clock::now();
  }
  auto it = keys_.find(key);  // re-check: another producer may have won
  if (it == keys_.end()) {
    it = keys_.emplace(key, std::make_unique<KeyState>(key, options_)).first;
    metrics_->active_keys.add(1);
  }
  return *it->second;
}

void KeyedStreamingMonitor::ingest(const std::string& key,
                                   const Operation& op) {
  if (finished_.load(std::memory_order_acquire)) {
    throw std::logic_error("KeyedStreamingMonitor::ingest after finish()");
  }
  KeyState& state = state_for(key);
  state.queue.push(op);  // blocks when full: backpressure
  state.ingested.fetch_add(1, std::memory_order_relaxed);
  state.backlog.fetch_add(1, std::memory_order_relaxed);
  metrics_->ops_ingested.add(1);
  metrics_->queue_backlog.add(1);
  TimePoint seen = state.newest_start.load(std::memory_order_relaxed);
  while (op.start > seen &&
         !state.newest_start.compare_exchange_weak(
             seen, op.start, std::memory_order_relaxed)) {
  }
  seen = state.oldest_start.load(std::memory_order_relaxed);
  while (op.start < seen &&
         !state.oldest_start.compare_exchange_weak(
             seen, op.start, std::memory_order_relaxed)) {
  }
  // Claim the drainer role for this key if nobody holds it. The drain
  // task re-checks the queue after releasing the role, so an arrival
  // that lands between its last pop and the release is never stranded.
  if (!state.scheduled.exchange(true, std::memory_order_acq_rel)) {
    {
      util::MutexLock lock(drains_mutex_);
      ++active_drains_;
    }
    try {
      pool_->submit([this, &state] { drain(state); });
    } catch (...) {
      // submit() can throw (e.g. a borrowed pool already shut down by
      // its owner). Undo the claim: no drain task will ever run to
      // decrement the counter or release the drainer role, and the
      // destructor's quiesce() must not wait forever on it.
      {
        util::MutexLock lock(drains_mutex_);
        --active_drains_;
        drains_cv_.notify_all();
      }
      state.scheduled.store(false, std::memory_order_release);
      throw;
    }
  }
}

void KeyedStreamingMonitor::ingest(const KeyedOperation& kop) {
  ingest(kop.key, kop.op);
}

void KeyedStreamingMonitor::process_one(KeyState& state, const Operation& op) {
  state.backlog.fetch_sub(1, std::memory_order_relaxed);
  metrics_->queue_backlog.sub(1);
  if (!state.reorder.push(op)) {
    metrics_->late_arrivals.add(1);
    state.extra_violations.push_back(
        {StreamingViolation::Kind::late_arrival, state.reorder.watermark(),
         "arrival with start " + std::to_string(op.start) +
             " behind watermark " + std::to_string(state.reorder.watermark()) +
             " (reorder slack " + std::to_string(options_.reorder_slack) +
             " exceeded)"});
  } else {
    Operation released;
    while (state.reorder.pop(released)) state.checker.add(released);
  }
  // Emitting here, per operation, keeps the live sink's per-key order
  // equal to detection order: a single op adds either a late_arrival or
  // checker violations, never both.
  emit_new_violations(state);
}

void KeyedStreamingMonitor::emit_new_violations(KeyState& state) {
  if (!options_.on_violation ||
      sink_failed_.load(std::memory_order_acquire)) {
    return;
  }
  // A throwing sink must never take the run down with it: finish()
  // could otherwise lose the whole report (finished_ is already set, so
  // a retry throws). One failure records a finding and permanently
  // disables live emission for this monitor; the report itself is
  // unaffected.
  try {
    const std::vector<StreamingViolation>& found = state.checker.violations();
    while (state.reported_checker < found.size()) {
      options_.on_violation(state.key, found[state.reported_checker]);
      ++state.reported_checker;
    }
    while (state.reported_extra < state.extra_violations.size()) {
      options_.on_violation(state.key,
                            state.extra_violations[state.reported_extra]);
      ++state.reported_extra;
    }
  } catch (...) {
    sink_failed_.store(true, std::memory_order_release);
    state.extra_violations.push_back(
        {StreamingViolation::Kind::hard_anomaly, state.reorder.watermark(),
         "on_violation sink threw; live emission disabled for this monitor"});
  }
}

void KeyedStreamingMonitor::update_key_metrics(KeyState& state) {
  // Counter deltas against per-key high-water marks: checker violation
  // and chunk totals only grow for a live key, so each call adds
  // exactly the progress since the previous one. This mirrors the sums
  // snapshot_totals() computes, keeping registry totals equal to
  // MonitorStats at quiescence.
  const std::size_t checker_now = state.checker.violations().size();
  const std::size_t extra_now = state.extra_violations.size();
  metrics_->violations.add((checker_now - state.counted_checker) +
                           (extra_now - state.counted_extra));
  state.counted_checker = checker_now;
  state.counted_extra = extra_now;

  const std::uint64_t chunks_now = state.checker.stats().chunks_verified;
  metrics_->chunks_verified.add(chunks_now - state.counted_chunks);
  state.counted_chunks = chunks_now;

  const std::int64_t pending_now =
      static_cast<std::int64_t>(state.reorder.pending());
  metrics_->reorder_pending.add(pending_now - state.last_reorder_pending);
  state.last_reorder_pending = pending_now;

  // Same lag definition as MonitorStats::max_watermark_lag, but as the
  // current level of the key just drained -- the live view.
  const TimePoint newest = state.newest_start.load(std::memory_order_relaxed);
  const TimePoint oldest = state.oldest_start.load(std::memory_order_relaxed);
  if (newest != kTimeMin) {
    const TimePoint floor = std::max(state.checker.watermark(), oldest);
    metrics_->watermark_lag.set(newest - floor);
  }
}

void KeyedStreamingMonitor::drain(KeyState& state) {
  // The in-flight count must drop on EVERY exit path, exceptional ones
  // included -- a leaked increment would hang the destructor's
  // quiesce() forever. Notify while still holding the mutex: quiesce()
  // may observe active_drains_ == 0 and start destroying this monitor
  // the moment the mutex is released, so the condition variable must
  // not be touched after that point.
  struct DrainGuard {
    KeyedStreamingMonitor* self;
    ~DrainGuard() {
      util::MutexLock lock(self->drains_mutex_);
      --self->active_drains_;
      self->drains_cv_.notify_all();
    }
  } guard{this};

  try {
    for (;;) {
      // Nothing may escape this loop: the task's future is discarded,
      // and an unwound drain would leave `scheduled` stuck true -- no
      // later ingest would ever schedule another drainer, wedging the
      // key and deadlocking producers on its full queue. Failures
      // become hard_anomaly findings instead.
      try {
        util::MutexLock lock(state.process_mutex);
        Operation op;
        bool any = false;
        while (state.queue.try_pop(op)) {
          process_one(state, op);
          any = true;
        }
        if (any) {
          state.checker.advance_watermark(state.reorder.watermark());
          emit_new_violations(state);  // violations found while settling
        }
        state.peak_window =
            std::max(state.peak_window,
                     state.checker.window_size() + state.reorder.pending());
        update_key_metrics(state);
      } catch (const std::exception& e) {
        util::MutexLock lock(state.process_mutex);
        state.extra_violations.push_back(
            {StreamingViolation::Kind::hard_anomaly, state.reorder.watermark(),
             std::string("monitor drain failed: ") + e.what()});
      }
      state.scheduled.store(false, std::memory_order_release);
      if (state.queue.empty()) break;
      // An arrival slipped in after the final pop; re-claim the drainer
      // role unless its producer already scheduled a successor.
      if (state.scheduled.exchange(true, std::memory_order_acq_rel)) break;
    }
  } catch (...) {
    // Last resort: even the recorder threw (bad_alloc building the
    // finding, or a non-std exception out of the user's on_violation
    // sink). Nothing sane can be recorded; release the drainer role so
    // a later ingest can reschedule instead of wedging the key.
    state.scheduled.store(false, std::memory_order_release);
  }
}

MonitorReport KeyedStreamingMonitor::finish() {
  if (finished_.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error("KeyedStreamingMonitor::finish called twice");
  }

  std::vector<std::pair<std::string, KeyState*>> states;
  {
    util::ReaderMutexLock lock(keys_mutex_);
    states.reserve(keys_.size());
    for (auto& [key, state] : keys_) states.emplace_back(key, state.get());
  }

  MonitorReport report;
  for (auto& [key, state] : states) {
    util::MutexLock lock(state->process_mutex);
    Operation op;
    while (state->queue.try_pop(op)) process_one(*state, op);
    state->reorder.flush();
    while (state->reorder.pop(op)) state->checker.add(op);
    state->peak_window =
        std::max(state->peak_window, state->checker.window_size());

    KeyMonitorResult result;
    result.verdict = state->checker.finish();
    emit_new_violations(*state);
    result.stats = state->checker.stats();
    result.violations = state->checker.violations();
    result.violations.insert(result.violations.end(),
                             state->extra_violations.begin(),
                             state->extra_violations.end());
    if (result.verdict.yes() && !result.violations.empty()) {
      result.verdict = Verdict::make_no(
          std::to_string(state->extra_violations.size()) +
          " monitor-level violation(s); first: " +
          state->extra_violations.front().detail);
    }
    update_key_metrics(*state);
    report.per_key.emplace(key, std::move(result));
  }
  report.totals = snapshot_totals();
  return report;
}

MonitorStats KeyedStreamingMonitor::stats() const { return snapshot_totals(); }

MonitorStats KeyedStreamingMonitor::snapshot_totals() const {
  MonitorStats totals;
  std::vector<std::pair<std::string, KeyState*>> states;
  bool started = false;
  std::chrono::steady_clock::time_point start_time;
  {
    util::ReaderMutexLock lock(keys_mutex_);
    states.reserve(keys_.size());
    for (const auto& [key, state] : keys_) {
      states.emplace_back(key, state.get());
    }
    started = started_;
    start_time = start_time_;
  }
  totals.keys = states.size();
  for (const auto& [key, state] : states) {
    totals.operations_ingested += static_cast<std::uint64_t>(
        state->ingested.load(std::memory_order_relaxed));
    util::MutexLock lock(state->process_mutex);
    for (const StreamingViolation& violation : state->extra_violations) {
      if (violation.kind == StreamingViolation::Kind::late_arrival) {
        ++totals.late_arrivals;
      }
    }
    const std::uint64_t key_violations =
        state->checker.violations().size() + state->extra_violations.size();
    totals.violations += key_violations;
    if (key_violations > 0) totals.violations_per_key[key] = key_violations;
    totals.chunks_verified += state->checker.stats().chunks_verified;
    totals.peak_window = std::max(totals.peak_window, state->peak_window);
    // Lag of verification behind ingest: newest enqueued start minus
    // the checker's watermark (clamped to the oldest start while the
    // watermark has not left kTimeMin yet).
    const TimePoint newest =
        state->newest_start.load(std::memory_order_relaxed);
    const TimePoint oldest =
        state->oldest_start.load(std::memory_order_relaxed);
    if (newest != kTimeMin) {
      const TimePoint floor = std::max(state->checker.watermark(), oldest);
      totals.max_watermark_lag =
          std::max(totals.max_watermark_lag, newest - floor);
    }
  }
  if (started) {
    const auto elapsed = std::chrono::steady_clock::now() - start_time;
    totals.elapsed_seconds =
        std::chrono::duration<double>(elapsed).count();
    if (totals.elapsed_seconds > 0.0) {
      totals.ops_per_second = static_cast<double>(totals.operations_ingested) /
                              totals.elapsed_seconds;
    }
  }
  return totals;
}

std::size_t KeyedStreamingMonitor::key_count() const {
  util::ReaderMutexLock lock(keys_mutex_);
  return keys_.size();
}

}  // namespace kav
