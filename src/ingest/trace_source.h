// TraceSource: the one polymorphic input kav::Engine (core/engine.h)
// verifies and monitors from. Every way a trace reaches the library --
// an in-memory KeyedTrace, a text-format file, a binary .kavb file, or
// a live producer pushing operations one at a time -- is the same
// pull-based stream of KeyedOperations, so new backends (sockets, RPC
// front-ends, replay logs) plug in by implementing two methods instead
// of growing another facade overload.
//
// Sources are single-pass: next() walks the stream once. File sources
// detect format by magic bytes (open_trace_source), never by file
// extension; the legacy read_any_trace_file is drain() over this
// abstraction. Memory cost: binary file sources and push sources are
// truly streaming (O(chunk) / O(capacity)); text file sources load the
// whole trace at construction, which is inherent to the line-oriented
// text format.
#ifndef KAV_INGEST_TRACE_SOURCE_H
#define KAV_INGEST_TRACE_SOURCE_H

#include <chrono>
#include <cstddef>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "history/history.h"
#include "history/keyed_trace.h"
#include "ingest/binary_trace.h"
#include "util/thread_safety.h"

namespace kav {

class TraceSource {
 public:
  // Result of a bounded pull (try_next_for): an operation was produced,
  // nothing arrived within the wait (stream still open), or the stream
  // ended.
  enum class Pull : unsigned char { item, pending, closed };

  virtual ~TraceSource() = default;

  // Pulls the next operation; false at the end of the stream. May block
  // (push sources block until an operation arrives or the producer
  // closes). Throws std::runtime_error on malformed input.
  virtual bool next(KeyedOperation& out) = 0;

  // Bounded pull: like next(), but a source that might block
  // indefinitely returns Pull::pending after ~`wait` instead, so a
  // consumer can re-check a CancelToken or deadline between pulls
  // (Engine::monitor does). The default forwards to next() -- correct
  // for sources that never block longer than their input takes to
  // read; blocking sources (PushTraceSource) override it.
  virtual Pull try_next_for(KeyedOperation& out,
                            std::chrono::milliseconds wait) {
    (void)wait;
    return next(out) ? Pull::item : Pull::closed;
  }

  // Human-readable origin for reports and error messages, e.g.
  // "memory(120 ops)" or "binary:trace.kavb".
  virtual std::string describe() const = 0;
};

// Capability interface for sources backed by a per-key index (the
// trace store's mmap-backed IndexedTraceSource, store/indexed_source.h,
// is the one implementation). Streaming via next() still yields the
// full record stream in arrival order, so such a source behaves like
// any other; the extra methods let kav::Engine serve a selective run
// (RunOptions::key_filter) by materializing ONLY the requested keys'
// histories -- each one loaded inside a pool worker, straight from the
// index, with the rest of the input never decoded.
class SelectiveTraceSource : public TraceSource {
 public:
  // Every key the source can serve selectively (unspecified order).
  virtual std::vector<std::string> selectable_keys() const = 0;
  // Operations stored for `key`; 0 when absent. Available without
  // decoding records -- this is what index-driven shard budgeting and
  // scheduling read.
  virtual std::size_t key_op_count(const std::string& key) const = 0;
  // Decodes `key`'s operations (in arrival order) into a History.
  // Must be thread-safe and independent of the next() cursor: Engine
  // calls it concurrently from pool workers.
  virtual History load_key(const std::string& key) const = 0;
};

// In-memory trace, replayed in insertion (arrival) order.
class MemoryTraceSource final : public TraceSource {
 public:
  explicit MemoryTraceSource(KeyedTrace trace) : trace_(std::move(trace)) {}

  bool next(KeyedOperation& out) override;
  std::string describe() const override;

  // Memory sources alone are re-runnable: rewind to replay the same
  // trace through another Engine call.
  void rewind() { pos_ = 0; }

 private:
  KeyedTrace trace_;
  std::size_t pos_ = 0;
};

// Text-format file (history/serialization.h). The text reader is
// whole-stream, so the trace is parsed eagerly at construction; throws
// std::runtime_error with a line number on parse errors.
class TextFileTraceSource final : public TraceSource {
 public:
  explicit TextFileTraceSource(const std::string& path);

  bool next(KeyedOperation& out) override;
  std::string describe() const override;

 private:
  std::string path_;
  KeyedTrace trace_;
  std::size_t pos_ = 0;
};

// Binary .kavb file (ingest/binary_trace.h): true streaming, one chunk
// in memory at a time. Throws std::runtime_error with a byte offset on
// malformed input.
class BinaryFileTraceSource final : public TraceSource {
 public:
  explicit BinaryFileTraceSource(const std::string& path);

  bool next(KeyedOperation& out) override;
  std::string describe() const override;

 private:
  std::string path_;
  std::ifstream in_;
  BinaryTraceReader reader_;
};

// Incremental push source: producers push() completed operations from
// any thread; the consumer side (Engine::monitor, typically on another
// thread) pulls them via next(), which blocks until an operation is
// available or the source is closed. push() blocks while the internal
// queue is at capacity (backpressure) and throws std::logic_error
// after close().
class PushTraceSource final : public TraceSource {
 public:
  explicit PushTraceSource(std::size_t capacity = 1'024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(std::string key, Operation op);
  void push(KeyedOperation kop) KAV_EXCLUDES(mutex_);
  // Ends the stream: next() drains what is queued, then returns false.
  // Idempotent.
  void close() KAV_EXCLUDES(mutex_);

  bool next(KeyedOperation& out) override KAV_EXCLUDES(mutex_);
  // Times out with Pull::pending instead of blocking forever, so a
  // cancelled Engine::monitor over a push source that is never closed
  // still returns.
  Pull try_next_for(KeyedOperation& out,
                    std::chrono::milliseconds wait) override
      KAV_EXCLUDES(mutex_);
  std::string describe() const override KAV_EXCLUDES(mutex_);

 private:
  // One lock orders the whole handoff: producers block on not_full_
  // (capacity backpressure), the consumer blocks on not_empty_, and
  // close() flips closed_ then wakes both sides.
  mutable util::Mutex mutex_;
  util::CondVar not_full_;
  util::CondVar not_empty_;
  std::deque<KeyedOperation> items_ KAV_GUARDED_BY(mutex_);
  // Immutable after construction; readable without the lock.
  const std::size_t capacity_;
  bool closed_ KAV_GUARDED_BY(mutex_) = false;
};

// Opens a trace file as a source, deciding text vs binary by magic
// bytes (never by extension). Throws std::runtime_error when the file
// cannot be opened or its header is malformed.
std::unique_ptr<TraceSource> open_trace_source(const std::string& path);

// Pulls a source dry into a KeyedTrace. read_any_trace_file
// (ingest/binary_trace.h) is exactly drain(*open_trace_source(path)).
KeyedTrace drain(TraceSource& source);

}  // namespace kav

#endif  // KAV_INGEST_TRACE_SOURCE_H
