// Little-endian wire helpers shared by every .kavb encoder and decoder
// (ingest/binary_trace.cpp writes and reads streams; the store layer's
// SegmentWriter and MappedSegment encode the same records and the v2
// footer). All integers on disk are little-endian; signed fields are
// two's complement. The byte-composition idiom compiles to single
// moves on LE hardware and stays correct on BE.
#ifndef KAV_INGEST_WIRE_H
#define KAV_INGEST_WIRE_H

#include <cstdint>
#include <string>

namespace kav::wire {

inline void append_u16(std::string& buffer, std::uint16_t v) {
  buffer.push_back(static_cast<char>(v & 0xff));
  buffer.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void append_u32(std::string& buffer, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

inline void append_u64(std::string& buffer, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

inline void append_i64(std::string& buffer, std::int64_t v) {
  append_u64(buffer, static_cast<std::uint64_t>(v));
}

inline std::uint16_t load_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

inline std::int64_t load_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(load_u64(p));
}

// --- Key hashing for the v2.1 bloom page (docs/FORMATS.md) -----------------
//
// These are part of the on-disk format, not an implementation detail:
// a reader probing a segment written on another machine must derive
// the same bit positions, so both functions are pinned here next to
// the rest of the codec and covered by the format spec.

// 64-bit FNV-1a over the raw key bytes -- the bloom page's base hash.
inline std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finalizer -- derives the bloom's second hash from the
// first (double hashing), so each key is hashed exactly once however
// many probe bits the filter uses.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace kav::wire

#endif  // KAV_INGEST_WIRE_H
