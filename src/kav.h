// kav -- k-Atomicity Verification. One include for the whole public
// surface; kav::Engine (core/engine.h) is the front door:
//
//   #include "kav.h"
//
//   kav::Engine engine;                       // one shared thread pool
//   kav::Report batch = engine.verify(trace); // sharded batch verdicts
//   kav::Report live = engine.monitor(trace); // online monitoring
//
// Inputs come from any TraceSource (in-memory trace, text or binary
// .kavb file, live push stream); runs take per-call RunOptions
// (VerifyOptions override, CancelToken, deadline, live callbacks);
// results come back as the unified Report. Surface map and the
// legacy-facade migration table: docs/API.md. Paper-section map and
// per-algorithm guarantees: docs/ALGORITHMS.md.
#ifndef KAV_KAV_H
#define KAV_KAV_H

// The session API.
#include "core/engine.h"
#include "core/report.h"
#include "core/run_control.h"

// Decision procedures and their support types.
#include "core/analysis.h"
#include "core/fzf.h"
#include "core/gk.h"
#include "core/greedy.h"
#include "core/kwav.h"
#include "core/lbt.h"
#include "core/minimal_k.h"
#include "core/oracle.h"
#include "core/streaming.h"
#include "core/verdict.h"
#include "core/verify.h"
#include "core/witness.h"

// Histories, traces, and their serializations.
#include "history/anomaly.h"
#include "history/history.h"
#include "history/keyed_trace.h"
#include "history/operation.h"
#include "history/serialization.h"

// Ingest: binary format, reordering, online monitoring, trace sources.
#include "ingest/binary_trace.h"
#include "ingest/keyed_monitor.h"
#include "ingest/reorder_buffer.h"
#include "ingest/trace_source.h"

// Observability: metrics registry, span tracing, exporters, rolling
// rates, and the live HTTP telemetry server. Always on at near-zero
// cost; scrape Engine::snapshot() through obs::render_prometheus /
// obs::render_json, or serve it live with Engine::serve_telemetry()
// (docs/OBSERVABILITY.md).
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/rate_window.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"

// Networking substrate (Linux epoll): the event loop under the
// telemetry server and the future kavd listener.
#include "net/event_loop.h"
#include "net/http.h"
#include "net/tcp.h"

// Trace store: persistent indexed segments, mmap-backed selective reads.
#include "store/indexed_source.h"
#include "store/mapped_segment.h"
#include "store/segment_writer.h"
#include "store/trace_store.h"

// Parallel verification pipeline.
#include "pipeline/sharded_verifier.h"
#include "pipeline/thread_pool.h"

#endif  // KAV_KAV_H
