// Seeded property fuzzing of the ingest layer:
//
//   1. format round-trips -- text -> binary -> text and binary ->
//      text -> binary are byte-identical for randomized KeyedTraces
//      (any trace the text format can express);
//   2. monitor-vs-batch differential -- on randomized multi-key traces
//      delivered with bounded (in-slack, in-horizon) reordering, the
//      KeyedStreamingMonitor must flag exactly the keys the batch
//      verify_keyed_trace(k=2) facade answers NO for, with zero late
//      arrivals and a window that never holds the whole trace.
//
// The master seed comes from KAV_FUZZ_SEED when set and is printed on
// every failure, so any finding reproduces with
//   KAV_FUZZ_SEED=<seed> ./ingest_fuzz_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/verify.h"
#include "gen/generators.h"
#include "gen/mutators.h"
#include "history/serialization.h"
#include "ingest/binary_trace.h"
#include "ingest/keyed_monitor.h"
#include "util/rng.h"

namespace kav {
namespace {

constexpr std::uint64_t kDefaultSeed = 0x1265357ULL;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("KAV_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return kDefaultSeed;
}

std::string random_key(Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:/";
  const std::size_t length = 1 + rng.bounded(12);
  std::string key;
  for (std::size_t i = 0; i < length; ++i) {
    key.push_back(kAlphabet[rng.bounded(sizeof kAlphabet - 1)]);
  }
  return key;
}

// A trace with exotic-but-text-safe keys, negative times, optional
// client ids, and no structural invariants beyond start < finish --
// the formats must round-trip anything this shape.
KeyedTrace random_trace(Rng& rng) {
  KeyedTrace trace;
  const std::size_t keys = 1 + rng.bounded(6);
  std::vector<std::string> key_pool;
  for (std::size_t k = 0; k < keys; ++k) key_pool.push_back(random_key(rng));
  const std::size_t ops = rng.bounded(60);
  for (std::size_t i = 0; i < ops; ++i) {
    const TimePoint start =
        static_cast<TimePoint>(rng.bounded(4'000)) - 2'000;
    const TimePoint finish = start + 1 + static_cast<TimePoint>(
                                             rng.bounded(300));
    const auto value = static_cast<Value>(rng.bounded(1'000'000)) - 500'000;
    const ClientId client =
        rng.bernoulli(0.5) ? static_cast<ClientId>(rng.bounded(100))
                           : kNoClient;
    const Operation op{start, finish,
                       rng.bernoulli(0.4) ? OpType::write : OpType::read,
                       value, client};
    trace.add(key_pool[rng.bounded(key_pool.size())], op);
  }
  return trace;
}

TEST(IngestFuzz, FormatRoundTripsAreLossless) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed);
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("reproduce with KAV_FUZZ_SEED=" + std::to_string(seed) +
                 " (trial " + std::to_string(trial) + ")");
    const KeyedTrace trace = random_trace(rng);

    // text -> binary -> text: byte-identical text.
    const std::string text = format_trace(trace);
    std::stringstream text_in(text);
    std::stringstream binary_mid;
    convert_text_to_binary(text_in, binary_mid);
    std::stringstream text_out;
    convert_binary_to_text(binary_mid, text_out);
    ASSERT_EQ(text_out.str(), text);

    // binary -> text -> binary: byte-identical binary, across chunk
    // sizes on the original write (converters use the default size, so
    // compare against a default-size original).
    std::stringstream binary_in;
    write_binary_trace(binary_in, trace);
    const std::string binary = binary_in.str();
    std::stringstream text_mid;
    convert_binary_to_text(binary_in, text_mid);
    std::stringstream binary_out;
    convert_text_to_binary(text_mid, binary_out);
    ASSERT_EQ(binary_out.str(), binary);

    // And the parsed trace itself survives a binary round-trip through
    // a randomized chunk size.
    std::stringstream chunked;
    write_binary_trace(chunked, trace, 1 + rng.bounded(17));
    const KeyedTrace back = read_binary_trace(chunked);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(back.ops[i].key, trace.ops[i].key) << "op " << i;
      ASSERT_EQ(back.ops[i].op, trace.ops[i].op) << "op " << i;
    }
  }
}

// One random normalized per-key shard (no hard anomalies: the
// streaming checker reports those as its own findings, which the batch
// facade instead labels precondition_failed -- a deliberate contract
// difference the differential below sidesteps the same way
// tests/integration_test.cpp does).
History random_shard(Rng& rng) {
  if (rng.bounded(3) == 0) {
    gen::KAtomicConfig config;
    config.writes = 3 + static_cast<int>(rng.bounded(10));
    config.k = 1 + static_cast<int>(rng.bounded(2));
    return gen::generate_k_atomic(config, rng).history;
  }
  gen::RandomMixConfig config;
  config.operations = 8 + static_cast<int>(rng.bounded(24));
  config.write_fraction = 0.3 + 0.4 * rng.uniform_double();
  config.staleness_decay = 0.3 + 0.5 * rng.uniform_double();
  config.horizon = 400 + static_cast<TimePoint>(rng.bounded(3000));
  return gen::generate_random_mix(config, rng);
}

TEST(IngestFuzz, MonitorFlagsExactlyTheBatchNoKeys) {
  const std::uint64_t seed = fuzz_seed() ^ 0x1736e57ULL;
  Rng rng(seed);
  constexpr int kTrials = 25;
  constexpr TimePoint kSlack = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("reproduce with KAV_FUZZ_SEED=" + std::to_string(fuzz_seed()) +
                 " (trial " + std::to_string(trial) + ")");
    const int keys = 1 + static_cast<int>(rng.bounded(8));
    KeyedTrace trace;
    for (int k = 0; k < keys; ++k) {
      const History shard = random_shard(rng);
      for (const Operation& op : shard.operations()) {
        trace.add("k" + std::to_string(k), op);
      }
    }

    // Arrival order: global start order perturbed by < kSlack. Sorting
    // by (start + jitter) with jitter in [0, kSlack) keeps every
    // arrival within the slack promise: if an op overtakes one that
    // starts earlier, the start gap is below kSlack.
    struct Arrival {
      TimePoint sort_key;
      std::size_t index;
    };
    std::vector<Arrival> arrivals;
    arrivals.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      arrivals.push_back(
          {trace.ops[i].op.start + static_cast<TimePoint>(rng.bounded(kSlack)),
           i});
    }
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Arrival& a, const Arrival& b) {
                       return a.sort_key < b.sort_key;
                     });

    VerifyOptions batch_options;
    batch_options.k = 2;
    const KeyedReport batch = verify_keyed_trace(trace, batch_options);

    for (std::size_t threads : {1u, 4u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      MonitorOptions options;
      options.streaming.staleness_horizon = 1 << 24;  // in-horizon regime
      options.reorder_slack = kSlack;
      options.threads = threads;
      KeyedStreamingMonitor monitor(options);
      for (const Arrival& arrival : arrivals) {
        monitor.ingest(trace.ops[arrival.index]);
      }
      const MonitorReport report = monitor.finish();

      ASSERT_EQ(report.per_key.size(), batch.per_key.size());
      EXPECT_EQ(report.totals.late_arrivals, 0u);
      for (const auto& [key, verdict] : batch.per_key) {
        SCOPED_TRACE("key " + key);
        ASSERT_TRUE(report.per_key.count(key));
        const KeyMonitorResult& streamed = report.per_key.at(key);
        ASSERT_TRUE(verdict.decided()) << verdict.reason;
        EXPECT_EQ(streamed.violations.empty(), verdict.yes())
            << "batch: " << verdict.reason << "\nstreamed: "
            << (streamed.violations.empty()
                    ? "clean"
                    : streamed.violations.front().detail);
        EXPECT_EQ(streamed.verdict.yes(), verdict.yes());
      }
    }
  }
}

}  // namespace
}  // namespace kav
