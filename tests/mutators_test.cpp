// Failure-injection tests: each mutator must produce the specific
// damage it advertises, and the detection/decision pipeline must react
// accordingly.
#include <gtest/gtest.h>

#include "core/minimal_k.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/mutators.h"
#include "history/anomaly.h"
#include "util/rng.h"

namespace kav {
namespace {

History clean_history() {
  Rng rng(10);
  gen::KAtomicConfig config;
  config.writes = 8;
  config.k = 1;
  config.min_reads_per_write = 1;
  config.max_reads_per_write = 2;
  return gen::generate_k_atomic(config, rng).history;
}

TEST(Mutators, InjectStalerReadRaisesMinimalK) {
  Rng rng(3);
  int raised = 0, trials = 0;
  for (int t = 0; t < 30; ++t) {
    const History h = clean_history();
    const auto mutated = gen::inject_staler_read(h, rng);
    if (!mutated.has_value()) continue;
    ++trials;
    EXPECT_TRUE(find_anomalies(*mutated).repairable());
    const MinimalKResult before = minimal_k(h);
    const MinimalKResult after = minimal_k(normalize(*mutated));
    EXPECT_GE(after.k, before.k);
    raised += after.k > before.k;
  }
  ASSERT_GT(trials, 0);
  EXPECT_GT(raised, 0);  // staleness injection is not a no-op
}

TEST(Mutators, DelayReadPastWritesBreaksAtomicity) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  const OpId r = b.read(12, 20, 1);
  b.write(30, 40, 2);
  b.write(50, 60, 3);
  const History h = b.build();
  VerifyOptions k1;
  k1.k = 1;
  EXPECT_TRUE(verify_k_atomicity(h, k1).yes());
  // Delay the read past both later writes: separation 2 forced.
  const History late = gen::delay_read(h, r, 60);
  EXPECT_TRUE(verify_k_atomicity(late, k1).no());
  VerifyOptions k2 = k1;
  k2.k = 2;
  EXPECT_TRUE(verify_k_atomicity(late, k2).no());
  VerifyOptions k3 = k1;
  k3.k = 3;
  EXPECT_TRUE(verify_k_atomicity(late, k3).yes());
}

TEST(Mutators, DelayReadRejectsNonRead) {
  HistoryBuilder b;
  const OpId w = b.write(0, 10, 1);
  EXPECT_THROW(gen::delay_read(b.build(), w, 5), std::invalid_argument);
}

TEST(Mutators, DropWriteCreatesOrphanReads) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  const History h = b.build();
  const History dropped = gen::drop_operation(h, 0);
  ASSERT_EQ(dropped.size(), 1u);
  const AnomalyReport report = find_anomalies(dropped);
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.anomalies.front().kind,
            AnomalyKind::read_without_dictating_write);
}

TEST(Mutators, DropReadIsHarmless) {
  const History h = clean_history();
  // Find any read and drop it.
  ASSERT_FALSE(h.reads().empty());
  const History dropped = gen::drop_operation(h, h.reads()[0]);
  EXPECT_EQ(dropped.size(), h.size() - 1);
  EXPECT_TRUE(find_anomalies(dropped).empty());
  VerifyOptions k1;
  k1.k = 1;
  EXPECT_TRUE(verify_k_atomicity(dropped, k1).yes());
}

TEST(Mutators, JitterIsRepairableByNormalization) {
  Rng rng(6);
  const History h = clean_history();
  const History jittered = gen::jitter_timestamps(h, 2, rng);
  EXPECT_EQ(jittered.size(), h.size());
  const AnomalyReport report = find_anomalies(jittered);
  // Small jitter can introduce duplicate stamps or reorder finishes;
  // none of that is a hard anomaly.
  EXPECT_TRUE(report.repairable());
  EXPECT_NO_THROW(normalize(jittered));
}

TEST(Mutators, DuplicateWriteValueIsHardAnomaly) {
  Rng rng(4);
  const History h = clean_history();
  const History damaged = gen::duplicate_write_value(h, rng);
  const AnomalyReport report = find_anomalies(damaged);
  EXPECT_FALSE(report.repairable());
  const Verdict v = verify_k_atomicity(damaged);
  EXPECT_EQ(v.outcome, Outcome::precondition_failed);
}

TEST(Mutators, DropOperationValidatesId) {
  EXPECT_THROW(gen::drop_operation(History{}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace kav
