// Unit tests for the Section II-A model: the precedes relation,
// History's derived indexes (sorted views, dictating writes, dictated
// reads), and the write-concurrency statistic c.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

TEST(Operation, PrecedesIsStrict) {
  const Operation a = make_write(0, 10, 1);
  const Operation b = make_read(11, 20, 1);
  const Operation c = make_read(10, 20, 1);  // starts exactly at a.finish
  EXPECT_TRUE(a.precedes(b));
  EXPECT_FALSE(b.precedes(a));
  EXPECT_FALSE(a.precedes(c));  // f < s must be strict
  EXPECT_TRUE(a.concurrent_with(c));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(History, RejectsMalformedIntervals) {
  EXPECT_THROW(History({make_write(10, 10, 1)}), std::invalid_argument);
  EXPECT_THROW(History({make_write(10, 5, 1)}), std::invalid_argument);
}

TEST(History, EmptyHistory) {
  const History h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.write_count(), 0u);
  EXPECT_EQ(h.max_concurrent_writes(), 0u);
}

TEST(History, IndexesAreSorted) {
  HistoryBuilder b;
  const OpId w2 = b.write(50, 60, 2);
  const OpId r1 = b.read(30, 42, 1);
  const OpId w1 = b.write(0, 25, 1);
  const OpId r2 = b.read(62, 70, 2);
  const History h = b.build();

  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.write_count(), 2u);
  EXPECT_EQ(h.read_count(), 2u);

  const std::vector<OpId> by_start(h.by_start().begin(), h.by_start().end());
  EXPECT_EQ(by_start, (std::vector<OpId>{w1, r1, w2, r2}));
  const std::vector<OpId> by_finish(h.by_finish().begin(),
                                    h.by_finish().end());
  EXPECT_EQ(by_finish, (std::vector<OpId>{w1, r1, w2, r2}));
  const std::vector<OpId> wbf(h.writes_by_finish().begin(),
                              h.writes_by_finish().end());
  EXPECT_EQ(wbf, (std::vector<OpId>{w1, w2}));
}

TEST(History, DictatingWriteResolution) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 7);
  const OpId r1 = b.read(12, 20, 7);
  const OpId r2 = b.read(22, 30, 7);
  const OpId w2 = b.write(40, 50, 8);
  const OpId orphan = b.read(52, 60, 99);
  const History h = b.build();

  EXPECT_EQ(h.dictating_write(r1), w1);
  EXPECT_EQ(h.dictating_write(r2), w1);
  EXPECT_EQ(h.dictating_write(orphan), kInvalidOp);

  const auto reads = h.dictated_reads(w1);
  EXPECT_EQ(std::vector<OpId>(reads.begin(), reads.end()),
            (std::vector<OpId>{r1, r2}));
  EXPECT_TRUE(h.dictated_reads(w2).empty());
  EXPECT_EQ(h.write_of_value(7), w1);
  EXPECT_EQ(h.write_of_value(8), w2);
  EXPECT_EQ(h.write_of_value(1234), kInvalidOp);
}

TEST(History, DictatedReadsSortedByStart) {
  HistoryBuilder b;
  const OpId w = b.write(0, 10, 1);
  const OpId late = b.read(40, 50, 1);
  const OpId early = b.read(12, 20, 1);
  const OpId mid = b.read(25, 35, 1);
  const History h = b.build();
  const auto reads = h.dictated_reads(w);
  EXPECT_EQ(std::vector<OpId>(reads.begin(), reads.end()),
            (std::vector<OpId>{early, mid, late}));
}

TEST(History, DuplicateWriteValuesFlagged) {
  HistoryBuilder b;
  b.write(0, 10, 5);
  b.write(20, 30, 5);
  const History h = b.build();
  EXPECT_TRUE(h.has_duplicate_write_values());
  // Earliest-starting write wins the index.
  EXPECT_EQ(h.write_of_value(5), 0u);
}

TEST(History, DictatingWritesWithAdversarialValueOrder) {
  // The dictating-write resolver gallops forward from the previous
  // read's value; this history forces every branch: repeats (stay),
  // big forward jumps (gallop), backward jumps (prefix re-search),
  // and absent values landing between, before, and after the index.
  HistoryBuilder b;
  std::vector<OpId> writes;
  for (int i = 0; i < 12; ++i) {
    // Values 0, 10, 20, ... 110 -- gaps for the absent-value probes.
    writes.push_back(b.write(i * 100, i * 100 + 5, i * 10));
  }
  const OpId repeat_a = b.read(1200, 1210, 50);
  const OpId repeat_b = b.read(1220, 1230, 50);
  const OpId jump_fwd = b.read(1240, 1250, 110);
  const OpId jump_back = b.read(1260, 1270, 0);
  const OpId absent_mid = b.read(1280, 1290, 55);
  const OpId absent_low = b.read(1300, 1310, -3);
  const OpId absent_high = b.read(1320, 1330, 999);
  const OpId after_miss = b.read(1340, 1350, 70);
  const History h = b.build();

  EXPECT_EQ(h.dictating_write(repeat_a), writes[5]);
  EXPECT_EQ(h.dictating_write(repeat_b), writes[5]);
  EXPECT_EQ(h.dictating_write(jump_fwd), writes[11]);
  EXPECT_EQ(h.dictating_write(jump_back), writes[0]);
  EXPECT_EQ(h.dictating_write(absent_mid), kInvalidOp);
  EXPECT_EQ(h.dictating_write(absent_low), kInvalidOp);
  EXPECT_EQ(h.dictating_write(absent_high), kInvalidOp);
  EXPECT_EQ(h.dictating_write(after_miss), writes[7]);
}

TEST(History, DictatingWritesMatchBruteForceOnRandomValueStreams) {
  // Differential against a brute-force scan, over histories whose
  // write values are shuffled (so the sorted-values fast path is off)
  // and whose read values wander arbitrarily (so the gallop hint
  // moves both directions and misses often).
  Rng rng(0xD1C7);
  for (int trial = 0; trial < 40; ++trial) {
    HistoryBuilder b;
    const int write_count = 1 + static_cast<int>(rng.bounded(20));
    std::vector<Value> values;
    for (int i = 0; i < write_count; ++i) {
      values.push_back(static_cast<Value>(rng.bounded(30)));
    }
    TimePoint t = 0;
    std::vector<OpId> writes;
    for (int i = 0; i < write_count; ++i) {
      writes.push_back(b.write(t, t + 5, values[static_cast<std::size_t>(i)]));
      t += 10;
    }
    const int read_count = static_cast<int>(rng.bounded(40));
    std::vector<OpId> reads;
    std::vector<Value> read_values;
    for (int i = 0; i < read_count; ++i) {
      read_values.push_back(static_cast<Value>(rng.bounded(40)));
      reads.push_back(b.read(t, t + 5, read_values.back()));
      t += 10;
    }
    const History h = b.build();
    for (int i = 0; i < read_count; ++i) {
      // Brute force: earliest-starting write of that value, if any.
      OpId want = kInvalidOp;
      for (std::size_t w = 0; w < writes.size(); ++w) {
        if (values[w] == read_values[static_cast<std::size_t>(i)]) {
          want = writes[w];
          break;
        }
      }
      ASSERT_EQ(h.dictating_write(reads[static_cast<std::size_t>(i)]), want)
          << "trial " << trial << " read " << i;
    }
  }
}

TEST(History, MaxConcurrentWritesCountsOnlyWrites) {
  HistoryBuilder b;
  b.write(0, 100, 1);
  b.write(10, 90, 2);
  b.write(20, 80, 3);
  b.read(0, 200, 1);  // reads do not count toward c
  b.write(150, 160, 4);
  const History h = b.build();
  EXPECT_EQ(h.max_concurrent_writes(), 3u);
}

TEST(History, SequentialWritesHaveConcurrencyOne) {
  HistoryBuilder b;
  for (int i = 0; i < 5; ++i) {
    b.write(i * 100, i * 100 + 50, i + 1);
  }
  const History h = b.build();
  EXPECT_EQ(h.max_concurrent_writes(), 1u);
}

TEST(History, TouchingWritesAreConcurrent) {
  // w2 starts exactly when w1 finishes: strict precedes says they are
  // concurrent, and the sweep (finish-before-start at equal time)
  // reports depth 1; this documents the tie behaviour -- normalized
  // histories never tie.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(10, 20, 2);
  const History h = b.build();
  EXPECT_TRUE(h.op(0).concurrent_with(h.op(1)));
  EXPECT_EQ(h.max_concurrent_writes(), 1u);
}

TEST(History, MinMaxTime) {
  HistoryBuilder b;
  b.write(5, 10, 1);
  b.read(2, 30, 1);
  const History h = b.build();
  EXPECT_EQ(h.min_time(), 2);
  EXPECT_EQ(h.max_time(), 30);
}

TEST(History, PrecedesAccessor) {
  HistoryBuilder b;
  const OpId a = b.write(0, 10, 1);
  const OpId c = b.read(20, 30, 1);
  const History h = b.build();
  EXPECT_TRUE(h.precedes(a, c));
  EXPECT_FALSE(h.precedes(c, a));
}

}  // namespace
}  // namespace kav
