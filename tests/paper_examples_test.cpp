// Worked examples and lemma-level shapes taken directly from the
// paper's text, each cross-checked against the exhaustive oracle:
//
//   - Lemma 4.2's two chain shapes ("A ends before B ends" = the
//     Figure 3 middle chunk; "A ends after B ends" = the right chunk)
//     including the subcases where T_F' is the only viable order;
//   - Lemma 4.3's placement limits for backward-cluster writes;
//   - the Section II-C assumption digests (write shortening is
//     harmless; anomalies refute k-atomicity outright);
//   - Section II-B locality.
#include <gtest/gtest.h>

#include "core/fzf.h"
#include "core/lbt.h"
#include "core/oracle.h"
#include "core/verify.h"
#include "core/witness.h"
#include "history/anomaly.h"
#include "history/history.h"

namespace kav {
namespace {

void expect_all_agree(const History& h, bool expected_2atomic,
                      const char* label) {
  const OracleResult truth = oracle_is_k_atomic(h, 2);
  ASSERT_TRUE(truth.decided()) << label;
  EXPECT_EQ(truth.yes(), expected_2atomic) << label;
  EXPECT_EQ(check_2atomicity_lbt(h).yes(), expected_2atomic) << label;
  const Verdict fzf = check_2atomicity_fzf(h);
  EXPECT_EQ(fzf.yes(), expected_2atomic) << label;
  if (fzf.yes()) {
    EXPECT_TRUE(validate_witness(h, fzf.witness, 2).ok()) << label;
  }
}

// Lemma 4.2, Case 1 layout: forward zones A, B, C with A ending before
// B ends (Figure 3's FZ2, FZ3, FZ4 chain). T_F = w_A w_B w_C is viable.
TEST(PaperExamples, Lemma42Case1ChainIsTwoAtomic) {
  HistoryBuilder b;
  // Zones: A = [10, 40], B = [30, 70], C = [60, 100].
  b.write(0, 10, 1);
  b.read(40, 45, 1);
  b.write(25, 30, 2);
  b.read(70, 75, 2);
  b.write(55, 60, 3);
  b.read(100, 105, 3);
  expect_all_agree(normalize(b.build()), true, "case-1 chain");
}

// Lemma 4.2, Subcase 1a: placing w_A second or later forces separation
// two somewhere. We realize the hostile variant by adding a read of B
// *between* A's and C's reads so that w_B cannot be last-but-one: the
// history is still 2-atomic via T_F (the point is that only T_F / T_F'
// survive, which the decider's orders_tested counter witnesses).
TEST(PaperExamples, Lemma42OnlyTfOrTfPrimeViable) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(40, 45, 1);   // A = [10, 40]
  b.write(25, 30, 2);
  b.read(70, 75, 2);   // B = [30, 70]
  b.write(55, 60, 3);
  b.read(100, 105, 3);  // C = [60, 100]
  const History h = normalize(b.build());
  const Verdict fzf = check_2atomicity_fzf(h);
  ASSERT_TRUE(fzf.yes());
  EXPECT_LE(fzf.stats.orders_tested, 2u);  // at most T_F then T_F'
}

// Lemma 4.2, Case 2 layout: A ends after B ends (Figure 3's FZ5/FZ6
// shape, where T_F' -- B first -- may be required).
TEST(PaperExamples, Lemma42Case2ChainDecided) {
  HistoryBuilder b;
  // A = [10, 90] (write finishes 10, read starts 90),
  // B = [20, 50] nested inside A's span, C = [80, 120].
  b.write(0, 10, 1);
  b.read(90, 95, 1);
  b.write(15, 20, 2);
  b.read(50, 55, 2);
  b.write(75, 80, 3);
  b.read(120, 125, 3);
  const History h = normalize(b.build());
  const OracleResult truth = oracle_is_k_atomic(h, 2);
  ASSERT_TRUE(truth.decided());
  EXPECT_EQ(check_2atomicity_fzf(h).yes(), truth.yes());
  EXPECT_EQ(check_2atomicity_lbt(h).yes(), truth.yes());
}

// Lemma 4.3: with two backward clusters, one write must go before and
// one after the forward writes; both-prepended and both-appended are
// impossible. A chunk shaped to *require* the split must still be YES.
TEST(PaperExamples, Lemma43BackwardWritesSplitAroundForward) {
  HistoryBuilder b;
  b.write(0, 20, 1);
  b.read(40, 60, 1);   // forward zone [20, 40]
  b.write(21, 26, 2);
  b.read(23, 28, 2);   // backward cluster inside, early side
  b.write(33, 39, 3);
  b.read(35, 41, 3);   // backward cluster inside, late side
  const History h = normalize(b.build());
  const OracleResult truth = oracle_is_k_atomic(h, 2);
  ASSERT_TRUE(truth.decided());
  expect_all_agree(h, truth.yes(), "two-backward split");
}

// Section II-C: shortening a write to end before its dictated reads
// cannot change any k-atomicity verdict.
TEST(PaperExamples, WriteShorteningPreservesVerdicts) {
  HistoryBuilder b;
  b.write(0, 200, 1);   // write outlives both reads
  b.read(50, 90, 1);
  b.read(60, 100, 1);
  b.write(95, 150, 2);
  b.read(160, 170, 2);
  const History raw = b.build();
  const History shortened = normalize(raw);
  for (int k = 1; k <= 3; ++k) {
    const OracleResult after = oracle_is_k_atomic(shortened, k);
    ASSERT_TRUE(after.decided());
    // The paper argues the transformation is semantics-preserving; the
    // raw history cannot be fed to the oracle (precondition), so the
    // check is: the normalized verdict is well-defined and monotone.
    if (k > 1) {
      const OracleResult prev = oracle_is_k_atomic(shortened, k - 1);
      if (prev.yes()) {
        EXPECT_TRUE(after.yes());
      }
    }
  }
}

// Section II-C: hard anomalies refute k-atomicity for every k; the
// pipeline rejects them rather than deciding.
TEST(PaperExamples, AnomaliesRefuteOutright) {
  HistoryBuilder b;
  b.read(0, 10, 1);    // read preceding its dictating write
  b.write(20, 30, 1);
  VerifyOptions options;
  for (int k = 1; k <= 3; ++k) {
    options.k = k;
    EXPECT_EQ(verify_k_atomicity(b.build(), options).outcome,
              Outcome::precondition_failed);
  }
}

// Section II-B: locality -- a trace is k-atomic iff each register's
// projection is; one bad register cannot be masked by good ones.
TEST(PaperExamples, LocalityOneBadRegister) {
  KeyedTrace trace;
  for (int key = 0; key < 4; ++key) {
    const std::string name = "k" + std::to_string(key);
    const TimePoint base = key * 10'000;
    trace.add(name, make_write(base + 0, base + 10, 1));
    trace.add(name, make_read(base + 12, base + 20, 1));
  }
  // Poison k2 with a forced separation of 2.
  trace.add("k2", make_write(20'100, 20'110, 2));
  trace.add("k2", make_write(20'120, 20'130, 3));
  trace.add("k2", make_write(20'140, 20'150, 4));
  trace.add("k2", make_read(20'160, 20'170, 2));
  VerifyOptions options;
  options.k = 2;
  const KeyedReport report = verify_keyed_trace(trace, options);
  EXPECT_FALSE(report.all_yes());
  EXPECT_EQ(report.count(Outcome::no), 1u);
  EXPECT_FALSE(report.per_key.at("k2").yes());
  EXPECT_TRUE(report.per_key.at("k0").yes());
}

// The binary-search observation of Section II-B: k-AV for arbitrary k
// via the oracle is consistent along the whole ladder on a history
// with a rich staleness spectrum.
TEST(PaperExamples, BinarySearchLadderConsistent) {
  HistoryBuilder b;
  for (int i = 0; i < 5; ++i) {
    b.write(i * 100, i * 100 + 50, i + 1);
  }
  b.read(520, 540, 3);  // separation 2 under the forced order
  b.read(560, 580, 1);  // separation 4
  const History h = b.build();
  int first_yes = 0;
  for (int k = 1; k <= 5; ++k) {
    const OracleResult r = oracle_is_k_atomic(h, k);
    ASSERT_TRUE(r.decided());
    if (r.yes() && first_yes == 0) first_yes = k;
  }
  EXPECT_EQ(first_yes, 5);  // the read of w1 after w5 pins k
}

}  // namespace
}  // namespace kav
