// Property tests for the util/simd.h kernels: every kernel, at every
// dispatch level, must be bit-identical to an independent scalar
// reference (re-implemented here with plain loops, NOT the library's
// own scalar path) on adversarial inputs -- empty and single-element
// arrays, tails shorter than any vector width, all-zeros / all-ones /
// alternating lanes, INT64_MIN/INT64_MAX extremes (the AVX2 compares
// are signed; extremes catch sign-flip bugs), duplicates and order
// breaks planted at every vector-boundary position, unaligned bases,
// and strided records straddling 16/32-byte boundaries.
//
// The suite is value-parameterized over every Level the enum knows,
// including levels this machine cannot run: the dispatch contract says
// an unsupported level silently degrades downward, so calling with
// Level::avx2 on a non-AVX2 box must still produce reference results.
// Running the whole binary under KAV_FORCE_SCALAR=1 (ci.sh does, in
// the sanitizer job) re-covers every case with the pinned-scalar
// active_level() default as well.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "ingest/binary_trace.h"
#include "ingest/wire.h"
#include "util/rng.h"
#include "util/simd.h"

namespace kav {
namespace {

using simd::Level;

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

// --- Independent references (plain loops, byte-wise loads) -----------------

bool ref_strictly_increasing(const std::vector<std::int64_t>& a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i - 1] >= a[i]) return false;
  }
  return true;
}

bool ref_adjacent_duplicate(const std::vector<std::int64_t>& a) {
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i - 1] == a[i]) return true;
  }
  return false;
}

std::pair<std::int64_t, std::int64_t> ref_min_max(
    const std::vector<std::int64_t>& a) {
  std::pair<std::int64_t, std::int64_t> mm{kI64Max, kI64Min};
  for (std::int64_t v : a) {
    mm.first = std::min(mm.first, v);
    mm.second = std::max(mm.second, v);
  }
  return mm;
}

std::size_t ref_count_less(const std::vector<std::int64_t>& a,
                           const std::vector<std::int64_t>& b) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) count += a[i] < b[i] ? 1 : 0;
  return count;
}

std::size_t ref_first_not_less(const std::vector<std::int64_t>& a,
                               const std::vector<std::int64_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= b[i]) return i;
  }
  return a.size();
}

std::size_t ref_first_mismatch(const std::vector<std::uint32_t>& a,
                               std::uint32_t expected) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != expected) return i;
  }
  return a.size();
}

// The adversarial i64 input families every scan kernel is run over.
// Each family is generated at a sweep of lengths covering every tail
// shape of the widest vector (AVX2: 4 lanes) plus margin.
std::vector<std::vector<std::int64_t>> i64_families() {
  std::vector<std::vector<std::int64_t>> families;
  Rng rng(0x51B0);
  for (std::size_t n = 0; n <= 18; ++n) {
    std::vector<std::int64_t> increasing(n);
    for (std::size_t i = 0; i < n; ++i) {
      increasing[i] = static_cast<std::int64_t>(i) * 3 - 8;
    }
    families.push_back(increasing);
    families.push_back(std::vector<std::int64_t>(n, 0));
    families.push_back(std::vector<std::int64_t>(n, -1));  // all-ones bits
    families.push_back(std::vector<std::int64_t>(n, kI64Max));
    std::vector<std::int64_t> alternating(n);
    for (std::size_t i = 0; i < n; ++i) {
      alternating[i] = i % 2 == 0 ? kI64Min : kI64Max;
    }
    families.push_back(alternating);
    // A duplicate / order break planted at every position.
    for (std::size_t at = 1; at < n; ++at) {
      std::vector<std::int64_t> dup = increasing;
      dup[at] = dup[at - 1];
      families.push_back(dup);
      std::vector<std::int64_t> drop = increasing;
      drop[at] = drop[at - 1] - 1;
      families.push_back(drop);
    }
    std::vector<std::int64_t> random(n);
    for (auto& v : random) v = static_cast<std::int64_t>(rng.next());
    families.push_back(random);
  }
  // Extremes adjacent to each other, larger than any vector width.
  families.push_back({kI64Min, kI64Min + 1, -1, 0, 1, kI64Max - 1, kI64Max,
                      kI64Max, kI64Min, 7, 7, 7});
  return families;
}

class SimdLevelTest : public ::testing::TestWithParam<Level> {
 protected:
  Level level() const { return GetParam(); }
};

TEST_P(SimdLevelTest, StrictlyIncreasingMatchesReference) {
  for (const auto& a : i64_families()) {
    EXPECT_EQ(simd::is_strictly_increasing_i64(a.data(), a.size(), level()),
              ref_strictly_increasing(a))
        << "n=" << a.size();
  }
}

TEST_P(SimdLevelTest, AdjacentDuplicateMatchesReference) {
  for (const auto& a : i64_families()) {
    EXPECT_EQ(simd::has_adjacent_duplicate_i64(a.data(), a.size(), level()),
              ref_adjacent_duplicate(a))
        << "n=" << a.size();
  }
}

TEST_P(SimdLevelTest, MinMaxMatchesReference) {
  for (const auto& a : i64_families()) {
    EXPECT_EQ(simd::min_max_i64(a.data(), a.size(), level()), ref_min_max(a))
        << "n=" << a.size();
  }
}

TEST_P(SimdLevelTest, MinMaxEmptyIsFoldIdentity) {
  const auto mm = simd::min_max_i64(nullptr, 0, level());
  EXPECT_EQ(mm.first, kI64Max);
  EXPECT_EQ(mm.second, kI64Min);
}

TEST_P(SimdLevelTest, CountLessMatchesReference) {
  const auto families = i64_families();
  Rng rng(0xC0);
  for (const auto& a : families) {
    // Pair each family with itself (all-equal -> zero), a shifted copy,
    // and a random partner of the same length. The shift saturates at
    // the i64 extremes so it stays well-defined.
    std::vector<std::int64_t> shifted = a;
    for (auto& v : shifted) {
      const std::int64_t delta = 1 - static_cast<std::int64_t>(rng.bounded(3));
      if (delta > 0 && v > kI64Max - delta) {
        v = kI64Max;
      } else if (delta < 0 && v < kI64Min - delta) {
        v = kI64Min;
      } else {
        v += delta;
      }
    }
    std::vector<std::int64_t> random(a.size());
    for (auto& v : random) v = static_cast<std::int64_t>(rng.next());
    for (const auto& b : {a, shifted, random}) {
      EXPECT_EQ(simd::count_less_i64(a.data(), b.data(), a.size(), level()),
                ref_count_less(a, b))
          << "n=" << a.size();
    }
  }
}

TEST_P(SimdLevelTest, FirstNotLessMatchesReference) {
  const auto families = i64_families();
  for (const auto& a : families) {
    const std::size_t n = a.size();
    // b = a + 1 everywhere (all less), then break it at each position,
    // including INT64_MAX entries where a[i] + 1 would overflow -- use
    // a saturating bump so b stays well-defined.
    std::vector<std::int64_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = a[i] == kI64Max ? kI64Max : a[i] + 1;
    }
    EXPECT_EQ(simd::first_not_less_i64(a.data(), b.data(), n, level()),
              ref_first_not_less(a, b))
        << "n=" << n;
    for (std::size_t at = 0; at < n; ++at) {
      std::vector<std::int64_t> broken = b;
      broken[at] = a[at];  // a[at] >= b[at] exactly here (maybe earlier too)
      EXPECT_EQ(
          simd::first_not_less_i64(a.data(), broken.data(), n, level()),
          ref_first_not_less(a, broken))
          << "n=" << n << " at=" << at;
    }
  }
}

TEST_P(SimdLevelTest, FirstMismatchMatchesReference) {
  for (std::size_t n = 0; n <= 37; ++n) {
    for (std::uint32_t expected : {0u, 1u, 0xFFFFFFFFu, 0x80000000u}) {
      std::vector<std::uint32_t> a(n, expected);
      EXPECT_EQ(simd::first_mismatch_u32(a.data(), n, expected, level()),
                ref_first_mismatch(a, expected))
          << "uniform n=" << n;
      for (std::size_t at = 0; at < n; ++at) {
        std::vector<std::uint32_t> broken = a;
        broken[at] = ~expected;
        EXPECT_EQ(
            simd::first_mismatch_u32(broken.data(), n, expected, level()),
            ref_first_mismatch(broken, expected))
            << "n=" << n << " at=" << at;
      }
    }
  }
}

TEST_P(SimdLevelTest, ScansAcceptUnalignedBases) {
  // Element-offset slices of a bigger buffer: data() + k is 8-byte
  // aligned but deliberately NOT 16/32-byte aligned for most k, so the
  // vector loops must use unaligned loads. (Byte-misaligned int64_t
  // pointers would be UB to form; byte misalignment is exercised by
  // the strided gathers below, whose base is a byte pointer.)
  std::vector<std::int64_t> buffer(64 + 7);
  Rng rng(0xA11);
  for (auto& v : buffer) v = static_cast<std::int64_t>(rng.next());
  std::sort(buffer.begin(), buffer.end());
  for (std::size_t offset = 0; offset < 7; ++offset) {
    for (std::size_t n : {0ULL, 1ULL, 3ULL, 4ULL, 5ULL, 17ULL, 64ULL}) {
      std::vector<std::int64_t> window(buffer.begin() + offset,
                                       buffer.begin() + offset + n);
      EXPECT_EQ(
          simd::is_strictly_increasing_i64(buffer.data() + offset, n, level()),
          ref_strictly_increasing(window))
          << "offset=" << offset << " n=" << n;
      EXPECT_EQ(
          simd::has_adjacent_duplicate_i64(buffer.data() + offset, n, level()),
          ref_adjacent_duplicate(window))
          << "offset=" << offset << " n=" << n;
      EXPECT_EQ(simd::min_max_i64(buffer.data() + offset, n, level()),
                ref_min_max(window))
          << "offset=" << offset << " n=" << n;
    }
  }
}

TEST_P(SimdLevelTest, GatherI64MatchesWireLoads) {
  // Random byte blobs read at the trace-record stride (33 bytes, so
  // consecutive records straddle every 16/32-byte boundary pattern)
  // and at dense / degenerate strides, from every byte offset 0..32 --
  // exactly the "records straddle block boundaries" shape of a mapped
  // segment, where base has no alignment at all.
  Rng rng(0x6A7);
  std::vector<unsigned char> blob(kBinaryTraceRecordBytes * 40 + 64);
  for (auto& byte : blob) byte = static_cast<unsigned char>(rng.next());
  for (std::size_t stride :
       {kBinaryTraceRecordBytes, std::size_t{8}, std::size_t{9},
        std::size_t{64}}) {
    for (std::size_t offset : {0ULL, 1ULL, 4ULL, 7ULL, 31ULL, 32ULL}) {
      for (std::size_t n : {0ULL, 1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 13ULL,
                            32ULL}) {
        if (offset + (n == 0 ? 0 : (n - 1) * stride + 8) > blob.size()) {
          continue;  // combination would read past the blob
        }
        std::vector<std::int64_t> out(n + 2, -7);  // canaries at the end
        simd::gather_i64_strided(blob.data() + offset, stride, n, out.data(),
                                 level());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i], wire::load_i64(blob.data() + offset + i * stride))
              << "stride=" << stride << " offset=" << offset << " i=" << i;
        }
        EXPECT_EQ(out[n], -7) << "gather wrote past out[n)";
        EXPECT_EQ(out[n + 1], -7) << "gather wrote past out[n)";
      }
    }
  }
}

TEST_P(SimdLevelTest, GatherU32MatchesWireLoads) {
  Rng rng(0x6A8);
  std::vector<unsigned char> blob(kBinaryTraceRecordBytes * 40 + 64);
  for (auto& byte : blob) byte = static_cast<unsigned char>(rng.next());
  for (std::size_t stride :
       {kBinaryTraceRecordBytes, std::size_t{4}, std::size_t{5},
        std::size_t{64}}) {
    for (std::size_t offset : {0ULL, 1ULL, 3ULL, 15ULL, 16ULL, 33ULL}) {
      for (std::size_t n : {0ULL, 1ULL, 2ULL, 4ULL, 7ULL, 8ULL, 9ULL,
                            29ULL}) {
        if (offset + (n == 0 ? 0 : (n - 1) * stride + 4) > blob.size()) {
          continue;  // combination would read past the blob
        }
        std::vector<std::uint32_t> out(n + 2, 0xDEADBEEF);
        simd::gather_u32_strided(blob.data() + offset, stride, n, out.data(),
                                 level());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i], wire::load_u32(blob.data() + offset + i * stride))
              << "stride=" << stride << " offset=" << offset << " i=" << i;
        }
        EXPECT_EQ(out[n], 0xDEADBEEF) << "gather wrote past out[n)";
        EXPECT_EQ(out[n + 1], 0xDEADBEEF) << "gather wrote past out[n)";
      }
    }
  }
}

TEST_P(SimdLevelTest, RandomizedDifferentialAgainstScalarLevel) {
  // Seeded sweep pitting this level directly against Level::scalar on
  // the same random arrays -- catches any divergence the curated
  // families miss. KAV_FUZZ_SEED reproduces a failing sweep.
  std::uint64_t seed = 0x51D;
  if (const char* env = std::getenv("KAV_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("KAV_FUZZ_SEED=" + std::to_string(seed) + " trial " +
                 std::to_string(trial));
    const std::size_t n = rng.bounded(50);
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    // Narrow value range so duplicates and order flips actually occur.
    for (auto& v : a) v = static_cast<std::int64_t>(rng.bounded(16)) - 8;
    for (auto& v : b) v = static_cast<std::int64_t>(rng.bounded(16)) - 8;
    if (rng.bernoulli(0.3)) std::sort(a.begin(), a.end());
    EXPECT_EQ(simd::is_strictly_increasing_i64(a.data(), n, level()),
              simd::is_strictly_increasing_i64(a.data(), n, Level::scalar));
    EXPECT_EQ(simd::has_adjacent_duplicate_i64(a.data(), n, level()),
              simd::has_adjacent_duplicate_i64(a.data(), n, Level::scalar));
    EXPECT_EQ(simd::min_max_i64(a.data(), n, level()),
              simd::min_max_i64(a.data(), n, Level::scalar));
    EXPECT_EQ(simd::count_less_i64(a.data(), b.data(), n, level()),
              simd::count_less_i64(a.data(), b.data(), n, Level::scalar));
    EXPECT_EQ(simd::first_not_less_i64(a.data(), b.data(), n, level()),
              simd::first_not_less_i64(a.data(), b.data(), n, Level::scalar));
    std::vector<std::uint32_t> u(n);
    for (auto& v : u) v = static_cast<std::uint32_t>(rng.bounded(3));
    EXPECT_EQ(simd::first_mismatch_u32(u.data(), n, 1, level()),
              simd::first_mismatch_u32(u.data(), n, 1, Level::scalar));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, SimdLevelTest,
    ::testing::Values(Level::scalar, Level::sse2, Level::avx2),
    [](const ::testing::TestParamInfo<Level>& info) {
      return simd::to_string(info.param);
    });

// --- Dispatch plumbing -----------------------------------------------------

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(simd::to_string(Level::scalar), "scalar");
  EXPECT_STREQ(simd::to_string(Level::sse2), "sse2");
  EXPECT_STREQ(simd::to_string(Level::avx2), "avx2");
}

TEST(SimdDispatch, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(simd::supported(Level::scalar));
}

TEST(SimdDispatch, SupportedLevelsAreDownwardClosed) {
  // If avx2 runs here, sse2 must too: support can only shrink going up.
  if (simd::supported(Level::avx2)) {
    EXPECT_TRUE(simd::supported(Level::sse2));
  }
}

TEST(SimdDispatch, ActiveLevelIsSupportedAndCompiled) {
  const Level active = simd::active_level();
  EXPECT_TRUE(simd::supported(active));
  EXPECT_LE(static_cast<int>(active),
            static_cast<int>(simd::max_compiled_level()));
  // The cached read is stable across calls.
  EXPECT_EQ(simd::active_level(), active);
}

TEST(SimdDispatch, ForceScalarPinsActiveLevel) {
  // active_level() caches its first read of KAV_FORCE_SCALAR, so this
  // test can only assert the pin when the environment set it before
  // the process started (the ci.sh sanitizer job does); otherwise it
  // documents the contract by checking the level is the hardware one.
  const char* forced = std::getenv("KAV_FORCE_SCALAR");
  if (forced != nullptr && forced[0] != '\0' &&
      std::string(forced) != "0") {
    EXPECT_EQ(simd::active_level(), Level::scalar);
  } else {
    EXPECT_EQ(simd::active_level(),
              simd::supported(Level::avx2)   ? Level::avx2
              : simd::supported(Level::sse2) ? Level::sse2
                                             : Level::scalar);
  }
}

TEST(SimdDispatch, UnsupportedLevelDegradesToReferenceResults) {
  // Explicitly requesting a level the build/CPU lacks must degrade,
  // not crash or diverge: compare against scalar on a sorted array.
  std::vector<std::int64_t> a{1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (Level level : {Level::sse2, Level::avx2}) {
    EXPECT_TRUE(simd::is_strictly_increasing_i64(a.data(), a.size(), level));
    EXPECT_EQ(simd::min_max_i64(a.data(), a.size(), level),
              (std::pair<std::int64_t, std::int64_t>{1, 9}));
  }
}

}  // namespace
}  // namespace kav
