// Crash-recovery matrix for the TraceStore commit protocols
// (src/store/fault_injection.h). For every named fault point and every
// mutating operation sequence, a forked child runs the operation with
// KAV_STORE_FAULT_POINT set and dies via _Exit at the injected step --
// no unwinding, no flushes, the closest a test gets to power loss.
// The parent then reopens the directory and asserts the store is
// bit-identical to a legal state:
//
//   - append: all-or-nothing -- exactly the pre-append content or the
//     post-append content, never a torn segment;
//   - compact: always the full pre-compact content -- in particular
//     total_records equality catches the historical double-replay bug
//     (fold renamed over victim #1 before unlinking victims 2..n, so a
//     crash in the window replayed the folded records twice);
//
// and that Engine::verify over the reopened store yields verdicts
// bit-identical to a run that never crashed. Registered under the
// 'crash' ctest label (fork-heavy; serial by nature, still fast).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "history/serialization.h"
#include "ingest/trace_source.h"
#include "store/fault_injection.h"
#include "store/trace_store.h"

namespace kav {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) /
              ("kav_crash_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

KeyedTrace trace_chunk(int base) {
  KeyedTrace trace;
  for (int i = 0; i < 6; ++i) {
    const TimePoint t = base + 10 * i;
    trace.add("k" + std::to_string(i % 3),
              i % 2 == 0 ? make_write(t, t + 5, base + i)
                         : make_read(t, t + 5, base + i - 1));
  }
  return trace;
}

// Per-key op-sequence equality -- the only order replay guarantees (v2
// segments regroup records into per-key blocks).
void expect_same_keyed_content(const KeyedTrace& a, const KeyedTrace& b) {
  const KeyedHistories sa = split_by_key(a);
  const KeyedHistories sb = split_by_key(b);
  ASSERT_EQ(sa.per_key.size(), sb.per_key.size());
  auto ita = sa.per_key.begin();
  auto itb = sb.per_key.begin();
  for (; ita != sa.per_key.end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    ASSERT_EQ(ita->second.size(), itb->second.size()) << ita->first;
    for (std::size_t i = 0; i < ita->second.size(); ++i) {
      ASSERT_EQ(ita->second.op(static_cast<OpId>(i)),
                itb->second.op(static_cast<OpId>(i)))
          << ita->first << " op " << i;
    }
  }
}

enum class Op { append, compact };

// Child body: reopen the store with the fault armed and run the
// operation. Exits 0 when the fault point was not on the operation's
// path, kFaultExitCode when the injection fired, 43 on any exception
// (nothing on these paths should throw).
[[noreturn]] void run_child(const fs::path& dir, const char* point, Op op) {
  ::setenv("KAV_STORE_FAULT_POINT", point, 1);
  try {
    TraceStore store(dir);
    if (op == Op::append) {
      store.append(trace_chunk(300));
    } else {
      store.compact();
    }
  } catch (...) {
    std::_Exit(43);
  }
  std::_Exit(0);
}

// Forks, runs `run_child`, and returns the child's exit code.
int crash_run(const fs::path& dir, const char* point, Op op) {
  const pid_t pid = ::fork();
  if (pid == 0) run_child(dir, point, op);
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  return WEXITSTATUS(status);
}

// Reopen-time invariants every recovered store must satisfy: only the
// MANIFEST and live segments on disk (every orphan swept), and a fully
// clean fsck.
void expect_recovered_clean(const fs::path& dir, const TraceStore& store) {
  std::size_t disk_segments = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name == "MANIFEST") continue;
    EXPECT_TRUE(store_detail::parse_segment_number(name).has_value())
        << "leftover file after recovery: " << name;
    ++disk_segments;
  }
  EXPECT_EQ(disk_segments, store.segment_count());
  const FsckReport report = store.fsck();
  EXPECT_TRUE(report.ok()) << (report.errors.empty()
                                   ? ""
                                   : report.errors.front());
}

// Bit-identical verdicts: the recovered store, verified through the
// Engine, must match the report computed from the expected content.
void expect_same_verdicts(const TraceStore& store,
                          const KeyedTrace& expected) {
  Engine engine;
  const Report reference = engine.verify(expected);
  auto source = store.open_source();
  const Report actual = engine.verify(*source);
  ASSERT_EQ(actual.per_key.size(), reference.per_key.size());
  for (const auto& [key, result] : actual.per_key) {
    const auto it = reference.per_key.find(key);
    ASSERT_NE(it, reference.per_key.end()) << key;
    EXPECT_EQ(result.verdict.outcome, it->second.verdict.outcome) << key;
    EXPECT_EQ(result.verdict.witness, it->second.verdict.witness) << key;
    EXPECT_EQ(result.verdict.reason, it->second.verdict.reason) << key;
  }
}

bool starts_with(std::string_view name, std::string_view prefix) {
  return name.substr(0, prefix.size()) == prefix;
}

TEST(StoreCrash, AppendIsAllOrNothingAtEveryFaultPoint) {
  for (const char* point : store_detail::kAllFaultPoints) {
    SCOPED_TRACE(point);
    TempDir dir(std::string("append_") + point);
    KeyedTrace before;
    {
      TraceStore store(dir.path());
      store.append(trace_chunk(0));
      store.append(trace_chunk(100));
      before = drain(*store.open_source());
    }
    KeyedTrace after = before;
    for (const KeyedOperation& kop : trace_chunk(300).ops) {
      after.ops.push_back(kop);
    }

    const int code = crash_run(dir.path(), point, Op::append);
    // Compaction-only points are not on the append path: the child
    // finishes normally. Every other point must fire.
    if (starts_with(point, "compact.")) {
      ASSERT_EQ(code, 0);
    } else {
      ASSERT_EQ(code, store_detail::kFaultExitCode);
    }

    TraceStore store(dir.path());
    expect_recovered_clean(dir.path(), store);
    const KeyedTrace recovered = drain(*store.open_source());
    // All-or-nothing: exactly the pre- or post-append content.
    const bool committed = store.total_records() == after.size();
    ASSERT_TRUE(committed || store.total_records() == before.size())
        << "torn append: " << store.total_records() << " records";
    const KeyedTrace& expected = committed ? after : before;
    expect_same_keyed_content(expected, recovered);
    expect_same_verdicts(store, expected);

    // The recovered store keeps working: numbering was not corrupted
    // by the crash, and a fresh append lands cleanly.
    store.append(trace_chunk(900));
    EXPECT_EQ(store.total_records(), expected.size() + 6u);
  }
}

TEST(StoreCrash, CompactNeverDuplicatesOrLosesRecords) {
  for (const char* point : store_detail::kAllFaultPoints) {
    SCOPED_TRACE(point);
    TempDir dir(std::string("compact_") + point);
    KeyedTrace before;
    {
      TraceStore store(dir.path());
      store.append(trace_chunk(0));
      store.append(trace_chunk(100));
      store.append(trace_chunk(200));
      before = drain(*store.open_source());
    }

    const int code = crash_run(dir.path(), point, Op::compact);
    // The append-only commit point is not on the compact path.
    if (std::string_view(point) == store_detail::kFaultAppendBeforeManifest) {
      ASSERT_EQ(code, 0);
    } else {
      ASSERT_EQ(code, store_detail::kFaultExitCode);
    }

    TraceStore store(dir.path());
    expect_recovered_clean(dir.path(), store);
    // Compaction never changes content. The record-count equality is
    // the regression teeth for the double-replay bug: replaying the
    // fold AND a victim would double-count here.
    ASSERT_EQ(store.total_records(), before.size())
        << "compaction crash changed the record count";
    expect_same_keyed_content(before, drain(*store.open_source()));
    expect_same_verdicts(store, before);
  }
}

}  // namespace
}  // namespace kav
