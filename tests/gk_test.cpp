// Tests for the Gibbons-Korach 1-AV baseline: the two zone conditions
// (no overlapping forward zones; no backward zone inside a forward
// zone), witness construction, and classic atomic/non-atomic examples.
#include <gtest/gtest.h>

#include "core/gk.h"
#include "core/witness.h"
#include "history/anomaly.h"
#include "history/history.h"

namespace kav {
namespace {

void expect_yes_with_valid_witness(const History& h) {
  const Verdict v = check_1atomicity_gk(h);
  ASSERT_TRUE(v.yes()) << v.reason;
  const WitnessCheck check = validate_witness(h, v.witness, 1);
  EXPECT_TRUE(check.ok()) << check.detail;
}

TEST(Gk, EmptyHistoryIsAtomic) {
  EXPECT_TRUE(check_1atomicity_gk(History{}).yes());
}

TEST(Gk, SequentialReadsOfLatestWriteAreAtomic) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  b.write(22, 30, 2);
  b.read(32, 40, 2);
  b.read(42, 50, 2);
  expect_yes_with_valid_witness(b.build());
}

TEST(Gk, StaleReadAfterNewerWriteIsNotAtomic) {
  // w1 < w2 < r(w1): the read returns a stale value with no
  // concurrency excuse. In zone terms, w2's read-free cluster is a
  // backward zone [20, 30] contained in w1's forward zone [10, 40].
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.read(40, 50, 1);
  const Verdict v = check_1atomicity_gk(b.build());
  EXPECT_TRUE(v.no());
  EXPECT_NE(v.reason.find("backward zone contained"), std::string::npos);
}

TEST(Gk, OverlappingForwardZonesRejectedAsSuch) {
  // Two clusters whose forward zones overlap: w1's zone [10, 40]
  // and w2's zone [30, 60].
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(40, 50, 1);
  b.write(25, 30, 2);
  b.read(60, 70, 2);
  const Verdict v = check_1atomicity_gk(b.build());
  EXPECT_TRUE(v.no());
  EXPECT_NE(v.reason.find("forward zones overlap"), std::string::npos);
}

TEST(Gk, ConcurrentReadMayReturnOldValue) {
  // The read overlaps w2, so returning w1's value is atomic (commit
  // the read before w2).
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.read(15, 40, 1);
  expect_yes_with_valid_witness(b.build());
}

TEST(Gk, BackwardZoneInsideForwardZoneIsNotAtomic) {
  // Forward zone from w1's cluster spans [10, 60]; w2's cluster forms a
  // backward zone strictly inside it.
  HistoryBuilder b;
  b.write(0, 10, 1);   // w1
  b.read(60, 70, 1);   // r(w1): forward zone [10, 60]
  b.write(20, 45, 2);  // w2
  b.read(25, 50, 2);   // r(w2): backward zone [25, 45]
  const Verdict v = check_1atomicity_gk(b.build());
  EXPECT_TRUE(v.no());
  EXPECT_NE(v.reason.find("backward zone contained"), std::string::npos);
}

TEST(Gk, BackwardZoneOverlappingForwardZoneBoundaryIsAtomic) {
  // Same shape but the backward zone pokes out of the forward zone:
  // order the backward cluster before or after the forward one.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(60, 70, 1);   // forward zone [10, 60]
  b.write(20, 80, 2);  // w2 extends past the forward zone
  b.read(25, 85, 2);   // backward zone [25, 80], not contained
  expect_yes_with_valid_witness(b.build());
}

TEST(Gk, WriteOnlyHistoryIsAtomic) {
  HistoryBuilder b;
  for (int i = 0; i < 6; ++i) {
    b.write(i * 7, i * 7 + 30, i + 1);  // heavily overlapping writes
  }
  expect_yes_with_valid_witness(normalize(b.build()));
}

TEST(Gk, ConcurrentWritesWithInterleavedReadsAtomic) {
  HistoryBuilder b;
  b.write(0, 100, 1);
  b.write(5, 95, 2);
  b.read(50, 105, 1);  // overlaps both writes
  expect_yes_with_valid_witness(normalize(b.build()));
}

TEST(Gk, TwoDisjointForwardZonesAtomic) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 1);  // zone [10, 20]
  b.write(40, 50, 2);
  b.read(60, 70, 2);  // zone [50, 60]
  expect_yes_with_valid_witness(b.build());
}

TEST(Gk, RejectsAnomalousInput) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 99);
  const Verdict v = check_1atomicity_gk(b.build());
  EXPECT_EQ(v.outcome, Outcome::precondition_failed);
}

TEST(Gk, ChainOfOverlappingForwardZonesRejected) {
  // Forward zones [10,30] and [20,40] overlap: some read must be two
  // writes stale.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(30, 45, 1);   // zone [10, 30]
  b.write(15, 20, 2);  // finishes at 20
  b.read(40, 55, 2);   // zone [20, 40]
  EXPECT_TRUE(check_1atomicity_gk(normalize(b.build())).no());
}

TEST(Gk, ManyReadsPerClusterAtomic) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  for (int i = 0; i < 5; ++i) {
    b.read(12 + 10 * i, 20 + 10 * i, 1);
  }
  b.write(100, 110, 2);
  for (int i = 0; i < 5; ++i) {
    b.read(112 + 10 * i, 120 + 10 * i, 2);
  }
  expect_yes_with_valid_witness(normalize(b.build()));
}

}  // namespace
}  // namespace kav
