// Tests for obs::RateWindow / obs::LevelWindow (src/obs/rate_window.h):
// bucket semantics over completed seconds, ring rollover at and past
// the window boundary, saturation clamping, and -- the property the
// packed-word CAS design exists for -- exactness under concurrent
// writers, checked differentially against a plain atomic accumulator.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/rate_window.h"

namespace kav::obs {
namespace {

// --- RateWindow bucket semantics -------------------------------------------

TEST(RateWindow, EmptyWindowReadsZero) {
  RateWindow window;
  EXPECT_EQ(window.total(0, 10), 0u);
  EXPECT_EQ(window.total(100, 60), 0u);
  EXPECT_EQ(window.rate(100, 10), 0.0);
}

TEST(RateWindow, CoversCompletedSecondsOnly) {
  RateWindow window;
  window.record(5, 100);
  // Second 5 is still live at t=5: not counted.
  EXPECT_EQ(window.total(5, 10), 0u);
  // At t=6 second 5 has completed.
  EXPECT_EQ(window.total(6, 1), 100u);
  EXPECT_EQ(window.total(6, 10), 100u);
  // At t=16 second 5 is 11 back: outside a 10s window, inside 60s.
  EXPECT_EQ(window.total(16, 10), 0u);
  EXPECT_EQ(window.total(16, 60), 100u);
}

TEST(RateWindow, AccumulatesWithinOneSecond) {
  RateWindow window;
  window.record(7, 1);
  window.record(7, 2);
  window.record(7, 3);
  EXPECT_EQ(window.total(8, 1), 6u);
}

TEST(RateWindow, RateAveragesOverWindow) {
  RateWindow window;
  // 10 events in each of seconds 0..4, nothing after.
  for (std::int64_t s = 0; s < 5; ++s) window.record(s, 10);
  EXPECT_DOUBLE_EQ(window.rate(5, 5), 10.0);
  // The same 50 events over a 10s window: half the rate.
  EXPECT_DOUBLE_EQ(window.rate(10, 10), 5.0);
  // Window slid fully past the burst: decayed to zero.
  EXPECT_DOUBLE_EQ(window.rate(5 + 60, 10), 0.0);
}

TEST(RateWindow, WindowClampsToLimits) {
  RateWindow window;
  window.record(0, 42);
  // 0 and negative clamp to 1; huge clamps to kMaxWindowSeconds.
  EXPECT_EQ(window.total(1, 0), 42u);
  EXPECT_EQ(window.total(1, -5), 42u);
  EXPECT_EQ(window.total(1, 1'000'000), 42u);
  EXPECT_DOUBLE_EQ(window.rate(1, 0), 42.0);
}

TEST(RateWindow, BeforeEpochSecondsReadZero) {
  RateWindow window;
  window.record(0, 9);
  // At t=2 the 60s window reaches back past second 0: the negative
  // seconds contribute nothing (and must not alias ring slots).
  EXPECT_EQ(window.total(2, 60), 9u);
  EXPECT_EQ(window.total(0, 60), 0u);
}

// --- Ring rollover ---------------------------------------------------------

TEST(RateWindow, RolloverReplacesStaleSlots) {
  RateWindow window;
  window.record(3, 111);
  // kSlots seconds later the same slot holds a new second; the stale
  // count must neither leak into totals nor survive the overwrite.
  const std::int64_t wrapped = 3 + RateWindow::kSlots;
  window.record(wrapped, 7);
  EXPECT_EQ(window.total(wrapped + 1, 1), 7u);
  // A 60s window ending after the wrap never reaches second 3.
  EXPECT_EQ(window.total(wrapped + 1, 60), 7u);
}

TEST(RateWindow, StaleSlotNotMisreadWithoutOverwrite) {
  RateWindow window;
  window.record(3, 111);
  // Nothing recorded since; querying around the wrap point must not
  // read slot 3's old count as if it belonged to second 3 + kSlots.
  const std::int64_t wrapped = 3 + RateWindow::kSlots;
  EXPECT_EQ(window.total(wrapped + 1, 1), 0u);
}

TEST(RateWindow, SixtySecondWindowExactAcrossManyWraps) {
  RateWindow window;
  // 1 event per second for 10 ring lengths: any 60s window deep inside
  // the run totals exactly 60.
  const std::int64_t end = RateWindow::kSlots * 10;
  for (std::int64_t s = 0; s <= end; ++s) window.record(s, 1);
  EXPECT_EQ(window.total(end, 60), 60u);
  EXPECT_DOUBLE_EQ(window.rate(end, 60), 1.0);
}

TEST(RateWindow, PerSecondCountSaturatesAtFortyBits) {
  RateWindow window;
  window.record(1, RateWindow::kCountMask);
  window.record(1, 50);  // would carry into the tag without the clamp
  EXPECT_EQ(window.total(2, 1), RateWindow::kCountMask);
  // One huge record clamps too.
  window.record(2, ~std::uint64_t{0});
  EXPECT_EQ(window.total(3, 1), RateWindow::kCountMask);
}

// --- Concurrent exactness (differential vs scalar accumulator) -------------

TEST(RateWindow, ConcurrentWritersAreExact) {
  RateWindow window;
  std::atomic<std::uint64_t> reference{0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  // All writers hammer a small span of seconds so same-slot CAS
  // contention (the racy case the packed word fixes) actually happens.
  constexpr std::int64_t kSeconds = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&window, &reference, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t second = (t + i) % kSeconds;
        const std::uint64_t count = 1 + (i & 3);
        window.record(second, count);
        reference.fetch_add(count, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Query from kSeconds: every written second has completed and none
  // has wrapped, so the window must hold every unit recorded.
  EXPECT_EQ(window.total(kSeconds, RateWindow::kMaxWindowSeconds),
            reference.load());
}

TEST(RateWindow, ConcurrentWritersAcrossWrapLoseNothingRecent) {
  // Writers race across ring wraps: wholesale slot replacement (stale
  // tag) and same-second accumulation interleave on the same atomic
  // word. A barrier keeps the threads on the same second -- the
  // cadence contract writers must follow -- while leaving every record
  // within a second racing.
  RateWindow window;
  constexpr int kThreads = 4;
  constexpr std::int64_t kSpan = RateWindow::kSlots * 3;
  std::barrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&window, &barrier] {
      for (std::int64_t s = 0; s <= kSpan; ++s) {
        barrier.arrive_and_wait();
        window.record(s, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Each of the last 60 completed seconds saw exactly kThreads units:
  // wholesale slot replacement during the racing prefix must not have
  // dropped any same-second add in the suffix.
  EXPECT_EQ(window.total(kSpan + 1, 60),
            static_cast<std::uint64_t>(60 * kThreads));
}

// --- LevelWindow -----------------------------------------------------------

TEST(LevelWindow, LastWritePerSecondWins) {
  LevelWindow window;
  window.record(4, 10);
  window.record(4, 25);
  EXPECT_TRUE(window.has(5, 1));
  EXPECT_EQ(window.at(5, 1), 25);
}

TEST(LevelWindow, AbsentSecondsReportAbsent) {
  LevelWindow window;
  window.record(4, 10);
  EXPECT_FALSE(window.has(5, 2));          // second 3: never recorded
  EXPECT_EQ(window.at(5, 2, -1), -1);      // caller-chosen sentinel
  EXPECT_FALSE(window.has(1, 60));         // before the epoch
  EXPECT_EQ(window.at(1, 60, 7), 7);
}

TEST(LevelWindow, RingWrapInvalidatesOldSeconds) {
  LevelWindow window;
  window.record(2, 99);
  const std::int64_t wrapped = 2 + LevelWindow::kSlots;
  window.record(wrapped, 5);
  // Slot now belongs to `wrapped`; second 2 reads absent.
  EXPECT_EQ(window.at(wrapped + 1, 1), 5);
  EXPECT_FALSE(
      window.has(wrapped + 1, static_cast<int>(LevelWindow::kSlots) + 1));
}

}  // namespace
}  // namespace kav::obs
