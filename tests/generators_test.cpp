// Tests for the synthetic workload generators: determinism, anomaly
// freedom, ground-truth guarantees of each family, and the structural
// knobs (concurrency level c).
#include <gtest/gtest.h>

#include "core/fzf.h"
#include "core/oracle.h"
#include "gen/generators.h"
#include "history/anomaly.h"
#include "util/rng.h"

namespace kav {
namespace {

TEST(Generators, KAtomicDeterministicPerSeed) {
  gen::KAtomicConfig config;
  Rng a(5), b(5), c(6);
  const auto ga = gen::generate_k_atomic(config, a);
  const auto gb = gen::generate_k_atomic(config, b);
  const auto gc = gen::generate_k_atomic(config, c);
  ASSERT_EQ(ga.history.size(), gb.history.size());
  for (OpId i = 0; i < ga.history.size(); ++i) {
    EXPECT_EQ(ga.history.op(i), gb.history.op(i));
  }
  EXPECT_EQ(ga.intended_order, gb.intended_order);
  // Different seed: almost surely different layout.
  bool any_diff = gc.history.size() != ga.history.size();
  for (OpId i = 0; !any_diff && i < ga.history.size(); ++i) {
    any_diff = !(ga.history.op(i) == gc.history.op(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, KAtomicIsNormalizedAndClean) {
  Rng rng(8);
  for (int t = 0; t < 20; ++t) {
    gen::KAtomicConfig config;
    config.writes = 12;
    config.k = 3;
    const auto g = gen::generate_k_atomic(config, rng);
    EXPECT_TRUE(is_normalized(g.history));
    EXPECT_TRUE(find_anomalies(g.history).empty());
  }
}

TEST(Generators, SpreadControlsConcurrency) {
  Rng rng(20);
  gen::KAtomicConfig tight;
  tight.writes = 60;
  tight.spread = 0.2;
  gen::KAtomicConfig wide = tight;
  wide.spread = 8.0;
  const auto narrow_history = gen::generate_k_atomic(tight, rng);
  const auto wide_history = gen::generate_k_atomic(wide, rng);
  EXPECT_LT(narrow_history.history.max_concurrent_writes(),
            wide_history.history.max_concurrent_writes());
}

TEST(Generators, ForcedSeparationStructure) {
  const History h = gen::generate_forced_separation(2, 3);
  EXPECT_EQ(h.size(), 12u);  // 3 blocks x (3 writes + 1 read)
  EXPECT_EQ(h.write_count(), 9u);
  EXPECT_TRUE(find_anomalies(h).empty());
  EXPECT_EQ(h.max_concurrent_writes(), 1u);  // all disjoint
}

TEST(Generators, PropertyPTripleZonesSharePoint) {
  const History h = gen::generate_property_p_triple();
  const auto zones = compute_zones(h);
  ASSERT_EQ(zones.size(), 3u);
  for (const Zone& z : zones) EXPECT_TRUE(z.forward);
  // All three zones contain a common point: max low < min high.
  TimePoint max_low = zones[0].low(), min_high = zones[0].high();
  for (const Zone& z : zones) {
    max_low = std::max(max_low, z.low());
    min_high = std::min(min_high, z.high());
  }
  EXPECT_LT(max_low, min_high);
}

TEST(Generators, PropertyPFanOverlapStructure) {
  const History h = gen::generate_property_p_fan(4);
  const auto zones = compute_zones(h);
  ASSERT_EQ(zones.size(), 5u);
  // The long zone overlaps all others; the short ones are disjoint.
  int overlaps = 0;
  for (std::size_t i = 1; i < zones.size(); ++i) {
    overlaps += zones[0].interval().overlaps(zones[i].interval());
    for (std::size_t j = i + 1; j < zones.size(); ++j) {
      EXPECT_FALSE(zones[i].interval().overlaps(zones[j].interval()));
    }
  }
  EXPECT_EQ(overlaps, 4);
}

TEST(Generators, B3ChunkHasSingleChunkWithBBackwardClusters) {
  for (int b = 3; b <= 6; ++b) {
    const History h = gen::generate_b3_chunk(b);
    const ChunkSet cs = compute_chunk_set(h);
    ASSERT_EQ(cs.chunks.size(), 1u) << "b=" << b;
    EXPECT_EQ(cs.chunks[0].backward_writes.size(),
              static_cast<std::size_t>(b));
    EXPECT_TRUE(cs.dangling_writes.empty());
  }
}

TEST(Generators, RandomMixAlwaysCleanAndNormalized) {
  Rng rng(33);
  for (int t = 0; t < 100; ++t) {
    gen::RandomMixConfig config;
    config.operations = 14;
    const History h = gen::generate_random_mix(config, rng);
    EXPECT_EQ(h.size(), 14u);
    EXPECT_TRUE(is_normalized(h));
    EXPECT_TRUE(find_anomalies(h).empty()) << "trial " << t;
  }
}

TEST(Generators, RandomMixProducesBothVerdicts) {
  Rng rng(44);
  int yes = 0, no = 0;
  for (int t = 0; t < 120; ++t) {
    gen::RandomMixConfig config;
    config.operations = 10;
    config.staleness_decay = 0.6;
    const History h = gen::generate_random_mix(config, rng);
    const OracleResult r = oracle_is_k_atomic(h, 2);
    ASSERT_TRUE(r.decided());
    ++(r.yes() ? yes : no);
  }
  EXPECT_GT(yes, 10);
  EXPECT_GT(no, 10);
}

TEST(Generators, HighConcurrencyHasRequestedC) {
  Rng rng(1);
  const History h = gen::generate_high_concurrency(4, 8, rng);
  EXPECT_EQ(h.max_concurrent_writes(), 8u);
  EXPECT_TRUE(find_anomalies(h).empty());
  // 2-atomic by construction.
  EXPECT_TRUE(check_2atomicity_fzf(h).yes());
}

TEST(Generators, InvalidConfigsThrow) {
  Rng rng(2);
  gen::KAtomicConfig bad;
  bad.writes = 0;
  EXPECT_THROW(gen::generate_k_atomic(bad, rng), std::invalid_argument);
  EXPECT_THROW(gen::generate_forced_separation(-1), std::invalid_argument);
  EXPECT_THROW(gen::generate_property_p_fan(2), std::invalid_argument);
  EXPECT_THROW(gen::generate_b3_chunk(2), std::invalid_argument);
  EXPECT_THROW(gen::generate_high_concurrency(0, 5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace kav
