// Unit tests for the trace-store subsystem (src/store/): the v2
// segment format end to end (SegmentWriter -> sequential reader and
// mmap-backed MappedSegment), per-key index statistics and selective
// reads, the TraceStore directory (append/import/reopen/compact), the
// IndexedTraceSource behind open_trace_source, Engine::verify with
// RunOptions::key_filter on both the index-backed fast path and the
// filtered-drain fallback, and the reader/footer error paths (empty
// file, bad magic, truncated header, truncated footer, index pointing
// past EOF).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/verify.h"
#include "history/serialization.h"
#include "ingest/binary_trace.h"
#include "ingest/trace_source.h"
#include "store/indexed_source.h"
#include "store/mapped_segment.h"
#include "store/segment_writer.h"
#include "store/trace_store.h"

namespace kav {
namespace {

namespace fs = std::filesystem;

// A per-test scratch directory under the gtest temp root, removed on
// destruction so runs do not accumulate segment files.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) /
              ("kav_store_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

KeyedTrace sample_trace() {
  KeyedTrace trace;
  trace.add("alpha", make_write(0, 10, 42, 7));
  trace.add("alpha", make_read(12, 20, 42));
  trace.add("beta", make_write(-5, 3, 1));
  trace.add("alpha", make_write(25, 30, 43, 0));
  trace.add("beta", make_read(4, 9, 1, 3));
  trace.add("gamma", make_write(100, 110, 9));
  return trace;
}

// v2 regroups records into per-key blocks, so traces are compared as
// per-key op sequences (the only order verification depends on), not
// as flat streams.
void expect_same_keyed_content(const KeyedTrace& a, const KeyedTrace& b) {
  const KeyedHistories sa = split_by_key(a);
  const KeyedHistories sb = split_by_key(b);
  ASSERT_EQ(sa.per_key.size(), sb.per_key.size());
  auto ita = sa.per_key.begin();
  auto itb = sb.per_key.begin();
  for (; ita != sa.per_key.end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    ASSERT_EQ(ita->second.size(), itb->second.size()) << ita->first;
    for (std::size_t i = 0; i < ita->second.size(); ++i) {
      EXPECT_EQ(ita->second.op(static_cast<OpId>(i)),
                itb->second.op(static_cast<OpId>(i)))
          << ita->first << " op " << i;
    }
  }
}

std::vector<Operation> ops_of(const KeyedTrace& trace,
                              const std::string& key) {
  std::vector<Operation> ops;
  for (const KeyedOperation& kop : trace.ops) {
    if (kop.key == key) ops.push_back(kop.op);
  }
  return ops;
}

std::string write_v2_file(const TempDir& dir, const std::string& name,
                          const KeyedTrace& trace,
                          std::size_t records_per_block = 4096) {
  const std::string path = dir.file(name);
  std::ofstream out(path, std::ios::binary);
  SegmentWriterOptions options;
  options.records_per_block = records_per_block;
  SegmentWriter writer(out, options);
  writer.add(trace);
  writer.finish();
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Segment format --------------------------------------------------------

TEST(SegmentWriter, V2StreamIsReadableBySequentialReader) {
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace, 4096, kBinaryTraceVersion2);
  BinaryTraceReader reader(buffer);
  EXPECT_EQ(reader.version(), kBinaryTraceVersion2);
  KeyedTrace decoded;
  KeyedOperation kop;
  while (reader.next(kop)) decoded.ops.push_back(kop);
  EXPECT_EQ(decoded.size(), trace.size());
  expect_same_keyed_content(trace, decoded);
}

TEST(SegmentWriter, SmallBlocksRoundTrip) {
  const KeyedTrace trace = sample_trace();
  for (const std::size_t block : {1u, 2u, 3u}) {
    std::stringstream buffer;
    write_binary_trace(buffer, trace, block, kBinaryTraceVersion2);
    expect_same_keyed_content(trace, read_binary_trace(buffer));
  }
}

TEST(SegmentWriter, EvictionUnderMemoryPressureKeepsPerKeyOrder) {
  KeyedTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.add("k" + std::to_string(i % 7),
              make_write(10 * i, 10 * i + 5, i, i % 3));
  }
  std::stringstream buffer;
  SegmentWriterOptions options;
  options.records_per_block = 1000;  // never hit: eviction must kick in
  options.max_buffered_records = 4;
  SegmentWriter writer(buffer, options);
  writer.add(trace);
  const SegmentStats stats = writer.finish();
  EXPECT_EQ(stats.records, 100u);
  EXPECT_EQ(stats.keys, 7u);
  EXPECT_GT(stats.blocks, 7u);  // eviction forced multiple blocks per key
  expect_same_keyed_content(trace, read_binary_trace(buffer));
}

TEST(SegmentWriter, AddAfterFinishThrows) {
  std::stringstream buffer;
  SegmentWriter writer(buffer);
  writer.add("k", make_write(0, 1, 1));
  writer.finish();
  EXPECT_THROW(writer.add("k", make_write(2, 3, 2)), std::logic_error);
  // finish() is idempotent.
  EXPECT_EQ(writer.finish().records, 1u);
}

TEST(SegmentWriter, ValidatesRecords) {
  std::stringstream buffer;
  SegmentWriter writer(buffer);
  EXPECT_THROW(writer.add("k", make_write(5, 5, 1)), std::invalid_argument);
  EXPECT_THROW(writer.add(std::string(70'000, 'x'), make_write(0, 1, 1)),
               std::invalid_argument);
}

TEST(MappedSegment, ParsesIndexAndServesSelectiveReads) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("mapped_basic");
  const std::string path = write_v2_file(dir, "seg.kavb", trace, 2);

  MappedSegment segment(path);
  EXPECT_TRUE(segment.indexed());
  EXPECT_EQ(segment.version(), kBinaryTraceVersion2);
  EXPECT_EQ(segment.key_count(), 3u);
  EXPECT_EQ(segment.total_records(), trace.size());

  const KeyStat* alpha = segment.stat("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->records, 3u);
  EXPECT_EQ(alpha->blocks, 2u);  // 3 records at block size 2
  EXPECT_EQ(alpha->min_start, 0);
  EXPECT_EQ(alpha->max_finish, 30);
  EXPECT_EQ(segment.stat("nope"), nullptr);
  EXPECT_FALSE(segment.contains("nope"));

  for (const std::string key : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(segment.read_key(key), ops_of(trace, key)) << key;
  }
  EXPECT_TRUE(segment.read_key("absent").empty());
  expect_same_keyed_content(trace, segment.read_all());
}

TEST(MappedSegment, ReadsV1FilesUnindexed) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("mapped_v1");
  const std::string path = dir.file("v1.kavb");
  write_binary_trace_file(path, trace);

  MappedSegment segment(path);
  EXPECT_FALSE(segment.indexed());
  EXPECT_EQ(segment.version(), kBinaryTraceVersion);
  expect_same_keyed_content(trace, segment.read_all());
  EXPECT_THROW(segment.read_key("alpha"), std::logic_error);
}

TEST(MappedSegment, EmptyV2SegmentIsIndexedAndEmpty) {
  TempDir dir("mapped_empty");
  const std::string path = write_v2_file(dir, "empty.kavb", KeyedTrace{});
  MappedSegment segment(path);
  EXPECT_TRUE(segment.indexed());
  EXPECT_EQ(segment.key_count(), 0u);
  EXPECT_EQ(segment.total_records(), 0u);
  EXPECT_TRUE(segment.read_all().empty());
}

// --- Error paths -----------------------------------------------------------

TEST(StoreErrors, EmptyFile) {
  TempDir dir("err_empty");
  const std::string path = dir.file("empty.kavb");
  write_file(path, "");
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-header error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"),
              std::string::npos);
  }
  // The sniffing factory treats a magic-less (empty) file as text: an
  // empty trace, not an error.
  EXPECT_TRUE(drain(*open_trace_source(path)).empty());
}

TEST(StoreErrors, MissingFile) {
  TempDir dir("err_missing");
  EXPECT_THROW(open_trace_source(dir.file("nope.kavb")), std::runtime_error);
  EXPECT_THROW(MappedSegment(dir.file("nope.kavb")), std::runtime_error);
}

TEST(StoreErrors, BadMagic) {
  TempDir dir("err_magic");
  const std::string path = dir.file("junk.kavb");
  write_file(path, "JUNKJUNKJUNKJUNK");
  try {
    MappedSegment segment(path);
    FAIL() << "expected a bad-magic error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
  // Magic-less bytes sniff as text and fail in the text parser with a
  // line number instead.
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, TruncatedHeader) {
  TempDir dir("err_header");
  const std::string full = read_file(
      write_v2_file(dir, "full.kavb", sample_trace()));
  const std::string path = dir.file("chopped.kavb");
  write_file(path, full.substr(0, 6));  // magic intact, version cut
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-header error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"),
              std::string::npos);
  }
  // Sniffed as binary (magic matches), so the factory surfaces the
  // same truncation instead of misparsing as text.
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, TruncatedFooterPayload) {
  TempDir dir("err_footer");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  // Inflate the trailer's payload_bytes so the footer cannot fit the
  // file while the trailer magic stays valid.
  bytes[bytes.size() - 12] = '\x77';
  bytes[bytes.size() - 11] = '\x77';
  bytes[bytes.size() - 10] = '\x77';
  const std::string path = dir.file("bad_footer.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-footer error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated footer"),
              std::string::npos);
  }
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, ChoppedFooterDegradesToSequential) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("err_chop");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", trace));
  // Remove the trailer: the index is gone, the record stream is not.
  bytes.resize(bytes.size() - kBinaryTraceTrailerBytes);
  const std::string path = dir.file("unsealed.kavb");
  write_file(path, bytes);

  MappedSegment segment(path);
  EXPECT_FALSE(segment.indexed());
  expect_same_keyed_content(trace, segment.read_all());

  // open_trace_source falls back to the sequential binary source,
  // which stops cleanly at the footer sentinel.
  auto source = open_trace_source(path);
  EXPECT_EQ(dynamic_cast<SelectiveTraceSource*>(source.get()), nullptr);
  expect_same_keyed_content(trace, drain(*source));
}

TEST(StoreErrors, IndexPointingPastEofIsRejected) {
  TempDir dir("err_index");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  // Locate the first block entry: payload = [key table][block count]
  // [entries]; entries end at the trailer, so entry 0's offset field
  // (4 bytes into the entry) sits at a fixed distance from the end.
  const std::size_t payload_bytes = static_cast<std::size_t>(
      static_cast<unsigned char>(bytes[bytes.size() - 12]) |
      (static_cast<unsigned char>(bytes[bytes.size() - 11]) << 8) |
      (static_cast<unsigned char>(bytes[bytes.size() - 10]) << 16) |
      (static_cast<unsigned char>(bytes[bytes.size() - 9]) << 24));
  ASSERT_GT(payload_bytes, 8u + kBinaryTraceBlockEntryBytes);
  // sample_trace has 3 keys => 3 single-block entries at block 4096.
  const std::size_t entries_begin =
      bytes.size() - kBinaryTraceTrailerBytes - 3 * kBinaryTraceBlockEntryBytes;
  // Overwrite entry 0's offset (u64 at +4) with a huge value.
  for (int i = 0; i < 8; ++i) {
    bytes[entries_begin + 4 + static_cast<std::size_t>(i)] =
        static_cast<char>(i < 4 ? 0xEE : 0x00);
  }
  const std::string path = dir.file("bad_index.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected an index-past-EOF error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("points past the end"),
              std::string::npos);
  }
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, HugeBlockOffsetDoesNotWrapBoundsChecks) {
  TempDir dir("err_wrap");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  const std::size_t entries_begin =
      bytes.size() - kBinaryTraceTrailerBytes - 3 * kBinaryTraceBlockEntryBytes;
  // offset = 2^64 - 8: 'offset + 8' would wrap to 0 and sail through a
  // naive bound; the validation must still reject it.
  for (int i = 0; i < 8; ++i) {
    bytes[entries_begin + 4 + static_cast<std::size_t>(i)] =
        static_cast<char>(i == 0 ? 0xF8 : 0xFF);
  }
  const std::string path = dir.file("wrap_index.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected an index-past-EOF error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("points past the end"),
              std::string::npos);
  }
}

TEST(StoreErrors, HugeFooterKeyCountIsRejectedBeforeAllocation) {
  TempDir dir("err_keycount");
  // A sealed empty segment is exactly 32 bytes; key_count lives right
  // after the sentinel at offset 12.
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", KeyedTrace{}));
  ASSERT_EQ(bytes.size(), 32u);
  for (int i = 0; i < 4; ++i) bytes[12 + i] = '\xFF';
  const std::string path = dir.file("huge_keys.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-footer error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated footer"),
              std::string::npos);
  }
}

TEST(StoreErrors, BinaryReaderEmptyStream) {
  std::stringstream empty;
  EXPECT_THROW(BinaryTraceReader reader(empty), std::runtime_error);
}

// --- TraceStore ------------------------------------------------------------

KeyedTrace trace_chunk(int base, const std::string& key_prefix) {
  KeyedTrace trace;
  for (int i = 0; i < 6; ++i) {
    const TimePoint t = base + 10 * i;
    trace.add(key_prefix + std::to_string(i % 3),
              i % 2 == 0 ? make_write(t, t + 5, base + i)
                         : make_read(t, t + 5, base + i - 1));
  }
  return trace;
}

TEST(TraceStore, AppendListStatRead) {
  TempDir dir("store_basic");
  TraceStore store(dir.path());
  EXPECT_EQ(store.segment_count(), 0u);

  const KeyedTrace first = trace_chunk(0, "k");
  const KeyedTrace second = trace_chunk(1000, "k");
  store.append(first);
  store.append(second);
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.total_records(), first.size() + second.size());

  const std::vector<std::string> keys = store.keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"k0", "k1", "k2"}));
  EXPECT_TRUE(store.contains("k0"));
  EXPECT_FALSE(store.contains("zz"));

  const KeyStat stat = store.stat("k0");
  EXPECT_EQ(stat.records, 4u);  // 2 per chunk
  EXPECT_EQ(stat.min_start, 0);

  // read_key returns both segments' ops in append order.
  std::vector<Operation> expected = ops_of(first, "k0");
  const std::vector<Operation> tail = ops_of(second, "k0");
  expected.insert(expected.end(), tail.begin(), tail.end());
  const History history = store.read_key("k0");
  ASSERT_EQ(history.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(history.op(static_cast<OpId>(i)), expected[i]);
  }
}

TEST(TraceStore, ReopenFindsSegments) {
  TempDir dir("store_reopen");
  {
    TraceStore store(dir.path());
    store.append(trace_chunk(0, "a"));
    store.append(trace_chunk(50, "b"));
  }
  TraceStore reopened(dir.path());
  EXPECT_EQ(reopened.segment_count(), 2u);
  EXPECT_EQ(reopened.keys().size(), 6u);
  // New appends continue the numbering past what was on disk.
  const std::filesystem::path next = reopened.append(trace_chunk(99, "c"));
  EXPECT_EQ(next.filename().string(), "seg-000003.kavb");
}

TEST(TraceStore, ImportFileStreamsAnyFormat) {
  TempDir dir("store_import");
  const KeyedTrace trace = sample_trace();
  const std::string text_path = dir.file("trace.txt");
  write_trace_file(text_path, trace);
  const std::string v1_path = dir.file("trace_v1.kavb");
  write_binary_trace_file(v1_path, trace);

  TraceStore store(dir.path() / "store");
  store.import_file(text_path);
  store.import_file(v1_path);
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.total_records(), 2 * trace.size());
  EXPECT_EQ(store.stat("alpha").records, 6u);
}

TEST(TraceStore, CompactFoldsSegmentsPreservingContent) {
  TempDir dir("store_compact");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "k"), 2);
  store.append(trace_chunk(100, "k"), 2);
  store.append(trace_chunk(200, "k"), 2);

  const KeyedTrace before = drain(*store.open_source());
  const KeyStat k0_before = store.stat("k0");

  EXPECT_EQ(store.compact(), 1u);
  EXPECT_EQ(store.segment_count(), 1u);
  // The folded segment reuses the first victim's number.
  EXPECT_EQ(store.segments().front().path.filename().string(),
            "seg-000001.kavb");

  const KeyedTrace after = drain(*store.open_source());
  expect_same_keyed_content(before, after);
  const KeyStat k0_after = store.stat("k0");
  EXPECT_EQ(k0_after.records, k0_before.records);
  // Re-blocking at the default size folds each key into one block.
  EXPECT_EQ(k0_after.blocks, 1u);

  // Only stale .tmp-free store files remain on disk.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(TraceStore, CompactFirstNKeepsReplayOrder) {
  TempDir dir("store_compact_n");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "k"));
  store.append(trace_chunk(100, "k"));
  store.append(trace_chunk(200, "k"));
  const KeyedTrace before = drain(*store.open_source());
  EXPECT_EQ(store.compact(2), 2u);
  expect_same_keyed_content(before, drain(*store.open_source()));
  const History history = store.read_key("k0");
  EXPECT_EQ(history.size(), 6u);
}

// --- IndexedTraceSource + Engine key_filter --------------------------------

TEST(IndexedSource, OpenTraceSourceReturnsSelectiveForV2) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("src_v2");
  const std::string path = write_v2_file(dir, "seg.kavb", trace);

  auto source = open_trace_source(path);
  auto* selective = dynamic_cast<SelectiveTraceSource*>(source.get());
  ASSERT_NE(selective, nullptr);
  EXPECT_EQ(selective->selectable_keys().size(), 3u);
  EXPECT_EQ(selective->key_op_count("alpha"), 3u);
  EXPECT_EQ(selective->key_op_count("absent"), 0u);
  EXPECT_EQ(selective->load_key("beta").size(), 2u);
  EXPECT_NE(source->describe().find("indexed:"), std::string::npos);
  // As a plain source it still drains the whole segment.
  expect_same_keyed_content(trace, drain(*source));
}

TEST(IndexedSource, V1FilesStayNonSelective) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("src_v1");
  const std::string path = dir.file("v1.kavb");
  write_binary_trace_file(path, trace);
  auto source = open_trace_source(path);
  EXPECT_EQ(dynamic_cast<SelectiveTraceSource*>(source.get()), nullptr);
}

TEST(EngineKeyFilter, SelectiveMatchesFullOnIndexedSource) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("engine_sel");
  const std::string path = write_v2_file(dir, "seg.kavb", trace, 2);

  Engine engine;
  const Report full = engine.verify(trace);

  auto source = open_trace_source(path);
  RunOptions run;
  run.key_filter = {"beta", "absent", "alpha"};
  const Report selected = engine.verify(*source, run);

  EXPECT_TRUE(selected.selected);
  EXPECT_EQ(selected.keys_selected, 2u);
  EXPECT_EQ(selected.keys_available, 3u);
  EXPECT_EQ(selected.missing_keys, std::vector<std::string>{"absent"});
  ASSERT_EQ(selected.per_key.size(), 2u);
  for (const auto& [key, result] : selected.per_key) {
    const Verdict& reference = full.per_key.at(key).verdict;
    EXPECT_EQ(result.verdict.outcome, reference.outcome) << key;
    EXPECT_EQ(result.verdict.witness, reference.witness) << key;
    EXPECT_EQ(result.verdict.reason, reference.reason) << key;
  }
  EXPECT_NE(selected.summary().find("selected 2/3 keys"), std::string::npos);
  EXPECT_NE(selected.summary().find("1 requested missing"),
            std::string::npos);
}

TEST(EngineKeyFilter, FallbackFiltersNonIndexedSources) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("engine_fallback");
  const std::string text_path = dir.file("trace.txt");
  write_trace_file(text_path, trace);

  Engine engine;
  const Report full = engine.verify(trace);
  auto source = open_trace_source(text_path);
  RunOptions run;
  run.key_filter = {"gamma", "absent"};
  const Report selected = engine.verify(*source, run);
  EXPECT_TRUE(selected.selected);
  EXPECT_EQ(selected.keys_selected, 1u);
  EXPECT_EQ(selected.keys_available, 3u);
  EXPECT_EQ(selected.missing_keys, std::vector<std::string>{"absent"});
  ASSERT_EQ(selected.per_key.size(), 1u);
  EXPECT_EQ(selected.per_key.at("gamma").verdict.outcome,
            full.per_key.at("gamma").verdict.outcome);
}

TEST(EngineKeyFilter, WorksOnMemoryTracesAndShards) {
  const KeyedTrace trace = sample_trace();
  Engine engine;
  RunOptions run;
  run.key_filter = {"alpha"};
  const Report from_trace = engine.verify(trace, run);
  EXPECT_EQ(from_trace.per_key.size(), 1u);
  EXPECT_EQ(from_trace.keys_available, 3u);
  EXPECT_TRUE(from_trace.per_key.count("alpha"));

  const KeyedHistories shards = split_by_key(trace);
  const Report from_shards = engine.verify(shards, run);
  EXPECT_EQ(from_shards.per_key.size(), 1u);
  EXPECT_EQ(from_shards.keys_selected, 1u);
}

TEST(EngineKeyFilter, MonitorFiltersKeys) {
  const KeyedTrace trace = sample_trace();
  Engine engine;
  RunOptions run;
  run.key_filter = {"beta", "absent"};
  const Report report = engine.monitor(trace, run);
  EXPECT_EQ(report.mode, Report::Mode::monitor);
  EXPECT_EQ(report.per_key.size(), 1u);
  EXPECT_TRUE(report.per_key.count("beta"));
  EXPECT_EQ(report.keys_available, 3u);
  EXPECT_EQ(report.missing_keys, std::vector<std::string>{"absent"});
}

TEST(EngineKeyFilter, StoreSourceServesSelectiveRuns) {
  TempDir dir("engine_store");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "k"));
  store.append(trace_chunk(500, "k"));

  Engine engine;
  const KeyedTrace everything = drain(*store.open_source());
  const Report full = engine.verify(everything);

  auto source = store.open_source();
  RunOptions run;
  run.key_filter = {"k1"};
  const Report selected = engine.verify(*source, run);
  ASSERT_EQ(selected.per_key.size(), 1u);
  const Verdict& reference = full.per_key.at("k1").verdict;
  EXPECT_EQ(selected.per_key.at("k1").verdict.outcome, reference.outcome);
  EXPECT_EQ(selected.per_key.at("k1").verdict.witness, reference.witness);
}

}  // namespace
}  // namespace kav
