// Unit tests for the trace-store subsystem (src/store/): the v2
// segment format end to end (SegmentWriter -> sequential reader and
// mmap-backed MappedSegment), per-key index statistics and selective
// reads, the TraceStore directory (append/import/reopen/compact), the
// IndexedTraceSource behind open_trace_source, Engine::verify with
// RunOptions::key_filter on both the index-backed fast path and the
// filtered-drain fallback, and the reader/footer error paths (empty
// file, bad magic, truncated header, truncated footer, index pointing
// past EOF).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/verify.h"
#include "history/serialization.h"
#include "ingest/binary_trace.h"
#include "ingest/trace_source.h"
#include "pipeline/thread_pool.h"
#include "store/bloom.h"
#include "store/indexed_source.h"
#include "store/mapped_segment.h"
#include "store/segment_writer.h"
#include "store/trace_store.h"
#include "util/crc32c.h"

namespace kav {
namespace {

namespace fs = std::filesystem;

// A per-test scratch directory under the gtest temp root, removed on
// destruction so runs do not accumulate segment files.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) /
              ("kav_store_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
};

KeyedTrace sample_trace() {
  KeyedTrace trace;
  trace.add("alpha", make_write(0, 10, 42, 7));
  trace.add("alpha", make_read(12, 20, 42));
  trace.add("beta", make_write(-5, 3, 1));
  trace.add("alpha", make_write(25, 30, 43, 0));
  trace.add("beta", make_read(4, 9, 1, 3));
  trace.add("gamma", make_write(100, 110, 9));
  return trace;
}

// v2 regroups records into per-key blocks, so traces are compared as
// per-key op sequences (the only order verification depends on), not
// as flat streams.
void expect_same_keyed_content(const KeyedTrace& a, const KeyedTrace& b) {
  const KeyedHistories sa = split_by_key(a);
  const KeyedHistories sb = split_by_key(b);
  ASSERT_EQ(sa.per_key.size(), sb.per_key.size());
  auto ita = sa.per_key.begin();
  auto itb = sb.per_key.begin();
  for (; ita != sa.per_key.end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    ASSERT_EQ(ita->second.size(), itb->second.size()) << ita->first;
    for (std::size_t i = 0; i < ita->second.size(); ++i) {
      EXPECT_EQ(ita->second.op(static_cast<OpId>(i)),
                itb->second.op(static_cast<OpId>(i)))
          << ita->first << " op " << i;
    }
  }
}

std::vector<Operation> ops_of(const KeyedTrace& trace,
                              const std::string& key) {
  std::vector<Operation> ops;
  for (const KeyedOperation& kop : trace.ops) {
    if (kop.key == key) ops.push_back(kop.op);
  }
  return ops;
}

std::string write_v2_file(const TempDir& dir, const std::string& name,
                          const KeyedTrace& trace,
                          std::size_t records_per_block = 4096) {
  const std::string path = dir.file(name);
  std::ofstream out(path, std::ios::binary);
  SegmentWriterOptions options;
  options.records_per_block = records_per_block;
  SegmentWriter writer(out, options);
  writer.add(trace);
  writer.finish();
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const unsigned char* ubytes(const std::string& bytes, std::size_t at = 0) {
  return reinterpret_cast<const unsigned char*>(bytes.data()) + at;
}

// Offset of the footer payload (key_count onward), from the trailer's
// payload_bytes field.
std::size_t footer_payload_begin(const std::string& bytes) {
  const std::uint64_t payload_bytes =
      wire::load_u64(ubytes(bytes, bytes.size() - kBinaryTraceTrailerBytes));
  return bytes.size() - kBinaryTraceTrailerBytes -
         static_cast<std::size_t>(payload_bytes);
}

// Offset of the first block-index entry, by walking the payload's key
// table. The v2.1 integrity pages sit between the entries and the
// trailer, so the entries are no longer at a fixed distance from EOF.
std::size_t entries_begin_of(const std::string& bytes) {
  std::size_t p = footer_payload_begin(bytes);
  const std::uint32_t key_count = wire::load_u32(ubytes(bytes, p));
  p += 4;
  for (std::uint32_t i = 0; i < key_count; ++i) {
    p += 2 + wire::load_u16(ubytes(bytes, p));
  }
  return p + 4;  // skip block_count
}

// Re-seals the v2.1 payload checksum after a test tampers with bytes
// it covers -- without this, every such tamper reports "footer
// checksum mismatch" and the deeper structural checks go untested.
void fix_footer_crc(std::string& bytes) {
  const std::size_t payload = footer_payload_begin(bytes);
  const std::size_t crc_pos = bytes.size() - kBinaryTraceTrailerBytes - 4;
  const std::uint32_t crc =
      crc::crc32c(bytes.data() + payload, crc_pos - payload);
  for (int i = 0; i < 4; ++i) {
    bytes[crc_pos + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
}

// Rewrites a writer-produced v2.1 segment as a legacy v2 file (no
// integrity pages, 'KAVI' trailer) so pre-2.1 compatibility stays
// under test without binary fixtures in the tree.
std::string to_legacy_v2(const std::string& bytes) {
  const std::size_t payload = footer_payload_begin(bytes);
  const std::size_t entries = entries_begin_of(bytes);
  const std::uint32_t block_count = wire::load_u32(ubytes(bytes, entries - 4));
  const std::size_t entries_end =
      entries +
      static_cast<std::size_t>(block_count) * kBinaryTraceBlockEntryBytes;
  std::string out = bytes.substr(0, entries_end);
  const std::uint64_t payload_bytes = entries_end - payload;
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((payload_bytes >> (8 * i)) & 0xFF));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(
        static_cast<char>((kBinaryTraceFooterMagic >> (8 * i)) & 0xFF));
  }
  return out;
}

// --- Segment format --------------------------------------------------------

TEST(SegmentWriter, V2StreamIsReadableBySequentialReader) {
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace, 4096, kBinaryTraceVersion2);
  BinaryTraceReader reader(buffer);
  EXPECT_EQ(reader.version(), kBinaryTraceVersion2);
  KeyedTrace decoded;
  KeyedOperation kop;
  while (reader.next(kop)) decoded.ops.push_back(kop);
  EXPECT_EQ(decoded.size(), trace.size());
  expect_same_keyed_content(trace, decoded);
}

TEST(SegmentWriter, SmallBlocksRoundTrip) {
  const KeyedTrace trace = sample_trace();
  for (const std::size_t block : {1u, 2u, 3u}) {
    std::stringstream buffer;
    write_binary_trace(buffer, trace, block, kBinaryTraceVersion2);
    expect_same_keyed_content(trace, read_binary_trace(buffer));
  }
}

TEST(SegmentWriter, EvictionUnderMemoryPressureKeepsPerKeyOrder) {
  KeyedTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.add("k" + std::to_string(i % 7),
              make_write(10 * i, 10 * i + 5, i, i % 3));
  }
  std::stringstream buffer;
  SegmentWriterOptions options;
  options.records_per_block = 1000;  // never hit: eviction must kick in
  options.max_buffered_records = 4;
  SegmentWriter writer(buffer, options);
  writer.add(trace);
  const SegmentStats stats = writer.finish();
  EXPECT_EQ(stats.records, 100u);
  EXPECT_EQ(stats.keys, 7u);
  EXPECT_GT(stats.blocks, 7u);  // eviction forced multiple blocks per key
  expect_same_keyed_content(trace, read_binary_trace(buffer));
}

TEST(SegmentWriter, AddAfterFinishThrows) {
  std::stringstream buffer;
  SegmentWriter writer(buffer);
  writer.add("k", make_write(0, 1, 1));
  writer.finish();
  EXPECT_THROW(writer.add("k", make_write(2, 3, 2)), std::logic_error);
  // finish() is idempotent.
  EXPECT_EQ(writer.finish().records, 1u);
}

TEST(SegmentWriter, ValidatesRecords) {
  std::stringstream buffer;
  SegmentWriter writer(buffer);
  EXPECT_THROW(writer.add("k", make_write(5, 5, 1)), std::invalid_argument);
  EXPECT_THROW(writer.add(std::string(70'000, 'x'), make_write(0, 1, 1)),
               std::invalid_argument);
}

TEST(MappedSegment, ParsesIndexAndServesSelectiveReads) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("mapped_basic");
  const std::string path = write_v2_file(dir, "seg.kavb", trace, 2);

  MappedSegment segment(path);
  EXPECT_TRUE(segment.indexed());
  EXPECT_EQ(segment.version(), kBinaryTraceVersion2);
  EXPECT_EQ(segment.key_count(), 3u);
  EXPECT_EQ(segment.total_records(), trace.size());

  const KeyStat* alpha = segment.stat("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->records, 3u);
  EXPECT_EQ(alpha->blocks, 2u);  // 3 records at block size 2
  EXPECT_EQ(alpha->min_start, 0);
  EXPECT_EQ(alpha->max_finish, 30);
  EXPECT_EQ(segment.stat("nope"), nullptr);
  EXPECT_FALSE(segment.contains("nope"));

  for (const std::string key : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(segment.read_key(key), ops_of(trace, key)) << key;
  }
  EXPECT_TRUE(segment.read_key("absent").empty());
  expect_same_keyed_content(trace, segment.read_all());
}

TEST(MappedSegment, ReadsV1FilesUnindexed) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("mapped_v1");
  const std::string path = dir.file("v1.kavb");
  write_binary_trace_file(path, trace);

  MappedSegment segment(path);
  EXPECT_FALSE(segment.indexed());
  EXPECT_EQ(segment.version(), kBinaryTraceVersion);
  expect_same_keyed_content(trace, segment.read_all());
  EXPECT_THROW(segment.read_key("alpha"), std::logic_error);
}

TEST(MappedSegment, EmptyV2SegmentIsIndexedAndEmpty) {
  TempDir dir("mapped_empty");
  const std::string path = write_v2_file(dir, "empty.kavb", KeyedTrace{});
  MappedSegment segment(path);
  EXPECT_TRUE(segment.indexed());
  EXPECT_EQ(segment.key_count(), 0u);
  EXPECT_EQ(segment.total_records(), 0u);
  EXPECT_TRUE(segment.read_all().empty());
}

// --- Error paths -----------------------------------------------------------

TEST(StoreErrors, EmptyFile) {
  TempDir dir("err_empty");
  const std::string path = dir.file("empty.kavb");
  write_file(path, "");
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-header error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"),
              std::string::npos);
  }
  // The sniffing factory treats a magic-less (empty) file as text: an
  // empty trace, not an error.
  EXPECT_TRUE(drain(*open_trace_source(path)).empty());
}

TEST(StoreErrors, MissingFile) {
  TempDir dir("err_missing");
  EXPECT_THROW(open_trace_source(dir.file("nope.kavb")), std::runtime_error);
  EXPECT_THROW(MappedSegment(dir.file("nope.kavb")), std::runtime_error);
}

TEST(StoreErrors, BadMagic) {
  TempDir dir("err_magic");
  const std::string path = dir.file("junk.kavb");
  write_file(path, "JUNKJUNKJUNKJUNK");
  try {
    MappedSegment segment(path);
    FAIL() << "expected a bad-magic error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
  // Magic-less bytes sniff as text and fail in the text parser with a
  // line number instead.
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, TruncatedHeader) {
  TempDir dir("err_header");
  const std::string full = read_file(
      write_v2_file(dir, "full.kavb", sample_trace()));
  const std::string path = dir.file("chopped.kavb");
  write_file(path, full.substr(0, 6));  // magic intact, version cut
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-header error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"),
              std::string::npos);
  }
  // Sniffed as binary (magic matches), so the factory surfaces the
  // same truncation instead of misparsing as text.
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, TruncatedFooterPayload) {
  TempDir dir("err_footer");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  // Inflate the trailer's payload_bytes so the footer cannot fit the
  // file while the trailer magic stays valid.
  bytes[bytes.size() - 12] = '\x77';
  bytes[bytes.size() - 11] = '\x77';
  bytes[bytes.size() - 10] = '\x77';
  const std::string path = dir.file("bad_footer.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-footer error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated footer"),
              std::string::npos);
  }
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, ChoppedFooterDegradesToSequential) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("err_chop");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", trace));
  // Remove the trailer: the index is gone, the record stream is not.
  bytes.resize(bytes.size() - kBinaryTraceTrailerBytes);
  const std::string path = dir.file("unsealed.kavb");
  write_file(path, bytes);

  MappedSegment segment(path);
  EXPECT_FALSE(segment.indexed());
  expect_same_keyed_content(trace, segment.read_all());

  // open_trace_source falls back to the sequential binary source,
  // which stops cleanly at the footer sentinel.
  auto source = open_trace_source(path);
  EXPECT_EQ(dynamic_cast<SelectiveTraceSource*>(source.get()), nullptr);
  expect_same_keyed_content(trace, drain(*source));
}

TEST(StoreErrors, IndexPointingPastEofIsRejected) {
  TempDir dir("err_index");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  const std::size_t entries_begin = entries_begin_of(bytes);
  // Overwrite entry 0's offset (u64 at +4) with a huge value, then
  // re-seal the payload checksum so the bound check (not the CRC) is
  // what rejects the file.
  for (int i = 0; i < 8; ++i) {
    bytes[entries_begin + 4 + static_cast<std::size_t>(i)] =
        static_cast<char>(i < 4 ? 0xEE : 0x00);
  }
  fix_footer_crc(bytes);
  const std::string path = dir.file("bad_index.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected an index-past-EOF error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("points past the end"),
              std::string::npos);
  }
  EXPECT_THROW(open_trace_source(path), std::runtime_error);
}

TEST(StoreErrors, HugeBlockOffsetDoesNotWrapBoundsChecks) {
  TempDir dir("err_wrap");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  const std::size_t entries_begin = entries_begin_of(bytes);
  // offset = 2^64 - 8: 'offset + 8' would wrap to 0 and sail through a
  // naive bound; the validation must still reject it.
  for (int i = 0; i < 8; ++i) {
    bytes[entries_begin + 4 + static_cast<std::size_t>(i)] =
        static_cast<char>(i == 0 ? 0xF8 : 0xFF);
  }
  fix_footer_crc(bytes);
  const std::string path = dir.file("wrap_index.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected an index-past-EOF error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("points past the end"),
              std::string::npos);
  }
}

TEST(StoreErrors, HugeFooterKeyCountIsRejectedBeforeAllocation) {
  TempDir dir("err_keycount");
  // A sealed empty v2.1 segment is exactly 48 bytes (8 header + 4
  // sentinel + 24 payload + 12 trailer); key_count lives right after
  // the sentinel at offset 12.
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", KeyedTrace{}));
  ASSERT_EQ(bytes.size(), 48u);
  for (int i = 0; i < 4; ++i) bytes[12 + i] = '\xFF';
  fix_footer_crc(bytes);
  const std::string path = dir.file("huge_keys.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected a truncated-footer error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated footer"),
              std::string::npos);
  }
}

TEST(StoreErrors, BinaryReaderEmptyStream) {
  std::stringstream empty;
  EXPECT_THROW(BinaryTraceReader reader(empty), std::runtime_error);
}

// --- Integrity primitives --------------------------------------------------

TEST(Crc32c, MatchesPublishedCheckValue) {
  // The canonical CRC-32C check value (RFC 3720): crc of the ASCII
  // digits "123456789" is 0xE3069283.
  EXPECT_EQ(crc::crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc::crc32c("", 0), 0u);
}

TEST(Crc32c, HardwareAndSoftwareAgree) {
  std::string buffer;
  std::uint64_t state = 0x243F6A8885A308D3ull;  // fixed seed
  // Lengths straddle every dispatch boundary: the byte tail, the
  // 8-byte word loop, and the 3-stream interleaved loop (which needs
  // >= 3 KiB) with zero, partial, and multi-group remainders.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{1000}, std::size_t{3071}, std::size_t{3072},
        std::size_t{3073}, std::size_t{4096}, std::size_t{100000}}) {
    buffer.resize(len);
    for (char& c : buffer) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      c = static_cast<char>(state >> 56);
    }
    EXPECT_EQ(crc::crc32c(buffer.data(), len),
              crc::crc32c_software(0, buffer.data(), len))
        << "len=" << len;
  }
}

TEST(Crc32c, ExtendComposesAtAnySplit) {
  const std::string bytes = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc::crc32c(bytes.data(), bytes.size());
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::uint32_t head = crc::crc32c(bytes.data(), cut);
    EXPECT_EQ(
        crc::crc32c_extend(head, bytes.data() + cut, bytes.size() - cut),
        whole)
        << "cut=" << cut;
  }

  // Large-buffer splits: the resumed tail runs the 3-stream loop with
  // a nonzero incoming state, which the short string above never does.
  std::string big(10000, '\0');
  std::uint64_t state = 0x452821E638D01377ull;  // fixed seed
  for (char& c : big) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c = static_cast<char>(state >> 56);
  }
  const std::uint32_t big_whole = crc::crc32c(big.data(), big.size());
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{100}, std::size_t{3072},
        std::size_t{5000}, std::size_t{9999}}) {
    const std::uint32_t head = crc::crc32c(big.data(), cut);
    EXPECT_EQ(crc::crc32c_extend(head, big.data() + cut, big.size() - cut),
              big_whole)
        << "cut=" << cut;
  }
}

TEST(Bloom, FindsEveryAddedKeyAndMostlyRejectsAbsentOnes) {
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.push_back("key-" + std::to_string(i));
  BloomBuilder builder(keys.size());
  for (const std::string& k : keys) builder.add(k);
  ASSERT_EQ(builder.m_bits() % 8, 0u);
  ASSERT_EQ(builder.bytes().size(), builder.m_bits() / 8);
  for (const std::string& k : keys) {
    EXPECT_TRUE(bloom_maybe_contains(builder.bytes().data(), builder.m_bits(),
                                     builder.hashes(), bloom_probe(k)))
        << k;
  }
  // ~0.8% target false-positive rate at 10 bits/key, 7 hashes: the
  // vast majority of absent keys must be definite negatives.
  std::size_t negatives = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!bloom_maybe_contains(builder.bytes().data(), builder.m_bits(),
                              builder.hashes(),
                              bloom_probe("absent-" + std::to_string(i)))) {
      ++negatives;
    }
  }
  EXPECT_GT(negatives, 900u);
}

TEST(Bloom, EmptyFilterContainsNothing) {
  BloomBuilder builder(0);
  EXPECT_EQ(builder.m_bits(), 0u);
  EXPECT_EQ(builder.hashes(), 0u);
  EXPECT_FALSE(
      bloom_maybe_contains(nullptr, 0, 0, bloom_probe("anything")));
}

// --- v2.1 integrity pages --------------------------------------------------

TEST(StoreIntegrity, SegmentsCarryIntegrityAndHonorBloom) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("integ_pages");
  MappedSegment segment(write_v2_file(dir, "seg.kavb", trace, 2));
  EXPECT_TRUE(segment.indexed());
  EXPECT_TRUE(segment.has_integrity());
  for (const std::string key : {"alpha", "beta", "gamma"}) {
    EXPECT_TRUE(segment.maybe_contains(bloom_probe(key))) << key;
  }
  std::vector<std::string> errors;
  EXPECT_EQ(segment.verify_integrity(errors), trace.size());
  EXPECT_TRUE(errors.empty());
}

TEST(StoreIntegrity, LegacyV2FooterStillOpensWithoutIntegrity) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("integ_legacy");
  const std::string v21 = read_file(write_v2_file(dir, "new.kavb", trace, 2));
  const std::string path = dir.file("legacy.kavb");
  write_file(path, to_legacy_v2(v21));

  MappedSegment segment(path);
  EXPECT_TRUE(segment.indexed());
  EXPECT_FALSE(segment.has_integrity());
  // Without a bloom page every key "may" be present.
  EXPECT_TRUE(segment.maybe_contains(bloom_probe("definitely-absent")));
  expect_same_keyed_content(trace, segment.read_all());
  EXPECT_EQ(segment.read_key("alpha"), ops_of(trace, "alpha"));
}

TEST(StoreIntegrity, FooterChecksumCatchesFooterTamper) {
  TempDir dir("integ_footer");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", sample_trace()));
  // Flip one bit inside the key table -- covered by the payload CRC.
  bytes[footer_payload_begin(bytes) + 5] ^= 0x01;
  const std::string path = dir.file("tampered.kavb");
  write_file(path, bytes);
  try {
    MappedSegment segment(path);
    FAIL() << "expected a footer-checksum error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("footer checksum mismatch"),
              std::string::npos);
  }
}

TEST(StoreIntegrity, BlockChecksumGatesReadsAndIsOptional) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("integ_toggle");
  std::string bytes = read_file(write_v2_file(dir, "ok.kavb", trace));
  // Flip the last record's type byte (the byte right before the footer
  // sentinel): the record stays structurally valid -- read/write flip
  // -- so only the checksum can tell.
  bytes[footer_payload_begin(bytes) - 4 - 1] ^= 0x01;
  const std::string path = dir.file("tampered.kavb");
  write_file(path, bytes);

  MappedSegment checked(path);  // opening validates only the footer
  EXPECT_TRUE(checked.has_integrity());
  try {
    checked.read_key("gamma");
    FAIL() << "expected a block-checksum error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("block checksum mismatch"),
              std::string::npos);
  }
  EXPECT_THROW(checked.read_all(), std::runtime_error);

  MappedSegmentOptions lax;
  lax.verify_block_crc = false;
  MappedSegment unchecked(path, lax);
  // With verification off the flipped record decodes fine -- and
  // differently: the read became a write.
  const std::vector<Operation> decoded = unchecked.read_key("gamma");
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_NE(decoded[0], ops_of(trace, "gamma")[0]);
}

TEST(StoreIntegrity, EveryByteCorruptionIsDetected) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("integ_every");
  const std::string clean =
      read_file(write_v2_file(dir, "ok.kavb", trace, 2));
  const std::string path = dir.file("mut.kavb");
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x01);
    write_file(path, bytes);
    bool detected = false;
    try {
      MappedSegment segment(path);
      if (!segment.indexed()) {
        // Degradation (e.g. a flipped trailer-magic bit) is detection:
        // the index refused the bytes instead of serving them.
        detected = true;
      } else {
        segment.read_all();
        for (const std::string_view key : segment.keys()) {
          segment.read_key(std::string(key));
        }
      }
    } catch (const std::exception&) {
      detected = true;
    }
    // Every byte of the file is covered by some check -- magic/version
    // validation, the payload CRC, or a block CRC -- except the two
    // reserved header bytes, which no reader interprets.
    if (i == 6 || i == 7) {
      EXPECT_FALSE(detected) << "byte " << i;
    } else {
      EXPECT_TRUE(detected) << "byte " << i << " corruption went unnoticed";
    }
  }
}

// --- TraceStore ------------------------------------------------------------

KeyedTrace trace_chunk(int base, const std::string& key_prefix) {
  KeyedTrace trace;
  for (int i = 0; i < 6; ++i) {
    const TimePoint t = base + 10 * i;
    trace.add(key_prefix + std::to_string(i % 3),
              i % 2 == 0 ? make_write(t, t + 5, base + i)
                         : make_read(t, t + 5, base + i - 1));
  }
  return trace;
}

TEST(TraceStore, AppendListStatRead) {
  TempDir dir("store_basic");
  TraceStore store(dir.path());
  EXPECT_EQ(store.segment_count(), 0u);

  const KeyedTrace first = trace_chunk(0, "k");
  const KeyedTrace second = trace_chunk(1000, "k");
  store.append(first);
  store.append(second);
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.total_records(), first.size() + second.size());

  const std::vector<std::string> keys = store.keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"k0", "k1", "k2"}));
  EXPECT_TRUE(store.contains("k0"));
  EXPECT_FALSE(store.contains("zz"));

  const std::optional<KeyStat> stat = store.stat("k0");
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->records, 4u);  // 2 per chunk
  EXPECT_EQ(stat->min_start, 0);
  EXPECT_FALSE(store.stat("zz").has_value());

  // read_key returns both segments' ops in append order.
  std::vector<Operation> expected = ops_of(first, "k0");
  const std::vector<Operation> tail = ops_of(second, "k0");
  expected.insert(expected.end(), tail.begin(), tail.end());
  const History history = store.read_key("k0");
  ASSERT_EQ(history.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(history.op(static_cast<OpId>(i)), expected[i]);
  }
}

TEST(TraceStore, ReopenFindsSegments) {
  TempDir dir("store_reopen");
  {
    TraceStore store(dir.path());
    store.append(trace_chunk(0, "a"));
    store.append(trace_chunk(50, "b"));
  }
  TraceStore reopened(dir.path());
  EXPECT_EQ(reopened.segment_count(), 2u);
  EXPECT_EQ(reopened.keys().size(), 6u);
  // New appends continue the numbering past what was on disk.
  const std::filesystem::path next = reopened.append(trace_chunk(99, "c"));
  EXPECT_EQ(next.filename().string(), "seg-000003.kavb");
}

TEST(TraceStore, ImportFileStreamsAnyFormat) {
  TempDir dir("store_import");
  const KeyedTrace trace = sample_trace();
  const std::string text_path = dir.file("trace.txt");
  write_trace_file(text_path, trace);
  const std::string v1_path = dir.file("trace_v1.kavb");
  write_binary_trace_file(v1_path, trace);

  TraceStore store(dir.path() / "store");
  store.import_file(text_path);
  store.import_file(v1_path);
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.total_records(), 2 * trace.size());
  ASSERT_TRUE(store.stat("alpha").has_value());
  EXPECT_EQ(store.stat("alpha")->records, 6u);
}

TEST(TraceStore, CompactFoldsSegmentsPreservingContent) {
  TempDir dir("store_compact");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "k"), 2);
  store.append(trace_chunk(100, "k"), 2);
  store.append(trace_chunk(200, "k"), 2);

  const KeyedTrace before = drain(*store.open_source());
  const std::optional<KeyStat> k0_before = store.stat("k0");
  ASSERT_TRUE(k0_before.has_value());

  EXPECT_EQ(store.compact(), 1u);
  EXPECT_EQ(store.segment_count(), 1u);
  // The fold commits under a NEW number (never a victim's): the
  // manifest rename is the commit point, so at no instant are the
  // fold and a victim both live.
  EXPECT_EQ(store.segments().front().path.filename().string(),
            "seg-000004.kavb");

  const KeyedTrace after = drain(*store.open_source());
  expect_same_keyed_content(before, after);
  const std::optional<KeyStat> k0_after = store.stat("k0");
  ASSERT_TRUE(k0_after.has_value());
  EXPECT_EQ(k0_after->records, k0_before->records);
  // Re-blocking at the default size folds each key into one block.
  EXPECT_EQ(k0_after->blocks, 1u);

  // Only the folded segment and the MANIFEST remain on disk.
  std::size_t files = 0;
  bool saw_manifest = false;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().filename() == "MANIFEST") saw_manifest = true;
    ++files;
  }
  EXPECT_TRUE(saw_manifest);
  EXPECT_EQ(files, 2u);

  // The store reopens to the same content from the manifest alone.
  TraceStore reopened(dir.path());
  expect_same_keyed_content(before, drain(*reopened.open_source()));
}

TEST(TraceStore, CompactFirstNKeepsReplayOrder) {
  TempDir dir("store_compact_n");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "k"));
  store.append(trace_chunk(100, "k"));
  store.append(trace_chunk(200, "k"));
  const KeyedTrace before = drain(*store.open_source());
  EXPECT_EQ(store.compact(2), 2u);
  expect_same_keyed_content(before, drain(*store.open_source()));
  const History history = store.read_key("k0");
  EXPECT_EQ(history.size(), 6u);
}

// --- Manifest recovery -----------------------------------------------------

TEST(TraceStoreManifest, ParseSegmentNumberRejectsGarbageAndOverflow) {
  using store_detail::parse_segment_number;
  EXPECT_EQ(parse_segment_number("seg-000001.kavb"), 1u);
  EXPECT_EQ(parse_segment_number("seg-123456.kavb"), 123456u);
  EXPECT_EQ(parse_segment_number("seg-18446744073709551615.kavb"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_segment_number("seg-.kavb").has_value());
  EXPECT_FALSE(parse_segment_number("seg-12x4.kavb").has_value());
  EXPECT_FALSE(parse_segment_number("other-000001.kavb").has_value());
  EXPECT_FALSE(parse_segment_number("seg-000001.tmp").has_value());
  // One past uint64 max, and a much longer digit string: both must be
  // rejected, not silently wrapped into a colliding small number.
  EXPECT_FALSE(parse_segment_number("seg-18446744073709551616.kavb")
                   .has_value());
  EXPECT_FALSE(
      parse_segment_number("seg-99999999999999999999999.kavb").has_value());
}

TEST(TraceStoreManifest, ReopenSweepsTmpLeftoversAndUnlistedSegments) {
  TempDir dir("store_sweep");
  {
    TraceStore store(dir.path());
    store.append(trace_chunk(0, "a"));
    store.append(trace_chunk(50, "a"));
  }
  // Simulate crash leftovers: a half-written .tmp, a stray MANIFEST.tmp,
  // and a fully-renamed segment the manifest never adopted (the window
  // between segment rename and manifest commit).
  write_file(dir.file("seg-000007.kavb.tmp"), "half-written garbage");
  write_file(dir.file("MANIFEST.tmp"), "stale manifest attempt");
  fs::copy_file(dir.file("seg-000001.kavb"), dir.file("seg-000099.kavb"));

  TraceStore reopened(dir.path());
  EXPECT_EQ(reopened.segment_count(), 2u);
  EXPECT_FALSE(fs::exists(dir.file("seg-000007.kavb.tmp")));
  EXPECT_FALSE(fs::exists(dir.file("MANIFEST.tmp")));
  EXPECT_FALSE(fs::exists(dir.file("seg-000099.kavb")));
}

TEST(TraceStoreManifest, DirectoryWithoutManifestAdoptsAllSegments) {
  TempDir dir("store_adopt");
  KeyedTrace expected;
  {
    TraceStore store(dir.path());
    store.append(trace_chunk(0, "a"));
    store.append(trace_chunk(50, "b"));
    expected = drain(*store.open_source());
  }
  // A directory written by a pre-manifest build.
  fs::remove(dir.file("MANIFEST"));

  TraceStore adopted(dir.path());
  EXPECT_EQ(adopted.segment_count(), 2u);
  expect_same_keyed_content(expected, drain(*adopted.open_source()));
  EXPECT_TRUE(fs::exists(dir.file("MANIFEST")));
}

TEST(TraceStoreManifest, CorruptManifestIsRejected) {
  TempDir dir("store_badmanifest");
  {
    TraceStore store(dir.path());
    store.append(trace_chunk(0, "a"));
  }
  std::string manifest = read_file(dir.file("MANIFEST"));
  manifest[manifest.size() / 2] ^= 0x01;
  write_file(dir.file("MANIFEST"), manifest);
  EXPECT_THROW(TraceStore{dir.path()}, std::runtime_error);
}

TEST(TraceStoreManifest, ManifestNamingMissingSegmentIsRejected) {
  TempDir dir("store_missingseg");
  {
    TraceStore store(dir.path());
    store.append(trace_chunk(0, "a"));
    store.append(trace_chunk(50, "a"));
  }
  fs::remove(dir.file("seg-000002.kavb"));
  try {
    TraceStore store(dir.path());
    FAIL() << "expected a missing-segment error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

// --- fsck ------------------------------------------------------------------

TEST(TraceStoreFsck, CleanStorePasses) {
  TempDir dir("store_fsck");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "a"), 2);
  store.append(trace_chunk(50, "b"), 2);
  const FsckReport report = store.fsck();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.segments, 2u);
  EXPECT_EQ(report.records, store.total_records());
  EXPECT_EQ(report.segments_without_integrity, 0u);
  EXPECT_GT(report.blocks, 0u);
}

TEST(TraceStoreFsck, ReportsCorruptRecordBytes) {
  TempDir dir("store_fsck_bad");
  std::filesystem::path victim;
  {
    TraceStore store(dir.path());
    victim = store.append(trace_chunk(0, "a"), 2);
  }
  std::string bytes = read_file(victim.string());
  bytes[kBinaryTraceHeaderBytes + 10] ^= 0x01;  // inside the first chunk
  write_file(victim.string(), bytes);

  TraceStore store(dir.path());  // opening does not deep-scan
  const FsckReport report = store.fsck();
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors.front().find("seg-000001.kavb"), std::string::npos);
}

// --- Tiered maintenance ----------------------------------------------------

TEST(TraceStoreMaintenance, PickFoldRangePolicy) {
  using store_detail::pick_fold_range;
  CompactionOptions opt;
  opt.fanout = 3;
  opt.tier0_records = 100;  // tier 0: < 100, tier 1: [100, 300), ...

  // Nothing to fold below fanout.
  EXPECT_FALSE(pick_fold_range({10, 10}, opt).has_value());
  // Three adjacent tier-0 segments fold as one run.
  EXPECT_EQ(pick_fold_range({10, 10, 10}, opt),
            std::make_pair(std::size_t{0}, std::size_t{3}));
  // A longer run folds whole.
  EXPECT_EQ(pick_fold_range({10, 10, 10, 10, 10}, opt),
            std::make_pair(std::size_t{0}, std::size_t{5}));
  // A tier-1 segment breaks adjacency; the oldest qualifying run wins.
  EXPECT_EQ(pick_fold_range({10, 150, 10, 10, 10}, opt),
            std::make_pair(std::size_t{2}, std::size_t{3}));
  // Higher tiers fold too once fanout of them accumulate.
  EXPECT_EQ(pick_fold_range({150, 150, 150, 10}, opt),
            std::make_pair(std::size_t{0}, std::size_t{3}));
  // Mixed tiers with no run of fanout: nothing folds.
  EXPECT_FALSE(pick_fold_range({150, 10, 150, 10, 150}, opt).has_value());
}

TEST(TraceStoreMaintenance, RunMaintenanceFoldsByTierAndPreservesContent) {
  TempDir dir("store_maint");
  TraceStore store(dir.path());
  for (int i = 0; i < 5; ++i) store.append(trace_chunk(100 * i, "k"), 2);
  const KeyedTrace before = drain(*store.open_source());

  CompactionOptions opt;
  opt.fanout = 2;
  opt.tier0_records = 1 << 20;  // everything stays tier 0: folds cascade
  EXPECT_GT(store.run_maintenance(opt), 0u);
  EXPECT_EQ(store.segment_count(), 1u);
  expect_same_keyed_content(before, drain(*store.open_source()));

  // Idempotent once nothing qualifies.
  EXPECT_EQ(store.run_maintenance(opt), 0u);
}

TEST(TraceStoreMaintenance, RetentionDropsOldestSegments) {
  TempDir dir("store_retain");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "old"));
  store.append(trace_chunk(100, "mid"));
  store.append(trace_chunk(200, "new"));

  CompactionOptions opt;
  opt.fanout = 100;     // never fold
  opt.retain_bytes = 1;  // far below one segment: drop all but the last
  EXPECT_EQ(store.run_maintenance(opt), 2u);
  EXPECT_EQ(store.segment_count(), 1u);
  EXPECT_FALSE(store.contains("old0"));
  EXPECT_TRUE(store.contains("new0"));

  // Reopen honors the post-retention manifest.
  TraceStore reopened(dir.path());
  EXPECT_EQ(reopened.segment_count(), 1u);
  EXPECT_TRUE(reopened.contains("new0"));
}

TEST(TraceStoreMaintenance, BackgroundCompactionFoldsOnThePool) {
  TempDir dir("store_bg");
  pipeline::ThreadPool pool(2);
  CompactionOptions opt;
  opt.fanout = 2;
  opt.tier0_records = 1 << 20;
  {
    TraceStore store(dir.path());
    store.enable_background_compaction(pool, opt);
    for (int i = 0; i < 4; ++i) store.append(trace_chunk(100 * i, "k"), 2);
    // Re-enabling schedules one more pass over the final segment set;
    // disabling quiesces it -- after this, all folds have landed.
    store.disable_background_compaction();
    store.enable_background_compaction(pool, opt);
    store.disable_background_compaction();
    EXPECT_EQ(store.segment_count(), 1u);
    EXPECT_EQ(store.last_maintenance_error(), "");
    EXPECT_EQ(store.total_records(), 4u * 6u);
  }
}

TEST(TraceStoreMaintenance, EngineOpenStoreRunsSelfMaintainingStore) {
  TempDir dir("store_engine");
  Engine engine;
  CompactionOptions opt;
  opt.fanout = 2;
  opt.tier0_records = 1 << 20;
  {
    auto store = engine.open_store(dir.path().string(), opt);
    for (int i = 0; i < 4; ++i) store->append(trace_chunk(100 * i, "k"), 2);
    // Quiesce, then force one final pass over the settled segment set
    // (an append's pass may have raced an earlier in-flight one).
    store->disable_background_compaction();
    store->enable_background_compaction(engine.pool(), opt);
    store->disable_background_compaction();
    EXPECT_EQ(store->segment_count(), 1u);
    EXPECT_EQ(store->last_maintenance_error(), "");

    auto source = store->open_source();
    const Report report = engine.verify(*source);
    EXPECT_EQ(report.per_key.size(), 3u);  // k0, k1, k2
  }
}

// --- IndexedTraceSource + Engine key_filter --------------------------------

TEST(IndexedSource, OpenTraceSourceReturnsSelectiveForV2) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("src_v2");
  const std::string path = write_v2_file(dir, "seg.kavb", trace);

  auto source = open_trace_source(path);
  auto* selective = dynamic_cast<SelectiveTraceSource*>(source.get());
  ASSERT_NE(selective, nullptr);
  EXPECT_EQ(selective->selectable_keys().size(), 3u);
  EXPECT_EQ(selective->key_op_count("alpha"), 3u);
  EXPECT_EQ(selective->key_op_count("absent"), 0u);
  EXPECT_EQ(selective->load_key("beta").size(), 2u);
  EXPECT_NE(source->describe().find("indexed:"), std::string::npos);
  // As a plain source it still drains the whole segment.
  expect_same_keyed_content(trace, drain(*source));
}

TEST(IndexedSource, V1FilesStayNonSelective) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("src_v1");
  const std::string path = dir.file("v1.kavb");
  write_binary_trace_file(path, trace);
  auto source = open_trace_source(path);
  EXPECT_EQ(dynamic_cast<SelectiveTraceSource*>(source.get()), nullptr);
}

TEST(EngineKeyFilter, SelectiveMatchesFullOnIndexedSource) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("engine_sel");
  const std::string path = write_v2_file(dir, "seg.kavb", trace, 2);

  Engine engine;
  const Report full = engine.verify(trace);

  auto source = open_trace_source(path);
  RunOptions run;
  run.key_filter = {"beta", "absent", "alpha"};
  const Report selected = engine.verify(*source, run);

  EXPECT_TRUE(selected.selected);
  EXPECT_EQ(selected.keys_selected, 2u);
  EXPECT_EQ(selected.keys_available, 3u);
  EXPECT_EQ(selected.missing_keys, std::vector<std::string>{"absent"});
  ASSERT_EQ(selected.per_key.size(), 2u);
  for (const auto& [key, result] : selected.per_key) {
    const Verdict& reference = full.per_key.at(key).verdict;
    EXPECT_EQ(result.verdict.outcome, reference.outcome) << key;
    EXPECT_EQ(result.verdict.witness, reference.witness) << key;
    EXPECT_EQ(result.verdict.reason, reference.reason) << key;
  }
  EXPECT_NE(selected.summary().find("selected 2/3 keys"), std::string::npos);
  EXPECT_NE(selected.summary().find("1 requested missing"),
            std::string::npos);
}

TEST(EngineKeyFilter, FallbackFiltersNonIndexedSources) {
  const KeyedTrace trace = sample_trace();
  TempDir dir("engine_fallback");
  const std::string text_path = dir.file("trace.txt");
  write_trace_file(text_path, trace);

  Engine engine;
  const Report full = engine.verify(trace);
  auto source = open_trace_source(text_path);
  RunOptions run;
  run.key_filter = {"gamma", "absent"};
  const Report selected = engine.verify(*source, run);
  EXPECT_TRUE(selected.selected);
  EXPECT_EQ(selected.keys_selected, 1u);
  EXPECT_EQ(selected.keys_available, 3u);
  EXPECT_EQ(selected.missing_keys, std::vector<std::string>{"absent"});
  ASSERT_EQ(selected.per_key.size(), 1u);
  EXPECT_EQ(selected.per_key.at("gamma").verdict.outcome,
            full.per_key.at("gamma").verdict.outcome);
}

TEST(EngineKeyFilter, WorksOnMemoryTracesAndShards) {
  const KeyedTrace trace = sample_trace();
  Engine engine;
  RunOptions run;
  run.key_filter = {"alpha"};
  const Report from_trace = engine.verify(trace, run);
  EXPECT_EQ(from_trace.per_key.size(), 1u);
  EXPECT_EQ(from_trace.keys_available, 3u);
  EXPECT_TRUE(from_trace.per_key.count("alpha"));

  const KeyedHistories shards = split_by_key(trace);
  const Report from_shards = engine.verify(shards, run);
  EXPECT_EQ(from_shards.per_key.size(), 1u);
  EXPECT_EQ(from_shards.keys_selected, 1u);
}

TEST(EngineKeyFilter, MonitorFiltersKeys) {
  const KeyedTrace trace = sample_trace();
  Engine engine;
  RunOptions run;
  run.key_filter = {"beta", "absent"};
  const Report report = engine.monitor(trace, run);
  EXPECT_EQ(report.mode, Report::Mode::monitor);
  EXPECT_EQ(report.per_key.size(), 1u);
  EXPECT_TRUE(report.per_key.count("beta"));
  EXPECT_EQ(report.keys_available, 3u);
  EXPECT_EQ(report.missing_keys, std::vector<std::string>{"absent"});
}

TEST(EngineKeyFilter, StoreSourceServesSelectiveRuns) {
  TempDir dir("engine_store");
  TraceStore store(dir.path());
  store.append(trace_chunk(0, "k"));
  store.append(trace_chunk(500, "k"));

  Engine engine;
  const KeyedTrace everything = drain(*store.open_source());
  const Report full = engine.verify(everything);

  auto source = store.open_source();
  RunOptions run;
  run.key_filter = {"k1"};
  const Report selected = engine.verify(*source, run);
  ASSERT_EQ(selected.per_key.size(), 1u);
  const Verdict& reference = full.per_key.at("k1").verdict;
  EXPECT_EQ(selected.per_key.at("k1").verdict.outcome, reference.outcome);
  EXPECT_EQ(selected.per_key.at("k1").verdict.witness, reference.witness);
}

}  // namespace
}  // namespace kav
