// Unit tests for src/util: rng determinism and distribution sanity,
// statistics (moments, quantiles, power-law fits), interval containers,
// and the flag parser.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/flags.h"
#include "util/interval_set.h"
#include "util/rng.h"
#include "util/stats.h"

namespace kav {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.uniform(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BoundedIsUnbiasedEnough) {
  Rng rng(99);
  std::vector<int> counts(7, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) ++counts[rng.bounded(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 7, trials / 7 * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(OnlineStats, MomentsMatchKnownData) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, Quantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(PowerFit, RecoversQuadratic) {
  std::vector<double> xs, ys;
  for (double x : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);
  }
  const PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-6);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(PowerFit, RecoversLinearWithNoise) {
  std::vector<double> xs, ys;
  Rng rng(11);
  for (int i = 1; i <= 30; ++i) {
    const double x = i * 100.0;
    xs.push_back(x);
    ys.push_back(5.0 * x * (0.9 + 0.2 * rng.uniform_double()));
  }
  const PowerFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.0, 0.05);
}

TEST(PowerFit, SkipsNonPositive) {
  const PowerFit fit = fit_power_law({-1.0, 0.0, 2.0}, {1.0, 1.0, 8.0});
  EXPECT_EQ(fit.points, 1u);
  EXPECT_EQ(fit.exponent, 0.0);  // under-determined
}

TEST(Interval, OverlapAndContainment) {
  const Interval a{0, 10};
  const Interval b{5, 15};
  const Interval c{12, 20};
  const Interval inner{2, 8};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.contains(inner));
  EXPECT_FALSE(inner.contains(a));
  EXPECT_FALSE(a.contains(a));  // strict
  EXPECT_TRUE(a.contains(TimePoint{5}));
  EXPECT_FALSE(a.contains(TimePoint{0}));  // strict endpoints
}

TEST(IntervalSet, MergesRuns) {
  IntervalSet set;
  set.add({0, 10});
  set.add({5, 20});
  set.add({30, 40});
  ASSERT_EQ(set.runs().size(), 2u);
  EXPECT_EQ(set.runs()[0], (Interval{0, 20}));
  EXPECT_EQ(set.runs()[1], (Interval{30, 40}));
  EXPECT_TRUE(set.covers(TimePoint{15}));
  EXPECT_FALSE(set.covers(TimePoint{25}));
  EXPECT_TRUE(set.covers(Interval{31, 39}));
  EXPECT_FALSE(set.covers(Interval{5, 35}));
}

TEST(IntervalSet, TouchingIntervalsStaySeparate) {
  // Strict overlap semantics: [0,10) and [10,20) do not merge.
  IntervalSet set;
  set.add({0, 10});
  set.add({10, 20});
  EXPECT_EQ(set.runs().size(), 2u);
}

TEST(IntervalTree, StabbingAndOverlap) {
  std::vector<IntervalTree::Entry> entries;
  entries.push_back({{0, 10}, 0});
  entries.push_back({{5, 15}, 1});
  entries.push_back({{20, 30}, 2});
  const IntervalTree tree(std::move(entries));
  EXPECT_EQ(tree.size(), 3u);

  const auto at7 = tree.stabbing(7);
  EXPECT_EQ(at7, (std::vector<std::size_t>{0, 1}));
  const auto at25 = tree.stabbing(25);
  EXPECT_EQ(at25, (std::vector<std::size_t>{2}));
  EXPECT_TRUE(tree.stabbing(17).empty());

  const auto over = tree.overlapping({8, 22});
  EXPECT_EQ(over, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(IntervalTree, LargeRandomAgainstBruteForce) {
  Rng rng(17);
  std::vector<IntervalTree::Entry> entries;
  for (std::size_t i = 0; i < 500; ++i) {
    const TimePoint lo = rng.uniform(0, 10000);
    entries.push_back({{lo, lo + rng.uniform(1, 500)}, i});
  }
  const std::vector<IntervalTree::Entry> copy = entries;
  const IntervalTree tree(std::move(entries));
  for (int trial = 0; trial < 50; ++trial) {
    const TimePoint lo = rng.uniform(0, 10000);
    const Interval query{lo, lo + rng.uniform(1, 700)};
    std::set<std::size_t> expected;
    for (const auto& e : copy) {
      if (e.iv.overlaps(query)) expected.insert(e.tag);
    }
    const auto got = tree.overlapping(query);
    EXPECT_EQ(std::set<std::size_t>(got.begin(), got.end()), expected);
  }
}

TEST(Flags, ParsesForms) {
  // Note --name consumes a following non-flag token as its value, so a
  // trailing bare --gamma is boolean true while "pos1" (before any
  // flag) stays positional.
  const char* argv[] = {"prog", "pos1", "--alpha=3", "--beta", "7",
                        "--gamma"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_int("beta", 0), 7);
  EXPECT_TRUE(flags.get_bool("gamma", false));
  EXPECT_EQ(flags.get_string("missing", "d"), "d");
  EXPECT_EQ(flags.positional(), std::vector<std::string>{"pos1"});
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(Flags, BoolFlagHandsBackSwallowedPositional) {
  // The constructor cannot know --json is boolean, so it greedily
  // consumes the path as its value; get_bool must undo that.
  const char* argv[] = {"prog", "--json", "trace.kavb"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("json", false));
  EXPECT_EQ(flags.positional(), std::vector<std::string>{"trace.kavb"});
  EXPECT_NO_THROW(flags.check_unknown());
}

TEST(Flags, BoolFlagParsesExplicitValues) {
  const char* argv[] = {"prog", "--a=true", "--b", "no", "--c=0"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_FALSE(flags.get_bool("c", true));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, RejectsUnknown) {
  const char* argv[] = {"prog", "--oops=1"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_THROW(flags.check_unknown(), std::invalid_argument);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2.5"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
}

}  // namespace
}  // namespace kav
