// Tests for the analysis module: staleness spectra over witnesses and
// structural zone profiles.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/fzf.h"
#include "core/gk.h"
#include "core/minimal_k.h"
#include "core/oracle.h"
#include "gen/generators.h"
#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

TEST(StalenessSpectrum, AtomicWitnessIsAllFresh) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  b.write(30, 40, 2);
  b.read(42, 50, 2);
  const History h = b.build();
  const Verdict v = check_1atomicity_gk(h);
  ASSERT_TRUE(v.yes());
  const StalenessSpectrum spectrum = staleness_spectrum(h, v.witness);
  EXPECT_EQ(spectrum.reads, 2u);
  EXPECT_EQ(spectrum.max_separation, 0);
  EXPECT_DOUBLE_EQ(spectrum.fresh_fraction, 1.0);
  EXPECT_DOUBLE_EQ(spectrum.mean_separation, 0.0);
}

TEST(StalenessSpectrum, CountsSeparations) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(20, 30, 2);
  const OpId r1 = b.read(40, 50, 1);  // one write (w2) between
  const OpId r2 = b.read(52, 60, 2);  // fresh
  const History h = b.build();
  const std::vector<OpId> order{w1, w2, r1, r2};
  const StalenessSpectrum spectrum = staleness_spectrum(h, order);
  ASSERT_EQ(spectrum.histogram.size(), 2u);
  EXPECT_EQ(spectrum.histogram[0], 1u);
  EXPECT_EQ(spectrum.histogram[1], 1u);
  EXPECT_EQ(spectrum.max_separation, 1);
  EXPECT_DOUBLE_EQ(spectrum.mean_separation, 0.5);
  EXPECT_DOUBLE_EQ(spectrum.fresh_fraction, 0.5);
}

TEST(StalenessSpectrum, RejectsInvalidWitness) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId r1 = b.read(12, 20, 1);
  const History h = b.build();
  EXPECT_THROW(staleness_spectrum(h, std::vector<OpId>{r1, w1}),
               std::invalid_argument);
  EXPECT_THROW(staleness_spectrum(h, std::vector<OpId>{w1}),
               std::invalid_argument);
}

TEST(StalenessSpectrum, MaxSeparationMatchesMinimalKOnMinimalWitness) {
  // For the oracle's witness at the minimal k, max separation = k - 1.
  Rng rng(66);
  for (int t = 0; t < 40; ++t) {
    gen::RandomMixConfig config;
    config.operations = 10;
    config.staleness_decay = 0.6;
    const History h = gen::generate_random_mix(config, rng);
    const MinimalKResult min_k = minimal_k(h);
    ASSERT_TRUE(min_k.exact);
    const OracleResult r = oracle_is_k_atomic(h, min_k.k);
    ASSERT_TRUE(r.yes());
    const StalenessSpectrum spectrum = staleness_spectrum(h, r.witness);
    EXPECT_LE(spectrum.max_separation, min_k.k - 1);
    if (min_k.k > 1 && spectrum.reads > 0) {
      // The witness realizes the bound somewhere (else k would be
      // smaller... not strictly: the oracle may find slack witnesses;
      // assert only the upper bound plus non-degeneracy).
      EXPECT_GE(spectrum.max_separation, 0);
    }
  }
}

TEST(ZoneProfile, CountsStructures) {
  const History h = gen::generate_b3_chunk(4);
  const ZoneProfile profile = zone_profile(h);
  EXPECT_EQ(profile.clusters, 7u);  // 3 forward + 4 backward
  EXPECT_EQ(profile.forward_zones, 3u);
  EXPECT_EQ(profile.backward_zones, 4u);
  EXPECT_EQ(profile.chunks, 1u);
  EXPECT_EQ(profile.dangling, 0u);
  EXPECT_EQ(profile.largest_chunk_clusters, 7u);
  EXPECT_EQ(profile.max_backward_per_chunk, 4u);
}

TEST(ZoneProfile, EmptyHistory) {
  const ZoneProfile profile = zone_profile(History{});
  EXPECT_EQ(profile.clusters, 0u);
  EXPECT_EQ(profile.chunks, 0u);
}

TEST(ZoneProfile, ReportsConcurrencyKnob) {
  Rng rng(3);
  gen::KAtomicConfig tight;
  tight.writes = 40;
  tight.spread = 0.2;
  const ZoneProfile low_c =
      zone_profile(gen::generate_k_atomic(tight, rng).history);
  const History clumped = gen::generate_high_concurrency(2, 12, rng);
  const ZoneProfile high_c = zone_profile(clumped);
  EXPECT_LT(low_c.max_concurrent_writes, high_c.max_concurrent_writes);
  EXPECT_EQ(high_c.max_concurrent_writes, 12u);
}

TEST(ChunkStats, MatchesChunkSetOnCuratedShapes) {
  // compute_chunk_stats mirrors compute_chunk_set with counters only;
  // the two must agree field for field on every chunk shape.
  for (const History& h :
       {gen::generate_b3_chunk(3), gen::generate_b3_chunk(4),
        gen::generate_property_p_triple(), gen::generate_property_p_fan(5),
        gen::generate_forced_separation(3, 2), History{}}) {
    const std::vector<Zone> zones = compute_zones(h);
    const ChunkSet set = compute_chunk_set(h, zones);
    const ChunkStats stats = compute_chunk_stats(zones);
    EXPECT_EQ(stats.chunks, set.chunks.size());
    EXPECT_EQ(stats.dangling, set.dangling_writes.size());
    std::size_t largest = 0;
    std::size_t max_backward = 0;
    for (const Chunk& chunk : set.chunks) {
      largest = std::max(largest, chunk.forward_writes.size() +
                                      chunk.backward_writes.size());
      max_backward = std::max(max_backward, chunk.backward_writes.size());
    }
    EXPECT_EQ(stats.largest_chunk_clusters, largest);
    EXPECT_EQ(stats.max_backward_per_chunk, max_backward);
  }
}

TEST(ChunkStats, MatchesChunkSetOnRandomHistories) {
  Rng rng(0xC45);
  for (int trial = 0; trial < 50; ++trial) {
    gen::RandomMixConfig config;
    config.operations = 10 + static_cast<int>(rng.bounded(80));
    const History h = gen::generate_random_mix(config, rng);
    const std::vector<Zone> zones = compute_zones(h);
    const ChunkSet set = compute_chunk_set(h, zones);
    const ChunkStats stats = compute_chunk_stats(zones);
    ASSERT_EQ(stats.chunks, set.chunks.size()) << "trial " << trial;
    ASSERT_EQ(stats.dangling, set.dangling_writes.size()) << "trial " << trial;
    std::size_t largest = 0;
    std::size_t max_backward = 0;
    for (const Chunk& chunk : set.chunks) {
      largest = std::max(largest, chunk.forward_writes.size() +
                                      chunk.backward_writes.size());
      max_backward = std::max(max_backward, chunk.backward_writes.size());
    }
    ASSERT_EQ(stats.largest_chunk_clusters, largest) << "trial " << trial;
    ASSERT_EQ(stats.max_backward_per_chunk, max_backward) << "trial " << trial;
  }
}

TEST(ZoneProfile, ToStringMentionsCounts) {
  const History h = gen::generate_b3_chunk(3);
  const std::string text = zone_profile(h).to_string();
  EXPECT_NE(text.find("chunks"), std::string::npos);
  EXPECT_NE(text.find("backward"), std::string::npos);
}

}  // namespace
}  // namespace kav
