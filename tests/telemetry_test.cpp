// Tests for obs::TelemetryServer (src/obs/telemetry_server.h): the
// four HTTP endpoints against a private registry, the byte-identity
// contract between GET /metrics and a same-instant
// render_prometheus(registry.snapshot()), health flips via custom
// checks and the kav_store_maintenance_ok gauge, keep-alive reuse, and
// Engine integration (EngineOptions::telemetry_port / serve_telemetry)
// including concurrent scraping while verify/monitor runs are live --
// the load shape the ASan/TSan jobs must stay clean under.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "kav.h"
#include "util/rng.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace kav {
namespace {

#if defined(__linux__)

KeyedTrace small_trace(int keys, int ops_per_key, std::uint64_t seed) {
  Rng rng(seed);
  KeyedTrace trace;
  for (int k = 0; k < keys; ++k) {
    gen::RandomMixConfig config;
    config.operations = ops_per_key;
    const History h = gen::generate_random_mix(config, rng);
    const std::string key = "key" + std::to_string(k);
    for (const Operation& op : h.operations()) trace.add(key, op);
  }
  return trace;
}

// Raw round trip for the request shapes http_get cannot produce
// (non-GET methods, pipelined keep-alive): send `wire`, read to EOF.
std::string raw_round_trip(std::uint16_t port, const std::string& wire) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = write(fd, wire.data() + sent, wire.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[8192];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  return reply;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle);
       pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- Endpoint basics over a private registry -------------------------------

TEST(TelemetryServer, BindsEphemeralPortAndServesMetrics) {
  obs::MetricsRegistry registry;
  registry.counter("kav_sample_events_total", "Events.").add(42);
  obs::TelemetryServer server(registry);
  EXPECT_EQ(server.address(), "127.0.0.1");
  ASSERT_NE(server.port(), 0);

  const net::HttpResponse response =
      net::http_get(server.address(), server.port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("kav_sample_events_total 42"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(TelemetryServer, MetricsByteIdenticalToSameInstantRender) {
  obs::MetricsRegistry registry;
  registry.counter("kav_sample_events_total", "Events.").add(7);
  registry.gauge("kav_sample_backlog", "Backlog.").set(3);
  registry.histogram("kav_sample_step_seconds", "Steps.").observe(0.004);
  obs::TelemetryServer server(registry);

  // The registry is quiescent between the scrape and the local render,
  // and the rate tick only runs inside the scrape -- so the scraped
  // body must equal a render taken right after, byte for byte. Twice,
  // with a mutation in between, to rule out one-shot luck.
  for (int round = 0; round < 2; ++round) {
    const net::HttpResponse scraped =
        net::http_get(server.address(), server.port(), "/metrics");
    ASSERT_EQ(scraped.status, 200);
    EXPECT_EQ(scraped.body, obs::render_prometheus(registry.snapshot()));
    registry.counter("kav_sample_events_total", "Events.").add(5);
  }
}

TEST(TelemetryServer, RateGaugesAppearInRegistryWithWindowLabels) {
  obs::MetricsRegistry registry;
  obs::Counter& ingested =
      registry.counter("kav_monitor_ops_ingested_total", "Ops.");
  obs::TelemetryServer server(registry);

  ingested.add(1000);
  const net::HttpResponse response =
      net::http_get(server.address(), server.port(), "/metrics");
  ASSERT_EQ(response.status, 200);
  // The derived gauges live in the same registry under the _rate
  // grammar: base name minus _total, one series per window.
  for (const char* window : {"1s", "10s", "60s"}) {
    const std::string series = "kav_monitor_ops_ingested_rate{window=\"" +
                               std::string(window) + "\"}";
    EXPECT_NE(response.body.find(series), std::string::npos)
        << "missing " << series;
  }
}

TEST(TelemetryServer, StatusReportsSourceAndServerFields) {
  obs::MetricsRegistry registry;
  obs::TelemetryServer server(registry);
  server.set_status_source([] {
    obs::StatusSnapshot status;
    status.uptime_seconds = 12.5;
    status.runs_started = 3;
    status.runs_completed = 2;
    status.runs_in_flight = 1;
    obs::RunSummaryInfo run;
    run.mode = "monitor";
    run.outcome = "completed";
    run.seconds = 0.25;
    run.keys = 4;
    run.findings = 1;
    status.recent_runs.push_back(run);
    status.violation_top.emplace_back("hot\"key", 9);
    return status;
  });

  const net::HttpResponse response =
      net::http_get(server.address(), server.port(), "/status");
  ASSERT_EQ(response.status, 200);
  const std::string& body = response.body;
  EXPECT_NE(body.find("\"runs\""), std::string::npos);
  EXPECT_NE(body.find("\"started\": 3"), std::string::npos);
  EXPECT_NE(body.find("\"in_flight\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"mode\": \"monitor\""), std::string::npos);
  // JSON escaping comes from the shared obs::detail helpers.
  EXPECT_NE(body.find("hot\\\"key"), std::string::npos);
  EXPECT_NE(body.find("\"server\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\""), std::string::npos);
}

TEST(TelemetryServer, HealthzFlipsWithChecksAndMaintenanceGauge) {
  obs::MetricsRegistry registry;
  obs::Gauge& maintenance_ok =
      registry.gauge("kav_store_maintenance_ok", "Store health.");
  maintenance_ok.set(1);
  obs::TelemetryServer server(registry);

  net::HttpResponse response =
      net::http_get(server.address(), server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");

  // A store maintenance failure (gauge -> 0) turns /healthz 503...
  maintenance_ok.set(0);
  response = net::http_get(server.address(), server.port(), "/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("kav_store_maintenance_ok"),
            std::string::npos);

  // ...and a successful pass recovers it.
  maintenance_ok.set(1);
  response = net::http_get(server.address(), server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);

  // Custom checks contribute their names to the failure body.
  std::atomic<bool> disk_ok{false};
  server.add_health_check("disk", [&disk_ok] { return disk_ok.load(); });
  response = net::http_get(server.address(), server.port(), "/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("disk"), std::string::npos);
  disk_ok = true;
  response = net::http_get(server.address(), server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
}

TEST(TelemetryServer, SpansServeChromeTraceJson) {
  obs::MetricsRegistry registry;
  obs::TelemetryServer server(registry);
  const net::HttpResponse response =
      net::http_get(server.address(), server.port(), "/spans");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetryServer, UnknownPathsAnd405) {
  obs::MetricsRegistry registry;
  obs::TelemetryServer server(registry);

  EXPECT_EQ(net::http_get(server.address(), server.port(), "/nope").status,
            404);

  const std::string reply = raw_round_trip(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(reply.find("HTTP/1.1 405 "), 0u);

  const std::string bad = raw_round_trip(server.port(), "not http\r\n\r\n");
  EXPECT_EQ(bad.find("HTTP/1.1 400 "), 0u);
}

TEST(TelemetryServer, KeepAliveServesPipelinedRequests) {
  obs::MetricsRegistry registry;
  obs::TelemetryServer server(registry);
  // Two requests on one connection: the first keeps the connection
  // open, the second asks to close so read-to-EOF terminates.
  const std::string reply = raw_round_trip(
      server.port(),
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(count_occurrences(reply, "HTTP/1.1 200 OK"), 2u);
  EXPECT_EQ(count_occurrences(reply, "ok\n"), 2u);
  EXPECT_GE(server.requests_served(), 2u);
}

TEST(TelemetryServer, OversizedRequestHeadAnswers431) {
  obs::MetricsRegistry registry;
  obs::TelemetryOptions options;
  options.max_request_bytes = 256;
  obs::TelemetryServer server(registry, options);
  const std::string reply = raw_round_trip(
      server.port(), "GET /metrics HTTP/1.1\r\nX-Pad: " +
                         std::string(1024, 'a') + "\r\n\r\n");
  EXPECT_EQ(reply.find("HTTP/1.1 431 "), 0u);
}

TEST(TelemetryServer, StopIsIdempotentAndRefusesAfter) {
  obs::MetricsRegistry registry;
  obs::TelemetryServer server(registry);
  const std::uint16_t port = server.port();
  server.stop();
  server.stop();  // idempotent
  EXPECT_THROW(net::http_get("127.0.0.1", port, "/healthz", 500),
               std::runtime_error);
}

// --- Engine integration ----------------------------------------------------

TEST(EngineTelemetry, OptionsPortStartsServerAndStatusTracksRuns) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.metrics = &registry;
  options.telemetry_port = 0;  // ephemeral
  Engine engine(options);
  ASSERT_NE(engine.telemetry(), nullptr);
  ASSERT_NE(engine.telemetry()->port(), 0);
  // serve_telemetry() is idempotent: same server back.
  EXPECT_EQ(&engine.serve_telemetry(), engine.telemetry());

  const KeyedTrace trace = small_trace(3, 12, 55);
  engine.verify(trace);
  engine.monitor(trace);

  const std::string address = engine.telemetry()->address();
  const std::uint16_t port = engine.telemetry()->port();

  const net::HttpResponse metrics = net::http_get(address, port, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.body, obs::render_prometheus(engine.snapshot()));
  EXPECT_NE(
      metrics.body.find("kav_engine_runs_completed_total{mode=\"batch\"} 1"),
      std::string::npos);
  EXPECT_NE(
      metrics.body.find("kav_engine_runs_completed_total{mode=\"monitor\"} 1"),
      std::string::npos);

  const net::HttpResponse status = net::http_get(address, port, "/status");
  ASSERT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"completed\": 2"), std::string::npos);
  EXPECT_NE(status.body.find("\"mode\": \"batch\""), std::string::npos);
  EXPECT_NE(status.body.find("\"mode\": \"monitor\""), std::string::npos);

  EXPECT_EQ(net::http_get(address, port, "/healthz").status, 200);
}

TEST(EngineTelemetry, StatusLedgerCountsWithoutServer) {
  // Engine::status() works with telemetry off: the ledger is always on.
  Engine engine;
  EXPECT_EQ(engine.telemetry(), nullptr);
  const KeyedTrace trace = small_trace(2, 10, 9);
  engine.verify(trace);
  const obs::StatusSnapshot status = engine.status();
  EXPECT_EQ(status.runs_started, 1u);
  EXPECT_EQ(status.runs_completed, 1u);
  EXPECT_EQ(status.runs_in_flight, 0u);
  ASSERT_EQ(status.recent_runs.size(), 1u);
  EXPECT_EQ(status.recent_runs[0].mode, "batch");
  EXPECT_EQ(status.recent_runs[0].keys, 2u);
}

TEST(EngineTelemetry, ConcurrentScrapesDuringLiveRunsStayClean) {
  // The ASan/TSan acceptance shape: scrapers hammer every endpoint
  // while verify/monitor runs mutate the registry and the run ledger.
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.metrics = &registry;
  Engine engine(options);
  obs::TelemetryServer& server = engine.serve_telemetry();
  const std::string address = server.address();
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> scrape_errors{0};
  std::vector<std::thread> scrapers;
  const char* const targets[] = {"/metrics", "/status", "/healthz", "/spans"};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        try {
          const net::HttpResponse response =
              net::http_get(address, port, targets[t]);
          if (response.status != 200) ++scrape_errors;
        } catch (const std::exception&) {
          ++scrape_errors;
        }
      }
    });
  }

  const KeyedTrace trace = small_trace(4, 24, 77);
  for (int round = 0; round < 6; ++round) {
    engine.verify(trace);
    engine.monitor(trace);
  }
  done = true;
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(scrape_errors.load(), 0);
  EXPECT_GT(server.requests_served(), 0u);

  const obs::StatusSnapshot status = engine.status();
  EXPECT_EQ(status.runs_completed, 12u);
  EXPECT_EQ(status.runs_in_flight, 0u);
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace kav
