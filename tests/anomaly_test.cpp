// Tests for Section II-C precondition handling: detection of each
// anomaly kind, and the normalize() transformation (timestamp
// uniquification + write shortening) with its contracts -- precedence
// preservation, idempotence, and id stability.
#include <gtest/gtest.h>

#include <stdexcept>

#include "history/anomaly.h"
#include "history/history.h"

namespace kav {
namespace {

bool has_kind(const AnomalyReport& report, AnomalyKind kind) {
  for (const Anomaly& a : report.anomalies) {
    if (a.kind == kind) return true;
  }
  return false;
}

TEST(Anomaly, CleanHistoryHasNoAnomalies) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_TRUE(report.empty());
  EXPECT_TRUE(report.verifiable());
}

TEST(Anomaly, ReadWithoutDictatingWrite) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 42);  // value 42 never written
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_TRUE(has_kind(report, AnomalyKind::read_without_dictating_write));
  EXPECT_FALSE(report.repairable());
}

TEST(Anomaly, ReadPrecedesDictatingWrite) {
  HistoryBuilder b;
  b.read(0, 10, 1);
  b.write(20, 30, 1);
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_TRUE(has_kind(report, AnomalyKind::read_precedes_dictating_write));
  EXPECT_FALSE(report.repairable());
}

TEST(Anomaly, OverlappingReadIsNotPreceding) {
  HistoryBuilder b;
  b.read(0, 25, 1);  // overlaps the write: legal (concurrent)
  b.write(20, 30, 1);
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_FALSE(has_kind(report, AnomalyKind::read_precedes_dictating_write));
}

TEST(Anomaly, DuplicateWriteValue) {
  HistoryBuilder b;
  b.write(0, 10, 5);
  b.write(20, 30, 5);
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_TRUE(has_kind(report, AnomalyKind::duplicate_write_value));
  EXPECT_FALSE(report.repairable());
  EXPECT_EQ(report.hard_anomalies().size(), 1u);
}

TEST(Anomaly, DuplicateTimestampIsRepairable) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(10, 20, 2);  // start == previous finish
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_TRUE(has_kind(report, AnomalyKind::duplicate_timestamp));
  EXPECT_TRUE(report.repairable());
}

TEST(Anomaly, WriteOutlivingDictatedRead) {
  HistoryBuilder b;
  b.write(0, 100, 1);
  b.read(5, 50, 1);  // finishes before its write
  const AnomalyReport report = find_anomalies(b.build());
  EXPECT_TRUE(has_kind(report, AnomalyKind::write_outlives_dictated_read));
  EXPECT_TRUE(report.repairable());
}

TEST(Normalize, ProducesNormalizedHistory) {
  HistoryBuilder b;
  b.write(0, 100, 1);
  b.read(5, 50, 1);
  b.write(50, 120, 2);  // duplicate stamp 50, concurrent writes
  b.read(110, 130, 2);
  const History h = b.build();
  EXPECT_FALSE(is_normalized(h));
  const History n = normalize(h);
  EXPECT_TRUE(is_normalized(n));
  EXPECT_TRUE(find_anomalies(n).empty());
}

TEST(Normalize, PreservesPrecedenceExactly) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(10, 20, 1);   // tie: concurrent with the write
  b.write(25, 40, 2);  // strictly after op 0
  b.read(40, 50, 2);
  const History h = b.build();
  const History n = normalize(h);
  ASSERT_EQ(h.size(), n.size());
  for (OpId a = 0; a < h.size(); ++a) {
    for (OpId b2 = 0; b2 < h.size(); ++b2) {
      if (a == b2) continue;
      // Write shortening may only ADD precedence pairs (w, x); the
      // uniquification itself must preserve the relation exactly. Here
      // no write outlives its reads, so the relation is identical.
      EXPECT_EQ(h.precedes(a, b2), n.precedes(a, b2))
          << "pair (" << a << ", " << b2 << ")";
    }
  }
}

TEST(Normalize, ShorteningOnlyAddsWriteFirstPairs) {
  HistoryBuilder b;
  b.write(0, 100, 1);  // outlives its read
  b.read(5, 50, 1);
  b.read(60, 70, 1);
  const History h = b.build();
  const History n = normalize(h);
  // Existing pairs survive.
  for (OpId a = 0; a < h.size(); ++a) {
    for (OpId b2 = 0; b2 < h.size(); ++b2) {
      if (h.precedes(a, b2)) {
        EXPECT_TRUE(n.precedes(a, b2));
      }
    }
  }
  // The write now precedes the read it previously only overlapped.
  EXPECT_TRUE(n.precedes(0, 2));
  // And finishes before the earliest finish among its dictated reads.
  EXPECT_LT(n.op(0).finish, n.op(1).finish);
}

TEST(Normalize, IdempotentUpToEquivalence) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(10, 20, 1);
  const History n1 = normalize(b.build());
  const History n2 = normalize(n1);
  // Second normalization must not change the precedes relation.
  for (OpId a = 0; a < n1.size(); ++a) {
    for (OpId b2 = 0; b2 < n1.size(); ++b2) {
      if (a != b2) {
        EXPECT_EQ(n1.precedes(a, b2), n2.precedes(a, b2));
      }
    }
  }
}

TEST(Normalize, PreservesOperationIdsAndPayload) {
  HistoryBuilder b;
  b.write(0, 10, 7);
  b.read(10, 20, 7);
  const History h = b.build();
  const History n = normalize(h);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_TRUE(n.op(0).is_write());
  EXPECT_TRUE(n.op(1).is_read());
  EXPECT_EQ(n.op(0).value, 7);
  EXPECT_EQ(n.op(1).value, 7);
}

TEST(Normalize, RejectsHardAnomalies) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 42);
  EXPECT_THROW(normalize(b.build()), std::invalid_argument);
}

TEST(Normalize, EmptyHistory) {
  const History n = normalize(History{});
  EXPECT_TRUE(n.empty());
  EXPECT_TRUE(is_normalized(n));
}

TEST(Normalize, TieBetweenFinishAndStartStaysConcurrent) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(10, 20, 2);  // w2.start == w1.finish
  const History n = normalize(b.build());
  EXPECT_FALSE(n.precedes(w1, w2));
  EXPECT_FALSE(n.precedes(w2, w1));
}

TEST(Normalize, ManySharedStampsGetDistinct) {
  HistoryBuilder b;
  for (int i = 0; i < 10; ++i) b.write(100, 200, i + 1);
  const History n = normalize(b.build());
  EXPECT_TRUE(is_normalized(n));
  // All pairwise concurrent before and after.
  for (OpId a = 0; a < n.size(); ++a) {
    for (OpId b2 = 0; b2 < n.size(); ++b2) {
      if (a != b2) {
        EXPECT_FALSE(n.precedes(a, b2));
      }
    }
  }
}

TEST(AnomalyDescribe, MentionsKindAndOps) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 42);
  const History h = b.build();
  const AnomalyReport report = find_anomalies(h);
  ASSERT_FALSE(report.empty());
  const std::string text = describe(report.anomalies.front(), h);
  EXPECT_NE(text.find("read-without-dictating-write"), std::string::npos);
  EXPECT_NE(text.find("read(v=42)"), std::string::npos);
}

}  // namespace
}  // namespace kav
