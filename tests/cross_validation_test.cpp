// The library's strongest correctness evidence: on thousands of seeded
// random histories, every decision procedure must agree with the
// exhaustive oracle --
//
//   GK      == oracle(k=1)            (the solved 1-AV baseline)
//   LBT     == oracle(k=2)            (Theorem 3.1)
//   FZF     == oracle(k=2)            (Theorem 4.5)
//   greedy  => oracle(k)   soundness  (YES implies k-atomic)
//   greedy(k=2) == LBT                (deadline queue degenerates to w')
//
// plus structural invariants: every YES carries an independently valid
// witness, k-atomicity is monotone in k, and verdicts are invariant
// under affine time rescaling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fzf.h"
#include "core/gk.h"
#include "core/greedy.h"
#include "core/lbt.h"
#include "core/oracle.h"
#include "core/witness.h"
#include "gen/generators.h"
#include "history/anomaly.h"
#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

struct SweepParam {
  std::uint64_t seed;
  int operations;
  double write_fraction;
  double staleness_decay;
};

std::string param_name(const testing::TestParamInfo<SweepParam>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.operations) + "_w" +
         std::to_string(static_cast<int>(info.param.write_fraction * 100)) +
         "_d" +
         std::to_string(static_cast<int>(info.param.staleness_decay * 100));
}

class CrossValidation : public testing::TestWithParam<SweepParam> {
 protected:
  // Each parameterized instance checks a batch of random histories so
  // the whole suite covers thousands of cases while staying fast.
  static constexpr int kTrials = 60;

  History next_history(Rng& rng) const {
    gen::RandomMixConfig config;
    config.operations = GetParam().operations;
    config.write_fraction = GetParam().write_fraction;
    config.staleness_decay = GetParam().staleness_decay;
    return gen::generate_random_mix(config, rng);
  }
};

TEST_P(CrossValidation, GkMatchesOracleK1) {
  Rng rng(GetParam().seed);
  for (int t = 0; t < kTrials; ++t) {
    const History h = next_history(rng);
    const OracleResult truth = oracle_is_k_atomic(h, 1);
    ASSERT_TRUE(truth.decided());
    const Verdict gk = check_1atomicity_gk(h);
    ASSERT_TRUE(gk.yes() || gk.no()) << gk.reason;
    EXPECT_EQ(gk.yes(), truth.yes()) << "trial " << t;
    if (gk.yes()) {
      const WitnessCheck check = validate_witness(h, gk.witness, 1);
      EXPECT_TRUE(check.ok()) << check.detail;
    }
  }
}

TEST_P(CrossValidation, LbtMatchesOracleK2) {
  Rng rng(GetParam().seed + 1);
  for (int t = 0; t < kTrials; ++t) {
    const History h = next_history(rng);
    const OracleResult truth = oracle_is_k_atomic(h, 2);
    ASSERT_TRUE(truth.decided());
    const Verdict lbt = check_2atomicity_lbt(h);
    ASSERT_TRUE(lbt.yes() || lbt.no()) << lbt.reason;
    EXPECT_EQ(lbt.yes(), truth.yes()) << "trial " << t;
    if (lbt.yes()) {
      const WitnessCheck check = validate_witness(h, lbt.witness, 2);
      EXPECT_TRUE(check.ok()) << check.detail;
    }
  }
}

TEST_P(CrossValidation, FzfMatchesOracleK2) {
  Rng rng(GetParam().seed + 2);
  for (int t = 0; t < kTrials; ++t) {
    const History h = next_history(rng);
    const OracleResult truth = oracle_is_k_atomic(h, 2);
    ASSERT_TRUE(truth.decided());
    const Verdict fzf = check_2atomicity_fzf(h);
    ASSERT_TRUE(fzf.yes() || fzf.no()) << fzf.reason;
    EXPECT_EQ(fzf.yes(), truth.yes()) << "trial " << t;
    if (fzf.yes()) {
      const WitnessCheck check = validate_witness(h, fzf.witness, 2);
      EXPECT_TRUE(check.ok()) << check.detail;
    }
  }
}

TEST_P(CrossValidation, GreedyIsSoundAndCompleteForK2) {
  Rng rng(GetParam().seed + 3);
  for (int t = 0; t < kTrials; ++t) {
    const History h = next_history(rng);
    const Verdict lbt = check_2atomicity_lbt(h);
    const Verdict greedy = check_k_atomicity_greedy(h, 2);
    // For k = 2 the deadline queue is forced at every step, so the
    // greedy checker is complete and must agree exactly with LBT.
    EXPECT_EQ(greedy.yes(), lbt.yes()) << "trial " << t;
  }
}

TEST_P(CrossValidation, GreedySoundnessForK3) {
  Rng rng(GetParam().seed + 4);
  for (int t = 0; t < kTrials; ++t) {
    const History h = next_history(rng);
    const Verdict greedy = check_k_atomicity_greedy(h, 3);
    if (greedy.yes()) {
      const OracleResult truth = oracle_is_k_atomic(h, 3);
      ASSERT_TRUE(truth.decided());
      EXPECT_TRUE(truth.yes()) << "greedy unsound at trial " << t;
      const WitnessCheck check = validate_witness(h, greedy.witness, 3);
      EXPECT_TRUE(check.ok()) << check.detail;
    }
  }
}

TEST_P(CrossValidation, MonotoneInK) {
  Rng rng(GetParam().seed + 5);
  for (int t = 0; t < kTrials / 2; ++t) {
    const History h = next_history(rng);
    bool previous_yes = false;
    for (int k = 1; k <= 4; ++k) {
      const OracleResult r = oracle_is_k_atomic(h, k);
      ASSERT_TRUE(r.decided());
      if (previous_yes) {
        EXPECT_TRUE(r.yes()) << "monotonicity broken, trial " << t
                             << " k=" << k;
      }
      previous_yes = r.yes();
    }
  }
}

TEST_P(CrossValidation, VerdictInvariantUnderTimeRescaling) {
  Rng rng(GetParam().seed + 6);
  for (int t = 0; t < kTrials / 3; ++t) {
    const History h = next_history(rng);
    std::vector<Operation> scaled_ops(h.operations().begin(),
                                      h.operations().end());
    for (Operation& op : scaled_ops) {
      op.start = op.start * 7 + 1000;
      op.finish = op.finish * 7 + 1000;
    }
    const History scaled(std::move(scaled_ops));
    EXPECT_EQ(check_2atomicity_fzf(h).yes(),
              check_2atomicity_fzf(scaled).yes())
        << "trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, CrossValidation,
    testing::Values(
        // Small, dense histories: many concurrent ops, mixed verdicts.
        SweepParam{101, 8, 0.5, 0.4}, SweepParam{202, 10, 0.5, 0.5},
        SweepParam{303, 12, 0.4, 0.6}, SweepParam{404, 12, 0.6, 0.3},
        // Read-heavy (few writes, lots of reads per cluster).
        SweepParam{505, 12, 0.25, 0.5}, SweepParam{606, 14, 0.2, 0.4},
        // Write-heavy (stale reads rare but write order constrained).
        SweepParam{707, 12, 0.8, 0.5},
        // Very stale (high decay: reads often several writes behind).
        SweepParam{808, 10, 0.5, 0.8}, SweepParam{909, 12, 0.45, 0.75}),
    param_name);

// Constructive YES instances: generate_k_atomic(k) must be accepted at
// level k by the exact deciders, and its intended order must validate.
struct ConstructiveParam {
  std::uint64_t seed;
  int writes;
  int k;
  double spread;
};

class ConstructiveSweep : public testing::TestWithParam<ConstructiveParam> {};

TEST_P(ConstructiveSweep, GeneratedHistoriesAreKAtomic) {
  Rng rng(GetParam().seed);
  for (int t = 0; t < 25; ++t) {
    gen::KAtomicConfig config;
    config.writes = GetParam().writes;
    config.k = GetParam().k;
    config.spread = GetParam().spread;
    const gen::GeneratedHistory g = gen::generate_k_atomic(config, rng);
    // The intended order is a valid k-atomic witness.
    const WitnessCheck intended =
        validate_witness(g.history, g.intended_order, config.k);
    ASSERT_TRUE(intended.ok()) << intended.detail;
    // The appropriate exact decider agrees.
    if (config.k == 1) {
      EXPECT_TRUE(check_1atomicity_gk(g.history).yes());
    } else if (config.k == 2) {
      EXPECT_TRUE(check_2atomicity_fzf(g.history).yes());
      EXPECT_TRUE(check_2atomicity_lbt(g.history).yes());
    } else if (g.history.size() <= 24) {
      const OracleResult r = oracle_is_k_atomic(g.history, config.k);
      ASSERT_TRUE(r.decided());
      EXPECT_TRUE(r.yes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Constructive, ConstructiveSweep,
    testing::Values(ConstructiveParam{11, 6, 1, 0.5},
                    ConstructiveParam{22, 8, 1, 1.5},
                    ConstructiveParam{33, 6, 2, 0.5},
                    ConstructiveParam{44, 10, 2, 1.0},
                    ConstructiveParam{55, 30, 2, 2.0},
                    ConstructiveParam{66, 5, 3, 0.8},
                    ConstructiveParam{77, 6, 4, 1.2}),
    [](const testing::TestParamInfo<ConstructiveParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_m" +
             std::to_string(info.param.writes) + "_k" +
             std::to_string(info.param.k);
    });

// Adversarial NO instances at scale: LBT and FZF agree on NO without
// needing the oracle.
TEST(CrossValidationAdversarial, DecidersAgreeOnAntiPatterns) {
  const std::vector<History> cases = {
      gen::generate_forced_separation(2),
      gen::generate_forced_separation(2, 5),
      gen::generate_forced_separation(3),
      gen::generate_property_p_triple(),
      gen::generate_property_p_triple(100),
      gen::generate_property_p_fan(3),
      gen::generate_property_p_fan(6),
      gen::generate_b3_chunk(3),
      gen::generate_b3_chunk(5),
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_TRUE(check_2atomicity_lbt(cases[i]).no()) << "case " << i;
    EXPECT_TRUE(check_2atomicity_fzf(cases[i]).no()) << "case " << i;
    if (cases[i].size() <= 24) {
      EXPECT_TRUE(oracle_is_k_atomic(cases[i], 2).no()) << "case " << i;
    }
  }
}

// Forced separation s is exactly (s+1)-atomic: NO at k = s, YES at
// k = s + 1 (greedy finds it; oracle confirms).
TEST(CrossValidationAdversarial, ForcedSeparationThresholds) {
  for (int s = 1; s <= 4; ++s) {
    const History h = gen::generate_forced_separation(s);
    const OracleResult at_s = oracle_is_k_atomic(h, s);
    const OracleResult above = oracle_is_k_atomic(h, s + 1);
    ASSERT_TRUE(at_s.decided() && above.decided());
    EXPECT_TRUE(at_s.no()) << "s=" << s;
    EXPECT_TRUE(above.yes()) << "s=" << s;
    const Verdict greedy = check_k_atomicity_greedy(h, s + 1);
    EXPECT_TRUE(greedy.yes()) << "s=" << s;
  }
}

}  // namespace
}  // namespace kav
