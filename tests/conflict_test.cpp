// Conflict extraction: NO verdicts from GK and FZF carry a subset of
// operations that is *itself* a counterexample -- re-verifying the
// projection onto the conflict must still yield NO. This is the
// debugging affordance a storage engineer needs: not "your trace is
// bad" but "these specific operations cannot be explained".
#include <gtest/gtest.h>

#include <set>

#include "core/fzf.h"
#include "core/gk.h"
#include "gen/generators.h"
#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

History project(const History& history, const std::vector<OpId>& ids) {
  std::vector<Operation> ops;
  ops.reserve(ids.size());
  for (OpId id : ids) ops.push_back(history.op(id));
  return History(std::move(ops));
}

void expect_conflict_is_counterexample_1av(const History& h) {
  const Verdict v = check_1atomicity_gk(h);
  ASSERT_TRUE(v.no());
  ASSERT_FALSE(v.conflict.empty());
  // Valid ids, no duplicates.
  std::set<OpId> unique(v.conflict.begin(), v.conflict.end());
  EXPECT_EQ(unique.size(), v.conflict.size());
  for (OpId id : v.conflict) ASSERT_LT(id, h.size());
  // Strictly smaller than the history (a *localized* explanation)...
  EXPECT_LT(v.conflict.size(), h.size() + 1);
  // ...and itself non-1-atomic.
  const Verdict projected = check_1atomicity_gk(project(h, v.conflict));
  EXPECT_TRUE(projected.no()) << projected.reason;
}

void expect_conflict_is_counterexample_2av(const History& h) {
  const Verdict v = check_2atomicity_fzf(h);
  ASSERT_TRUE(v.no());
  ASSERT_FALSE(v.conflict.empty());
  std::set<OpId> unique(v.conflict.begin(), v.conflict.end());
  EXPECT_EQ(unique.size(), v.conflict.size());
  for (OpId id : v.conflict) ASSERT_LT(id, h.size());
  const Verdict projected = check_2atomicity_fzf(project(h, v.conflict));
  EXPECT_TRUE(projected.no()) << projected.reason;
}

TEST(Conflict, GkOverlappingForwardZones) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(40, 50, 1);
  b.write(25, 30, 2);
  b.read(60, 70, 2);
  // Healthy padding far away; must not appear in the conflict.
  b.write(10'000, 10'010, 3);
  b.read(10'020, 10'030, 3);
  const History h = b.build();
  const Verdict v = check_1atomicity_gk(h);
  ASSERT_TRUE(v.no());
  EXPECT_EQ(v.conflict.size(), 4u);
  for (OpId id : v.conflict) EXPECT_LT(id, 4u);  // padding excluded
  expect_conflict_is_counterexample_1av(h);
}

TEST(Conflict, GkBackwardInsideForward) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(60, 70, 1);
  b.write(20, 45, 2);
  b.read(25, 50, 2);
  expect_conflict_is_counterexample_1av(b.build());
}

TEST(Conflict, FzfB3Chunk) {
  const History h = gen::generate_b3_chunk(4);
  expect_conflict_is_counterexample_2av(h);
}

TEST(Conflict, FzfPropertyP) {
  expect_conflict_is_counterexample_2av(gen::generate_property_p_triple());
  expect_conflict_is_counterexample_2av(gen::generate_property_p_fan(4));
}

TEST(Conflict, FzfLocalizesToTheBadChunk) {
  // A failing chunk surrounded by healthy chunks: the conflict must not
  // include the healthy clusters.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 1);  // healthy chunk 1
  // Property-P triple shifted into the middle of the timeline.
  const TimePoint base = 1000;
  for (int i = 0; i < 3; ++i) {
    const TimePoint lo = base + (i + 1) * 100;
    const TimePoint hi = base + (i + 4) * 100;
    b.write(lo - 50, lo, 10 + i);
    b.read(hi, hi + 50, 10 + i);
  }
  b.write(10'000, 10'010, 2);
  b.read(10'020, 10'030, 2);  // healthy chunk 2
  const History h = b.build();
  const Verdict v = check_2atomicity_fzf(h);
  ASSERT_TRUE(v.no());
  EXPECT_EQ(v.conflict.size(), 6u);  // exactly the triple's operations
  for (OpId id : v.conflict) {
    const Value value = h.op(id).value;
    EXPECT_GE(value, 10);
    EXPECT_LE(value, 12);
  }
  expect_conflict_is_counterexample_2av(h);
}

TEST(Conflict, RandomNoInstancesAlwaysLocalize) {
  Rng rng(515);
  int no_count = 0;
  for (int t = 0; t < 120 && no_count < 25; ++t) {
    gen::RandomMixConfig config;
    config.operations = 14;
    config.staleness_decay = 0.7;
    const History h = gen::generate_random_mix(config, rng);
    const Verdict v = check_2atomicity_fzf(h);
    if (!v.no()) continue;
    ++no_count;
    expect_conflict_is_counterexample_2av(h);
  }
  EXPECT_GE(no_count, 5);
}

TEST(Conflict, YesVerdictsHaveNoConflict) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  const History h = b.build();
  EXPECT_TRUE(check_1atomicity_gk(h).conflict.empty());
  EXPECT_TRUE(check_2atomicity_fzf(h).conflict.empty());
}

}  // namespace
}  // namespace kav
