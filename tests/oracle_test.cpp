// Tests for the exhaustive oracle: known small instances for every k,
// witness validity, memoization equivalence, node limits, and the
// weighted variant's semantics (Section V).
#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/witness.h"
#include "history/anomaly.h"
#include "history/history.h"

namespace kav {
namespace {

History forced_separation(int separation) {
  HistoryBuilder b;
  for (int i = 0; i <= separation; ++i) {
    b.write(i * 100, i * 100 + 50, i + 1);
  }
  b.read((separation + 1) * 100, (separation + 1) * 100 + 50, 1);
  return b.build();
}

TEST(Oracle, EmptyHistoryYes) {
  const OracleResult r = oracle_is_k_atomic(History{}, 1);
  EXPECT_TRUE(r.yes());
  EXPECT_TRUE(r.witness.empty());
}

TEST(Oracle, AtomicPairYesForAllK) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  const History h = b.build();
  for (int k = 1; k <= 3; ++k) {
    const OracleResult r = oracle_is_k_atomic(h, k);
    ASSERT_TRUE(r.yes()) << "k=" << k;
    EXPECT_TRUE(validate_witness(h, r.witness, k).ok());
  }
}

TEST(Oracle, ForcedSeparationThresholds) {
  // separation s => minimal k is exactly s + 1.
  for (int s = 0; s <= 3; ++s) {
    const History h = forced_separation(s);
    for (int k = 1; k <= s + 2; ++k) {
      const OracleResult r = oracle_is_k_atomic(h, k);
      ASSERT_TRUE(r.decided());
      EXPECT_EQ(r.yes(), k >= s + 1) << "s=" << s << " k=" << k;
      if (r.yes()) {
        EXPECT_TRUE(validate_witness(h, r.witness, k).ok());
      }
    }
  }
}

TEST(Oracle, MonotoneInK) {
  HistoryBuilder b;
  b.write(0, 30, 1);
  b.write(10, 40, 2);
  b.write(20, 50, 3);
  b.read(35, 60, 1);
  b.read(45, 70, 2);
  const History h = normalize(b.build());
  bool seen_yes = false;
  for (int k = 1; k <= 4; ++k) {
    const OracleResult r = oracle_is_k_atomic(h, k);
    ASSERT_TRUE(r.decided());
    if (seen_yes) {
      EXPECT_TRUE(r.yes()) << "monotonicity broken at k=" << k;
    }
    seen_yes = seen_yes || r.yes();
  }
  EXPECT_TRUE(seen_yes);
}

TEST(Oracle, MemoizationDoesNotChangeVerdict) {
  HistoryBuilder b;
  b.write(0, 30, 1);
  b.write(5, 35, 2);
  b.write(10, 40, 3);
  b.read(32, 50, 1);
  b.read(37, 55, 2);
  b.read(42, 60, 3);
  const History h = normalize(b.build());
  for (int k = 1; k <= 3; ++k) {
    OracleOptions with, without;
    without.memoize = false;
    const OracleResult a = oracle_is_k_atomic(h, k, with);
    const OracleResult b2 = oracle_is_k_atomic(h, k, without);
    ASSERT_TRUE(a.decided());
    ASSERT_TRUE(b2.decided());
    EXPECT_EQ(a.yes(), b2.yes()) << "k=" << k;
  }
}

TEST(Oracle, NodeLimitReportsUndecided) {
  HistoryBuilder b;
  for (int i = 0; i < 12; ++i) {
    b.write(i, 1000 + i, i + 1);  // 12 concurrent writes: 12! orders
  }
  b.read(1200, 1300, 1);
  OracleOptions options;
  options.node_limit = 5;
  const OracleResult r = oracle_is_k_atomic(normalize(b.build()), 1, options);
  EXPECT_EQ(r.outcome, OracleOutcome::node_limit);
  EXPECT_FALSE(r.decided());
}

TEST(Oracle, RejectsOversizedHistory) {
  HistoryBuilder b;
  for (int i = 0; i < 65; ++i) b.write(i * 10, i * 10 + 5, i + 1);
  const OracleResult r = oracle_is_k_atomic(b.build(), 1);
  EXPECT_EQ(r.outcome, OracleOutcome::invalid);
}

TEST(Oracle, RejectsBadK) {
  EXPECT_EQ(oracle_is_k_atomic(History{}, 0).outcome, OracleOutcome::invalid);
}

TEST(Oracle, RejectsAnomalies) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 7);
  EXPECT_EQ(oracle_is_k_atomic(b.build(), 2).outcome, OracleOutcome::invalid);
}

TEST(Oracle, ConcurrentWritesAllowAnyOrder) {
  // Three concurrent writes, read of any one of them is 1-atomic: the
  // dictating write can be ordered last.
  for (int target = 1; target <= 3; ++target) {
    HistoryBuilder b;
    b.write(0, 100, 1);
    b.write(5, 105, 2);
    b.write(10, 110, 3);
    b.read(120, 130, target);
    const OracleResult r = oracle_is_k_atomic(normalize(b.build()), 1);
    EXPECT_TRUE(r.yes()) << "target=" << target;
  }
}

TEST(Oracle, TwoStaleSequentialReadsNeedK3) {
  // w1 w2 w3 sequential; reads of w1 and w2 after w3: the read of w1
  // has 2 intervening writes however ordered.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.write(40, 50, 3);
  b.read(60, 70, 1);
  b.read(80, 90, 2);
  const History h = b.build();
  EXPECT_TRUE(oracle_is_k_atomic(h, 2).no());
  EXPECT_TRUE(oracle_is_k_atomic(h, 3).yes());
}

// ---- weighted (k-WAV) ----

TEST(OracleWeighted, DictatingWriteWeightCounts) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  const History h = b.build();
  const std::vector<Weight> weights{4, 1};
  EXPECT_TRUE(oracle_is_weighted_k_atomic(h, weights, 3).no());
  EXPECT_TRUE(oracle_is_weighted_k_atomic(h, weights, 4).yes());
}

TEST(OracleWeighted, HeavyIntervenerForcedBetween) {
  // w1 < heavy < r(w1) in real time: separation weight = 1 + 10.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.read(40, 50, 1);
  const History h = b.build();
  const std::vector<Weight> weights{1, 10, 1};
  EXPECT_TRUE(oracle_is_weighted_k_atomic(h, weights, 10).no());
  EXPECT_TRUE(oracle_is_weighted_k_atomic(h, weights, 11).yes());
}

TEST(OracleWeighted, ConcurrentHeavyWriteCanBeDodged) {
  // The heavy write overlaps everything: order it before w1 or after
  // the read, so it never separates the pair.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(0, 60, 2);  // heavy, concurrent with all
  b.read(12, 20, 1);
  const History h = normalize(b.build());
  const std::vector<Weight> weights{1, 100, 1};
  EXPECT_TRUE(oracle_is_weighted_k_atomic(h, weights, 1).yes());
}

TEST(OracleWeighted, AllWeightOneMatchesUnweighted) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.write(40, 50, 3);
  b.read(60, 70, 1);
  const History h = b.build();
  const std::vector<Weight> ones(h.size(), 1);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_EQ(oracle_is_k_atomic(h, k).yes(),
              oracle_is_weighted_k_atomic(h, ones, k).yes())
        << "k=" << k;
  }
}

TEST(OracleWeighted, RejectsNonPositiveWriteWeight) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  const std::vector<Weight> weights{0};
  EXPECT_EQ(oracle_is_weighted_k_atomic(b.build(), weights, 2).outcome,
            OracleOutcome::invalid);
}

TEST(OracleWeighted, RejectsSizeMismatch) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  const std::vector<Weight> weights{1, 1};
  EXPECT_EQ(oracle_is_weighted_k_atomic(b.build(), weights, 2).outcome,
            OracleOutcome::invalid);
}

}  // namespace
}  // namespace kav
