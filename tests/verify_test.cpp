// Tests for the verification facade: algorithm dispatch, automatic
// normalization, k-mismatch rejection, and multi-register locality
// (Section II-B).
#include <gtest/gtest.h>

#include "core/verify.h"
#include "core/witness.h"
#include "history/history.h"

namespace kav {
namespace {

History one_hop_history() {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.read(40, 50, 1);
  return b.build();  // 2-atomic, not 1-atomic
}

TEST(Verify, AutoSelectLadder) {
  const History h = one_hop_history();
  VerifyOptions options;
  options.k = 1;
  EXPECT_TRUE(verify_k_atomicity(h, options).no());
  options.k = 2;
  EXPECT_TRUE(verify_k_atomicity(h, options).yes());
  options.k = 3;
  EXPECT_TRUE(verify_k_atomicity(h, options).yes());
}

TEST(Verify, ExplicitAlgorithmsAgree) {
  const History h = one_hop_history();
  for (Algorithm algorithm : {Algorithm::lbt, Algorithm::lbt_naive,
                              Algorithm::fzf, Algorithm::greedy,
                              Algorithm::oracle}) {
    VerifyOptions options;
    options.k = 2;
    options.algorithm = algorithm;
    const Verdict v = verify_k_atomicity(h, options);
    EXPECT_TRUE(v.yes()) << to_string(algorithm) << ": " << v.reason;
    EXPECT_TRUE(validate_witness(h, v.witness, 2).ok());
  }
}

TEST(Verify, KMismatchRejected) {
  const History h = one_hop_history();
  VerifyOptions options;
  options.k = 3;
  options.algorithm = Algorithm::fzf;
  EXPECT_EQ(verify_k_atomicity(h, options).outcome,
            Outcome::precondition_failed);
  options.algorithm = Algorithm::gk;
  EXPECT_EQ(verify_k_atomicity(h, options).outcome,
            Outcome::precondition_failed);
}

TEST(Verify, BadKRejected) {
  VerifyOptions options;
  options.k = 0;
  EXPECT_EQ(verify_k_atomicity(History{}, options).outcome,
            Outcome::precondition_failed);
}

TEST(Verify, NormalizesRepairableInputByDefault) {
  HistoryBuilder b;
  b.write(0, 100, 1);  // outlives its read: repairable
  b.read(5, 50, 1);
  const History h = b.build();
  VerifyOptions options;
  options.k = 1;
  EXPECT_TRUE(verify_k_atomicity(h, options).yes());
  options.normalize = false;
  EXPECT_EQ(verify_k_atomicity(h, options).outcome,
            Outcome::precondition_failed);
}

TEST(Verify, HardAnomaliesAlwaysRejected) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 9);
  const Verdict v = verify_k_atomicity(b.build());
  EXPECT_EQ(v.outcome, Outcome::precondition_failed);
  EXPECT_NE(v.reason.find("hard anomalies"), std::string::npos);
}

TEST(Verify, AutoKThreeUsesOracleThenGreedy) {
  // Small history: oracle decides exactly (NO at k=3 impossible here,
  // so use a separation-3 chain: NO at 3, YES at 4).
  HistoryBuilder b;
  for (int i = 0; i < 4; ++i) b.write(i * 100, i * 100 + 50, i + 1);
  b.read(400, 450, 1);
  const History h = b.build();
  VerifyOptions options;
  options.k = 3;
  EXPECT_TRUE(verify_k_atomicity(h, options).no());
  options.k = 4;
  EXPECT_TRUE(verify_k_atomicity(h, options).yes());
}

TEST(VerifyKeyed, LocalitySplitsByKey) {
  KeyedTrace trace;
  // Key a: atomic. Key b: one-hop stale (2-atomic only).
  trace.add("a", make_write(0, 10, 1));
  trace.add("a", make_read(12, 20, 1));
  trace.add("b", make_write(0, 10, 1));
  trace.add("b", make_write(20, 30, 2));
  trace.add("b", make_read(40, 50, 1));
  VerifyOptions options;
  options.k = 1;
  const KeyedReport report = verify_keyed_trace(trace, options);
  ASSERT_EQ(report.per_key.size(), 2u);
  EXPECT_TRUE(report.per_key.at("a").yes());
  EXPECT_TRUE(report.per_key.at("b").no());
  EXPECT_FALSE(report.all_yes());
  EXPECT_EQ(report.count(Outcome::yes), 1u);
  EXPECT_EQ(report.count(Outcome::no), 1u);

  options.k = 2;
  const KeyedReport report2 = verify_keyed_trace(trace, options);
  EXPECT_TRUE(report2.all_yes());
}

TEST(VerifyKeyed, DuplicateValuesAcrossKeysAreFine) {
  // Value uniqueness is per register (Section II-C): the same value on
  // different keys must not be a duplicate-value anomaly.
  KeyedTrace trace;
  trace.add("x", make_write(0, 10, 42));
  trace.add("y", make_write(0, 10, 42));
  trace.add("x", make_read(12, 20, 42));
  trace.add("y", make_read(12, 20, 42));
  const KeyedReport report = verify_keyed_trace(trace);
  EXPECT_TRUE(report.all_yes()) << report.summary();
}

TEST(VerifyKeyed, SummaryMentionsCounts) {
  KeyedTrace trace;
  trace.add("a", make_write(0, 10, 1));
  trace.add("a", make_read(12, 20, 1));
  const KeyedReport report = verify_keyed_trace(trace);
  EXPECT_NE(report.summary().find("1/1"), std::string::npos);
}

}  // namespace
}  // namespace kav
