// Tests for the independent witness validator: permutation checking,
// precedence (validity), the k-atomicity staleness bound, and the
// weighted (k-WAV) variant.
#include <gtest/gtest.h>

#include <vector>

#include "core/witness.h"
#include "history/history.h"

namespace kav {
namespace {

History simple_history(HistoryBuilder& b, OpId* w1, OpId* r1, OpId* w2,
                       OpId* r2) {
  *w1 = b.write(0, 10, 1);
  *r1 = b.read(12, 20, 1);
  *w2 = b.write(22, 30, 2);
  *r2 = b.read(32, 40, 2);
  return b.build();
}

TEST(Witness, AcceptsCorrectOrder) {
  HistoryBuilder b;
  OpId w1, r1, w2, r2;
  const History h = simple_history(b, &w1, &r1, &w2, &r2);
  const std::vector<OpId> order{w1, r1, w2, r2};
  const WitnessCheck check = validate_witness(h, order, 1);
  EXPECT_TRUE(check.ok()) << check.detail;
}

TEST(Witness, RejectsNonPermutation) {
  HistoryBuilder b;
  OpId w1, r1, w2, r2;
  const History h = simple_history(b, &w1, &r1, &w2, &r2);
  EXPECT_FALSE(validate_witness(h, std::vector<OpId>{w1, r1, w2}, 1)
                   .is_permutation);
  EXPECT_FALSE(
      validate_witness(h, std::vector<OpId>{w1, r1, w2, w2}, 1).is_permutation);
  EXPECT_FALSE(
      validate_witness(h, std::vector<OpId>{w1, r1, w2, 99}, 1).is_permutation);
}

TEST(Witness, RejectsPrecedenceViolation) {
  HistoryBuilder b;
  OpId w1, r1, w2, r2;
  const History h = simple_history(b, &w1, &r1, &w2, &r2);
  // w2 really starts after r1 finishes, so r1 cannot follow w2... the
  // violating pair is (w2 before r1) with r1.finish < ... actually
  // r1 [12,20] precedes w2 [22,30]; ordering w2 before r1 is invalid.
  const WitnessCheck check =
      validate_witness(h, std::vector<OpId>{w1, w2, r1, r2}, 2);
  EXPECT_TRUE(check.is_permutation);
  EXPECT_FALSE(check.respects_precedence);
}

TEST(Witness, RejectsReadBeforeItsWrite) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId r1 = b.read(5, 20, 1);  // concurrent with w1
  const History h = b.build();
  const WitnessCheck check =
      validate_witness(h, std::vector<OpId>{r1, w1}, 1);
  EXPECT_TRUE(check.respects_precedence);  // they are concurrent
  EXPECT_FALSE(check.k_atomic);
  EXPECT_NE(check.detail.find("before its dictating write"),
            std::string::npos);
}

TEST(Witness, EnforcesStalenessBound) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(0, 11, 2);
  const OpId w3 = b.write(0, 12, 3);
  const OpId r1 = b.read(5, 20, 1);
  const History h = b.build();
  // Order w1 w2 w3 r1: two writes separate r1 from w1.
  const std::vector<OpId> order{w1, w2, w3, r1};
  EXPECT_FALSE(validate_witness(h, order, 1).k_atomic);
  EXPECT_FALSE(validate_witness(h, order, 2).k_atomic);
  EXPECT_TRUE(validate_witness(h, order, 3).ok());
}

TEST(Witness, BoundaryExactlyKMinusOneIntervening) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(0, 11, 2);
  const OpId r1 = b.read(5, 20, 1);
  const History h = b.build();
  const std::vector<OpId> order{w1, w2, r1};
  EXPECT_FALSE(validate_witness(h, order, 1).k_atomic);
  EXPECT_TRUE(validate_witness(h, order, 2).ok());
}

TEST(Witness, EmptyHistoryEmptyOrder) {
  const History h;
  EXPECT_TRUE(validate_witness(h, std::vector<OpId>{}, 1).ok());
}

TEST(Witness, WeightedSeparationIncludesDictatingWrite) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId r1 = b.read(12, 20, 1);
  const History h = b.build();
  // Section V: separation counts the dictating write itself. Weight 3
  // on w1 means the read needs k >= 3 even adjacent to its write.
  const std::vector<Weight> weights{3, 0};
  const std::vector<OpId> order{w1, r1};
  EXPECT_FALSE(validate_weighted_witness(h, order, weights, 2).k_atomic);
  EXPECT_TRUE(validate_weighted_witness(h, order, weights, 3).ok());
}

TEST(Witness, WeightedInterveningWritesAccumulate) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(0, 11, 2);
  const OpId w3 = b.write(0, 12, 3);
  const OpId r1 = b.read(5, 20, 1);
  const History h = b.build();
  const std::vector<Weight> weights{1, 5, 2, 0};
  const std::vector<OpId> order{w1, w2, w3, r1};
  // Separation weight = 1 + 5 + 2 = 8.
  EXPECT_FALSE(validate_weighted_witness(h, order, weights, 7).k_atomic);
  EXPECT_TRUE(validate_weighted_witness(h, order, weights, 8).ok());
}

TEST(Witness, UnweightedEqualsWeightOne) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(0, 11, 2);
  const OpId r1 = b.read(5, 20, 1);
  const History h = b.build();
  const std::vector<Weight> ones{1, 1, 1};
  const std::vector<OpId> order{w1, w2, r1};
  for (int k = 1; k <= 3; ++k) {
    EXPECT_EQ(validate_witness(h, order, k).ok(),
              validate_weighted_witness(h, order, ones, k).ok())
        << "k=" << k;
  }
}

TEST(Witness, DetailNamesFirstViolation) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(0, 11, 2);
  const OpId r1 = b.read(5, 20, 1);
  const History h = b.build();
  const WitnessCheck check =
      validate_witness(h, std::vector<OpId>{w1, w2, r1}, 1);
  EXPECT_NE(check.detail.find("separation weight"), std::string::npos);
}

}  // namespace
}  // namespace kav
