// Tests for the general-k greedy checker (the Section VII open-problem
// explorer): soundness (YES always carries a valid witness), k=2
// completeness (equivalent to LBT), deadline-queue behaviour, and
// honest UNDECIDED answers.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/lbt.h"
#include "core/oracle.h"
#include "core/witness.h"
#include "gen/generators.h"
#include "history/anomaly.h"
#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

TEST(Greedy, EmptyHistoryYes) {
  EXPECT_TRUE(check_k_atomicity_greedy(History{}, 3).yes());
}

TEST(Greedy, RejectsBadK) {
  EXPECT_EQ(check_k_atomicity_greedy(History{}, 0).outcome,
            Outcome::precondition_failed);
}

TEST(Greedy, NeverAnswersNo) {
  // Even on clearly non-k-atomic inputs, the greedy checker must answer
  // undecided (it is incomplete, so NO is not in its vocabulary).
  const History h = gen::generate_forced_separation(3);
  const Verdict v = check_k_atomicity_greedy(h, 2);
  EXPECT_EQ(v.outcome, Outcome::undecided);
}

TEST(Greedy, FindsChainWitnessesAcrossK) {
  // forced separation s is (s+1)-atomic; greedy must find the witness.
  for (int s = 0; s <= 5; ++s) {
    const History h = gen::generate_forced_separation(s);
    const Verdict v = check_k_atomicity_greedy(h, s + 1);
    ASSERT_TRUE(v.yes()) << "s=" << s;
    EXPECT_TRUE(validate_witness(h, v.witness, s + 1).ok());
    // And with extra slack too.
    EXPECT_TRUE(check_k_atomicity_greedy(h, s + 3).yes());
  }
}

TEST(Greedy, MultipleDeadlinesInterleaved) {
  // Two writes become pending at the same step with different slacks:
  // w1 < w2 < w3 all sequential, reads of w1 and w2 after w3 interleave
  // with reads of w3. Minimal k is 3.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.write(40, 50, 3);
  b.read(60, 70, 2);  // one hop if ordered w1 w2 w3? no: w3 intervenes
  b.read(80, 90, 1);
  const History h = b.build();
  const OracleResult truth3 = oracle_is_k_atomic(h, 3);
  ASSERT_TRUE(truth3.yes());
  EXPECT_TRUE(check_k_atomicity_greedy(h, 3).yes());
  EXPECT_EQ(check_k_atomicity_greedy(h, 2).outcome, Outcome::undecided);
}

TEST(Greedy, AgreesWithLbtOnK2RandomSweep) {
  Rng rng(424242);
  for (int t = 0; t < 400; ++t) {
    gen::RandomMixConfig config;
    config.operations = 11;
    const History h = gen::generate_random_mix(config, rng);
    const bool lbt_yes = check_2atomicity_lbt(h).yes();
    const Verdict greedy = check_k_atomicity_greedy(h, 2);
    ASSERT_EQ(greedy.yes(), lbt_yes) << "trial " << t;
    EXPECT_EQ(greedy.outcome, lbt_yes ? Outcome::yes : Outcome::undecided);
  }
}

TEST(Greedy, SoundOnRandomK3K4Sweep) {
  Rng rng(31337);
  int found = 0;
  for (int t = 0; t < 300; ++t) {
    gen::RandomMixConfig config;
    config.operations = 12;
    config.staleness_decay = 0.7;  // encourage deep staleness
    const History h = gen::generate_random_mix(config, rng);
    for (int k = 3; k <= 4; ++k) {
      const Verdict v = check_k_atomicity_greedy(h, k);
      if (v.yes()) {
        ++found;
        const OracleResult truth = oracle_is_k_atomic(h, k);
        ASSERT_TRUE(truth.decided());
        EXPECT_TRUE(truth.yes()) << "unsound at trial " << t << " k=" << k;
      }
    }
  }
  EXPECT_GT(found, 0);  // the checker is not vacuous
}

TEST(Greedy, CompletenessRateOnKAtomicInstances) {
  // On histories k-atomic by construction, measure how often greedy
  // finds a witness; it should succeed on a solid majority (it is a
  // heuristic, not a decider, so we assert a floor rather than 100%).
  Rng rng(777);
  int found = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    gen::KAtomicConfig config;
    config.writes = 8;
    config.k = 3;
    const gen::GeneratedHistory g = gen::generate_k_atomic(config, rng);
    if (check_k_atomicity_greedy(g.history, 3).yes()) ++found;
  }
  EXPECT_GE(found, trials / 2) << "greedy found " << found << "/" << trials;
}

TEST(Greedy, RejectsAnomalousInput) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 9);
  EXPECT_EQ(check_k_atomicity_greedy(b.build(), 3).outcome,
            Outcome::precondition_failed);
}

TEST(Greedy, HighConcurrencyWorkloadFoundAtK2) {
  Rng rng(9);
  const History h = gen::generate_high_concurrency(2, 5, rng);
  const Verdict v = check_k_atomicity_greedy(h, 2);
  ASSERT_TRUE(v.yes());
  EXPECT_TRUE(validate_witness(h, v.witness, 2).ok());
}

}  // namespace
}  // namespace kav
