// Tests for FZF (Section IV / Figure 4): stage-2 order selection
// (T_F / T_F' and backward-write placement), the B >= 3 rejection
// (Lemma 4.3), property-P rejection (via the viability subroutine),
// witness validity, and the Section IV-A observation that zone sets
// alone cannot decide 2-atomicity.
#include <gtest/gtest.h>

#include "core/fzf.h"
#include "core/lbt.h"
#include "core/witness.h"
#include "gen/generators.h"
#include "history/anomaly.h"
#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

void expect_yes_with_valid_witness(const History& h) {
  const Verdict v = check_2atomicity_fzf(h);
  ASSERT_TRUE(v.yes()) << v.reason;
  const WitnessCheck check = validate_witness(h, v.witness, 2);
  EXPECT_TRUE(check.ok()) << check.detail;
}

TEST(Fzf, EmptyHistoryYes) {
  EXPECT_TRUE(check_2atomicity_fzf(History{}).yes());
}

TEST(Fzf, SingleClusterYes) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  expect_yes_with_valid_witness(b.build());
}

TEST(Fzf, OneStaleHopYes) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.read(40, 50, 1);
  expect_yes_with_valid_witness(b.build());
}

TEST(Fzf, ForcedSeparationTwoNo) {
  const Verdict v = check_2atomicity_fzf(gen::generate_forced_separation(2));
  EXPECT_TRUE(v.no());
}

TEST(Fzf, PropertyPTripleNo) {
  const Verdict v = check_2atomicity_fzf(gen::generate_property_p_triple());
  EXPECT_TRUE(v.no());
  EXPECT_NE(v.reason.find("no viable write order"), std::string::npos);
}

TEST(Fzf, PropertyPFanNo) {
  EXPECT_TRUE(check_2atomicity_fzf(gen::generate_property_p_fan(3)).no());
  EXPECT_TRUE(check_2atomicity_fzf(gen::generate_property_p_fan(5)).no());
}

TEST(Fzf, B3ChunkRejectedByLemma43) {
  const Verdict v = check_2atomicity_fzf(gen::generate_b3_chunk(3));
  EXPECT_TRUE(v.no());
  EXPECT_NE(v.reason.find("backward clusters"), std::string::npos);
}

TEST(Fzf, B4ChunkRejected) {
  EXPECT_TRUE(check_2atomicity_fzf(gen::generate_b3_chunk(4)).no());
}

TEST(Fzf, TwoBackwardClustersInChunkCanBeYes) {
  // One forward cluster bridging two backward clusters that poke out on
  // either side... construct: forward zone [20, 40]; backward clusters
  // inside the chunk extent, placeable before/after the forward write.
  HistoryBuilder b;
  b.write(0, 20, 1);
  b.read(40, 60, 1);   // forward zone [20, 40]
  b.write(22, 30, 2);
  b.read(24, 32, 2);   // backward zone inside [20, 40]
  b.write(31, 39, 3);
  b.read(33, 41, 3);   // second backward zone inside
  const History h = normalize(b.build());
  const Verdict fzf = check_2atomicity_fzf(h);
  const Verdict lbt = check_2atomicity_lbt(h);
  EXPECT_EQ(fzf.yes(), lbt.yes());
  if (fzf.yes()) {
    EXPECT_TRUE(validate_witness(h, fzf.witness, 2).ok());
  }
}

TEST(Fzf, TFPrimeRequired) {
  // A chunk where T_F fails but T_F' (first two writes swapped)
  // succeeds: zone A starts lower but must be ordered second because
  // a read of B lands between. Shape from Lemma 4.2 case analysis:
  // A = FZ5-like (ends after B ends).
  HistoryBuilder b;
  // Cluster A: write finishes 10, read starts 60 -> zone [10, 60].
  b.write(0, 10, 1);
  b.read(60, 70, 1);
  // Cluster B: write finishes 15, read starts 40 -> zone [15, 40].
  b.write(12, 15, 2);
  b.read(40, 50, 2);
  // Chain both clusters: zones overlap ([10,60] & [15,40]).
  // The read of B at 40 precedes the read of A at 60; order w_B w_A
  // leaves r(B) two writes stale? Check both deciders agree; at least
  // one of T_F / T_F' must be tested.
  const History h = b.build();
  const Verdict fzf = check_2atomicity_fzf(h);
  const Verdict lbt = check_2atomicity_lbt(h);
  ASSERT_EQ(fzf.yes(), lbt.yes());
  if (fzf.yes()) {
    EXPECT_TRUE(validate_witness(h, fzf.witness, 2).ok());
  }
  EXPECT_GE(fzf.stats.orders_tested, 1u);
}

TEST(Fzf, DanglingClustersConcatenatedValidly) {
  // Backward clusters between two separate chunks.
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 1);  // chunk 1: zone [10, 20]
  b.write(32, 50, 2);
  b.read(35, 52, 2);  // dangling backward cluster, zone [35, 50]
  b.write(60, 70, 3);
  b.read(80, 90, 3);  // chunk 2: zone [70, 80]
  expect_yes_with_valid_witness(normalize(b.build()));
}

TEST(Fzf, WriteOnlyHistoryYes) {
  HistoryBuilder b;
  for (int i = 0; i < 10; ++i) b.write(i * 5, i * 5 + 100, i + 1);
  expect_yes_with_valid_witness(normalize(b.build()));
}

// Section IV-A: two histories with identical zone sets but different
// 2-AV verdicts (the reason FZF needs the viability subroutine rather
// than zone-level reasoning alone). We build two histories whose zones
// agree as intervals yet whose read placement differs in depth.
TEST(Fzf, IdenticalZonesDifferentVerdicts) {
  // History X: forward zones [10,30] (A) and [20,40] (B); A's read
  // starts at 30, B's read starts at 40, reads are short.
  HistoryBuilder x;
  x.write(0, 10, 1);
  x.read(30, 45, 1);   // zone A [10, 30]
  x.write(12, 20, 2);
  x.read(40, 55, 2);   // zone B [20, 40]
  // History Y: same zones, but A's read *finishes* before B's write
  // finishes is impossible here; instead B's read is also dictated
  // stale order... we instead vary which operation realizes the zone
  // endpoint: A's read at [30,45] replaced by read at [30,32] and a
  // second read of w1 at [44, 46] widening nothing but pinning order.
  HistoryBuilder y;
  y.write(0, 10, 1);
  y.read(30, 32, 1);   // zone A still [10, 30]
  y.read(12, 31, 1);   // extra read, keeps zone A endpoints
  y.write(11, 20, 2);
  y.read(40, 55, 2);   // zone B [20, 40]
  const History hx = normalize(x.build());
  const History hy = normalize(y.build());
  const auto zx = compute_zones(hx);
  const auto zy = compute_zones(hy);
  ASSERT_EQ(zx.size(), zy.size());
  // The verdicts may or may not differ for this particular pair; the
  // invariant under test is agreement between FZF and LBT on both.
  for (const History* h : {&hx, &hy}) {
    EXPECT_EQ(check_2atomicity_fzf(*h).yes(), check_2atomicity_lbt(*h).yes());
  }
}

TEST(Fzf, StatsCountChunks) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 1);
  b.write(100, 110, 2);
  b.read(120, 130, 2);
  const Verdict v = check_2atomicity_fzf(b.build());
  ASSERT_TRUE(v.yes());
  EXPECT_EQ(v.stats.chunks, 2u);
  EXPECT_EQ(v.stats.dangling, 0u);
}

TEST(Fzf, RejectsAnomalousInput) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 9);
  EXPECT_EQ(check_2atomicity_fzf(b.build()).outcome,
            Outcome::precondition_failed);
}

TEST(Fzf, HighConcurrencyWorkloadYes) {
  Rng rng(5);
  expect_yes_with_valid_witness(gen::generate_high_concurrency(3, 6, rng));
}

}  // namespace
}  // namespace kav
