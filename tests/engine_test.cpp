// Tests for the kav::Engine session API: options precedence (per-call
// VerifyOptions overrides), pool sharing (one Engine running batch and
// monitor work creates exactly one ThreadPool -- the created_count
// hook), cancellation and deadline semantics, TraceSource equivalence
// (memory == text file == binary file == push), the unified Report /
// one-formatter summary contract, and the legacy facade wrappers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "kav.h"
#include "util/rng.h"

namespace kav {
namespace {

KeyedTrace multi_key_trace(int keys, int ops_per_key, std::uint64_t seed) {
  Rng rng(seed);
  KeyedTrace trace;
  for (int k = 0; k < keys; ++k) {
    gen::RandomMixConfig config;
    config.operations = ops_per_key;
    const History h = gen::generate_random_mix(config, rng);
    const std::string key = "key" + std::to_string(k);
    for (const Operation& op : h.operations()) trace.add(key, op);
  }
  return trace;
}

KeyedTrace one_bad_key_trace(int good_keys) {
  KeyedTrace trace;
  // Key "a" sorts first: forced separation 2 means minimal k = 3, so
  // it answers NO at k = 2.
  const History bad = gen::generate_forced_separation(2);
  for (const Operation& op : bad.operations()) trace.add("a", op);
  for (int i = 0; i < good_keys; ++i) {
    const std::string key = "b" + std::to_string(i);
    trace.add(key, make_write(0, 10, 1));
    trace.add(key, make_read(12, 20, 1));
  }
  return trace;
}

void expect_verdicts_equal(const Verdict& a, const Verdict& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.witness, b.witness);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.conflict, b.conflict);
  EXPECT_TRUE(a.stats == b.stats);
}

void expect_reports_equal(const Report& a, const Report& b) {
  ASSERT_EQ(a.per_key.size(), b.per_key.size());
  auto ita = a.per_key.begin();
  auto itb = b.per_key.begin();
  for (; ita != a.per_key.end(); ++ita, ++itb) {
    SCOPED_TRACE("key " + ita->first);
    ASSERT_EQ(ita->first, itb->first);
    expect_verdicts_equal(ita->second.verdict, itb->second.verdict);
  }
}

// --- Pool sharing ---------------------------------------------------------

TEST(Engine, BatchAndMonitorShareExactlyOnePool) {
  const KeyedTrace trace = multi_key_trace(4, 16, 7);
  const std::uint64_t pools_before = pipeline::ThreadPool::created_count();
  {
    EngineOptions options;
    options.threads = 2;
    Engine engine(options);
    engine.verify(trace);
    engine.monitor(trace);
    engine.verify(trace);
    engine.monitor(trace);
    EXPECT_EQ(engine.thread_count(), 2u);
  }
  EXPECT_EQ(pipeline::ThreadPool::created_count(), pools_before + 1);
}

TEST(Engine, LegacyWrappersSpawnAPoolPerCall) {
  // The cost the session API removes: each legacy parallel/monitor
  // facade call builds a temporary Engine with its own pool.
  const KeyedTrace trace = multi_key_trace(2, 10, 9);
  const std::uint64_t pools_before = pipeline::ThreadPool::created_count();
  PipelineOptions pipeline;
  pipeline.threads = 1;
  verify_keyed_trace(trace, {}, pipeline);
  verify_keyed_trace(trace, {}, pipeline);
  EXPECT_EQ(pipeline::ThreadPool::created_count(), pools_before + 2);
}

TEST(Engine, PoolIsExposedForSideWork) {
  Engine engine;
  EXPECT_EQ(engine.pool().submit([] { return 41 + 1; }).get(), 42);
}

// --- Options precedence ---------------------------------------------------

TEST(Engine, PerCallVerifyOptionsOverrideEngineOptions) {
  // Staged history: 2-atomic but not atomic, so k decides the verdict.
  KeyedTrace trace;
  trace.add("r", make_write(0, 10, 1));
  trace.add("r", make_write(20, 30, 2));
  trace.add("r", make_read(40, 50, 1));
  trace.add("r", make_read(60, 70, 2));

  EngineOptions options;
  options.verify.k = 1;  // constructor default: strict atomicity
  Engine engine(options);

  EXPECT_FALSE(engine.verify(trace).per_key.at("r").verdict.yes());

  RunOptions run;
  VerifyOptions verify;
  verify.k = 2;
  run.verify = verify;  // per-call override wins
  EXPECT_TRUE(engine.verify(trace, run).per_key.at("r").verdict.yes());
  // And the override is per call, not sticky.
  EXPECT_FALSE(engine.verify(trace).per_key.at("r").verdict.yes());
}

TEST(Engine, FailFastFromEngineOptionsSkipsShards) {
  EngineOptions options;
  options.threads = 1;  // deterministic: key order == execution order
  options.fail_fast = true;
  Engine engine(options);
  const Report report = engine.verify(one_bad_key_trace(4));
  EXPECT_EQ(report.count(Outcome::no), 1u);
  EXPECT_EQ(report.count(Outcome::undecided), 4u);
  // Fail-fast skips are a latency feature, not a cancellation: the
  // report is not marked cancelled.
  EXPECT_FALSE(report.cancelled);
}

// --- Cancellation and deadlines -------------------------------------------

TEST(Engine, PreCancelledTokenSkipsEveryShard) {
  Engine engine;
  RunOptions run;
  run.cancel.cancel();
  const Report report = engine.verify(multi_key_trace(3, 12, 21), run);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.count(Outcome::undecided), 3u);
  for (const auto& [key, result] : report.per_key) {
    EXPECT_EQ(result.verdict.reason, kSkipCancelledReason) << key;
  }
  EXPECT_EQ(report.stop_reason, kSkipCancelledReason);
  EXPECT_NE(report.summary().find("cancelled"), std::string::npos);
}

TEST(Engine, OnKeyCallbackCanCancelTheRun) {
  EngineOptions options;
  options.threads = 1;  // shards run in key order, one at a time
  Engine engine(options);
  RunOptions run;
  std::atomic<int> decided{0};
  std::atomic<int> skipped{0};
  run.on_key = [&](const std::string&, const Verdict& verdict) {
    if (verdict.reason == kSkipCancelledReason) {
      skipped.fetch_add(1);
      return;
    }
    decided.fetch_add(1);
    run.cancel.cancel();  // copies share state: cancels the run
  };
  const Report report = engine.verify(multi_key_trace(5, 10, 33), run);
  // The sink fires exactly once per key, skipped shards included.
  EXPECT_EQ(decided.load(), 1);
  EXPECT_EQ(skipped.load(), 4);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.count(Outcome::undecided), 4u);
}

TEST(Engine, ExpiredDeadlineSkipsEveryShard) {
  Engine engine;
  RunOptions run;
  run.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);
  const Report report = engine.verify(multi_key_trace(3, 12, 5), run);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.count(Outcome::undecided), 3u);
  for (const auto& [key, result] : report.per_key) {
    EXPECT_EQ(result.verdict.reason, kSkipDeadlineReason) << key;
  }
}

TEST(Engine, TimeoutAndDeadlineComposeEarlierWins) {
  Engine engine;
  RunOptions run;
  // Generous timeout, already-expired deadline: the deadline must win.
  run.timeout = std::chrono::minutes(10);
  run.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);
  const Report report = engine.verify(multi_key_trace(2, 8, 11), run);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.count(Outcome::undecided), 2u);
}

TEST(Engine, CancelledMonitorStillReportsThePrefixSoundly) {
  Engine engine;
  RunOptions run;
  run.cancel.cancel();  // fires after the first ingested operation
  const Report report = engine.monitor(multi_key_trace(2, 20, 17), run);
  EXPECT_TRUE(report.cancelled);
  EXPECT_NE(report.stop_reason.find("cancelled"), std::string::npos);
  // Exactly one operation was admitted before the token was observed.
  EXPECT_EQ(report.monitor_totals.operations_ingested, 1u);
}

// --- TraceSource equivalence ----------------------------------------------

class EngineSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = multi_key_trace(5, 14, 77);
    text_path_ = ::testing::TempDir() + "engine_source_test.txt";
    binary_path_ = ::testing::TempDir() + "engine_source_test.kavb";
    write_trace_file(text_path_, trace_);
    write_binary_trace_file(binary_path_, trace_);
  }

  void TearDown() override {
    std::remove(text_path_.c_str());
    std::remove(binary_path_.c_str());
  }

  KeyedTrace trace_;
  std::string text_path_;
  std::string binary_path_;
};

TEST_F(EngineSourceTest, MemoryTextAndBinarySourcesVerifyIdentically) {
  Engine engine;
  const Report from_trace = engine.verify(trace_);

  MemoryTraceSource memory(trace_);
  auto text = open_trace_source(text_path_);
  auto binary = open_trace_source(binary_path_);
  EXPECT_NE(text->describe().find("text:"), std::string::npos);
  EXPECT_NE(binary->describe().find("binary:"), std::string::npos);

  expect_reports_equal(from_trace, engine.verify(memory));
  expect_reports_equal(from_trace, engine.verify(*text));
  expect_reports_equal(from_trace, engine.verify(*binary));
}

TEST_F(EngineSourceTest, MonitorAgreesAcrossFileFormats) {
  Engine engine;
  const Report from_trace = engine.monitor(trace_);
  auto text = open_trace_source(text_path_);
  auto binary = open_trace_source(binary_path_);
  const Report from_text = engine.monitor(*text);
  const Report from_binary = engine.monitor(*binary);
  ASSERT_EQ(from_trace.per_key.size(), from_text.per_key.size());
  ASSERT_EQ(from_trace.per_key.size(), from_binary.per_key.size());
  for (const auto& [key, result] : from_trace.per_key) {
    SCOPED_TRACE("key " + key);
    EXPECT_EQ(result.verdict.outcome,
              from_text.per_key.at(key).verdict.outcome);
    EXPECT_EQ(result.verdict.outcome,
              from_binary.per_key.at(key).verdict.outcome);
    EXPECT_EQ(result.findings.size(),
              from_text.per_key.at(key).findings.size());
    EXPECT_EQ(result.findings.size(),
              from_binary.per_key.at(key).findings.size());
  }
}

TEST_F(EngineSourceTest, DrainEqualsLegacyReadAnyTraceFile) {
  auto text = open_trace_source(text_path_);
  const KeyedTrace drained = drain(*text);
  const KeyedTrace legacy = read_any_trace_file(binary_path_);
  ASSERT_EQ(drained.size(), trace_.size());
  ASSERT_EQ(legacy.size(), trace_.size());
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    EXPECT_EQ(drained.ops[i].key, trace_.ops[i].key);
    EXPECT_EQ(legacy.ops[i].key, trace_.ops[i].key);
    EXPECT_TRUE(drained.ops[i].op == trace_.ops[i].op);
    EXPECT_TRUE(legacy.ops[i].op == trace_.ops[i].op);
  }
}

TEST(EngineSource, PushSourceStreamsFromAProducerThread) {
  const KeyedTrace trace = multi_key_trace(3, 12, 55);
  Engine engine;
  const Report batch = engine.monitor(trace);

  PushTraceSource push(8);  // tiny capacity: exercises backpressure
  std::thread producer([&] {
    for (const KeyedOperation& kop : trace.ops) push.push(kop);
    push.close();
  });
  const Report live = engine.monitor(push);
  producer.join();

  ASSERT_EQ(live.per_key.size(), batch.per_key.size());
  for (const auto& [key, result] : batch.per_key) {
    SCOPED_TRACE("key " + key);
    EXPECT_EQ(live.per_key.at(key).verdict.outcome, result.verdict.outcome);
  }
  EXPECT_EQ(live.monitor_totals.operations_ingested, trace.size());
}

TEST(EngineSource, CancelUnblocksMonitorOnAnIdlePushSource) {
  // The producer never calls close(): without bounded pulls
  // (TraceSource::try_next_for) the monitor would block in next()
  // forever and the CancelToken could never be honored.
  Engine engine;
  PushTraceSource push;
  push.push("k", make_write(0, 5, 1));
  RunOptions run;
  CancelToken token = run.cancel;  // copies share the flag
  std::thread canceller([token]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    token.cancel();
  });
  const Report report = engine.monitor(push, run);
  canceller.join();
  EXPECT_TRUE(report.cancelled);
  EXPECT_NE(report.stop_reason.find("cancelled"), std::string::npos);
  EXPECT_EQ(report.monitor_totals.operations_ingested, 1u);
}

TEST(EngineSource, PushSourceRejectsPushAfterClose) {
  PushTraceSource push;
  push.push("k", make_write(0, 5, 1));
  push.close();
  push.close();  // idempotent
  EXPECT_THROW(push.push("k", make_write(6, 9, 1)), std::logic_error);
  KeyedOperation kop;
  EXPECT_TRUE(push.next(kop));  // the queued op drains...
  EXPECT_EQ(kop.key, "k");
  EXPECT_FALSE(push.next(kop));  // ...then the stream ends
}

// --- Unified Report -------------------------------------------------------

TEST(EngineReport, OneFormatterAcrossBatchMonitorAndLegacy) {
  const KeyedTrace trace = one_bad_key_trace(3);
  Engine engine;
  const std::string batch = engine.verify(trace).summary();
  const std::string monitor = engine.monitor(trace).summary();
  const std::string legacy_batch = verify_keyed_trace(trace).summary();
  MonitorOptions monitor_options;
  monitor_options.threads = 1;
  const std::string legacy_monitor =
      monitor_trace(trace, monitor_options).summary();

  // Same grep-able shape everywhere; batch and legacy batch agree
  // exactly, monitor paths agree exactly.
  EXPECT_EQ(batch, legacy_batch);
  EXPECT_EQ(monitor, legacy_monitor);
  for (const std::string& line : {batch, monitor}) {
    EXPECT_NE(line.find("/4 keys atomic within bound"), std::string::npos)
        << line;
    EXPECT_NE(line.find("1 NO"), std::string::npos) << line;
  }
}

TEST(EngineReport, BatchFillsVerifyTotalsMonitorFillsMonitorTotals) {
  const KeyedTrace trace = multi_key_trace(3, 16, 41);
  Engine engine;
  const Report batch = engine.verify(trace);
  EXPECT_EQ(batch.mode, Report::Mode::batch);
  EXPECT_TRUE(batch.verify_totals == verify_keyed_trace(trace).total_stats());
  EXPECT_EQ(batch.monitor_totals.operations_ingested, 0u);

  const Report live = engine.monitor(trace);
  EXPECT_EQ(live.mode, Report::Mode::monitor);
  EXPECT_EQ(live.monitor_totals.operations_ingested, trace.size());
  EXPECT_EQ(live.monitor_totals.keys, 3u);
}

TEST(EngineReport, DescribeRendersEveryOutcome) {
  EXPECT_EQ(describe(Verdict::make_yes({0, 1, 2})),
            "YES (witness over 3 ops)");
  EXPECT_EQ(describe(Verdict::make_no("because")), "NO: because");
  EXPECT_EQ(describe(Verdict::make_undecided("later")), "UNDECIDED: later");
  EXPECT_EQ(describe(Verdict::make_precondition_failed("bad input")),
            "PRECONDITION-FAILED: bad input");
}

TEST(EngineReport, MonitorFindingsFlowThroughOnFinding) {
  const KeyedTrace trace = one_bad_key_trace(2);
  Engine engine;
  RunOptions run;
  std::vector<std::string> live_keys;
  run.on_finding = [&](const std::string& key, const StreamingViolation&) {
    live_keys.push_back(key);
  };
  const Report report = engine.monitor(trace, run);
  std::size_t total_findings = 0;
  for (const auto& [key, result] : report.per_key) {
    total_findings += result.findings.size();
  }
  EXPECT_EQ(live_keys.size(), total_findings);
  EXPECT_GE(total_findings, 1u);
  for (const std::string& key : live_keys) EXPECT_EQ(key, "a");
}

// --- Borrowed pools (the satellite refactor, used directly) ---------------

TEST(BorrowedPool, ShardedVerifierRunsOnACallerPool) {
  const KeyedTrace trace = multi_key_trace(4, 12, 13);
  pipeline::ThreadPool pool(2);
  const std::uint64_t pools_before = pipeline::ThreadPool::created_count();
  ShardedVerifier verifier(pool);
  EXPECT_EQ(verifier.thread_count(), 2u);
  const KeyedReport parallel = verifier.verify(trace);
  EXPECT_EQ(pipeline::ThreadPool::created_count(), pools_before);
  const KeyedReport serial = verify_keyed_trace(trace);
  ASSERT_EQ(parallel.per_key.size(), serial.per_key.size());
  for (const auto& [key, verdict] : serial.per_key) {
    expect_verdicts_equal(parallel.per_key.at(key), verdict);
  }
}

// --- Observability (src/obs/ wired through the engine) --------------------

// Distinct value of series `name` summed over its label sets.
std::uint64_t series_total(const obs::RegistrySnapshot& snapshot,
                           const std::string& name) {
  std::uint64_t total = 0;
  for (const obs::MetricSnapshot& m : snapshot.metrics) {
    if (m.name == name) total += static_cast<std::uint64_t>(m.value);
  }
  return total;
}

TEST(EngineObs, InjectedRegistryCountsRunLifecycle) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.metrics = &registry;
  Engine engine(options);
  EXPECT_EQ(&engine.metrics(), &registry);

  const KeyedTrace trace = multi_key_trace(3, 12, 55);
  engine.verify(trace);
  engine.verify(trace);
  engine.monitor(trace);

  const obs::RegistrySnapshot snap = engine.snapshot();
  EXPECT_EQ(series_total(snap, "kav_engine_runs_started_total"), 3u);
  EXPECT_EQ(series_total(snap, "kav_engine_runs_completed_total"), 3u);
  EXPECT_EQ(series_total(snap, "kav_engine_runs_cancelled_total"), 0u);
  // 3 keys per run, batch and monitor alike.
  EXPECT_EQ(series_total(snap, "kav_engine_keys_verified_total"), 9u);
  EXPECT_EQ(series_total(snap, "kav_engine_verdicts_total"), 9u);
  // The pool the engine owns reports into the same registry.
  EXPECT_GT(series_total(snap, "kav_pool_tasks_completed_total"), 0u);
  EXPECT_EQ(series_total(snap, "kav_pool_threads"), 2u);
  // A second engine on the default (global) registry shares nothing
  // with this one: the injected registry's totals stay put.
  Engine other;
  other.verify(trace);
  EXPECT_EQ(series_total(engine.snapshot(), "kav_engine_runs_started_total"),
            3u);
}

TEST(EngineObs, CancelledRunCountsAsCancelled) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.metrics = &registry;
  Engine engine(options);
  RunOptions run;
  run.cancel.cancel();  // pre-cancelled: every shard skips
  engine.verify(multi_key_trace(2, 8, 3), run);
  const obs::RegistrySnapshot snap = engine.snapshot();
  EXPECT_EQ(series_total(snap, "kav_engine_runs_cancelled_total"), 1u);
  EXPECT_EQ(series_total(snap, "kav_engine_runs_completed_total"), 0u);
  // The skipped shards are visible too, with their reason.
  EXPECT_EQ(series_total(snap, "kav_engine_shards_skipped_total"), 2u);
}

TEST(EngineObs, SnapshotIsCoherentDuringALiveRun) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.metrics = &registry;
  Engine engine(options);

  const KeyedTrace trace = multi_key_trace(4, 40, 91);
  PushTraceSource push(8);  // tiny capacity: the run stays live a while
  std::thread producer([&] {
    for (const KeyedOperation& kop : trace.ops) push.push(kop);
    push.close();
  });

  // Scrape continuously while the monitor run is in flight: counters
  // must be monotone between snapshots and the lifecycle invariant
  // started >= completed + cancelled must hold at every instant.
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    std::uint64_t last_ingested = 0;
    while (!done.load()) {
      const obs::RegistrySnapshot snap = engine.snapshot();
      const std::uint64_t ingested =
          series_total(snap, "kav_monitor_ops_ingested_total");
      EXPECT_GE(ingested, last_ingested);
      last_ingested = ingested;
      EXPECT_GE(series_total(snap, "kav_engine_runs_started_total"),
                series_total(snap, "kav_engine_runs_completed_total") +
                    series_total(snap, "kav_engine_runs_cancelled_total"));
    }
  });

  const Report report = engine.monitor(push);
  producer.join();
  done.store(true);
  scraper.join();

  EXPECT_EQ(report.monitor_totals.operations_ingested, trace.size());
  const obs::RegistrySnapshot snap = engine.snapshot();
  EXPECT_EQ(series_total(snap, "kav_monitor_ops_ingested_total"),
            trace.size());
  EXPECT_EQ(series_total(snap, "kav_engine_runs_completed_total"), 1u);
}

TEST(EngineObs, CatalogSpansEveryLayerWithAtLeast25Metrics) {
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.threads = 2;
  options.metrics = &registry;
  Engine engine(options);

  // Exercise every instrumented layer once: batch verify (pipeline +
  // verify counters), monitor (ingest), and a store round trip
  // (append, bloom-backed reads, maintenance, fsck).
  const KeyedTrace trace = multi_key_trace(3, 12, 19);
  engine.verify(trace);
  engine.monitor(trace);
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "kav_engine_obs_catalog";
  std::filesystem::remove_all(dir);
  {
    auto store = engine.open_store(dir.string());
    store->append(trace);
    store->contains("key0");
    store->contains("no-such-key");
    store->run_maintenance();
    store->fsck();
  }
  std::filesystem::remove_all(dir);

  std::set<std::string> names;
  const obs::RegistrySnapshot snap = engine.snapshot();
  for (const obs::MetricSnapshot& m : snap.metrics) names.insert(m.name);
  // The tentpole's acceptance floor: one scrape exposes the whole
  // stack. Every layer prefix must be present, and the catalog must
  // hold at least 25 distinct metric names.
  EXPECT_GE(names.size(), 25u) << [&] {
    std::string all;
    for (const std::string& n : names) all += n + "\n";
    return all;
  }();
  for (const char* prefix :
       {"kav_engine_", "kav_pool_", "kav_verify_", "kav_monitor_",
        "kav_store_"}) {
    EXPECT_TRUE(std::any_of(names.begin(), names.end(),
                            [prefix](const std::string& n) {
                              return n.rfind(prefix, 0) == 0;
                            }))
        << "no metric with prefix " << prefix;
  }
}

TEST(BorrowedPool, MonitorQuiescesWithoutShuttingTheSharedPoolDown) {
  pipeline::ThreadPool pool(2);
  MonitorOptions options;
  {
    KeyedStreamingMonitor monitor(pool, options);
    for (int i = 0; i < 50; ++i) {
      monitor.ingest("k", make_write(i * 10, i * 10 + 5, i));
    }
    const MonitorReport report = monitor.finish();
    EXPECT_EQ(report.totals.operations_ingested, 50u);
  }  // destructor quiesces in-flight drains, must NOT shut the pool down
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

}  // namespace
}  // namespace kav
