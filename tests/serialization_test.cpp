// Tests for the text trace format: round-trips, parse errors with line
// numbers, and interop with the keyed verification pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "gen/generators.h"
#include "history/serialization.h"
#include "quorum/sim.h"
#include "util/rng.h"

namespace kav {
namespace {

TEST(Serialization, ParsesMinimalTrace) {
  const std::string text =
      "# kav trace v1\n"
      "op k0 W 1 0 10\n"
      "op k0 R 1 12 20 3\n"
      "\n"
      "# comment line\n"
      "op k1 W 2 0 10\n";
  const KeyedTrace trace = parse_trace(text);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.ops[0].key, "k0");
  EXPECT_TRUE(trace.ops[0].op.is_write());
  EXPECT_EQ(trace.ops[1].op.client, 3);
  EXPECT_EQ(trace.ops[2].key, "k1");
}

TEST(Serialization, RoundTripPreservesEverything) {
  KeyedTrace trace;
  trace.add("alpha", make_write(0, 10, 42, 7));
  trace.add("alpha", make_read(12, 20, 42));
  trace.add("beta", make_write(-5, 3, 1));
  const KeyedTrace back = parse_trace(format_trace(trace));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back.ops[i].key, trace.ops[i].key);
    EXPECT_EQ(back.ops[i].op, trace.ops[i].op);
  }
}

TEST(Serialization, RoundTripGeneratedHistory) {
  Rng rng(12);
  gen::KAtomicConfig config;
  config.writes = 20;
  const History h = gen::generate_k_atomic(config, rng).history;
  const History back = parse_history(format_history(h));
  ASSERT_EQ(back.size(), h.size());
  for (OpId i = 0; i < h.size(); ++i) {
    // Client defaults may differ (unset stays unset); compare payload.
    EXPECT_EQ(back.op(i).start, h.op(i).start);
    EXPECT_EQ(back.op(i).finish, h.op(i).finish);
    EXPECT_EQ(back.op(i).type, h.op(i).type);
    EXPECT_EQ(back.op(i).value, h.op(i).value);
  }
}

TEST(Serialization, RoundTripSimulatorTrace) {
  quorum::QuorumConfig config;
  config.ops_per_client = 10;
  const quorum::SimResult sim = quorum::run_sloppy_quorum_sim(config);
  const KeyedTrace back = parse_trace(format_trace(sim.trace));
  ASSERT_EQ(back.size(), sim.trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.ops[i].op, sim.trace.ops[i].op);
  }
}

TEST(Serialization, ErrorsCarryLineNumbers) {
  try {
    parse_trace("op k0 W 1 0 10\nbogus line here\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Serialization, RejectsBadType) {
  EXPECT_THROW(parse_trace("op k0 X 1 0 10\n"), std::runtime_error);
}

TEST(Serialization, RejectsBadInterval) {
  EXPECT_THROW(parse_trace("op k0 W 1 10 10\n"), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedLine) {
  EXPECT_THROW(parse_trace("op k0 W 1 0\n"), std::runtime_error);
}

TEST(Serialization, ParseHistoryRejectsMultiKey) {
  EXPECT_THROW(parse_history("op a W 1 0 10\nop b W 2 0 10\n"),
               std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  KeyedTrace trace;
  trace.add("k", make_write(0, 10, 1));
  const std::string path = testing::TempDir() + "/kav_trace_test.txt";
  write_trace_file(path, trace);
  const KeyedTrace back = read_trace_file(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.ops[0].op, trace.ops[0].op);
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.txt"),
               std::runtime_error);
}

TEST(Serialization, CrlfTolerated) {
  const KeyedTrace trace = parse_trace("op k0 W 1 0 10\r\nop k0 R 1 12 20\r\n");
  EXPECT_EQ(trace.size(), 2u);
}

TEST(Serialization, TrailingWhitespaceTolerated) {
  const KeyedTrace trace = parse_trace(
      "op k0 W 1 0 10   \n"
      "op k0 R 1 12 20 3\t \r\n"
      "   \t\n");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.ops[1].op.client, 3);
}

TEST(Serialization, TabSeparatedFieldsTolerated) {
  const KeyedTrace trace = parse_trace("op\tk0\tW\t1\t0\t10\n");
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.ops[0].key, "k0");
}

TEST(Serialization, ErrorsQuoteTheOffendingToken) {
  try {
    parse_trace("op k0 W 1 0 10\nop k1 W banana 0 10\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("'banana'"), std::string::npos) << what;
    EXPECT_NE(what.find("value"), std::string::npos) << what;
  }
}

TEST(Serialization, BadTypeErrorQuotesToken) {
  try {
    parse_trace("op k0 X 1 0 10\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'X'"), std::string::npos);
  }
}

TEST(Serialization, RejectsTrailingJunkWithToken) {
  try {
    parse_trace("op k0 W 1 0 10 3 surprise\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'surprise'"), std::string::npos);
  }
}

TEST(Serialization, RejectsOutOfRangeClient) {
  EXPECT_THROW(parse_trace("op k0 W 1 0 10 99999999999\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace kav
