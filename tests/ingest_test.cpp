// Unit tests for the ingest subsystem: the .kavb binary trace format
// (header validation, chunking, key interning, corruption reporting),
// the format converters, the ReorderBuffer's watermark contract, the
// bounded backpressure queue, the streaming checker's reuse hook, and
// the KeyedStreamingMonitor end to end (including its bounded-window
// guarantee on a long steady stream).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/streaming.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "history/serialization.h"
#include "ingest/binary_trace.h"
#include "ingest/keyed_monitor.h"
#include "ingest/reorder_buffer.h"
#include "pipeline/bounded_queue.h"
#include "util/rng.h"

namespace kav {
namespace {

void expect_traces_equal(const KeyedTrace& a, const KeyedTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ops[i].key, b.ops[i].key) << "op " << i;
    EXPECT_EQ(a.ops[i].op, b.ops[i].op) << "op " << i;
  }
}

KeyedTrace sample_trace() {
  KeyedTrace trace;
  trace.add("alpha", make_write(0, 10, 42, 7));
  trace.add("alpha", make_read(12, 20, 42));
  trace.add("beta", make_write(-5, 3, 1));
  trace.add("alpha", make_write(25, 30, 43, 0));
  trace.add("beta", make_read(4, 9, 1, 3));
  return trace;
}

// --- Binary format ---------------------------------------------------------

TEST(BinaryTrace, RoundTripPreservesEverything) {
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace);
  expect_traces_equal(trace, read_binary_trace(buffer));
}

TEST(BinaryTrace, EmptyTraceIsJustAHeader) {
  std::stringstream buffer;
  write_binary_trace(buffer, KeyedTrace{});
  EXPECT_EQ(buffer.str().size(), kBinaryTraceHeaderBytes);
  EXPECT_TRUE(read_binary_trace(buffer).empty());
}

TEST(BinaryTrace, ChunkingIsInvisibleToTheReader) {
  const KeyedTrace trace = sample_trace();
  for (std::size_t chunk : {1u, 2u, 3u, 100u}) {
    std::stringstream buffer;
    write_binary_trace(buffer, trace, chunk);
    expect_traces_equal(trace, read_binary_trace(buffer));
  }
}

TEST(BinaryTrace, KeysAreInternedOncePerFile) {
  // 3-record chunks split "alpha"'s uses across chunks; the table must
  // still carry one entry per distinct key.
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace, 3);
  BinaryTraceReader reader(buffer);
  KeyedOperation kop;
  while (reader.next(kop)) {
  }
  EXPECT_EQ(reader.key_count(), 2u);
  EXPECT_EQ(reader.key(0), "alpha");
  EXPECT_EQ(reader.key(1), "beta");
}

TEST(BinaryTrace, BinaryKeysMayContainWhitespace) {
  KeyedTrace trace;
  trace.add("user profile:42\tshard 1", make_write(0, 5, 1));
  std::stringstream buffer;
  write_binary_trace(buffer, trace);
  expect_traces_equal(trace, read_binary_trace(buffer));
}

TEST(BinaryTrace, StreamingReaderYieldsStableViews) {
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace, 2);
  BinaryTraceReader reader(buffer);
  std::vector<std::string_view> keys;
  std::string_view key;
  Operation op;
  while (reader.next(key, op)) keys.push_back(key);
  ASSERT_EQ(keys.size(), trace.size());
  // Views handed out before later chunk loads must still be valid.
  EXPECT_EQ(keys.front(), "alpha");
  EXPECT_EQ(keys[2], "beta");
}

TEST(BinaryTrace, RejectsBadMagic) {
  std::stringstream buffer("not a kavb file at all");
  try {
    read_binary_trace(buffer);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(BinaryTrace, RejectsUnsupportedVersion) {
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace);
  std::string bytes = buffer.str();
  bytes[4] = '\x07';  // version low byte
  std::stringstream patched(bytes);
  try {
    read_binary_trace(patched);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version 7"), std::string::npos);
  }
}

TEST(BinaryTrace, ReportsTruncationWithByteOffset) {
  const KeyedTrace trace = sample_trace();
  std::stringstream buffer;
  write_binary_trace(buffer, trace);
  const std::string bytes = buffer.str();
  // Chop mid-record; the reader must say what it was reading and where.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 5));
  try {
    read_binary_trace(truncated);
    FAIL() << "expected a truncation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST(BinaryTrace, RejectsOutOfRangeKeyId) {
  KeyedTrace trace;
  trace.add("k", make_write(0, 5, 1));
  std::stringstream buffer;
  write_binary_trace(buffer, trace);
  std::string bytes = buffer.str();
  // Record starts after header(8) + chunk header(8) + key entry(2+1).
  const std::size_t record_at = 8 + 8 + 3;
  bytes[record_at] = '\x09';  // key_id = 9, table has 1 entry
  std::stringstream patched(bytes);
  try {
    read_binary_trace(patched);
    FAIL() << "expected a key id error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("key id 9"), std::string::npos);
  }
}

TEST(BinaryTrace, RejectsBadTypeByte) {
  KeyedTrace trace;
  trace.add("k", make_write(0, 5, 1));
  std::stringstream buffer;
  write_binary_trace(buffer, trace);
  std::string bytes = buffer.str();
  bytes[bytes.size() - 1] = '\x05';  // type byte is the record's last
  std::stringstream patched(bytes);
  EXPECT_THROW(read_binary_trace(patched), std::runtime_error);
}

TEST(BinaryTrace, WriterRejectsMalformedIntervals) {
  std::stringstream buffer;
  BinaryTraceWriter writer(buffer);
  EXPECT_THROW(writer.add("k", make_write(10, 10, 1)), std::invalid_argument);
}

TEST(BinaryTrace, FileRoundTripAndSniffing) {
  const KeyedTrace trace = sample_trace();
  const std::string dir = testing::TempDir();
  const std::string binary_path = dir + "/kav_ingest_test.kavb";
  const std::string text_path = dir + "/kav_ingest_test.trace";
  write_binary_trace_file(binary_path, trace);
  write_trace_file(text_path, trace);
  EXPECT_TRUE(is_binary_trace_file(binary_path));
  EXPECT_FALSE(is_binary_trace_file(text_path));
  expect_traces_equal(trace, read_any_trace_file(binary_path));
  expect_traces_equal(trace, read_any_trace_file(text_path));
  std::remove(binary_path.c_str());
  std::remove(text_path.c_str());
}

TEST(BinaryTrace, ConvertersAreLossless) {
  const KeyedTrace trace = sample_trace();
  // text -> binary -> text reproduces the text bytes exactly.
  std::stringstream text_in(format_trace(trace));
  std::stringstream binary_out;
  convert_text_to_binary(text_in, binary_out);
  std::stringstream text_out;
  convert_binary_to_text(binary_out, text_out);
  EXPECT_EQ(text_out.str(), format_trace(trace));
  // binary -> text -> binary reproduces the binary bytes exactly
  // (default chunk size on both sides).
  std::stringstream binary_in;
  write_binary_trace(binary_in, trace);
  const std::string original = binary_in.str();
  std::stringstream text_mid;
  convert_binary_to_text(binary_in, text_mid);
  std::stringstream binary_back;
  convert_text_to_binary(text_mid, binary_back);
  EXPECT_EQ(binary_back.str(), original);
}

// --- ReorderBuffer ---------------------------------------------------------

TEST(ReorderBuffer, InOrderStreamPassesThrough) {
  ReorderBuffer buffer(/*slack=*/0);
  Operation out;
  EXPECT_TRUE(buffer.push(make_write(0, 5, 1)));
  EXPECT_FALSE(buffer.pop(out));  // nothing newer seen yet
  EXPECT_TRUE(buffer.push(make_read(6, 9, 1)));
  ASSERT_TRUE(buffer.pop(out));
  EXPECT_EQ(out.start, 0);
  EXPECT_FALSE(buffer.pop(out));  // start-6 op still inside slack 0 of max 6
  buffer.flush();
  ASSERT_TRUE(buffer.pop(out));
  EXPECT_EQ(out.start, 6);
  EXPECT_FALSE(buffer.pop(out));
}

TEST(ReorderBuffer, RestoresStartOrderWithinSlack) {
  ReorderBuffer buffer(/*slack=*/10);
  // Arrival order 20, 14, 26, 23, 35 -- disorder bounded by 10.
  for (TimePoint start : {20, 14, 26, 23, 35}) {
    ASSERT_TRUE(buffer.push(make_write(start, start + 2, start)));
  }
  buffer.flush();
  std::vector<TimePoint> released;
  Operation out;
  while (buffer.pop(out)) released.push_back(out.start);
  EXPECT_EQ(released, (std::vector<TimePoint>{14, 20, 23, 26, 35}));
  EXPECT_EQ(buffer.accepted(), 5u);
  EXPECT_EQ(buffer.late_rejected(), 0u);
}

TEST(ReorderBuffer, WatermarkIsMonotoneAndHonest) {
  ReorderBuffer buffer(/*slack=*/5);
  EXPECT_EQ(buffer.watermark(), kTimeMin);
  buffer.push(make_write(100, 105, 1));
  EXPECT_EQ(buffer.watermark(), 94);  // 100 - 5 - 1
  buffer.push(make_write(96, 99, 2));  // within slack: accepted
  EXPECT_EQ(buffer.watermark(), 94);  // never regresses
  buffer.push(make_write(200, 205, 3));
  EXPECT_EQ(buffer.watermark(), 194);
  // Everything at or below the watermark must be ready, in order.
  Operation out;
  ASSERT_TRUE(buffer.pop(out));
  EXPECT_EQ(out.start, 96);
  ASSERT_TRUE(buffer.pop(out));
  EXPECT_EQ(out.start, 100);
  EXPECT_FALSE(buffer.pop(out));  // 200 > watermark 194
}

TEST(ReorderBuffer, RejectsArrivalsBeyondTheSlack) {
  ReorderBuffer buffer(/*slack=*/5);
  EXPECT_TRUE(buffer.push(make_write(100, 105, 1)));
  EXPECT_FALSE(buffer.push(make_write(90, 95, 2)));  // 90 <= watermark 94
  EXPECT_EQ(buffer.late_rejected(), 1u);
  EXPECT_EQ(buffer.accepted(), 1u);
  EXPECT_EQ(buffer.pending(), 1u);
}

// --- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, FifoAndCapacity) {
  pipeline::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full
  int out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_push(3));
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(BoundedQueue, PushBlocksUntilAPopMakesRoom) {
  pipeline::BoundedQueue<int> queue(1);
  queue.push(1);
  std::thread producer([&queue] { queue.push(2); });  // blocks: full
  int out = 0;
  // The consumer side keeps popping until both items came through; the
  // producer can only finish if push() unblocked.
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 1);
  while (!queue.try_pop(out)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(out, 2);
  producer.join();
}

// --- StreamingChecker reuse hook -------------------------------------------

TEST(StreamingReset, ResetChecksLikeAFreshInstance) {
  const History bad = gen::generate_forced_separation(2);
  StreamingChecker checker;
  for (OpId id : bad.by_start()) {
    checker.add(bad.op(id));
    checker.advance_watermark(bad.op(id).start);
  }
  ASSERT_FALSE(checker.finish().yes());
  checker.reset();
  EXPECT_EQ(checker.stats().operations_ingested, 0u);
  EXPECT_EQ(checker.window_size(), 0u);
  EXPECT_EQ(checker.watermark(), kTimeMin);
  EXPECT_TRUE(checker.clean_so_far());
  // A clean stream after reset() must come out clean -- no residue.
  Rng rng(3);
  gen::KAtomicConfig config;
  config.writes = 12;
  config.k = 2;
  const History good = gen::generate_k_atomic(config, rng).history;
  for (OpId id : good.by_start()) {
    checker.add(good.op(id));
    checker.advance_watermark(good.op(id).start);
  }
  EXPECT_TRUE(checker.finish().yes());
}

// --- KeyedStreamingMonitor -------------------------------------------------

MonitorOptions test_options(std::size_t threads = 2) {
  MonitorOptions options;
  options.streaming.staleness_horizon = 1 << 24;
  options.reorder_slack = 1 << 20;
  options.threads = threads;
  return options;
}

TEST(KeyedMonitor, CleanStreamsComeOutClean) {
  Rng rng(11);
  KeyedTrace trace;
  for (int k = 0; k < 4; ++k) {
    gen::KAtomicConfig config;
    config.writes = 15;
    config.k = 2;
    const History shard = gen::generate_k_atomic(config, rng).history;
    for (const Operation& op : shard.operations()) {
      trace.add("k" + std::to_string(k), op);
    }
  }
  const MonitorReport report = monitor_trace(trace, test_options());
  EXPECT_TRUE(report.all_clean());
  ASSERT_EQ(report.per_key.size(), 4u);
  EXPECT_EQ(report.totals.keys, 4u);
  EXPECT_EQ(report.totals.operations_ingested, trace.size());
  EXPECT_EQ(report.totals.late_arrivals, 0u);
  EXPECT_EQ(report.totals.violations, 0u);
  for (const auto& [key, result] : report.per_key) {
    EXPECT_TRUE(result.verdict.yes()) << key << ": " << result.verdict.reason;
  }
}

TEST(KeyedMonitor, FlagsExactlyTheViolatingKey) {
  Rng rng(12);
  KeyedTrace trace;
  gen::KAtomicConfig config;
  config.writes = 15;
  config.k = 2;
  const History good = gen::generate_k_atomic(config, rng).history;
  for (const Operation& op : good.operations()) trace.add("good", op);
  const History bad = gen::generate_forced_separation(2);
  for (const Operation& op : bad.operations()) trace.add("bad", op);

  const MonitorReport report = monitor_trace(trace, test_options());
  EXPECT_FALSE(report.all_clean());
  EXPECT_TRUE(report.per_key.at("good").verdict.yes());
  EXPECT_TRUE(report.per_key.at("bad").verdict.no());
  ASSERT_EQ(report.totals.violations_per_key.size(), 1u);
  EXPECT_EQ(report.totals.violations_per_key.begin()->first, "bad");
  // The shared format_key_counts formatter (core/report.h): monitor
  // summaries are grep-compatible with batch summaries.
  EXPECT_EQ(report.summary(),
            "1/2 keys atomic within bound, 1 NO, 0 undecided, 0 invalid");
}

TEST(KeyedMonitor, ReportsLateArrivalsAsViolations) {
  MonitorOptions options = test_options(1);
  options.reorder_slack = 5;
  KeyedStreamingMonitor monitor(options);
  monitor.ingest("k", make_write(100, 105, 1));
  monitor.ingest("k", make_read(10, 15, 1));  // 90 ticks behind: late
  const MonitorReport report = monitor.finish();
  EXPECT_EQ(report.totals.late_arrivals, 1u);
  ASSERT_EQ(report.per_key.size(), 1u);
  const KeyMonitorResult& result = report.per_key.at("k");
  EXPECT_TRUE(result.verdict.no());
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations.back().kind,
            StreamingViolation::Kind::late_arrival);
}

TEST(KeyedMonitor, BackpressureWithTinyQueuesStillCompletes) {
  MonitorOptions options = test_options(2);
  options.queue_capacity = 1;
  Rng rng(13);
  gen::KAtomicConfig config;
  config.writes = 40;
  config.k = 2;
  const History shard = gen::generate_k_atomic(config, rng).history;
  KeyedStreamingMonitor monitor(options);
  for (const Operation& op : shard.operations()) monitor.ingest("k", op);
  const MonitorReport report = monitor.finish();
  EXPECT_TRUE(report.all_clean());
  EXPECT_EQ(report.totals.operations_ingested, shard.size());
}

TEST(KeyedMonitor, IngestAfterFinishThrows) {
  KeyedStreamingMonitor monitor(test_options(1));
  monitor.ingest("k", make_write(0, 5, 1));
  monitor.finish();
  EXPECT_THROW(monitor.ingest("k", make_write(10, 15, 2)), std::logic_error);
}

TEST(KeyedMonitor, FinishTwiceThrows) {
  KeyedStreamingMonitor monitor(test_options(1));
  monitor.finish();
  EXPECT_THROW(monitor.finish(), std::logic_error);
}

TEST(KeyedMonitor, MidStreamStatsSeeIngestedOps) {
  KeyedStreamingMonitor monitor(test_options(1));
  for (TimePoint t = 0; t < 100; t += 10) {
    monitor.ingest("a", make_write(t, t + 4, t));
    monitor.ingest("b", make_write(t + 1, t + 5, t + 1000));
  }
  const MonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.operations_ingested, 20u);
  EXPECT_EQ(stats.keys, 2u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
  monitor.finish();
}

// The memory bound the subsystem exists for: on a steady stream, the
// peak window tracks the slack + horizon, not the trace length --
// quadrupling the trace must not budge it.
TEST(KeyedMonitor, PeakWindowIsBoundedBySlackPlusHorizon) {
  const auto run = [](std::size_t ops) {
    MonitorOptions options;
    options.streaming.staleness_horizon = 1'000;
    options.reorder_slack = 100;
    options.threads = 1;
    options.queue_capacity = 64;  // keeps un-drained backlog small too
    KeyedStreamingMonitor monitor(options);
    TimePoint t = 0;
    for (std::size_t i = 0; i < ops; i += 2) {
      const auto value = static_cast<Value>(i);
      monitor.ingest("k", make_write(t, t + 5, value));
      monitor.ingest("k", make_read(t + 6, t + 9, value));
      t += 10;  // ~0.2 ops per tick: window ~ (1000 + 100) / 5
    }
    const MonitorReport report = monitor.finish();
    EXPECT_TRUE(report.all_clean());
    return report.totals.peak_window;
  };
  const std::size_t peak_short = run(10'000);
  const std::size_t peak_long = run(40'000);
  // Ops in flight within one slack+horizon span is ~220, plus at most
  // one queue of backlog -- generous headroom below, but far below
  // O(trace): quadrupling the stream must not move the ceiling.
  EXPECT_LE(peak_short, 1'000u);
  EXPECT_LE(peak_long, 1'000u);
}

}  // namespace
}  // namespace kav
