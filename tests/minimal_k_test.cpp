// Tests for minimal-k computation (Section II-B's binary search over
// the decider ladder): exactness on small instances, agreement with the
// dedicated deciders at k = 1 and 2, and honest inexact bounds at
// scale.
#include <gtest/gtest.h>

#include "core/minimal_k.h"
#include "core/oracle.h"
#include "gen/generators.h"
#include "history/history.h"
#include "util/rng.h"

namespace kav {
namespace {

TEST(MinimalK, EmptyAndReadFreeHistories) {
  EXPECT_EQ(minimal_k(History{}).k, 1);
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  const MinimalKResult r = minimal_k(b.build());
  EXPECT_EQ(r.k, 1);
  EXPECT_TRUE(r.exact);
}

TEST(MinimalK, AtomicHistoryIsOne) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(12, 20, 1);
  const MinimalKResult r = minimal_k(b.build());
  EXPECT_EQ(r.k, 1);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.note, "Gibbons-Korach");
}

TEST(MinimalK, OneHopIsTwo) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.read(40, 50, 1);
  const MinimalKResult r = minimal_k(b.build());
  EXPECT_EQ(r.k, 2);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.note, "FZF");
}

TEST(MinimalK, ForcedSeparationLadder) {
  for (int s = 0; s <= 5; ++s) {
    const MinimalKResult r = minimal_k(gen::generate_forced_separation(s));
    EXPECT_EQ(r.k, s + 1) << "s=" << s;
    EXPECT_TRUE(r.exact) << "s=" << s;
  }
}

TEST(MinimalK, MatchesOracleOnRandomSweep) {
  Rng rng(1234);
  for (int t = 0; t < 150; ++t) {
    gen::RandomMixConfig config;
    config.operations = 10;
    config.staleness_decay = 0.6;
    const History h = gen::generate_random_mix(config, rng);
    const MinimalKResult r = minimal_k(h);
    ASSERT_TRUE(r.exact) << "trial " << t << ": " << r.note;
    ASSERT_GE(r.k, 1);
    // Oracle agrees: k-atomic at r.k, not at r.k - 1.
    EXPECT_TRUE(oracle_is_k_atomic(h, r.k).yes()) << "trial " << t;
    if (r.k > 1) {
      EXPECT_TRUE(oracle_is_k_atomic(h, r.k - 1).no()) << "trial " << t;
    }
  }
}

TEST(MinimalK, LargeHistoryFallsBackToGreedyBound) {
  // 80 operations exceed the oracle limit; a forced separation of 3
  // needs k = 4, which greedy finds, reported as an upper bound.
  const History h = gen::generate_forced_separation(3, 16);  // 80 ops
  ASSERT_GT(h.size(), 64u);
  const MinimalKResult r = minimal_k(h);
  EXPECT_EQ(r.k, 4);
  EXPECT_FALSE(r.exact);
  EXPECT_NE(r.note.find("greedy upper bound"), std::string::npos);
}

TEST(MinimalK, GeneratedKAtomicWithinBudget) {
  Rng rng(99);
  for (int k = 1; k <= 3; ++k) {
    for (int t = 0; t < 20; ++t) {
      gen::KAtomicConfig config;
      config.writes = 6;
      config.k = k;
      const gen::GeneratedHistory g = gen::generate_k_atomic(config, rng);
      const MinimalKResult r = minimal_k(g.history);
      EXPECT_LE(r.k, k) << "k=" << k << " trial " << t;
      EXPECT_GE(r.k, 1);
    }
  }
}

TEST(MinimalK, AnomalousHistoryReportsZero) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(20, 30, 7);
  const MinimalKResult r = minimal_k(b.build());
  EXPECT_EQ(r.k, 0);
}

}  // namespace
}  // namespace kav
