// Direct tests of the dancing-links working state shared by LBT and
// the greedy checker: removal/undo round-trips, candidate-set
// computation (Figure 2 line 3), and checkpoint discipline under
// interleaved removals across all three lists.
#include <gtest/gtest.h>

#include <vector>

#include "core/detail/linked_history.h"
#include "history/history.h"

namespace kav {
namespace {

using detail::LinkedHistory;
using detail::collect_epoch_candidates;

std::vector<OpId> walk_h(const History& h, const LinkedHistory& state) {
  std::vector<OpId> order;
  // Walk backwards from the tail via h_prev.
  std::vector<OpId> reversed;
  for (OpId id = state.h_tail(); id != kInvalidOp; id = state.h_prev(id)) {
    reversed.push_back(id);
  }
  order.assign(reversed.rbegin(), reversed.rend());
  (void)h;
  return order;
}

std::vector<OpId> walk_reads(const LinkedHistory& state, OpId write) {
  std::vector<OpId> reads;
  for (OpId r = state.r_head(write); r != kInvalidOp; r = state.r_next(r)) {
    reads.push_back(r);
  }
  return reads;
}

History sample_history(OpId* w1, OpId* w2) {
  HistoryBuilder b;
  *w1 = b.write(0, 10, 1);
  b.read(12, 20, 1);
  b.read(22, 30, 1);
  *w2 = b.write(40, 50, 2);
  b.read(52, 60, 2);
  return b.build();
}

TEST(LinkedHistory, InitialListsMatchIndexes) {
  OpId w1, w2;
  const History h = sample_history(&w1, &w2);
  LinkedHistory state(h);
  EXPECT_EQ(walk_h(h, state),
            std::vector<OpId>(h.by_start().begin(), h.by_start().end()));
  EXPECT_EQ(walk_reads(state, w1), (std::vector<OpId>{1, 2}));
  EXPECT_EQ(walk_reads(state, w2), (std::vector<OpId>{4}));
  EXPECT_EQ(state.w_tail(), w2);
  EXPECT_EQ(state.w_prev(w2), w1);
}

TEST(LinkedHistory, RemoveAndRevertRoundTrip) {
  OpId w1, w2;
  const History h = sample_history(&w1, &w2);
  LinkedHistory state(h);
  const std::vector<OpId> before = walk_h(h, state);

  const std::size_t checkpoint = state.checkpoint();
  state.remove_h(2);
  state.remove_r(2);
  state.remove_h(w2);
  state.remove_w(w2);
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{0, 1, 4}));
  EXPECT_EQ(walk_reads(state, w1), (std::vector<OpId>{1}));
  EXPECT_EQ(state.w_tail(), w1);

  state.revert_to(checkpoint);
  EXPECT_EQ(walk_h(h, state), before);
  EXPECT_EQ(walk_reads(state, w1), (std::vector<OpId>{1, 2}));
  EXPECT_EQ(state.w_tail(), w2);
}

TEST(LinkedHistory, NestedCheckpoints) {
  OpId w1, w2;
  const History h = sample_history(&w1, &w2);
  LinkedHistory state(h);
  const std::size_t outer = state.checkpoint();
  state.remove_h(4);
  state.remove_r(4);
  const std::size_t inner = state.checkpoint();
  state.remove_h(w2);
  state.remove_w(w2);
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{0, 1, 2}));
  state.revert_to(inner);
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{0, 1, 2, 3}));
  state.revert_to(outer);
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{0, 1, 2, 3, 4}));
}

TEST(LinkedHistory, RemoveHeadAndTail) {
  OpId w1, w2;
  const History h = sample_history(&w1, &w2);
  LinkedHistory state(h);
  state.remove_h(0);  // head
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{1, 2, 3, 4}));
  state.remove_h(4);  // tail
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{1, 2, 3}));
  EXPECT_EQ(state.h_tail(), 3u);
  state.revert_to(0);
  EXPECT_EQ(walk_h(h, state), (std::vector<OpId>{0, 1, 2, 3, 4}));
}

TEST(LinkedHistory, EmptyAfterRemovingEverything) {
  OpId w1, w2;
  const History h = sample_history(&w1, &w2);
  LinkedHistory state(h);
  for (OpId id = 0; id < h.size(); ++id) state.remove_h(id);
  EXPECT_TRUE(state.h_empty());
  EXPECT_EQ(state.h_tail(), kInvalidOp);
  state.revert_to(0);
  EXPECT_FALSE(state.h_empty());
}

TEST(EpochCandidates, SequentialWritesYieldLastOnly) {
  HistoryBuilder b;
  for (int i = 0; i < 5; ++i) b.write(i * 100, i * 100 + 50, i + 1);
  const History h = b.build();
  LinkedHistory state(h);
  const std::vector<OpId> candidates = collect_epoch_candidates(h, state);
  EXPECT_EQ(candidates, (std::vector<OpId>{4}));
}

TEST(EpochCandidates, ConcurrentWritesAllCandidates) {
  HistoryBuilder b;
  for (int i = 0; i < 4; ++i) {
    b.write(i, 1000 - i, i + 1);  // nested: all pairwise concurrent
  }
  const History h = b.build();
  LinkedHistory state(h);
  const std::vector<OpId> candidates = collect_epoch_candidates(h, state);
  // Collected from the back of W (largest finish first) = op 0 first.
  EXPECT_EQ(candidates, (std::vector<OpId>{0, 1, 2, 3}));
}

TEST(EpochCandidates, MixedSuffixStopsAtFirstNonCandidate) {
  HistoryBuilder b;
  const OpId early = b.write(0, 10, 1);    // precedes both others
  const OpId mid = b.write(20, 100, 2);    // concurrent with late
  const OpId late = b.write(30, 110, 3);
  const History h = b.build();
  LinkedHistory state(h);
  const std::vector<OpId> candidates = collect_epoch_candidates(h, state);
  EXPECT_EQ(candidates, (std::vector<OpId>{late, mid}));
  (void)early;
}

TEST(EpochCandidates, CandidatesArePairwiseConcurrent) {
  // Property from Section III-C (|C| <= c): sample random layouts.
  HistoryBuilder b;
  b.write(0, 500, 1);
  b.write(100, 400, 2);
  b.write(150, 600, 3);
  b.write(450, 700, 4);  // precedes nothing, concurrent with 1 and 3
  const History h = b.build();
  LinkedHistory state(h);
  const std::vector<OpId> candidates = collect_epoch_candidates(h, state);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_TRUE(h.op(candidates[i]).concurrent_with(h.op(candidates[j])))
          << candidates[i] << " vs " << candidates[j];
    }
  }
  EXPECT_LE(candidates.size(), h.max_concurrent_writes());
}

TEST(EpochCandidates, UpdatesAfterRemoval) {
  HistoryBuilder b;
  const OpId w1 = b.write(0, 10, 1);
  const OpId w2 = b.write(20, 30, 2);
  const History h = b.build();
  LinkedHistory state(h);
  EXPECT_EQ(collect_epoch_candidates(h, state), (std::vector<OpId>{w2}));
  state.remove_h(w2);
  state.remove_w(w2);
  EXPECT_EQ(collect_epoch_candidates(h, state), (std::vector<OpId>{w1}));
}

}  // namespace
}  // namespace kav
