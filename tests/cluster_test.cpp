// Tests for the Gibbons-Korach cluster/zone vocabulary (Section IV):
// forward/backward classification, endpoints, and ordering.
#include <gtest/gtest.h>

#include "history/anomaly.h"
#include "history/cluster.h"
#include "history/history.h"

namespace kav {
namespace {

TEST(Zone, ForwardZoneFromSeparatedReadAndWrite) {
  HistoryBuilder b;
  const OpId w = b.write(0, 10, 1);
  b.read(30, 40, 1);
  const Zone z = compute_zone(b.build(), w);
  // Z.f = min finish = 10 (write), Z.s_bar = max start = 30 (read).
  EXPECT_EQ(z.min_finish, 10);
  EXPECT_EQ(z.max_start, 30);
  EXPECT_TRUE(z.forward);
  EXPECT_EQ(z.low(), 10);
  EXPECT_EQ(z.high(), 30);
}

TEST(Zone, BackwardZoneFromOverlappingCluster) {
  HistoryBuilder b;
  const OpId w = b.write(0, 50, 1);
  b.read(10, 60, 1);
  const Zone z = compute_zone(b.build(), w);
  // min finish = 50, max start = 10: backward.
  EXPECT_EQ(z.min_finish, 50);
  EXPECT_EQ(z.max_start, 10);
  EXPECT_FALSE(z.forward);
  EXPECT_EQ(z.low(), 10);
  EXPECT_EQ(z.high(), 50);
}

TEST(Zone, WriteWithoutReadsIsBackward) {
  HistoryBuilder b;
  const OpId w = b.write(5, 15, 1);
  const Zone z = compute_zone(b.build(), w);
  EXPECT_FALSE(z.forward);
  EXPECT_EQ(z.low(), 5);
  EXPECT_EQ(z.high(), 15);
}

TEST(Zone, MultipleReadsTakeExtremes) {
  HistoryBuilder b;
  const OpId w = b.write(0, 10, 1);
  b.read(12, 20, 1);
  b.read(50, 70, 1);
  b.read(15, 90, 1);
  const Zone z = compute_zone(b.build(), w);
  EXPECT_EQ(z.min_finish, 10);  // write finishes first
  EXPECT_EQ(z.max_start, 50);   // latest read start
  EXPECT_TRUE(z.forward);
}

TEST(Zone, ReadFinishingBeforeWriteDrivesMinFinish) {
  // After normalization this cannot happen, but compute_zone is defined
  // on raw histories too: the earliest finish may come from a read.
  HistoryBuilder b;
  const OpId w = b.write(0, 100, 1);
  b.read(5, 50, 1);
  const Zone z = compute_zone(b.build(), w);
  EXPECT_EQ(z.min_finish, 50);
  EXPECT_EQ(z.max_start, 5);
  EXPECT_FALSE(z.forward);
}

TEST(Zones, SortedByLowEndpoint) {
  HistoryBuilder b;
  b.write(100, 110, 1);
  b.read(130, 140, 1);  // zone [110, 130]
  b.write(0, 10, 2);
  b.read(30, 40, 2);  // zone [10, 30]
  b.write(200, 260, 3);
  b.read(210, 270, 3);  // backward zone [210, 260]
  const std::vector<Zone> zones = compute_zones(b.build());
  ASSERT_EQ(zones.size(), 3u);
  EXPECT_EQ(zones[0].low(), 10);
  EXPECT_EQ(zones[1].low(), 110);
  EXPECT_EQ(zones[2].low(), 210);
  EXPECT_EQ(zones[2].write, 4u);
  EXPECT_FALSE(zones[2].forward);
}

TEST(Zones, IntervalAccessorMatchesEndpoints) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(30, 40, 1);
  const std::vector<Zone> zones = compute_zones(b.build());
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0].interval(), (Interval{10, 30}));
}

TEST(Zones, OnePerWriteEvenWithoutReads) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.write(20, 30, 2);
  b.write(40, 50, 3);
  EXPECT_EQ(compute_zones(b.build()).size(), 3u);
}

// The zone structure is invariant under normalization in the cases that
// matter: forward zones stay forward with the same relative order.
TEST(Zones, StableUnderNormalization) {
  HistoryBuilder b;
  b.write(0, 10, 1);
  b.read(30, 40, 1);
  b.write(15, 25, 2);
  b.read(50, 60, 2);
  const auto before = compute_zones(b.build());
  const auto after = compute_zones(normalize(b.build()));
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].write, after[i].write);
    EXPECT_EQ(before[i].forward, after[i].forward);
  }
}

}  // namespace
}  // namespace kav
