// Exhaustive verification over the space of tiny histories: every
// combination of operation intervals on a coarse time grid, for 2-3
// writes and 1-2 reads. Random sweeps sample this space; here we cover
// it completely, so any corner case expressible at this size (nested
// intervals, shared endpoints before normalization, reads overlapping
// several writes, zone-boundary geometry) is checked against the
// oracle for GK (k=1) and LBT/FZF (k=2).
#include <gtest/gtest.h>

#include <vector>

#include "core/fzf.h"
#include "core/gk.h"
#include "core/lbt.h"
#include "core/oracle.h"
#include "core/witness.h"
#include "history/anomaly.h"
#include "history/serialization.h"
#include "history/history.h"

namespace kav {
namespace {

std::vector<std::pair<TimePoint, TimePoint>> grid_intervals(
    const std::vector<TimePoint>& grid) {
  std::vector<std::pair<TimePoint, TimePoint>> intervals;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (std::size_t j = i + 1; j < grid.size(); ++j) {
      intervals.emplace_back(grid[i], grid[j]);
    }
  }
  return intervals;
}

// Checks one candidate history end to end; returns false if it was
// skipped (hard anomalies make it out of scope).
bool check_all_deciders(const std::vector<Operation>& ops,
                        std::uint64_t* checked) {
  const History raw(ops);
  const AnomalyReport report = find_anomalies(raw);
  if (!report.repairable()) return false;
  const History h = normalize(raw);

  const OracleResult truth1 = oracle_is_k_atomic(h, 1);
  const OracleResult truth2 = oracle_is_k_atomic(h, 2);
  EXPECT_TRUE(truth1.decided() && truth2.decided());

  const Verdict gk = check_1atomicity_gk(h);
  EXPECT_EQ(gk.yes(), truth1.yes()) << format_history(h);
  if (gk.yes()) {
    EXPECT_TRUE(validate_witness(h, gk.witness, 1).ok()) << format_history(h);
  }

  const Verdict lbt = check_2atomicity_lbt(h);
  const Verdict fzf = check_2atomicity_fzf(h);
  EXPECT_EQ(lbt.yes(), truth2.yes()) << format_history(h);
  EXPECT_EQ(fzf.yes(), truth2.yes()) << format_history(h);
  if (truth2.yes()) {
    EXPECT_TRUE(validate_witness(h, lbt.witness, 2).ok()) << format_history(h);
    EXPECT_TRUE(validate_witness(h, fzf.witness, 2).ok()) << format_history(h);
  }
  ++*checked;
  return true;
}

TEST(Exhaustive, TwoWritesOneRead) {
  const auto intervals = grid_intervals({0, 2, 4, 6, 8, 10});
  std::uint64_t checked = 0;
  for (const auto& w1 : intervals) {
    for (const auto& w2 : intervals) {
      for (const auto& r : intervals) {
        for (Value read_value : {1, 2}) {
          check_all_deciders(
              {make_write(w1.first, w1.second, 1),
               make_write(w2.first, w2.second, 2),
               make_read(r.first, r.second, read_value)},
              &checked);
        }
      }
    }
  }
  // 15^3 interval layouts x 2 read bindings, minus hard-anomalous ones.
  EXPECT_GT(checked, 3000u);
}

TEST(Exhaustive, TwoWritesTwoReadsCrossBound) {
  // Both reads bound to write 1: covers multi-read clusters and every
  // forward/backward zone shape two reads can induce.
  const auto intervals = grid_intervals({0, 3, 6, 9});
  std::uint64_t checked = 0;
  for (const auto& w1 : intervals) {
    for (const auto& w2 : intervals) {
      for (const auto& r1 : intervals) {
        for (const auto& r2 : intervals) {
          check_all_deciders(
              {make_write(w1.first, w1.second, 1),
               make_write(w2.first, w2.second, 2),
               make_read(r1.first, r1.second, 1),
               make_read(r2.first, r2.second, 1)},
              &checked);
        }
      }
    }
  }
  EXPECT_GT(checked, 500u);
}

TEST(Exhaustive, ThreeWritesOneRead) {
  const auto intervals = grid_intervals({0, 3, 6, 9});
  std::uint64_t checked = 0;
  for (const auto& w1 : intervals) {
    for (const auto& w2 : intervals) {
      for (const auto& w3 : intervals) {
        for (const auto& r : intervals) {
          check_all_deciders(
              {make_write(w1.first, w1.second, 1),
               make_write(w2.first, w2.second, 2),
               make_write(w3.first, w3.second, 3),
               make_read(r.first, r.second, 1)},  // read the oldest value
              &checked);
        }
      }
    }
  }
  EXPECT_GT(checked, 500u);
}

TEST(Exhaustive, TwoClustersEveryBinding) {
  // Two writes, two reads, all four value bindings: covers the
  // cross-cluster interference geometry exhaustively at this size.
  const auto intervals = grid_intervals({0, 3, 6, 9});
  std::uint64_t checked = 0;
  for (const auto& w1 : intervals) {
    for (const auto& w2 : intervals) {
      for (const auto& r1 : intervals) {
        for (const auto& r2 : intervals) {
          for (Value v1 : {1, 2}) {
            for (Value v2 : {1, 2}) {
              check_all_deciders(
                  {make_write(w1.first, w1.second, 1),
                   make_write(w2.first, w2.second, 2),
                   make_read(r1.first, r1.second, v1),
                   make_read(r2.first, r2.second, v2)},
                  &checked);
            }
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 2000u);
}

}  // namespace
}  // namespace kav
