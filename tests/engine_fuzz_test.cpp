// Seeded differential fuzzing of the kav::Engine session API against
// the legacy facade: for random multi-key traces, Engine::verify must
// be bit-identical (outcome, witness, reason, conflict, stats) to the
// legacy serial verify_keyed_trace -- across 1/2/8 threads, every
// Algorithm value (including k-mismatched precondition_failed combos),
// and with the engines REUSED across trials, so cross-call
// contamination on the shared pool would be caught too.
//
// The master seed comes from KAV_FUZZ_SEED when set and is printed on
// every failure, so any finding reproduces with
//   KAV_FUZZ_SEED=<seed> ./engine_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "gen/mutators.h"
#include "kav.h"
#include "util/rng.h"

namespace kav {
namespace {

constexpr std::uint64_t kDefaultSeed = 0x5eed2026ULL;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("KAV_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return kDefaultSeed;
}

// Small shards (<= ~16 ops) keep the exact-oracle configurations cheap
// while still exercising every dispatch path.
History random_shard(Rng& rng) {
  const std::uint64_t kind = rng.bounded(3);
  if (kind == 0) {
    gen::KAtomicConfig config;
    config.writes = 2 + static_cast<int>(rng.bounded(4));
    config.k = 1 + static_cast<int>(rng.bounded(3));
    return gen::generate_k_atomic(config, rng).history;
  }
  gen::RandomMixConfig config;
  config.operations = 4 + static_cast<int>(rng.bounded(12));
  config.write_fraction = 0.25 + 0.5 * rng.uniform_double();
  config.staleness_decay = 0.3 + 0.5 * rng.uniform_double();
  config.horizon = 400 + static_cast<TimePoint>(rng.bounded(2000));
  History h = gen::generate_random_mix(config, rng);
  if (kind == 2) {
    if (auto mutated = gen::inject_staler_read(h, rng)) h = *mutated;
    if (h.size() > 2 && rng.bernoulli(0.25)) {
      // May orphan dictated reads: a hard anomaly both paths must
      // report identically (precondition_failed).
      h = gen::drop_operation(h, static_cast<OpId>(rng.bounded(h.size())));
    }
  }
  return h;
}

KeyedTrace random_trace(Rng& rng) {
  KeyedTrace trace;
  const int keys = 1 + static_cast<int>(rng.bounded(6));
  for (int k = 0; k < keys; ++k) {
    const History shard = random_shard(rng);
    const std::string key = "k" + std::to_string(k);
    for (const Operation& op : shard.operations()) trace.add(key, op);
  }
  return trace;
}

void expect_bit_identical(const KeyedReport& serial, const Report& engine,
                          const std::string& context) {
  ASSERT_EQ(serial.per_key.size(), engine.per_key.size()) << context;
  auto its = serial.per_key.begin();
  auto ite = engine.per_key.begin();
  for (; its != serial.per_key.end(); ++its, ++ite) {
    SCOPED_TRACE(context + ", key " + its->first);
    ASSERT_EQ(its->first, ite->first);
    ASSERT_EQ(its->second.outcome, ite->second.verdict.outcome)
        << "serial: " << its->second.reason
        << "\nengine: " << ite->second.verdict.reason;
    ASSERT_EQ(its->second.witness, ite->second.verdict.witness);
    ASSERT_EQ(its->second.reason, ite->second.verdict.reason);
    ASSERT_EQ(its->second.conflict, ite->second.verdict.conflict);
    // Defaulted operator== covers every counter, present and future.
    ASSERT_TRUE(its->second.stats == ite->second.verdict.stats);
  }
}

TEST(EngineFuzz, VerifyBitIdenticalToLegacySerialForAllAlgorithms) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed);

  // Every Algorithm value, each at its native k plus one mismatched k
  // (the precondition_failed answers must match bit for bit too).
  struct Config {
    Algorithm algorithm;
    int k;
  };
  const std::vector<Config> configs = {
      {Algorithm::auto_select, 1}, {Algorithm::auto_select, 2},
      {Algorithm::auto_select, 3}, {Algorithm::gk, 1},
      {Algorithm::gk, 2},          {Algorithm::lbt, 2},
      {Algorithm::lbt, 3},         {Algorithm::lbt_naive, 2},
      {Algorithm::lbt_naive, 1},   {Algorithm::fzf, 2},
      {Algorithm::fzf, 1},         {Algorithm::greedy, 2},
      {Algorithm::greedy, 3},      {Algorithm::oracle, 2},
      {Algorithm::oracle, 3},
  };

  // Engines are built once and reused across every trial and config:
  // the differential property must survive pool reuse, and the verify
  // options ride per call via RunOptions.
  const std::vector<std::size_t> thread_counts = {1, 2, 8};
  std::vector<std::unique_ptr<Engine>> engines;
  for (std::size_t threads : thread_counts) {
    EngineOptions options;
    options.threads = threads;
    engines.push_back(std::make_unique<Engine>(options));
  }

  constexpr int kTrials = 12;
  for (int trial = 0; trial < kTrials; ++trial) {
    const KeyedTrace trace = random_trace(rng);
    for (const Config& config : configs) {
      VerifyOptions options;
      options.k = config.k;
      options.algorithm = config.algorithm;
      const KeyedReport serial = verify_keyed_trace(trace, options);
      RunOptions run;
      run.verify = options;
      for (std::size_t i = 0; i < engines.size(); ++i) {
        expect_bit_identical(
            serial, engines[i]->verify(trace, run),
            "reproduce with KAV_FUZZ_SEED=" + std::to_string(seed) +
                " (trial " + std::to_string(trial) + ", algorithm " +
                to_string(config.algorithm) + ", k " +
                std::to_string(config.k) + ", threads " +
                std::to_string(thread_counts[i]) + ")");
      }
    }
  }
}

TEST(EngineFuzz, MonitorAgreesWithLegacyMonitorAcrossThreadCounts) {
  Rng rng(fuzz_seed() ^ 0xe46eULL);
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("reproduce with KAV_FUZZ_SEED=" + std::to_string(fuzz_seed()) +
                 " (monitor trial " + std::to_string(trial) + ")");
    const KeyedTrace trace = random_trace(rng);
    MonitorOptions legacy_options;
    legacy_options.threads = 1;
    legacy_options.streaming.staleness_horizon = 1 << 22;
    legacy_options.reorder_slack = 1 << 20;
    const MonitorReport legacy = monitor_trace(trace, legacy_options);

    for (std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      EngineOptions options;
      options.threads = threads;
      options.streaming = legacy_options.streaming;
      options.reorder_slack = legacy_options.reorder_slack;
      Engine engine(options);
      const Report live = engine.monitor(trace);
      ASSERT_EQ(live.per_key.size(), legacy.per_key.size());
      for (const auto& [key, result] : legacy.per_key) {
        SCOPED_TRACE("key " + key);
        EXPECT_EQ(live.per_key.at(key).verdict.outcome,
                  result.verdict.outcome);
        EXPECT_EQ(live.per_key.at(key).findings.size(),
                  result.violations.size());
      }
    }
  }
}

// Sum of every series of `name` in the snapshot, labels collapsed.
// Counter and gauge values are integral by construction, so the cast
// back from the snapshot's double is exact.
std::uint64_t series_total(const obs::RegistrySnapshot& snapshot,
                           const std::string& name) {
  std::uint64_t total = 0;
  for (const obs::MetricSnapshot& m : snapshot.metrics) {
    if (m.name == name) total += static_cast<std::uint64_t>(m.value);
  }
  return total;
}

// The registry is not a second bookkeeping system: its counters must
// equal the legacy VerifyStats / MonitorStats views on the same run.
// Fresh registry per engine so each trial's totals stand alone.
TEST(EngineFuzz, RegistryCountersEqualLegacyStatsTotals) {
  const std::uint64_t seed = fuzz_seed();
  Rng rng(seed ^ 0x0b5e7ULL);
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("reproduce with KAV_FUZZ_SEED=" + std::to_string(seed) +
                 " (differential trial " + std::to_string(trial) + ")");
    const KeyedTrace trace = random_trace(rng);

    {
      obs::MetricsRegistry registry;
      EngineOptions options;
      options.threads = 4;
      options.metrics = &registry;
      Engine engine(options);
      const Report report = engine.verify(trace);
      const obs::RegistrySnapshot snap = engine.snapshot();
      const VerifyStats& totals = report.verify_totals;
      EXPECT_EQ(series_total(snap, "kav_verify_steps_total"), totals.steps);
      EXPECT_EQ(series_total(snap, "kav_verify_epochs_total"), totals.epochs);
      EXPECT_EQ(series_total(snap, "kav_verify_candidates_total"),
                totals.candidates_tried);
      EXPECT_EQ(series_total(snap, "kav_verify_chunks_total"), totals.chunks);
      EXPECT_EQ(series_total(snap, "kav_verify_dangling_total"),
                totals.dangling);
      EXPECT_EQ(series_total(snap, "kav_verify_orders_tested_total"),
                totals.orders_tested);
      EXPECT_EQ(series_total(snap, "kav_verify_oracle_nodes_total"),
                totals.nodes);
      EXPECT_EQ(series_total(snap, "kav_engine_keys_verified_total"),
                report.per_key.size());
      EXPECT_EQ(series_total(snap, "kav_engine_shards_verified_total"),
                report.per_key.size());
    }

    {
      obs::MetricsRegistry registry;
      EngineOptions options;
      options.threads = 4;
      options.metrics = &registry;
      options.streaming.staleness_horizon = 1 << 22;
      options.reorder_slack = 1 << 20;
      Engine engine(options);
      const Report report = engine.monitor(trace);
      const obs::RegistrySnapshot snap = engine.snapshot();
      const MonitorStats& totals = report.monitor_totals;
      EXPECT_EQ(series_total(snap, "kav_monitor_ops_ingested_total"),
                totals.operations_ingested);
      EXPECT_EQ(series_total(snap, "kav_monitor_late_arrivals_total"),
                totals.late_arrivals);
      EXPECT_EQ(series_total(snap, "kav_monitor_violations_total"),
                totals.violations);
      EXPECT_EQ(series_total(snap, "kav_monitor_chunks_verified_total"),
                totals.chunks_verified);
      // The run's findings also flow into the engine-level per-kind
      // breakdown; kinds collapse back to the same total.
      EXPECT_EQ(series_total(snap, "kav_engine_findings_total"),
                totals.violations);
      // At quiescence (the run's monitor is destroyed before monitor()
      // returns) every level gauge must have been retired to zero.
      EXPECT_EQ(series_total(snap, "kav_monitor_queue_backlog"), 0u);
      EXPECT_EQ(series_total(snap, "kav_monitor_reorder_pending"), 0u);
      EXPECT_EQ(series_total(snap, "kav_monitor_active_keys"), 0u);
    }
  }
}

}  // namespace
}  // namespace kav
